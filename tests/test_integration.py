"""End-to-end integration tests combining all subsystems."""

import numpy as np
import pytest

from repro import (
    ChainLayer0,
    FastSimulation,
    LayeredGraph,
    Parameters,
    StaticDelayModel,
    replicated_line,
)
from repro.analysis import overall_skew, times_from_trace
from repro.analysis.skew import max_inter_layer_skew
from repro.clocks import uniform_random_rates
from repro.core.conditions import check_all_conditions
from repro.core.network_sim import GridSimulation
from repro.faults import AdversarialLateFault, CrashFault, FaultPlan


class TestFullPipeline:
    """Chain layer 0 -> grid forwarding -> faults -> analysis, end to end."""

    def setup_method(self):
        self.params = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
        self.base = replicated_line(10)
        self.graph = LayeredGraph(self.base, 10)
        self.delays = StaticDelayModel(self.params.d, self.params.u, seed=21)
        clocks = uniform_random_rates(
            self.graph.nodes(), self.params.vartheta, rng_or_seed=22
        )
        self.rates = {n: c.rate for n, c in clocks.items()}
        self.clocks = clocks

    def _chain_layer0(self):
        # Feed layer 0 through the Algorithm 2 chain: twins at the ends,
        # path nodes in order (a Hamiltonian-ish walk of the base graph).
        order = [10, *range(10), 11]
        chain_clocks = {
            v: self.clocks[(v, 0)] for v in order if (v, 0) in self.clocks
        }
        return ChainLayer0(
            self.params, order, delay_model=self.delays, clocks=chain_clocks
        )

    def test_chain_fed_grid_respects_bounds(self):
        layer0 = self._chain_layer0()
        sim = FastSimulation(
            self.graph,
            self.params,
            delay_model=self.delays,
            clock_rates=self.rates,
            layer0=layer0,
        )
        result = sim.run(4)
        bound = self.params.local_skew_bound(self.base.diameter)
        # Chain-adjacent layer-0 nodes are within kappa/2 per hop; the grid
        # absorbs the linear phase ramp into a bounded local skew.
        assert result.max_local_skew() <= bound
        assert max_inter_layer_skew(result) <= bound
        assert check_all_conditions(result) == []

    def test_chain_fed_grid_with_faults(self):
        layer0 = self._chain_layer0()
        plan = FaultPlan.from_nodes(
            {(3, 3): CrashFault(), (7, 6): AdversarialLateFault(20.0)}
        )
        assert plan.is_one_local(self.graph)
        sim = FastSimulation(
            self.graph,
            self.params,
            delay_model=self.delays,
            clock_rates=self.rates,
            layer0=layer0,
            fault_plan=plan,
        )
        result = sim.run(4)
        assert overall_skew(result) <= self.params.worst_case_fault_bound(
            self.base.diameter, 2
        )

    def test_event_mode_full_pipeline(self):
        layer0 = self._chain_layer0()
        plan = FaultPlan.from_nodes({(3, 3): CrashFault()})
        fast = FastSimulation(
            self.graph,
            self.params,
            delay_model=self.delays,
            clock_rates=self.rates,
            layer0=layer0,
            fault_plan=plan,
        ).run(3)
        grid = GridSimulation(
            self.graph,
            self.params,
            delay_model=self.delays,
            clocks=dict(self.clocks),
            layer0=layer0,
            fault_plan=plan,
        )
        trace = grid.run(3)
        event = times_from_trace(trace, self.graph, 3)
        assert np.array_equal(np.isnan(event), np.isnan(fast.times))
        assert np.nanmax(np.abs(event - fast.times)) == 0.0


class TestParameterRegimes:
    @pytest.mark.parametrize(
        "d,u,vartheta",
        [
            (1.0, 0.001, 1.0001),  # precise VLSI
            (1.0, 0.05, 1.01),     # sloppy links and clocks
            (10.0, 0.1, 1.001),    # long wires
        ],
    )
    def test_bound_holds_across_regimes(self, d, u, vartheta):
        params = Parameters(d=d, u=u, vartheta=vartheta, Lambda=2 * d)
        graph = LayeredGraph(replicated_line(8), 8)
        delays = StaticDelayModel(d, u, seed=1)
        rates = {
            node: clock.rate
            for node, clock in uniform_random_rates(
                graph.nodes(), vartheta, rng_or_seed=2
            ).items()
        }
        result = FastSimulation(
            graph, params, delay_model=delays, clock_rates=rates
        ).run(3)
        assert result.max_local_skew() <= params.local_skew_bound(7)

    def test_zero_uncertainty_zero_drift_gives_tiny_skew(self):
        params = Parameters(d=1.0, u=0.0, vartheta=1.0, Lambda=2.0)
        graph = LayeredGraph(replicated_line(8), 8)
        result = FastSimulation(graph, params).run(2)
        assert result.max_local_skew() == pytest.approx(0.0, abs=1e-12)
