"""Tests for repro.baselines: naive TRIX, HEX, and the clock tree."""

import math

import numpy as np
import pytest
from repro.baselines import ClockTree, HexSimulation, NaiveTrixSimulation
from repro.core.fast import FastSimulation
from repro.delays import AdversarialSplitDelays, StaticDelayModel
from repro.faults import AdversarialLateFault, CrashFault, FaultPlan
from repro.params import Parameters
from repro.topology import LayeredGraph, replicated_line

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)


def trix_grid(diameter):
    return LayeredGraph(replicated_line(diameter + 1), diameter + 1)


def adversarial():
    return AdversarialSplitDelays(
        PARAMS.d, PARAMS.u, lambda e: e[1][0] >= e[0][0]
    )


class TestNaiveTrix:
    def test_uniform_setup_zero_skew(self):
        result = NaiveTrixSimulation(trix_grid(6), PARAMS).run(2)
        assert result.max_local_skew() == 0.0
        assert not np.isnan(result.times).any()

    def test_skew_grows_linearly_under_adversarial_delays(self):
        """Figure 1 left / Table 1: Theta(u * D) local skew."""
        skews = {}
        for diameter in (8, 16, 32):
            result = NaiveTrixSimulation(
                trix_grid(diameter), PARAMS, delay_model=adversarial()
            ).run(2)
            skews[diameter] = result.max_local_skew()
        # Roughly doubles with D and scales with u.
        assert skews[16] > 1.7 * skews[8]
        assert skews[32] > 1.7 * skews[16]
        assert skews[32] >= 0.2 * PARAMS.u * 32

    def test_gradient_trix_beats_naive_on_same_delays(self):
        graph = trix_grid(32)
        naive = NaiveTrixSimulation(
            graph, PARAMS, delay_model=adversarial()
        ).run(2)
        gradient = FastSimulation(
            graph, PARAMS, delay_model=adversarial()
        ).run(2)
        assert gradient.max_local_skew() < naive.max_local_skew()

    def test_tolerates_one_crash(self):
        plan = FaultPlan.from_nodes({(4, 2): CrashFault()})
        result = NaiveTrixSimulation(
            trix_grid(8),
            PARAMS,
            delay_model=StaticDelayModel(PARAMS.d, PARAMS.u, seed=0),
            fault_plan=plan,
        ).run(2)
        mask = result.faulty_mask
        assert not np.isnan(result.times[:, ~mask]).any()

    def test_second_copy_rule_ignores_early_byzantine(self):
        # A fault that sends extremely early cannot speed its successors
        # up: they wait for the second copy.
        plan_early = FaultPlan.from_nodes(
            {(4, 2): AdversarialLateFault(0.0)}
        )  # on time
        base = NaiveTrixSimulation(
            trix_grid(8), PARAMS, fault_plan=plan_early
        ).run(2)
        from repro.faults import AdversarialEarlyFault

        plan = FaultPlan.from_nodes({(4, 2): AdversarialEarlyFault(100.0)})
        early = NaiveTrixSimulation(
            trix_grid(8), PARAMS, fault_plan=plan
        ).run(2)
        correct_mask = ~early.faulty_mask
        diff = np.abs(
            early.times[:, correct_mask] - base.times[:, correct_mask]
        )
        assert np.nanmax(diff) <= 1e-9

    def test_two_silent_preds_deadlock(self):
        plan = FaultPlan.from_nodes(
            {(3, 2): CrashFault(), (5, 2): CrashFault()}
        )
        result = NaiveTrixSimulation(
            trix_grid(8), PARAMS, fault_plan=plan
        ).run(1)
        assert math.isnan(result.times[0, 3, 4])

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            NaiveTrixSimulation(trix_grid(4), PARAMS, forward_wait=-1.0)
        with pytest.raises(ValueError):
            NaiveTrixSimulation(trix_grid(4), PARAMS).run(0)


class TestHex:
    def test_no_crash_small_skew(self):
        sim = HexSimulation(
            12, 10, PARAMS,
            delay_model=StaticDelayModel(PARAMS.d, PARAMS.u, seed=0),
        )
        result = sim.run(2)
        assert result.max_local_skew() <= 3 * PARAMS.u

    def test_crash_costs_about_d(self):
        """Figure 1 right: one crash inflates local skew by ~d (>> u)."""
        delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
        clean = HexSimulation(12, 10, PARAMS, delay_model=delays).run(2)
        crashed = HexSimulation(
            12, 10, PARAMS, delay_model=delays, crashed={(6, 4)}
        ).run(2)
        penalty = crashed.max_local_skew() - clean.max_local_skew()
        assert PARAMS.d * 0.5 <= penalty <= 3 * PARAMS.d

    def test_crashed_node_never_fires(self):
        result = HexSimulation(8, 6, PARAMS, crashed={(3, 2)}).run(2)
        assert np.isnan(result.times[:, 2, 3]).all()

    def test_all_correct_nodes_fire_despite_crash(self):
        result = HexSimulation(8, 6, PARAMS, crashed={(3, 2)}).run(2)
        mask = np.zeros((6, 8), dtype=bool)
        mask[2, 3] = True
        assert not np.isnan(result.times[:, ~mask]).any()

    def test_skew_per_layer_shape(self):
        result = HexSimulation(8, 6, PARAMS).run(1)
        assert result.local_skew_per_layer().shape == (6,)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            HexSimulation(2, 5, PARAMS)
        with pytest.raises(ValueError):
            HexSimulation(8, 0, PARAMS)
        with pytest.raises(ValueError):
            HexSimulation(8, 5, PARAMS).run(0)


class TestClockTree:
    def test_leaf_count(self):
        assert ClockTree(depth=4, d=1.0, u=0.1).num_leaves == 16

    def test_leaf_times_in_envelope(self):
        tree = ClockTree(depth=5, d=1.0, u=0.1, seed=1)
        for t in tree.leaf_times():
            assert 5 * 0.9 <= t <= 5 * 1.0

    def test_local_skew_bounded_by_depth(self):
        tree = ClockTree(depth=5, d=1.0, u=0.1, seed=1)
        assert tree.local_skew() <= 2 * 5 * 0.1

    def test_broken_edge_silences_subtree(self):
        # Breaking the root's left child silences half the leaves.
        tree = ClockTree(depth=4, d=1.0, u=0.1, broken_edges={2})
        assert tree.reachable_leaves() == 8

    def test_intact_tree_fully_reachable(self):
        tree = ClockTree(depth=4, d=1.0, u=0.1)
        assert tree.reachable_leaves() == 16

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ClockTree(depth=0, d=1.0, u=0.1)
        with pytest.raises(ValueError):
            ClockTree(depth=3, d=1.0, u=2.0)
