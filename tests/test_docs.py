"""Docs integrity: the markdown link/anchor graph of README and docs/.

Every relative link in ``README.md`` and ``docs/*.md`` must point at a
file that exists in the repo, and every ``#anchor`` fragment must match a
heading in the target file (GitHub slug rules).  External ``http(s)``
links and GitHub-web-UI paths that escape the repo root (the CI badge)
are skipped -- this is an offline check.

This module runs in tier-1 and again in the CI docs job next to
``pytest --doctest-modules``.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def doc_files():
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return files


def strip_code(text: str) -> str:
    """Drop fenced blocks and inline code spans before link scanning."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: Path):
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(path.read_text())}


def iter_links():
    for doc in doc_files():
        for target in LINK_RE.findall(strip_code(doc.read_text())):
            yield doc, target


def test_docs_exist():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (REPO_ROOT / "docs" / "chaos_campaigns.md").is_file()


@pytest.mark.parametrize(
    "doc,target",
    [pytest.param(d, t, id=f"{d.name}:{t}") for d, t in iter_links()],
)
def test_markdown_link_resolves(doc, target):
    if target.startswith(("http://", "https://", "mailto:")):
        pytest.skip("external link")
    path_part, _, anchor = target.partition("#")
    resolved = (doc.parent / path_part).resolve() if path_part else doc.resolve()
    if REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
        pytest.skip("GitHub web-UI path outside the repo checkout")
    assert resolved.exists(), f"{doc.name}: broken link target {target!r}"
    if anchor:
        assert resolved.suffix == ".md", (
            f"{doc.name}: anchor on non-markdown target {target!r}"
        )
        slugs = heading_slugs(resolved)
        assert anchor in slugs, (
            f"{doc.name}: anchor #{anchor} not a heading of "
            f"{resolved.name} (has: {sorted(slugs)})"
        )


def test_readme_layout_section_is_gone():
    """The stale hand-maintained Layout table was replaced by the docs."""
    readme = (REPO_ROOT / "README.md").read_text()
    assert "## Layout" not in readme
    assert "docs/ARCHITECTURE.md" in readme
