"""Differential harness: every execution path against every other.

The fast family has grown many layers -- per-trial vectorized kernel,
scalar replay, homogeneous trial stack, padded heterogeneous stack, and
now the depth-compacted stack -- each promising bit-identical output to
the previous one, with the slow event-driven ``engine/`` simulator as the
independent ground truth underneath all of them.  This module pins the
whole tower with one shared helper: a hypothesis-drawn scenario
(topology, depth, delays, clock rates, layer-0 schedule, fault plan) is
run through every path, asserting

* **bitwise agreement within the vectorized fast family** (per-trial ==
  homogeneous stack == padded heterogeneous stack == compacted stack --
  they evaluate the same NumPy expressions, so any drift is a bug),
* **1e-9 agreement with the scalar replay** (same arithmetic, different
  association), and
* **1e-9 agreement with the event-driven engine** (independent
  event-queue execution; Lemma B.1 guarantees the pulse alignment), and
* **bitwise agreement of the streaming reducers** (``store_times=False``
  runs that never materialize the pulse-time block): every scenario also
  replays through the streamed per-trial, scalar, padded, and compacted
  paths, and the online skew/potential/correction folds must equal the
  array reducers applied to the materialized reference exactly, and
* **bitwise agreement across neighbor backends**: hub-skewed sparse
  scenarios replay through the CSR edge-segment kernel (per-trial and
  stacked) against the dense padded kernel, and through the width-axis
  lane compaction against the lane-padded stack -- both new execution
  columns must reproduce the dense reference exactly, and
* **dynamic adjacency** (:class:`~repro.faults.campaign.ChaosCampaign`):
  every scenario is additionally run under a hypothesis-drawn churn
  campaign -- leaves, joins, edge flaps, crashes, regional outages --
  with the whole vectorized family again pinned bitwise and the engine
  pinned at 1e-9 through *per-epoch stitching*: by Lemma B.1 pulse ``k``
  depends only on pulse ``k`` of the layer below, so a dynamic run
  equals, pulse for pulse, a static engine run on that pulse's
  instantaneous graph; we replay the engine once per campaign epoch and
  take each epoch's own rows as the ground-truth reference.

The stacking decoys deliberately disagree with the scenario in width
*and* depth, so the padding and compaction machinery is engaged on every
example, never just the degenerate all-uniform case.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.potentials import potential_layers
from repro.analysis.skew import (
    global_skew_layers,
    inter_layer_skew_layers,
    local_skew_layers,
    times_from_trace,
)
from repro.analysis.streaming import default_reducers, fold_correction_planes
from repro.clocks import uniform_random_rates
from repro.core.backend import numba_available
from repro.core.fast import FastSimulation
from repro.core.fast_batch import TrialStack, stack_compatibility
from repro.core.layer0 import (
    AlternatingLayer0,
    ChainLayer0,
    JitteredLayer0,
    PerfectLayer0,
)
from repro.core.network_sim import GridSimulation
from repro.delays.models import StaticDelayModel, UniformDelayModel
from repro.faults.campaign import (
    ChaosCampaign,
    EdgeDown,
    EdgeFlap,
    NodeCrash,
    NodeJoin,
    NodeLeave,
    NodeRecover,
    RegionalOutage,
)
from repro.faults.injection import FaultPlan
from repro.faults.model import (
    AdversarialLateFault,
    CrashFault,
    FixedOffsetFault,
)
from repro.params import Parameters
from repro.topology.base_graph import (
    complete_graph,
    cycle_graph,
    replicated_line,
)
from repro.topology.layered import LayeredGraph
from repro.topology.sparse import sparse_base_graph

NUM_PULSES = 3

PARAMS_CHOICES = (
    Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0),
    Parameters(d=1.0, u=0.05, vartheta=1.01, Lambda=2.5),
)

FAMILY_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
# The engine replays every message through the event queue; keep its leg
# of the harness on fewer, smaller examples.
ENGINE_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def scenarios(draw):
    """One engine-compatible cell: geometry, delays, rates, layer 0, faults.

    Engine-compatible means constant-rate clocks and pulse-invariant
    delays (the event/fast coupling requires both); every fast-family
    path accepts strictly more, so one strategy serves the whole harness.
    Late-fault magnitudes stay below one pulse period ``Lambda``: the
    engine comparison leans on Lemma B.1's pulse alignment, and a
    message several periods late shifts the receiver's firing count so
    ``times_from_trace`` pairs engine pulses against the wrong ``k``
    (observed empirically from ~3.5 Lambda).  The vectorized fast family
    stays bitwise-pinned against itself for arbitrary magnitudes.
    """
    kind = draw(st.sampled_from(["line", "cycle", "complete"]))
    if kind == "line":
        base = replicated_line(draw(st.integers(2, 5)))
    elif kind == "cycle":
        base = cycle_graph(draw(st.integers(3, 7)))
    else:
        base = complete_graph(draw(st.integers(3, 5)))
    num_layers = draw(st.integers(2, 4))
    graph = LayeredGraph(base, num_layers)
    params = draw(st.sampled_from(PARAMS_CHOICES))
    seed = draw(st.integers(0, 2**16))

    if draw(st.booleans()):
        delay_model = StaticDelayModel(params.d, params.u, seed=seed)
    else:
        delay_model = UniformDelayModel(params.d, params.u)

    layer0_kind = draw(
        st.sampled_from(["perfect", "jittered", "alternating", "chain"])
    )
    if layer0_kind == "perfect":
        layer0 = PerfectLayer0(params.Lambda)
    elif layer0_kind == "jittered":
        layer0 = JitteredLayer0(
            params.Lambda, base.num_nodes, params.kappa / 2.0, seed=seed
        )
    elif layer0_kind == "alternating":
        layer0 = AlternatingLayer0(params.Lambda, params.kappa)
    else:
        layer0 = ChainLayer0(
            params,
            list(base.nodes()),
            delay_model=StaticDelayModel(params.d, params.u, seed=seed + 7),
        )

    clocks = uniform_random_rates(
        list(graph.nodes()), params.vartheta, rng_or_seed=seed + 1
    )
    rates = {node: clock.rate for node, clock in clocks.items()}

    fault_plan = None
    num_faults = draw(st.integers(0, 2))
    if num_faults:
        rng = np.random.default_rng(seed + 2)
        behaviors = {}
        for _ in range(num_faults):
            node = (
                int(rng.integers(base.num_nodes)),
                int(rng.integers(num_layers)),
            )
            roll = rng.random()
            if roll < 0.4:
                behavior = CrashFault()
            elif roll < 0.7:
                behavior = AdversarialLateFault(
                    float(rng.uniform(0.5, 0.9 * params.Lambda))
                )
            else:
                behavior = FixedOffsetFault(float(rng.uniform(0.05, 0.4)))
            behaviors[node] = behavior
        fault_plan = FaultPlan.from_nodes(behaviors)

    return {
        "graph": graph,
        "params": params,
        "delay_model": delay_model,
        "layer0": layer0,
        "clocks": clocks,
        "rates": rates,
        "fault_plan": fault_plan,
    }


#: Horizon of the dynamic-adjacency legs: room for churn plus recovery.
CAMPAIGN_PULSES = 5


@st.composite
def campaigns(draw, base, num_layers):
    """A churn campaign over ``base`` with at least one in-horizon event.

    Half the examples come from the seeded sustained-churn sampler the
    thm16 experiment uses (:meth:`ChaosCampaign.random`); the rest are
    directly drawn event lists covering the corners the sampler avoids
    on purpose -- layer-0 crashes, leaves that never rejoin, edges that
    stay down, overlapping regional outages.  Isolating a survivor is
    fine: both simulators silence a degree-0 cell's layers identically.
    """
    if draw(st.booleans()):
        campaign = ChaosCampaign.random(
            base,
            num_layers,
            churn_pulses=CAMPAIGN_PULSES - 1,
            rng_or_seed=draw(st.integers(0, 2**16)),
            event_rate=1.0,
        )
        if campaign.events:
            return campaign
    edges = sorted(base.edges)
    events = []
    for _ in range(draw(st.integers(1, 3))):
        pulse = draw(st.integers(1, CAMPAIGN_PULSES - 1))
        kind = draw(
            st.sampled_from(["crash", "leave", "flap", "down", "outage"])
        )
        if kind == "crash":
            node = (
                draw(st.integers(0, base.num_nodes - 1)),
                draw(st.integers(0, num_layers - 1)),
            )
            events.append(NodeCrash(pulse=pulse, node=node))
            if draw(st.booleans()):
                events.append(
                    NodeRecover(
                        pulse=pulse + draw(st.integers(1, 2)), node=node
                    )
                )
        elif kind == "leave":
            vertex = draw(st.integers(0, base.num_nodes - 1))
            events.append(NodeLeave(pulse=pulse, vertex=vertex))
            if draw(st.booleans()):
                events.append(
                    NodeJoin(
                        pulse=pulse + draw(st.integers(1, 2)), vertex=vertex
                    )
                )
        elif kind == "flap":
            events.append(
                EdgeFlap(
                    pulse=pulse,
                    edge=draw(st.sampled_from(edges)),
                    down_pulses=draw(st.integers(1, 2)),
                )
            )
        elif kind == "down":
            events.append(
                EdgeDown(pulse=pulse, edge=draw(st.sampled_from(edges)))
            )
        else:
            events.append(
                RegionalOutage(
                    pulse=pulse,
                    center=draw(st.integers(0, base.num_nodes - 1)),
                    radius=1,
                    duration=draw(st.integers(1, 2)),
                    kind=draw(st.sampled_from(["crash", "leave"])),
                )
            )
    return ChaosCampaign(base, num_layers, events)


def fast_simulation(scenario, algorithm="full", vectorize=True):
    """A fresh FastSimulation realizing ``scenario`` (rebuild per path)."""
    return FastSimulation(
        scenario["graph"],
        scenario["params"],
        delay_model=scenario["delay_model"],
        clock_rates=scenario["rates"],
        fault_plan=scenario["fault_plan"],
        layer0=scenario["layer0"],
        algorithm=algorithm,
        vectorize=vectorize,
    )


def _decoy(scenario, num_layers, algorithm):
    """A stack mate with different width *and* depth than the scenario.

    Forces the padded gather tensors (mixed width) and, in the compacted
    stack, a non-trivial active-row schedule (mixed depth) on every
    example.
    """
    width = scenario["graph"].width
    base = cycle_graph(width + 2 if width >= 3 else 5)
    params = scenario["params"]
    return FastSimulation(
        LayeredGraph(base, num_layers),
        params,
        delay_model=StaticDelayModel(params.d, params.u, seed=1234),
        layer0=PerfectLayer0(params.Lambda),
        algorithm=algorithm,
    )


def run_fast_family(scenario, algorithm="full"):
    """The scenario's result on every vectorized fast path, plus scalar.

    Returns ``{path_name: FastResult}``; each stack rebuilds its own
    simulations, so no state leaks between paths.
    """
    family = {"per_trial": fast_simulation(scenario, algorithm).run(NUM_PULSES)}

    twins = [fast_simulation(scenario, algorithm) for _ in range(2)]
    assert stack_compatibility(twins) is None
    family["homogeneous_stack"] = TrialStack(twins).run(NUM_PULSES)[0]

    depth = scenario["graph"].num_layers
    padded = [fast_simulation(scenario, algorithm), _decoy(scenario, depth + 2, algorithm)]
    family["padded_stack"] = TrialStack(
        padded, compact_depth=False
    ).run(NUM_PULSES)[0]

    # Compaction must engage from both sides: the scenario outlived by a
    # deeper decoy, and the scenario outliving a shallower one.
    deep = TrialStack(
        [fast_simulation(scenario, algorithm), _decoy(scenario, depth + 3, algorithm)],
        compact_depth=True,
    )
    family["compacted_stack_deep_mate"] = deep.run(NUM_PULSES)[0]
    assert deep.compaction_stats["enabled"]
    assert (
        deep.compaction_stats["active_row_steps"]
        < deep.compaction_stats["padded_row_steps"]
    )
    shallow = TrialStack(
        [fast_simulation(scenario, algorithm), _decoy(scenario, 1, algorithm)],
        compact_depth=True,
    )
    family["compacted_stack_shallow_mate"] = shallow.run(NUM_PULSES)[0]
    # The depth-1 decoy is also the *wider* mate, so once it retires the
    # scenario's surviving rows drop the decoy's extra lanes: the width
    # axis must actually engage here, never silently no-op.  Pin the
    # lane-compacted leg above against the same stack with width
    # compaction forced off.
    stats = shallow.compaction_stats
    assert "width" in stats["axes"], stats
    assert stats["active_lane_steps"] < stats["padded_lane_steps"], stats
    family["lane_padded_shallow_mate"] = TrialStack(
        [fast_simulation(scenario, algorithm), _decoy(scenario, 1, algorithm)],
        compact_depth=True,
        compact_width=False,
    ).run(NUM_PULSES)[0]

    family["scalar"] = fast_simulation(
        scenario, algorithm, vectorize=False
    ).run(NUM_PULSES)
    return family


#: Potential level folded by the streaming legs (PotentialStream(1)).
STREAM_POTENTIAL_S = 1


def _stream_reducers():
    """A fresh reducer list per leg (reducers bind to one stream)."""
    return default_reducers(potential_levels=(STREAM_POTENTIAL_S,))


def run_streaming_family(scenario, algorithm="full"):
    """Streamed (``store_times=False``) twins of every fast path.

    Same construction as :func:`run_fast_family` -- per-trial, padded
    stack, compacted stack from both depth sides, scalar -- but with the
    pulse-time block never materialized; statistics come back only
    through the streamed accumulators.
    """
    kwargs = dict(store_times=False)
    family = {
        "per_trial": fast_simulation(scenario, algorithm).run(
            NUM_PULSES, reducers=_stream_reducers(), **kwargs
        )
    }
    depth = scenario["graph"].num_layers
    family["padded_stack"] = TrialStack(
        [fast_simulation(scenario, algorithm), _decoy(scenario, depth + 2, algorithm)],
        compact_depth=False,
    ).run(NUM_PULSES, reducers=_stream_reducers(), **kwargs)[0]
    family["compacted_stack_deep_mate"] = TrialStack(
        [fast_simulation(scenario, algorithm), _decoy(scenario, depth + 3, algorithm)],
        compact_depth=True,
    ).run(NUM_PULSES, reducers=_stream_reducers(), **kwargs)[0]
    family["compacted_stack_shallow_mate"] = TrialStack(
        [fast_simulation(scenario, algorithm), _decoy(scenario, 1, algorithm)],
        compact_depth=True,
    ).run(NUM_PULSES, reducers=_stream_reducers(), **kwargs)[0]
    family["scalar"] = fast_simulation(
        scenario, algorithm, vectorize=False
    ).run(NUM_PULSES, reducers=_stream_reducers(), **kwargs)
    return family


def campaign_simulation(scenario, campaign, vectorize=True):
    """A fresh FastSimulation of ``scenario`` running ``campaign``."""
    return FastSimulation(
        scenario["graph"],
        scenario["params"],
        delay_model=scenario["delay_model"],
        clock_rates=scenario["rates"],
        fault_plan=scenario["fault_plan"],
        layer0=scenario["layer0"],
        campaign=campaign,
        vectorize=vectorize,
    )


def run_campaign_family(scenario, campaign):
    """The campaign's result on every fast path (see run_fast_family).

    The stacked legs mix the campaign trial with static decoys of
    different width and depth, so the per-trial epoch machinery must
    rewrite exactly one trial's rows of the padded tensors while its
    mates keep running untouched.
    """
    family = {
        "per_trial": campaign_simulation(scenario, campaign).run(
            CAMPAIGN_PULSES
        )
    }
    twins = [campaign_simulation(scenario, campaign) for _ in range(2)]
    family["homogeneous_stack"] = TrialStack(twins).run(CAMPAIGN_PULSES)[0]
    depth = scenario["graph"].num_layers
    family["padded_stack"] = TrialStack(
        [
            campaign_simulation(scenario, campaign),
            _decoy(scenario, depth + 2, "full"),
        ],
        compact_depth=False,
    ).run(CAMPAIGN_PULSES)[0]
    family["compacted_stack_deep_mate"] = TrialStack(
        [
            campaign_simulation(scenario, campaign),
            _decoy(scenario, depth + 3, "full"),
        ],
        compact_depth=True,
    ).run(CAMPAIGN_PULSES)[0]
    family["compacted_stack_shallow_mate"] = TrialStack(
        [
            campaign_simulation(scenario, campaign),
            _decoy(scenario, 1, "full"),
        ],
        compact_depth=True,
    ).run(CAMPAIGN_PULSES)[0]
    family["scalar"] = campaign_simulation(
        scenario, campaign, vectorize=False
    ).run(CAMPAIGN_PULSES)
    return family


def assert_streamed_matches_materialized(streamed, reference, scenario, label=""):
    """Streamed folds == array reducers on the materialized twin, bitwise."""
    graph = scenario["graph"]
    assert streamed.times is None, f"{label}: streamed run kept the block"
    row = streamed.streamed_row
    stats = streamed.streamed
    np.testing.assert_array_equal(
        stats["local"].trial_values(row),
        local_skew_layers(reference.times, graph),
        err_msg=f"{label}: local skew",
    )
    np.testing.assert_array_equal(
        stats["inter_layer"].trial_values(row),
        inter_layer_skew_layers(reference.times, graph),
        err_msg=f"{label}: inter-layer skew",
    )
    np.testing.assert_array_equal(
        stats["global"].trial_values(row, empty=np.nan),
        global_skew_layers(reference.times, empty=np.nan),
        err_msg=f"{label}: global skew",
    )
    coefficient = 4.0 * STREAM_POTENTIAL_S * scenario["params"].kappa
    np.testing.assert_array_equal(
        stats[f"potential_s{STREAM_POTENTIAL_S}"].trial_values(row),
        potential_layers(reference.times, graph, coefficient),
        err_msg=f"{label}: potential",
    )
    want = fold_correction_planes(reference.corrections[None])
    got = stats["corrections"].trial_stats(row)
    for key, values in want.items():
        np.testing.assert_array_equal(
            got[key], values[0], err_msg=f"{label}: corrections {key}"
        )


def assert_results_equal(got, want, exact=True, label=""):
    for attr in (
        "times",
        "protocol_times",
        "corrections",
        "effective_corrections",
    ):
        got_arr, want_arr = getattr(got, attr), getattr(want, attr)
        if exact:
            np.testing.assert_array_equal(
                got_arr, want_arr, err_msg=f"{label}: {attr}"
            )
        else:
            np.testing.assert_allclose(
                got_arr, want_arr, rtol=0.0, atol=1e-9,
                equal_nan=True, err_msg=f"{label}: {attr}",
            )
    if exact:
        np.testing.assert_array_equal(
            got.branches, want.branches, err_msg=f"{label}: branches"
        )
        assert got.fault_sends == want.fault_sends, label


class TestFastFamilyDifferential:
    """All vectorized fast paths bitwise equal; scalar within 1e-9."""

    @FAMILY_SETTINGS
    @given(data=st.data())
    def test_all_paths_agree(self, data):
        algorithm = data.draw(st.sampled_from(["full", "simplified"]))
        scenario = data.draw(scenarios())
        family = run_fast_family(scenario, algorithm)
        reference = family.pop("per_trial")
        scalar = family.pop("scalar")
        for label, result in family.items():
            assert_results_equal(result, reference, exact=True, label=label)
        assert_results_equal(scalar, reference, exact=False, label="scalar")

        # The same scenario with the pulse-time block never materialized:
        # every streamed leg's online folds must equal the array reducers
        # on its materialized twin bitwise (the scalar leg folds the
        # scalar replay's own values, which differ from the vectorized
        # reference only in association).
        streaming = run_streaming_family(scenario, algorithm)
        stream_scalar = streaming.pop("scalar")
        for label, result in streaming.items():
            assert_streamed_matches_materialized(
                result, reference, scenario, label=f"streamed {label}"
            )
        assert_streamed_matches_materialized(
            stream_scalar, scalar, scenario, label="streamed scalar"
        )


@st.composite
def sparse_scenarios(draw):
    """A small skewed-degree sparse cell for the backend differential.

    Hub-skewed circulants are where the CSR path earns its keep (one
    high-degree vertex widens every dense row); keeping them small keeps
    the harness fast while still exercising ragged edge segments.
    """
    num_hubs = draw(st.integers(0, 1))
    kwargs = {"num_hubs": num_hubs}
    if num_hubs:
        kwargs["hub_degree"] = draw(st.integers(4, 7))
    base = sparse_base_graph(draw(st.integers(8, 16)), **kwargs)
    num_layers = draw(st.integers(2, 3))
    graph = LayeredGraph(base, num_layers)
    params = draw(st.sampled_from(PARAMS_CHOICES))
    seed = draw(st.integers(0, 2**16))
    if draw(st.booleans()):
        delay_model = StaticDelayModel(params.d, params.u, seed=seed)
    else:
        delay_model = UniformDelayModel(params.d, params.u)
    if draw(st.booleans()):
        layer0 = JitteredLayer0(
            params.Lambda, base.num_nodes, params.kappa / 2.0, seed=seed
        )
    else:
        layer0 = PerfectLayer0(params.Lambda)
    clocks = uniform_random_rates(
        list(graph.nodes()), params.vartheta, rng_or_seed=seed + 1
    )
    fault_plan = None
    if draw(st.booleans()):
        rng = np.random.default_rng(seed + 2)
        node = (
            int(rng.integers(base.num_nodes)),
            int(rng.integers(num_layers)),
        )
        if rng.random() < 0.5:
            behavior = CrashFault()
        else:
            behavior = FixedOffsetFault(float(rng.uniform(0.05, 0.4)))
        fault_plan = FaultPlan.from_nodes({node: behavior})
    return {
        "graph": graph,
        "params": params,
        "delay_model": delay_model,
        "layer0": layer0,
        "clocks": clocks,
        "rates": {node: clock.rate for node, clock in clocks.items()},
        "fault_plan": fault_plan,
    }


class TestSparseBackendDifferential:
    """The CSR edge-segment kernel against the dense masked kernel.

    Both kernels evaluate ``min``/``max`` reductions over the same
    neighbor multiset in the same (sorted) order, so agreement is
    bitwise -- any drift means the segment bookkeeping gathered the
    wrong edges.
    """

    @FAMILY_SETTINGS
    @given(data=st.data())
    def test_csr_matches_dense(self, data):
        algorithm = data.draw(st.sampled_from(["full", "simplified"]))
        scenario = data.draw(sparse_scenarios())

        def sim(backend):
            return FastSimulation(
                scenario["graph"],
                scenario["params"],
                delay_model=scenario["delay_model"],
                clock_rates=scenario["rates"],
                fault_plan=scenario["fault_plan"],
                layer0=scenario["layer0"],
                algorithm=algorithm,
                neighbor_backend=backend,
            )

        dense = sim("dense").run(NUM_PULSES)
        csr = sim("csr").run(NUM_PULSES)
        assert_results_equal(csr, dense, exact=True, label="per-trial csr")

        want = TrialStack(
            [sim("dense"), sim("dense")], neighbor_backend="dense"
        ).run(NUM_PULSES)
        csr_stack = TrialStack(
            [sim("csr"), sim("csr")], neighbor_backend="csr"
        )
        got = csr_stack.run(NUM_PULSES)
        for index, (got_one, want_one) in enumerate(zip(got, want)):
            assert_results_equal(
                got_one, want_one, exact=True, label=f"stacked csr[{index}]"
            )
        stats = csr_stack.compaction_stats
        assert stats["neighbor_backend"] == "csr", stats
        assert stats["backend_fallback"] is None, stats


class TestKernelBackendDifferential:
    """The numba kernel backend against NumPy, bitwise.

    Both backends evaluate ``rate * (prev + delay)`` per neighbor and
    reduce with exact comparisons, so agreement is bitwise on every leg
    (dense, CSR, stacked, campaign, streamed).  The whole class skips
    when the optional numba extra is absent -- CI's numba job installs
    it and runs these legs against the real JIT.
    """

    pytestmark = pytest.mark.skipif(
        not numba_available(), reason="optional numba extra not installed"
    )

    def _sim(self, scenario, kernel_backend, **kwargs):
        return FastSimulation(
            scenario["graph"],
            scenario["params"],
            delay_model=scenario["delay_model"],
            clock_rates=scenario["rates"],
            fault_plan=scenario["fault_plan"],
            layer0=scenario["layer0"],
            kernel_backend=kernel_backend,
            **kwargs,
        )

    @FAMILY_SETTINGS
    @given(data=st.data())
    def test_numba_matches_numpy_bitwise(self, data):
        algorithm = data.draw(st.sampled_from(["full", "simplified"]))
        scenario = data.draw(scenarios())

        want = self._sim(
            scenario, "numpy", algorithm=algorithm
        ).run(NUM_PULSES)
        got = self._sim(
            scenario, "numba", algorithm=algorithm
        ).run(NUM_PULSES)
        assert_results_equal(got, want, exact=True, label="numba dense")

        got_csr = self._sim(
            scenario, "numba", algorithm=algorithm, neighbor_backend="csr"
        ).run(NUM_PULSES)
        assert_results_equal(got_csr, want, exact=True, label="numba csr")

        stack = TrialStack(
            [self._sim(scenario, "numba", algorithm=algorithm) for _ in range(2)],
            kernel_backend="numba",
        )
        stacked = stack.run(NUM_PULSES)[0]
        assert stack.compaction_stats["kernel_backend"] == "numba"
        assert_results_equal(
            stacked, want, exact=True, label="numba stacked"
        )

        streamed = self._sim(scenario, "numba", algorithm=algorithm).run(
            NUM_PULSES, reducers=_stream_reducers(), store_times=False
        )
        assert_streamed_matches_materialized(
            streamed, want, scenario, label="numba streamed"
        )

    @FAMILY_SETTINGS
    @given(data=st.data())
    def test_numba_matches_numpy_under_campaigns(self, data):
        scenario = data.draw(scenarios())
        campaign = data.draw(
            campaigns(
                scenario["graph"].base, scenario["graph"].num_layers
            )
        )

        def sim(kernel_backend):
            return FastSimulation(
                scenario["graph"],
                scenario["params"],
                delay_model=scenario["delay_model"],
                clock_rates=scenario["rates"],
                fault_plan=scenario["fault_plan"],
                layer0=scenario["layer0"],
                campaign=campaign,
                kernel_backend=kernel_backend,
            )

        want = sim("numpy").run(CAMPAIGN_PULSES)
        got = sim("numba").run(CAMPAIGN_PULSES)
        assert_results_equal(got, want, exact=True, label="numba campaign")


class TestBatchedFallbackDifferential:
    """The batched fault-adjacent replay against the scalar reference.

    Every scenario here carries at least one fault, so the vectorized
    path must route cells through ``_run_fallback_batch`` -- and the
    accounting proves it did (no silently-eligible examples).
    """

    @FAMILY_SETTINGS
    @given(data=st.data())
    def test_batched_fallback_matches_scalar(self, data):
        algorithm = data.draw(st.sampled_from(["full", "simplified"]))
        scenario = data.draw(scenarios())
        graph = scenario["graph"]
        # A fault on a non-terminal layer guarantees fault-adjacent
        # successors (a last-layer fault has none to contaminate).
        vertex = data.draw(st.integers(0, graph.base.num_nodes - 1))
        layer = data.draw(st.integers(0, graph.num_layers - 2))
        behavior = data.draw(
            st.sampled_from([FixedOffsetFault(0.2), CrashFault()])
        )
        scenario = dict(scenario)
        scenario["fault_plan"] = FaultPlan.from_nodes(
            {(vertex, layer): behavior}
        )
        vectorized = fast_simulation(scenario, algorithm).run(NUM_PULSES)
        scalar = fast_simulation(scenario, algorithm, vectorize=False).run(
            NUM_PULSES
        )
        assert vectorized.fallback_cells > 0
        assert vectorized.fallback_batches > 0
        assert scalar.fallback_cells == 0  # scalar path never batches
        assert_results_equal(
            vectorized, scalar, exact=False, label="batched fallback"
        )


class TestEngineDifferential:
    """The fast family against the event-driven ground truth."""

    def _engine_times(self, scenario):
        grid = GridSimulation(
            scenario["graph"],
            scenario["params"],
            delay_model=scenario["delay_model"],
            clocks=dict(scenario["clocks"]),
            fault_plan=scenario["fault_plan"],
            layer0=scenario["layer0"],
        )
        trace = grid.run(NUM_PULSES)
        return times_from_trace(trace, scenario["graph"], NUM_PULSES)

    @ENGINE_SETTINGS
    @given(scenario=scenarios())
    def test_engine_matches_fast_within_tolerance(self, scenario):
        fast = fast_simulation(scenario).run(NUM_PULSES)
        event = self._engine_times(scenario)
        np.testing.assert_array_equal(
            np.isnan(event), np.isnan(fast.times),
            err_msg="engine/fast disagree on which nodes pulsed",
        )
        np.testing.assert_allclose(
            event, fast.times, rtol=0.0, atol=1e-9, equal_nan=True
        )

    @ENGINE_SETTINGS
    @given(scenario=scenarios())
    def test_engine_matches_compacted_stack_within_tolerance(self, scenario):
        """Transitivity made explicit: engine vs the newest fast path."""
        depth = scenario["graph"].num_layers
        stack = TrialStack(
            [fast_simulation(scenario), _decoy(scenario, depth + 3, "full")],
            compact_depth=True,
        )
        stacked = stack.run(NUM_PULSES)[0]
        event = self._engine_times(scenario)
        np.testing.assert_array_equal(np.isnan(event), np.isnan(stacked.times))
        np.testing.assert_allclose(
            event, stacked.times, rtol=0.0, atol=1e-9, equal_nan=True
        )

    @ENGINE_SETTINGS
    @given(scenario=scenarios())
    def test_engine_matches_streamed_folds_within_tolerance(self, scenario):
        """Online folds vs array reducers on the engine's pulse times.

        The streamed run never sees a pulse-time block at all, so this
        closes the loop: accumulator output against statistics computed
        from the independent event-queue execution.
        """
        streamed = fast_simulation(scenario).run(
            NUM_PULSES, reducers=_stream_reducers(), store_times=False
        )
        event = self._engine_times(scenario)
        graph = scenario["graph"]
        row = streamed.streamed_row
        stats = streamed.streamed
        np.testing.assert_allclose(
            stats["local"].trial_values(row),
            local_skew_layers(event, graph),
            rtol=0.0, atol=1e-9, equal_nan=True,
            err_msg="engine vs streamed local skew",
        )
        np.testing.assert_allclose(
            stats["global"].trial_values(row, empty=np.nan),
            global_skew_layers(event, empty=np.nan),
            rtol=0.0, atol=1e-9, equal_nan=True,
            err_msg="engine vs streamed global skew",
        )


class TestCampaignDifferential:
    """Dynamic adjacency: the fast family under hypothesis-drawn churn."""

    @FAMILY_SETTINGS
    @given(data=st.data())
    def test_campaign_paths_agree(self, data):
        scenario = data.draw(scenarios())
        campaign = data.draw(
            campaigns(scenario["graph"].base, scenario["graph"].num_layers)
        )
        family = run_campaign_family(scenario, campaign)
        reference = family.pop("per_trial")
        scalar = family.pop("scalar")
        assert reference.churn_stats is not None
        assert reference.churn_stats["actions"] > 0
        for label, result in family.items():
            assert_results_equal(result, reference, exact=True, label=label)
            assert result.churn_stats == reference.churn_stats, label
        assert_results_equal(scalar, reference, exact=False, label="scalar")

        # The streamed twin folds the same planes the materialized run
        # stored, epoch swaps and all, over the seed edge layout.
        streamed = campaign_simulation(scenario, campaign).run(
            CAMPAIGN_PULSES, reducers=_stream_reducers(), store_times=False
        )
        assert_streamed_matches_materialized(
            streamed, reference, scenario, label="streamed campaign"
        )


class TestCampaignEngineDifferential:
    """Churn-era fast output vs per-epoch engine stitching at 1e-9.

    Lemma B.1's recurrence couples layers only within a pulse, so the
    dynamic run equals, pulse for pulse, a static run on that pulse's
    instantaneous graph: replay the engine once per campaign epoch
    (epoch graph + epoch fault plan, same delays/clocks/layer 0) and
    take rows ``[start, end)`` of each replay as the reference.
    """

    def _engine_times_stitched(self, scenario, campaign):
        schedule = campaign.compile(
            CAMPAIGN_PULSES, base_plan=scenario["fault_plan"]
        )
        graph = scenario["graph"]
        out = np.empty((CAMPAIGN_PULSES, graph.num_layers, graph.width))
        for epoch in schedule.epochs:
            grid = GridSimulation(
                epoch.graph,
                scenario["params"],
                delay_model=scenario["delay_model"],
                clocks=dict(scenario["clocks"]),
                fault_plan=epoch.fault_plan,
                layer0=scenario["layer0"],
            )
            trace = grid.run(CAMPAIGN_PULSES)
            times = times_from_trace(trace, epoch.graph, CAMPAIGN_PULSES)
            out[epoch.start : epoch.end] = times[epoch.start : epoch.end]
        return out

    @ENGINE_SETTINGS
    @given(data=st.data())
    def test_engine_matches_campaign_fast(self, data):
        scenario = data.draw(scenarios())
        campaign = data.draw(
            campaigns(scenario["graph"].base, scenario["graph"].num_layers)
        )
        fast = campaign_simulation(scenario, campaign).run(CAMPAIGN_PULSES)
        event = self._engine_times_stitched(scenario, campaign)
        np.testing.assert_array_equal(
            np.isnan(event), np.isnan(fast.times),
            err_msg="engine/fast disagree on which cells pulsed under churn",
        )
        np.testing.assert_allclose(
            event, fast.times, rtol=0.0, atol=1e-9, equal_nan=True
        )

    @ENGINE_SETTINGS
    @given(data=st.data())
    def test_engine_matches_campaign_compacted_stack(self, data):
        """Transitivity under churn: engine vs the stacked epoch path."""
        scenario = data.draw(scenarios())
        campaign = data.draw(
            campaigns(scenario["graph"].base, scenario["graph"].num_layers)
        )
        depth = scenario["graph"].num_layers
        stacked = TrialStack(
            [
                campaign_simulation(scenario, campaign),
                _decoy(scenario, depth + 3, "full"),
            ],
            compact_depth=True,
        ).run(CAMPAIGN_PULSES)[0]
        event = self._engine_times_stitched(scenario, campaign)
        np.testing.assert_array_equal(np.isnan(event), np.isnan(stacked.times))
        np.testing.assert_allclose(
            event, stacked.times, rtol=0.0, atol=1e-9, equal_nan=True
        )


def test_deterministic_campaign_smoke():
    """One fixed churn cell through every path plus the stitched engine."""
    params = PARAMS_CHOICES[0]
    base = cycle_graph(6)
    graph = LayeredGraph(base, 3)
    clocks = uniform_random_rates(
        list(graph.nodes()), params.vartheta, rng_or_seed=21
    )
    scenario = {
        "graph": graph,
        "params": params,
        "delay_model": StaticDelayModel(params.d, params.u, seed=20),
        "layer0": AlternatingLayer0(params.Lambda, params.kappa),
        "clocks": clocks,
        "rates": {node: clock.rate for node, clock in clocks.items()},
        "fault_plan": FaultPlan.from_nodes({(4, 2): FixedOffsetFault(0.2)}),
    }
    campaign = ChaosCampaign(
        base,
        graph.num_layers,
        events=[
            NodeLeave(pulse=1, vertex=2),
            NodeJoin(pulse=3, vertex=2),
            EdgeFlap(pulse=2, edge=(4, 5)),
            NodeCrash(pulse=1, node=(0, 1)),
            NodeRecover(pulse=4, node=(0, 1)),
            RegionalOutage(pulse=3, center=0, radius=1, duration=1),
        ],
    )
    family = run_campaign_family(scenario, campaign)
    reference = family.pop("per_trial")
    scalar = family.pop("scalar")
    for label, result in family.items():
        assert_results_equal(result, reference, exact=True, label=label)
    assert_results_equal(scalar, reference, exact=False, label="scalar")
    event = TestCampaignEngineDifferential()._engine_times_stitched(
        scenario, campaign
    )
    np.testing.assert_array_equal(np.isnan(event), np.isnan(reference.times))
    np.testing.assert_allclose(
        event, reference.times, rtol=0.0, atol=1e-9, equal_nan=True
    )
    # The campaign run restores the seed state: the quiet tail after the
    # last event is bitwise identical to the plain static run's pulses.
    static = fast_simulation(scenario).run(CAMPAIGN_PULSES)
    np.testing.assert_array_equal(
        reference.times[4:], static.times[4:],
        err_msg="restored-seed pulses differ from the static run",
    )


def test_deterministic_scenario_smoke():
    """One fixed cell through every path (fails loudly without hypothesis)."""
    params = PARAMS_CHOICES[0]
    base = replicated_line(4)
    graph = LayeredGraph(base, 4)
    scenario = {
        "graph": graph,
        "params": params,
        "delay_model": StaticDelayModel(params.d, params.u, seed=11),
        "layer0": JitteredLayer0(
            params.Lambda, base.num_nodes, params.kappa / 2.0, seed=11
        ),
        "clocks": uniform_random_rates(
            list(graph.nodes()), params.vartheta, rng_or_seed=12
        ),
        "rates": None,
        "fault_plan": FaultPlan.from_nodes({(2, 1): CrashFault()}),
    }
    scenario["rates"] = {
        node: clock.rate for node, clock in scenario["clocks"].items()
    }
    family = run_fast_family(scenario)
    reference = family.pop("per_trial")
    scalar = family.pop("scalar")
    for label, result in family.items():
        assert_results_equal(result, reference, exact=True, label=label)
    assert_results_equal(scalar, reference, exact=False, label="scalar")
    event = times_from_trace(
        GridSimulation(
            graph,
            params,
            delay_model=scenario["delay_model"],
            clocks=dict(scenario["clocks"]),
            fault_plan=scenario["fault_plan"],
            layer0=scenario["layer0"],
        ).run(NUM_PULSES),
        graph,
        NUM_PULSES,
    )
    np.testing.assert_array_equal(np.isnan(event), np.isnan(reference.times))
    np.testing.assert_allclose(
        event, reference.times, rtol=0.0, atol=1e-9, equal_nan=True
    )
    # Downstream reducers see identical values through every path too.
    assert family["compacted_stack_deep_mate"].max_local_skew() == (
        pytest.approx(reference.max_local_skew(), abs=0.0)
    )
    # And the streamed twins fold the same statistics without the block.
    streaming = run_streaming_family(scenario)
    stream_scalar = streaming.pop("scalar")
    for label, result in streaming.items():
        assert_streamed_matches_materialized(
            result, reference, scenario, label=f"streamed {label}"
        )
    assert_streamed_matches_materialized(
        stream_scalar, scalar, scenario, label="streamed scalar"
    )
    # Streamed skew accessors on the result object serve from the folds.
    assert streaming["per_trial"].max_local_skew() == (
        pytest.approx(reference.max_local_skew(), abs=0.0)
    )


def test_campaign_permanent_leave_frees_lanes():
    """A vertex absent for the whole remaining horizon frees its lane.

    ``NodeLeave(vertex=5)`` below never rejoins, so from its pulse
    onward the campaign trial's rows run one lane narrower; the decoy
    mate is narrower *and* shallower, so depth and width compaction both
    engage.  Freeing the lane is bit-exact because a permanently absent
    vertex is degree-0 and statically ineligible -- the padded run only
    ever writes padding values into that column.
    """
    params = Parameters(d=1.0, u=0.05, vartheta=1.01, Lambda=2.5)
    base = cycle_graph(8)
    campaign = ChaosCampaign(
        base,
        3,
        [
            NodeLeave(pulse=1, vertex=5),
            NodeCrash(pulse=2, node=(1, 1)),
            NodeRecover(pulse=4, node=(1, 1)),
        ],
    )
    graph = LayeredGraph(base, 3)
    clocks = uniform_random_rates(
        list(graph.nodes()), params.vartheta, rng_or_seed=3
    )
    rates = {node: clock.rate for node, clock in clocks.items()}

    def sims():
        trial = FastSimulation(
            graph,
            params,
            delay_model=StaticDelayModel(params.d, params.u, seed=4),
            clock_rates=rates,
            layer0=PerfectLayer0(params.Lambda),
            campaign=campaign,
        )
        decoy = FastSimulation(
            LayeredGraph(cycle_graph(5), 2),
            params,
            delay_model=StaticDelayModel(params.d, params.u, seed=8),
            layer0=PerfectLayer0(params.Lambda),
        )
        return [trial, decoy]

    want = TrialStack(sims(), compact_width=False).run(CAMPAIGN_PULSES + 1)
    stack = TrialStack(sims(), compact_width=True)
    got = stack.run(CAMPAIGN_PULSES + 1)
    for index, (got_one, want_one) in enumerate(zip(got, want)):
        assert_results_equal(
            got_one, want_one, exact=True, label=f"campaign lanes[{index}]"
        )
    stats = stack.compaction_stats
    assert "width" in stats["axes"], stats
    assert stats["active_lane_steps"] < stats["padded_lane_steps"], stats
