"""Tests for repro.engine: scheduler, processes, network, traces."""

import pytest

from repro.clocks import AffineClock
from repro.delays import UniformDelayModel
from repro.engine import Process, Simulator, Trace
from repro.engine.network import Network


class TestSimulator:
    def test_events_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(3.0, lambda: log.append(3))
        sim.schedule_at(1.0, lambda: log.append(1))
        sim.schedule_at(2.0, lambda: log.append(2))
        sim.run_until_idle()
        assert log == [1, 2, 3]

    def test_ties_broken_by_schedule_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(1.0, lambda: log.append("a"))
        sim.schedule_at(1.0, lambda: log.append("b"))
        sim.run_until_idle()
        assert log == ["a", "b"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_schedule_after(self):
        sim = Simulator()
        log = []
        sim.schedule_at(2.0, lambda: sim.schedule_after(3.0, lambda: log.append(sim.now)))
        sim.run_until_idle()
        assert log == [5.0]

    def test_schedule_after_rejects_negative(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_after(-1.0, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        log = []
        handle = sim.schedule_at(1.0, lambda: log.append("fired"))
        handle.cancel()
        sim.run_until_idle()
        assert log == []

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        log = []
        sim.schedule_at(1.0, lambda: log.append(1))
        sim.schedule_at(5.0, lambda: log.append(5))
        sim.run_until(3.0)
        assert log == [1]
        assert sim.now == 3.0
        sim.run_until(10.0)
        assert log == [1, 5]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def chain(depth):
            log.append(depth)
            if depth < 3:
                sim.schedule_after(1.0, lambda: chain(depth + 1))

        sim.schedule_at(0.0, lambda: chain(0))
        sim.run_until_idle()
        assert log == [0, 1, 2, 3]

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule_after(0.0, forever)

        sim.schedule_at(0.0, forever)
        with pytest.raises(RuntimeError, match="runaway"):
            sim.run_until_idle(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 5

    def test_determinism(self):
        def run():
            sim = Simulator()
            log = []
            for i in range(50):
                sim.schedule_at((i * 7) % 13 * 1.0, lambda i=i: log.append(i))
            sim.run_until_idle()
            return log

        assert run() == run()


class _Recorder(Process):
    def __init__(self, sim, address, clock):
        super().__init__(sim, address, clock)
        self.messages = []
        self.timers = []

    def on_message(self, message):
        self.messages.append((self.sim.now, message.sender, message.payload))

    def on_timer(self, name):
        self.timers.append((self.sim.now, name))


class TestProcess:
    def test_local_now_uses_clock(self):
        sim = Simulator()
        p = _Recorder(sim, "a", AffineClock(rate=2.0, offset=1.0))
        sim.schedule_at(3.0, lambda: None)
        sim.run_until_idle()
        assert p.local_now() == pytest.approx(7.0)

    def test_timer_fires_at_local_time(self):
        sim = Simulator()
        p = _Recorder(sim, "a", AffineClock(rate=2.0))
        p.set_timer_local("t", 10.0)  # local 10 = real 5
        sim.run_until_idle()
        assert p.timers == [(5.0, "t")]

    def test_timer_rearm_replaces(self):
        sim = Simulator()
        p = _Recorder(sim, "a", AffineClock())
        p.set_timer_local("t", 5.0)
        p.set_timer_local("t", 2.0)
        sim.run_until_idle()
        assert p.timers == [(2.0, "t")]

    def test_timer_cancel(self):
        sim = Simulator()
        p = _Recorder(sim, "a", AffineClock())
        p.set_timer_local("t", 1.0)
        p.cancel_timer("t")
        sim.run_until_idle()
        assert p.timers == []

    def test_timer_in_past_fires_immediately(self):
        sim = Simulator()
        p = _Recorder(sim, "a", AffineClock())
        sim.schedule_at(5.0, lambda: p.set_timer_local("t", 1.0))
        sim.run_until_idle()
        assert p.timers == [(5.0, "t")]

    def test_has_timer(self):
        sim = Simulator()
        p = _Recorder(sim, "a", AffineClock())
        assert not p.has_timer("t")
        p.set_timer_local("t", 1.0)
        assert p.has_timer("t")
        sim.run_until_idle()
        assert not p.has_timer("t")


class TestNetwork:
    def _build(self, d=1.0, u=0.0):
        sim = Simulator()
        net = Network(sim, UniformDelayModel(d=d, u=u))
        a = _Recorder(sim, "a", AffineClock())
        b = _Recorder(sim, "b", AffineClock())
        net.register(a)
        net.register(b)
        return sim, net, a, b

    def test_delivery_after_delay(self):
        sim, net, a, b = self._build(d=1.0, u=0.0)
        net.send("a", "b", payload="hello")
        sim.run_until_idle()
        assert b.messages == [(1.0, "a", "hello")]

    def test_delay_override(self):
        sim, net, a, b = self._build()
        net.send("a", "b", payload="x", delay_override=0.25)
        sim.run_until_idle()
        assert b.messages[0][0] == 0.25

    def test_unknown_receiver_dropped(self):
        sim, net, a, b = self._build()
        net.send("a", "nope", payload="x")
        sim.run_until_idle()  # no exception, nothing delivered
        assert not a.messages and not b.messages

    def test_duplicate_registration_rejected(self):
        sim, net, a, b = self._build()
        with pytest.raises(ValueError):
            net.register(_Recorder(sim, "a", AffineClock()))

    def test_inject_at(self):
        sim, net, a, b = self._build()
        net.inject_at("b", payload="spurious", sender="ghost", time=2.5)
        sim.run_until_idle()
        assert b.messages == [(2.5, "ghost", "spurious")]

    def test_inject_unknown_target_rejected(self):
        sim, net, a, b = self._build()
        with pytest.raises(ValueError):
            net.inject_at("nope", "x", "ghost", 1.0)

    def test_messages_sent_counter(self):
        sim, net, a, b = self._build()
        net.send("a", "b")
        net.send("b", "a")
        assert net.messages_sent == 2


class TestTrace:
    def test_record_and_lookup(self):
        t = Trace()
        t.record_pulse((0, 1), 0, 2.5)
        t.record_pulse((0, 1), 1, 4.5)
        assert t.pulse_time((0, 1), 0) == 2.5
        assert t.pulse_time((0, 1), 1) == 4.5
        assert t.pulse_time((0, 1), 2) is None
        assert t.pulse_time((9, 9), 0) is None

    def test_records_order(self):
        t = Trace()
        t.record_pulse((0, 0), 0, 1.0)
        t.record_pulse((1, 0), 0, 0.5)
        assert [r.node for r in t.records] == [(0, 0), (1, 0)]
        assert len(t) == 2

    def test_pulses_of_and_counts(self):
        t = Trace()
        for k in range(3):
            t.record_pulse((2, 1), k, float(k))
        assert t.pulses_of((2, 1)) == {0: 0.0, 1: 1.0, 2: 2.0}
        assert t.num_pulses((2, 1)) == 3
        assert t.num_pulses((0, 0)) == 0

    def test_pulse_count_range(self):
        t = Trace()
        assert t.pulse_count_range() == (0, 0)
        t.record_pulse((0, 0), 0, 1.0)
        t.record_pulse((1, 0), 0, 1.0)
        t.record_pulse((1, 0), 1, 2.0)
        assert t.pulse_count_range() == (1, 2)

    def test_layer_pulse_times(self):
        t = Trace()
        t.record_pulse((0, 2), 0, 1.0)
        t.record_pulse((2, 2), 0, 1.5)
        assert t.layer_pulse_times(2, 0, width=3) == [1.0, None, 1.5]

    def test_nodes_sorted(self):
        t = Trace()
        t.record_pulse((3, 1), 0, 1.0)
        t.record_pulse((0, 0), 0, 1.0)
        t.record_pulse((1, 1), 0, 1.0)
        assert t.nodes() == [(0, 0), (1, 1), (3, 1)]
