"""Tests for the vectorized simplified (Algorithm 1) path.

Algorithm 1 waits for every message unconditionally, so the fault-free
case is a fixed gather -- a pure array op with no do-until replay.  These
tests pin the promises of the simplified kernel, mirroring the full-path
coverage of ``tests/test_fast_batch.py``:

* per-trial vectorized results are bit-identical to the scalar replay
  (fault-free, fault-adjacent fallback, oscillation workloads);
* the trial-stacked ``(S, W)`` branch is bit-identical to both;
* ``BatchRunner``/``TrialStack`` accept simplified trials (no ``None``
  stack key) and group them separately from full-algorithm trials.
"""

import numpy as np

from repro.core.correction import CorrectionPolicy
from repro.core.fast import BRANCH_CODES, FastSimulation
from repro.core.fast_batch import TrialStack, stack_compatibility
from repro.core.layer0 import AlternatingLayer0
from repro.delays.models import AdversarialSplitDelays
from repro.experiments.batch import BatchRunner, BatchTrial, _stack_key
from repro.experiments.common import standard_config
from repro.experiments.fig5_jump import run_fig5
from repro.experiments.thm13_random_faults import mixed_behavior_factory
from repro.faults import AdversarialLateFault, CrashFault, FaultPlan
from repro.params import Parameters
from repro.topology import LayeredGraph, cycle_graph

NUM_PULSES = 3

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)


def simplified_trials(seeds=(0, 1, 2, 3), diameter=6, fault_plan_factory=None):
    """Seed sweep running Algorithm 1 semantics per trial."""
    trials = BatchRunner.seed_sweep(
        diameter,
        seeds,
        num_pulses=NUM_PULSES,
        fault_plan_factory=fault_plan_factory,
    )
    for trial in trials:
        trial.algorithm = "simplified"
    return trials


def random_fault_plans(config):
    return FaultPlan.random(
        config.graph,
        probability=0.08,
        rng_or_seed=config.rng(salt=99),
        behavior_factory=mixed_behavior_factory,
    )


def reference_results(trials, vectorize=True):
    return [
        trial.simulation(vectorize=vectorize).run(NUM_PULSES)
        for trial in trials
    ]


def assert_results_identical(results, references):
    """Bit-identical FastResult comparison, matrix by matrix."""
    assert len(results) == len(references)
    for got, want in zip(results, references):
        for attr in (
            "times",
            "protocol_times",
            "corrections",
            "effective_corrections",
        ):
            np.testing.assert_array_equal(
                getattr(got, attr), getattr(want, attr), err_msg=attr
            )
        np.testing.assert_array_equal(got.branches, want.branches)
        assert got.fault_sends == want.fault_sends


class TestVectorizedSimplified:
    """Per-trial vectorized Algorithm 1 vs the scalar replay."""

    def test_fault_free_bit_identical_to_scalar(self):
        trials = simplified_trials()
        vectorized = reference_results(trials, vectorize=True)
        scalar = reference_results(trials, vectorize=False)
        assert_results_identical(vectorized, scalar)

    def test_fault_free_uses_correction_branches_everywhere(self):
        (trial,) = simplified_trials(seeds=(0,))
        result = trial.simulation().run(NUM_PULSES)
        upper = result.branches[:, 1:, :]
        assert np.isin(
            upper,
            [BRANCH_CODES["mid"], BRANCH_CODES["low"], BRANCH_CODES["high"]],
        ).all()
        assert not np.isnan(result.times).any()

    def test_fault_adjacent_cells_fall_back_to_scalar(self):
        """A late Byzantine predecessor drives the exact scalar fallback."""
        config = standard_config(5, num_pulses=NUM_PULSES)
        plan = FaultPlan.from_nodes({(2, 1): AdversarialLateFault(30.0)})
        trials = [
            BatchTrial(config=config, fault_plan=plan, algorithm="simplified"),
        ]
        assert_results_identical(
            reference_results(trials, vectorize=True),
            reference_results(trials, vectorize=False),
        )

    def test_crashed_predecessor_deadlocks_identically(self):
        """Algorithm 1 deadlocks downstream of a crash on both paths."""
        config = standard_config(5, num_pulses=NUM_PULSES)
        plan = FaultPlan.from_nodes({(1, 2): CrashFault()})
        trials = [
            BatchTrial(config=config, fault_plan=plan, algorithm="simplified"),
        ]
        vectorized = reference_results(trials, vectorize=True)
        assert_results_identical(
            vectorized, reference_results(trials, vectorize=False)
        )
        # The crash starves its successors of messages they wait on forever.
        assert np.isnan(vectorized[0].times[:, 3:, 1]).all()

    def test_oscillation_workload_bit_identical(self):
        """The Figure 5 setup: zigzag layer 0, adversarial parity delays."""

        def build(vectorize):
            base = cycle_graph(16)
            graph = LayeredGraph(base, 16)
            layer0 = AlternatingLayer0(PARAMS.Lambda, 4.0 * PARAMS.kappa)
            delays = AdversarialSplitDelays(
                PARAMS.d, PARAMS.u, lambda edge: edge[0][0] % 2 == 0
            )
            return FastSimulation(
                graph,
                PARAMS,
                delay_model=delays,
                layer0=layer0,
                policy=CorrectionPolicy(jump_slack=-1.0),
                algorithm="simplified",
                vectorize=vectorize,
            ).run(2)

        vec, scalar = build(True), build(False)
        np.testing.assert_array_equal(vec.times, scalar.times)
        np.testing.assert_array_equal(vec.corrections, scalar.corrections)

    def test_fig5_driver_matches_scalar(self):
        fast = run_fig5(diameter=8, num_pulses=2, vectorize=True)
        slow = run_fig5(diameter=8, num_pulses=2, vectorize=False)
        assert fast.amplitude_with_jc == slow.amplitude_with_jc
        assert fast.amplitude_without_jc == slow.amplitude_without_jc


class TestStackedSimplified:
    """The (S, W) simplified branch of TrialStack."""

    def test_fault_free_stack_matches_per_trial_and_scalar(self):
        trials = simplified_trials(seeds=(0, 1, 2, 3, 4))
        sims = [t.simulation() for t in trials]
        assert stack_compatibility(sims) is None
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_identical(stacked, reference_results(trials))
        assert_results_identical(
            stacked, reference_results(trials, vectorize=False)
        )

    def test_mixed_fault_plans_match_scalar_reference(self):
        trials = simplified_trials(fault_plan_factory=random_fault_plans)
        stacked = TrialStack([t.simulation() for t in trials]).run(NUM_PULSES)
        assert_results_identical(
            stacked, reference_results(trials, vectorize=False)
        )

    def test_batch_runner_stacks_simplified_groups(self):
        """Simplified trials get a real stack key and group together."""
        trials = simplified_trials(seeds=(0, 1, 2))
        keys = {_stack_key(t) for t in trials}
        assert len(keys) == 1
        assert None not in keys
        full_key = _stack_key(BatchTrial(config=trials[0].config))
        assert full_key not in keys
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        for i, reference in enumerate(reference_results(trials)):
            np.testing.assert_array_equal(batch.times[i], reference.times)

    def test_heterogeneous_batch_with_both_algorithms(self):
        config = standard_config(5, num_pulses=NUM_PULSES)
        plan = FaultPlan.from_nodes({(2, 2): CrashFault()})
        trials = [
            BatchTrial(config=config, algorithm="simplified", label="s-a"),
            BatchTrial(config=config, label="full"),
            BatchTrial(
                config=config,
                fault_plan=plan,
                algorithm="simplified",
                label="s-faulty",
            ),
            BatchTrial(config=config, algorithm="simplified", label="s-b"),
        ]
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        for i, reference in enumerate(reference_results(trials)):
            np.testing.assert_array_equal(
                batch.times[i], reference.times, err_msg=f"trial {i}"
            )
            np.testing.assert_array_equal(
                batch.corrections[i], reference.corrections, err_msg=f"trial {i}"
            )
