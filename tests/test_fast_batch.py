"""Tests for repro.core.fast_batch: the trial-stacked (S, W) kernel.

The stacked kernel promises bit-identical results to the per-trial
vectorized kernel (same NumPy expressions, extra leading axis) and
1e-9-close results to the scalar reference; these tests pin both over
random rates, random delays, mixed fault plans, non-pulse-invariant
delay models, callable rate providers, and heterogeneous batches that
must fall back group by group.
"""

import pickle

import numpy as np
import pytest

from repro.core.correction import CorrectionPolicy
from repro.core.fast import BRANCH_CODES
from repro.core.fast_batch import TrialStack, stack_compatibility
from repro.delays.models import VaryingDelayModel
from repro.experiments.batch import (
    BatchRunner,
    BatchTrial,
    CONFIG_RATES,
)
from repro.experiments.common import standard_config
from repro.experiments.thm13_random_faults import mixed_behavior_factory
from repro.faults import AdversarialLateFault, CrashFault, FaultPlan

NUM_PULSES = 3


def random_fault_trials(seeds=(0, 1, 2, 3), diameter=6, probability=0.08):
    """Seed sweep where each trial carries its own random mixed fault plan."""

    def plans(config):
        return FaultPlan.random(
            config.graph,
            probability=probability,
            rng_or_seed=config.rng(salt=99),
            behavior_factory=mixed_behavior_factory,
        )

    return BatchRunner.seed_sweep(
        diameter, seeds, num_pulses=NUM_PULSES, fault_plan_factory=plans
    )


def reference_results(trials, vectorize=True):
    """The one-simulation-at-a-time reference for a trial list."""
    return [
        trial.simulation(vectorize=vectorize).run(NUM_PULSES)
        for trial in trials
    ]


def assert_results_equal(results, references, exact=True):
    """Compare per-trial FastResults matrix by matrix (and fault sends)."""
    assert len(results) == len(references)
    for got, want in zip(results, references):
        for attr in (
            "times",
            "protocol_times",
            "corrections",
            "effective_corrections",
        ):
            got_arr = getattr(got, attr)
            want_arr = getattr(want, attr)
            if exact:
                np.testing.assert_array_equal(got_arr, want_arr, err_msg=attr)
            else:
                np.testing.assert_allclose(
                    got_arr,
                    want_arr,
                    rtol=0.0,
                    atol=1e-9,
                    equal_nan=True,
                    err_msg=attr,
                )
        np.testing.assert_array_equal(got.branches, want.branches)
        assert got.fault_sends == want.fault_sends


class TestStackedEquivalence:
    """TrialStack must reproduce the per-trial kernels exactly."""

    def test_fault_free_random_rates_and_delays(self):
        trials = BatchRunner.seed_sweep(6, range(5), num_pulses=NUM_PULSES)
        sims = [t.simulation() for t in trials]
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_equal(stacked, reference_results(trials))

    def test_mixed_fault_plans_match_per_trial_vectorized(self):
        trials = random_fault_trials()
        sims = [t.simulation() for t in trials]
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_equal(stacked, reference_results(trials))

    def test_mixed_fault_plans_match_scalar_reference(self):
        trials = random_fault_trials()
        sims = [t.simulation() for t in trials]
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_equal(
            stacked, reference_results(trials, vectorize=False), exact=False
        )

    def test_via_max_fallback_cells(self):
        """A very late own-copy predecessor drives the via-H_max branch."""
        config = standard_config(5, num_pulses=NUM_PULSES)
        plan = FaultPlan.from_nodes({(2, 1): AdversarialLateFault(30.0)})
        trials = [
            BatchTrial(config=config, fault_plan=plan, label="late"),
            BatchTrial(config=config, label="clean"),
        ]
        sims = [t.simulation() for t in trials]
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_equal(stacked, reference_results(trials))
        assert (stacked[0].branches == BRANCH_CODES["via_max"]).any()

    def test_missing_message_fallback_cells(self):
        """Crashed predecessors exercise the missing-message regime."""
        config = standard_config(5, num_pulses=NUM_PULSES)
        plan = FaultPlan.from_nodes({(1, 2): CrashFault()})
        trials = [BatchTrial(config=config, fault_plan=plan)]
        sims = [t.simulation() for t in trials]
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_equal(stacked, reference_results(trials))

    def test_varying_delays_and_callable_rates(self):
        """Non-pulse-invariant delays and per-pulse rate callables stack."""
        config = standard_config(5, num_pulses=NUM_PULSES)
        params = config.params

        def drifty(node, pulse):
            v, layer = node
            return 1.0 + (params.vartheta - 1.0) * (
                ((v * 7 + layer * 3 + pulse) % 5) / 5.0
            )

        trials = [
            BatchTrial(
                config=config,
                delay_model=VaryingDelayModel(
                    params.d, params.u, max_step=params.u / 4.0, seed=seed
                ),
                clock_rates=drifty,
                label=f"vary-{seed}",
            )
            for seed in range(3)
        ]
        sims = [t.simulation() for t in trials]
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_equal(stacked, reference_results(trials))


class TestStackCompatibility:
    def test_compatible_batch_reports_none(self):
        trials = BatchRunner.seed_sweep(4, (0, 1), num_pulses=NUM_PULSES)
        assert stack_compatibility([t.simulation() for t in trials]) is None

    def test_simplified_algorithm_accepted(self):
        config = standard_config(4, num_pulses=NUM_PULSES)
        sims = [
            BatchTrial(config=config, algorithm="simplified").simulation()
            for _ in range(2)
        ]
        assert stack_compatibility(sims) is None

    def test_mixed_algorithms_rejected(self):
        config = standard_config(4, num_pulses=NUM_PULSES)
        sims = [
            BatchTrial(config=config).simulation(),
            BatchTrial(config=config, algorithm="simplified").simulation(),
        ]
        assert "algorithm" in stack_compatibility(sims)
        with pytest.raises(ValueError, match="cannot be stacked"):
            TrialStack(sims)

    def test_scalar_forced_rejected(self):
        config = standard_config(4, num_pulses=NUM_PULSES)
        sims = [BatchTrial(config=config).simulation(vectorize=False)]
        assert "vectorize=False" in stack_compatibility(sims)

    def test_mismatched_params_stack_bit_identically(self):
        # Parameters used to split stacks; they now broadcast as (S, 1)
        # per-trial columns through the shared kernel.
        a = standard_config(4, num_pulses=NUM_PULSES)
        b = standard_config(
            4, num_pulses=NUM_PULSES, params=a.params.with_lambda(3.0)
        )
        trials = [BatchTrial(config=c) for c in (a, b)]
        sims = [t.simulation() for t in trials]
        assert stack_compatibility(sims) is None
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_equal(stacked, reference_results(trials))

    def test_mismatched_jump_slack_stacks_bit_identically(self):
        # jump_slack is numeric (a (S, 1) column in the kernel); only the
        # structural discretize/stick_to_median switches split stacks.
        config = standard_config(4, num_pulses=NUM_PULSES)
        trials = [
            BatchTrial(config=config),
            BatchTrial(config=config, policy=CorrectionPolicy(jump_slack=0.0)),
        ]
        sims = [t.simulation() for t in trials]
        assert stack_compatibility(sims) is None
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_equal(stacked, reference_results(trials))

    def test_mismatched_policy_structure_rejected(self):
        config = standard_config(4, num_pulses=NUM_PULSES)
        sims = [
            BatchTrial(config=config).simulation(),
            BatchTrial(
                config=config, policy=CorrectionPolicy(discretize=False)
            ).simulation(),
        ]
        assert "policy structure" in stack_compatibility(sims)
        with pytest.raises(ValueError, match="cannot be stacked"):
            TrialStack(sims)

    def test_mismatched_layers_stack_bit_identically(self):
        # Depth differences pad with inert layers instead of splitting.
        a = standard_config(4, num_pulses=NUM_PULSES)
        b = standard_config(4, num_layers=3, num_pulses=NUM_PULSES)
        trials = [BatchTrial(config=c) for c in (a, b)]
        sims = [t.simulation() for t in trials]
        assert stack_compatibility(sims) is None
        stacked = TrialStack(sims).run(NUM_PULSES)
        assert_results_equal(stacked, reference_results(trials))


class TestHeterogeneousBatches:
    """BatchRunner must stack what it can and fall back for the rest."""

    def test_mixed_algorithms_policies_and_faults(self):
        config = standard_config(5, num_pulses=NUM_PULSES)
        other_policy = CorrectionPolicy(discretize=False)
        plan = FaultPlan.from_nodes({(2, 2): CrashFault()})
        trials = [
            BatchTrial(config=config, label="full-a"),
            BatchTrial(config=config, algorithm="simplified", label="simpl"),
            BatchTrial(config=config, policy=other_policy, label="policy"),
            BatchTrial(config=config, fault_plan=plan, label="faulty"),
            BatchTrial(config=config, label="full-b"),
        ]
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        references = reference_results(trials)
        for i, reference in enumerate(references):
            np.testing.assert_array_equal(batch.times[i], reference.times)
            np.testing.assert_array_equal(
                batch.corrections[i], reference.corrections, err_msg=f"trial {i}"
            )

    def test_stack_disabled_matches_stacked(self):
        trials = random_fault_trials(seeds=(0, 1))
        stacked = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        looped = BatchRunner(num_pulses=NUM_PULSES, stack=False).run(trials)
        np.testing.assert_array_equal(stacked.times, looped.times)
        np.testing.assert_array_equal(
            stacked.effective_corrections, looped.effective_corrections
        )


class TestProcessExecutor:
    """Same seeds => same BatchResult, regardless of the shard count."""

    def test_determinism_across_shard_counts(self):
        trials = random_fault_trials(seeds=(0, 1, 2, 3, 4))
        serial = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        for shards in (2, 3):
            sharded = BatchRunner(
                num_pulses=NUM_PULSES, executor="process", shards=shards
            ).run(trials)
            np.testing.assert_array_equal(sharded.times, serial.times)
            np.testing.assert_array_equal(
                sharded.corrections, serial.corrections
            )
            np.testing.assert_array_equal(
                sharded.faulty_masks, serial.faulty_masks
            )
            for got, want in zip(sharded.results, serial.results):
                assert got.fault_sends == want.fault_sends

    def test_single_shard_short_circuits(self):
        trials = BatchRunner.seed_sweep(4, (0, 1), num_pulses=NUM_PULSES)
        batch = BatchRunner(
            num_pulses=NUM_PULSES, executor="process", shards=1
        ).run(trials)
        reference = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        np.testing.assert_array_equal(batch.times, reference.times)

    def test_executor_validation(self):
        with pytest.raises(ValueError, match="unknown executor"):
            BatchRunner(executor="threads")
        with pytest.raises(ValueError, match="shards"):
            BatchRunner(executor="process", shards=0)


class TestTrialPickling:
    """BatchTrial specs must survive the trip into worker processes."""

    def test_config_rates_sentinel_identity(self):
        trial = BatchTrial(config=standard_config(4, num_pulses=NUM_PULSES))
        clone = pickle.loads(pickle.dumps(trial))
        assert clone.clock_rates is CONFIG_RATES

    def test_pickled_trial_reproduces_results(self):
        trials = random_fault_trials(seeds=(0,))
        clone = pickle.loads(pickle.dumps(trials[0]))
        original = trials[0].simulation().run(NUM_PULSES)
        replayed = clone.simulation().run(NUM_PULSES)
        np.testing.assert_array_equal(replayed.times, original.times)

    def test_explicit_rates_override_survives(self):
        trial = BatchTrial(
            config=standard_config(4, num_pulses=NUM_PULSES), clock_rates=None
        )
        clone = pickle.loads(pickle.dumps(trial))
        assert clone.clock_rates is None
