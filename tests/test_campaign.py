"""Chaos-campaign unit tests and churn edge cases.

The differential harness (``tests/test_differential.py``) pins campaign
runs against the event engine and across the fast family; this module
covers the campaign layer itself -- event validation, epoch compilation,
merging, accounting -- and the churn corners called out in the issue:

* a vertex *rejoining* while its trial's rows are compaction-silenced in
  a stacked run (the epoch rewrite must respect the active-row schedule),
* an edge flapping *within a single pulse window* (a one-pulse epoch,
  with every other pulse bitwise untouched), and
* a campaign whose final epoch *restores the seed topology* (the quiet
  tail must be bit-identical to the plain static run).
"""

import pickle

import numpy as np
import pytest

from repro.clocks import uniform_random_rates
from repro.core.fast import FastSimulation
from repro.core.fast_batch import TrialStack
from repro.core.layer0 import JitteredLayer0, PerfectLayer0
from repro.delays.models import StaticDelayModel
from repro.faults.campaign import (
    CampaignSchedule,
    ChaosCampaign,
    EdgeDown,
    EdgeFlap,
    EdgeUp,
    NodeCrash,
    NodeJoin,
    NodeLeave,
    NodeRecover,
    RegionalOutage,
)
from repro.faults.injection import FaultPlan
from repro.faults.model import CrashFault, FixedOffsetFault
from repro.params import Parameters
from repro.topology.base_graph import cycle_graph, replicated_line
from repro.topology.layered import LayeredGraph

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)


def make_sim(base, num_layers, campaign=None, seed=0, fault_plan=None,
             vectorize=True, layer0=None):
    graph = LayeredGraph(base, num_layers)
    clocks = uniform_random_rates(
        list(graph.nodes()), PARAMS.vartheta, rng_or_seed=seed
    )
    return FastSimulation(
        graph,
        PARAMS,
        delay_model=StaticDelayModel(PARAMS.d, PARAMS.u, seed=seed + 1),
        clock_rates={node: clock.rate for node, clock in clocks.items()},
        fault_plan=fault_plan,
        layer0=layer0 or PerfectLayer0(PARAMS.Lambda),
        campaign=campaign,
        vectorize=vectorize,
    )


class TestEventValidation:
    def test_negative_pulse_rejected(self):
        with pytest.raises(ValueError, match="pulse"):
            NodeLeave(pulse=-1, vertex=0)

    def test_non_seed_edge_rejected(self):
        base = cycle_graph(5)
        with pytest.raises(ValueError, match="not a seed edge"):
            ChaosCampaign(base, 2, [EdgeDown(pulse=0, edge=(0, 2))])

    def test_vertex_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            ChaosCampaign(cycle_graph(4), 2, [NodeLeave(pulse=0, vertex=4)])

    def test_grid_node_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="grid"):
            ChaosCampaign(
                cycle_graph(4), 2, [NodeCrash(pulse=0, node=(0, 2))]
            )

    def test_flap_needs_positive_duration(self):
        with pytest.raises(ValueError, match="down_pulses"):
            EdgeFlap(pulse=0, edge=(0, 1), down_pulses=0)

    def test_outage_kind_checked(self):
        with pytest.raises(ValueError, match="kind"):
            RegionalOutage(pulse=0, center=0, kind="explode")


class TestCompilation:
    def test_quiet_campaign_is_one_seed_epoch(self):
        campaign = ChaosCampaign(cycle_graph(4), 2)
        schedule = campaign.compile(6)
        assert len(schedule) == 1
        epoch = schedule.epochs[0]
        assert (epoch.start, epoch.end) == (0, 6)
        assert epoch.state_key == campaign.seed_state_key
        assert schedule.last_event_pulse is None
        assert schedule.summary()["actions"] == 0

    def test_epochs_tile_the_horizon(self):
        base = cycle_graph(6)
        campaign = ChaosCampaign(
            base, 3,
            [NodeLeave(pulse=1, vertex=0), NodeJoin(pulse=3, vertex=0),
             EdgeFlap(pulse=4, edge=(2, 3))],
        )
        schedule = campaign.compile(7)
        spans = [(e.start, e.end) for e in schedule.epochs]
        assert spans[0][0] == 0 and spans[-1][1] == 7
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start
        for pulse in range(7):
            epoch = schedule.epoch_at(pulse)
            assert epoch.start <= pulse < epoch.end

    def test_cancelling_actions_extend_the_epoch(self):
        base = cycle_graph(5)
        # Down and straight back up in the same pulse: no state change.
        campaign = ChaosCampaign(
            base, 2,
            [EdgeDown(pulse=2, edge=(0, 1)), EdgeUp(pulse=2, edge=(0, 1))],
        )
        schedule = campaign.compile(4)
        assert len(schedule) == 1
        # ...but the actions still count and stamp last_event_pulse.
        assert schedule.num_actions == 2
        assert schedule.last_event_pulse == 2

    def test_repeated_state_shares_graph_object(self):
        base = cycle_graph(6)
        campaign = ChaosCampaign(
            base, 2,
            [EdgeFlap(pulse=1, edge=(0, 1)), EdgeFlap(pulse=3, edge=(0, 1))],
        )
        schedule = campaign.compile(6)
        down = [e for e in schedule.epochs if e.down_edges]
        assert len(down) == 2
        assert down[0].graph is down[1].graph
        assert down[0].state_key == down[1].state_key

    def test_absent_vertex_crashes_every_layer(self):
        campaign = ChaosCampaign(cycle_graph(4), 3, [NodeLeave(pulse=0, vertex=2)])
        epoch = campaign.compile(2).epochs[0]
        for layer in range(3):
            assert isinstance(epoch.fault_plan.behavior((2, layer)), CrashFault)
        assert not any(epoch.graph.base.neighbors(2))

    def test_base_plan_merges_and_campaign_shadows(self):
        base = cycle_graph(4)
        static = FaultPlan.from_nodes({(0, 1): FixedOffsetFault(0.1)})
        campaign = ChaosCampaign(
            base, 2, [NodeCrash(pulse=0, node=(0, 1))]
        )
        epoch = campaign.compile(1, base_plan=static).epochs[0]
        assert isinstance(epoch.fault_plan.behavior((0, 1)), CrashFault)

    def test_outage_hits_the_seed_ball(self):
        base = replicated_line(6)
        campaign = ChaosCampaign(
            base, 3,
            [RegionalOutage(pulse=1, center=3, radius=1, duration=2)],
        )
        epoch = campaign.compile(3).epoch_at(1)
        region = base.ball(3, 1)
        for v in region:
            assert isinstance(epoch.fault_plan.behavior((v, 1)), CrashFault)
            # Layer 0 is the clock source: outages never crash it.
            assert epoch.fault_plan.behavior((v, 0)) is None
        assert campaign.compile(4).epoch_at(3).state_key == campaign.seed_state_key

    def test_epoch_index_bounds_checked(self):
        schedule = ChaosCampaign(cycle_graph(4), 2).compile(3)
        with pytest.raises(IndexError):
            schedule.epoch_index(3)
        with pytest.raises(IndexError):
            schedule.epoch_index(-1)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError, match="at least one epoch"):
            CampaignSchedule([], 0, None)

    def test_campaign_pickles(self):
        campaign = ChaosCampaign.random(
            cycle_graph(6), 3, churn_pulses=4, rng_or_seed=7
        )
        clone = pickle.loads(pickle.dumps(campaign))
        assert clone.events == campaign.events
        a = clone.compile(6).summary()
        b = campaign.compile(6).summary()
        assert a == b

    def test_random_campaign_restores_by_window_end(self):
        for seed in range(6):
            campaign = ChaosCampaign.random(
                cycle_graph(8), 4, churn_pulses=5, rng_or_seed=seed,
                event_rate=1.0,
            )
            schedule = campaign.compile(8)
            assert schedule.epochs[-1].state_key == campaign.seed_state_key
            assert schedule.epochs[-1].end == 8


class TestChurnEdgeCases:
    """The issue's three named corners, each pinned bitwise."""

    def test_rejoin_while_row_compaction_silenced(self):
        """A vertex rejoins inside a compacted stack's silenced rows.

        The campaign trial is much shallower than its stack mate, so
        depth compaction silences its upper rows on every pulse; the
        epoch rewrite at the join boundary must edit only the trial's
        live rows and leave the compaction schedule intact.
        """
        base = cycle_graph(6)
        campaign = ChaosCampaign(
            base, 2,
            [NodeLeave(pulse=1, vertex=3), NodeJoin(pulse=3, vertex=3)],
        )
        solo = make_sim(base, 2, campaign=campaign, seed=5).run(5)
        deep_mate = make_sim(cycle_graph(8), 6, seed=6)
        stack = TrialStack(
            [make_sim(base, 2, campaign=campaign, seed=5), deep_mate],
            compact_depth=True,
        )
        stacked, _ = stack.run(5)
        assert stack.compaction_stats["enabled"]
        np.testing.assert_array_equal(stacked.times, solo.times)
        np.testing.assert_array_equal(stacked.corrections, solo.corrections)
        # The rejoined column is NaN while absent and live again after.
        assert np.isnan(solo.times[1:3, 1:, 3]).all()
        assert np.isfinite(solo.times[3:, :, 3]).all()

    def test_edge_flap_within_single_pulse_window(self):
        """A one-pulse flap perturbs exactly its own pulse, nothing else.

        Lemma B.1: no cross-pulse coupling, so the down-pulse is the
        only row allowed to differ from the static run -- and it must
        differ, or the flap never engaged the kernel at all.
        """
        base = replicated_line(4)
        campaign = ChaosCampaign(
            base, 3, [EdgeFlap(pulse=2, edge=(0, 4), down_pulses=1)]
        )
        schedule = campaign.compile(5)
        flapped = [e for e in schedule.epochs if e.down_edges]
        assert len(flapped) == 1
        assert (flapped[0].start, flapped[0].end) == (2, 3)

        # A jittered layer 0 keeps the dropped predecessor pivotal in the
        # fold; under PerfectLayer0 the flap can be output-invisible.
        layer0 = JitteredLayer0(
            PARAMS.Lambda, base.num_nodes, PARAMS.kappa / 2, seed=2
        )
        churn = make_sim(base, 3, campaign=campaign, seed=0,
                         layer0=layer0).run(5)
        static = make_sim(base, 3, seed=0, layer0=layer0).run(5)
        np.testing.assert_array_equal(churn.times[:2], static.times[:2])
        np.testing.assert_array_equal(churn.times[3:], static.times[3:])
        assert not np.array_equal(churn.times[2], static.times[2])

    def test_final_epoch_restores_seed_bitwise(self):
        """After the last disruption reverts, pulses == the static run.

        Stronger than 'recovers eventually': the restored epoch reuses
        the seed topology's gather structures, so its pulses must be
        *bit-identical* to a run that never churned, on every path.
        """
        base = cycle_graph(7)
        campaign = ChaosCampaign.random(
            base, 3, churn_pulses=4, rng_or_seed=11, event_rate=1.0
        )
        assert campaign.events  # the sampler actually drew churn
        schedule = campaign.compile(7)
        assert schedule.epochs[-1].state_key == campaign.seed_state_key
        tail = schedule.epochs[-1].start

        static = make_sim(base, 3, seed=4).run(7)
        for label, sim in (
            ("vectorized", make_sim(base, 3, campaign=campaign, seed=4)),
            ("scalar", make_sim(base, 3, campaign=campaign, seed=4,
                                vectorize=False)),
        ):
            churn = sim.run(7)
            np.testing.assert_array_equal(
                churn.times[tail:], static.times[tail:],
                err_msg=f"{label}: restored tail differs from static",
            )
            assert not np.array_equal(churn.times[:tail], static.times[:tail])

        stacked, _ = TrialStack(
            [make_sim(base, 3, campaign=campaign, seed=4),
             make_sim(base, 3, seed=4)],
        ).run(7)
        np.testing.assert_array_equal(stacked.times[tail:], static.times[tail:])


class TestResultAccounting:
    def test_churn_stats_ride_on_the_result(self):
        base = cycle_graph(5)
        campaign = ChaosCampaign(
            base, 2, [EdgeFlap(pulse=1, edge=(0, 1), down_pulses=2)]
        )
        result = make_sim(base, 2, campaign=campaign).run(5)
        assert result.campaign is campaign
        stats = result.churn_stats
        assert stats["actions"] == 2
        assert stats["last_event_pulse"] == 3
        assert stats["epochs"] == 3
        assert stats["max_down_edges"] == 1

    def test_static_run_has_no_churn_stats(self):
        result = make_sim(cycle_graph(5), 2).run(3)
        assert result.campaign is None
        assert result.churn_stats is None

    def test_sim_state_restored_after_campaign_run(self):
        """Back-to-back runs of one sim see the same seed state."""
        base = cycle_graph(6)
        campaign = ChaosCampaign(
            base, 2, [NodeLeave(pulse=1, vertex=0)]  # never rejoins
        )
        sim = make_sim(base, 2, campaign=campaign, seed=3)
        first = sim.run(4)
        assert sim.graph.base is base
        assert sim.fault_plan.behavior((0, 0)) is None
        second = sim.run(4)
        np.testing.assert_array_equal(first.times, second.times)
