"""Tests for repro.clocks: hardware clock models and drift samplers."""

import pytest
from hypothesis import given, strategies as st

from repro.clocks import (
    AffineClock,
    PiecewiseRateClock,
    constant_rates,
    slowly_varying_clock,
    uniform_random_rates,
)


class TestAffineClock:
    def test_identity_default(self):
        c = AffineClock()
        assert c.local_time(5.0) == 5.0
        assert c.real_time(5.0) == 5.0

    def test_rate_and_offset(self):
        c = AffineClock(rate=2.0, offset=1.0)
        assert c.local_time(3.0) == 7.0
        assert c.real_time(7.0) == 3.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            AffineClock(rate=0.0)

    def test_rate_bounds(self):
        assert AffineClock(rate=1.5).rate_bounds() == (1.5, 1.5)

    def test_elapsed_local(self):
        c = AffineClock(rate=1.25, offset=3.0)
        assert c.elapsed_local(2.0, 6.0) == pytest.approx(5.0)

    @given(
        rate=st.floats(min_value=0.5, max_value=3.0),
        offset=st.floats(min_value=-10, max_value=10),
        t=st.floats(min_value=0, max_value=1e6),
    )
    def test_inverse_roundtrip(self, rate, offset, t):
        c = AffineClock(rate=rate, offset=offset)
        assert c.real_time(c.local_time(t)) == pytest.approx(t, abs=1e-6)


class TestPiecewiseRateClock:
    def test_single_segment_matches_affine(self):
        c = PiecewiseRateClock([0.0], [1.5], offset=2.0)
        a = AffineClock(rate=1.5, offset=2.0)
        for t in (0.0, 1.0, 7.5):
            assert c.local_time(t) == pytest.approx(a.local_time(t))

    def test_two_segments(self):
        c = PiecewiseRateClock([0.0, 10.0], [1.0, 2.0])
        assert c.local_time(10.0) == pytest.approx(10.0)
        assert c.local_time(15.0) == pytest.approx(20.0)

    def test_inverse_roundtrip_across_segments(self):
        c = PiecewiseRateClock([0.0, 5.0, 12.0], [1.0, 1.5, 1.2])
        for t in (0.0, 3.0, 5.0, 8.0, 12.0, 20.0):
            assert c.real_time(c.local_time(t)) == pytest.approx(t)

    def test_monotone(self):
        c = PiecewiseRateClock([0.0, 1.0, 2.0], [1.0, 1.3, 1.1])
        times = [c.local_time(0.1 * i) for i in range(50)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_rate_bounds(self):
        c = PiecewiseRateClock([0.0, 1.0], [1.0, 1.4])
        assert c.rate_bounds() == (1.0, 1.4)

    def test_rejects_bad_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseRateClock([1.0], [1.0])  # must start at 0
        with pytest.raises(ValueError):
            PiecewiseRateClock([0.0, 0.0], [1.0, 1.0])  # not increasing
        with pytest.raises(ValueError):
            PiecewiseRateClock([0.0], [0.0])  # nonpositive rate
        with pytest.raises(ValueError):
            PiecewiseRateClock([0.0, 1.0], [1.0])  # length mismatch

    def test_rejects_negative_queries(self):
        c = PiecewiseRateClock([0.0], [1.0], offset=1.0)
        with pytest.raises(ValueError):
            c.local_time(-1.0)
        with pytest.raises(ValueError):
            c.real_time(0.5)


class TestDriftSamplers:
    def test_constant_rates(self):
        clocks = constant_rates(["a", "b"], rate=1.2)
        assert clocks["a"].rate == 1.2
        assert clocks["b"].rate == 1.2

    def test_uniform_random_rates_within_bounds(self):
        clocks = uniform_random_rates(range(100), vartheta=1.01, rng_or_seed=3)
        for clock in clocks.values():
            assert 1.0 <= clock.rate <= 1.01
            assert clock.offset == 0.0

    def test_uniform_random_rates_deterministic(self):
        a = uniform_random_rates(range(10), 1.01, rng_or_seed=5)
        b = uniform_random_rates(range(10), 1.01, rng_or_seed=5)
        assert all(a[i].rate == b[i].rate for i in range(10))

    def test_uniform_random_rates_offsets(self):
        clocks = uniform_random_rates(
            range(50), 1.01, rng_or_seed=1, offset_span=3.0
        )
        offsets = [c.offset for c in clocks.values()]
        assert all(0.0 <= o <= 3.0 for o in offsets)
        assert max(offsets) > 0.0

    def test_uniform_random_rejects_bad_vartheta(self):
        with pytest.raises(ValueError):
            uniform_random_rates(range(3), 0.9)

    def test_slowly_varying_clock_bounds(self):
        c = slowly_varying_clock(
            vartheta=1.01,
            horizon=100.0,
            segment_duration=5.0,
            max_step_fraction=0.1,
            rng_or_seed=2,
        )
        low, high = c.rate_bounds()
        assert 1.0 <= low <= high <= 1.01

    def test_slowly_varying_clock_step_bound(self):
        c = slowly_varying_clock(
            vartheta=1.1,
            horizon=50.0,
            segment_duration=1.0,
            max_step_fraction=0.05,
            rng_or_seed=4,
        )
        rates = c._rates
        max_step = 0.05 * 0.1
        for r1, r2 in zip(rates, rates[1:]):
            assert abs(r2 - r1) <= max_step + 1e-12

    def test_slowly_varying_rejects_bad_args(self):
        with pytest.raises(ValueError):
            slowly_varying_clock(0.9, 10.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            slowly_varying_clock(1.01, 0.0, 1.0, 0.1)
