"""Tests for repro.faults: behaviours, plans, and locality classification."""
import pytest

from repro.faults import (
    AdversarialEarlyFault,
    AdversarialLateFault,
    ByzantineRandomFault,
    CrashFault,
    FaultContext,
    FaultPlan,
    FixedOffsetFault,
    MutableFault,
    PerSuccessorOffsetFault,
    SilentFromFault,
    distance_delta_k_faulty,
    max_k_faulty_over_layer,
)
from repro.topology import LayeredGraph, cycle_graph, replicated_line

CTX = FaultContext(node=(2, 3), pulse=1, correct_time=10.0, kappa=0.02)
SUCC = (2, 4)


class TestBehaviors:
    def test_crash_is_silent(self):
        assert CrashFault().send_time(CTX, SUCC) is None
        assert CrashFault().is_static()

    def test_silent_from(self):
        f = SilentFromFault(start_pulse=2)
        before = FaultContext((0, 1), 1, 5.0, 0.02)
        after = FaultContext((0, 1), 2, 5.0, 0.02)
        assert f.send_time(before, SUCC) == 5.0
        assert f.send_time(after, SUCC) is None

    def test_silent_from_rejects_negative(self):
        with pytest.raises(ValueError):
            SilentFromFault(-1)

    def test_fixed_offset(self):
        assert FixedOffsetFault(0.5).send_time(CTX, SUCC) == pytest.approx(10.5)
        assert FixedOffsetFault(-0.5).send_time(CTX, SUCC) == pytest.approx(9.5)
        assert FixedOffsetFault(0.5).is_static()

    def test_per_successor_offsets(self):
        f = PerSuccessorOffsetFault({SUCC: 0.3, (3, 4): None})
        assert f.send_time(CTX, SUCC) == pytest.approx(10.3)
        assert f.send_time(CTX, (3, 4)) is None
        assert f.send_time(CTX, (1, 4)) == pytest.approx(10.0)  # default 0

    def test_adversarial_early_late(self):
        early = AdversarialEarlyFault(5.0)
        late = AdversarialLateFault(5.0)
        assert early.send_time(CTX, SUCC) == pytest.approx(10.0 - 0.1)
        assert late.send_time(CTX, SUCC) == pytest.approx(10.0 + 0.1)

    def test_adversarial_rejects_negative(self):
        with pytest.raises(ValueError):
            AdversarialEarlyFault(-1.0)
        with pytest.raises(ValueError):
            AdversarialLateFault(-1.0)

    def test_byzantine_random_bounded_and_deterministic(self):
        f = ByzantineRandomFault(span=0.5, seed=7)
        t1 = f.send_time(CTX, SUCC)
        t2 = f.send_time(CTX, SUCC)
        assert t1 == t2  # deterministic per (node, successor, pulse)
        assert abs(t1 - 10.0) <= 0.5
        other_pulse = FaultContext((2, 3), 2, 10.0, 0.02)
        assert f.send_time(other_pulse, SUCC) != t1

    def test_byzantine_not_static(self):
        assert not ByzantineRandomFault(0.1).is_static()

    def test_mutable_phases(self):
        f = MutableFault([(0, CrashFault()), (3, FixedOffsetFault(1.0))])
        early = FaultContext((0, 1), 2, 5.0, 0.02)
        late = FaultContext((0, 1), 3, 5.0, 0.02)
        assert f.send_time(early, SUCC) is None
        assert f.send_time(late, SUCC) == pytest.approx(6.0)

    def test_mutable_changes_at(self):
        f = MutableFault([(0, CrashFault()), (3, FixedOffsetFault(1.0))])
        assert f.changes_at(3)
        assert not f.changes_at(2)
        assert not f.changes_at(0)

    def test_mutable_validation(self):
        with pytest.raises(ValueError):
            MutableFault([])
        with pytest.raises(ValueError):
            MutableFault([(1, CrashFault())])  # must start at 0
        with pytest.raises(ValueError):
            MutableFault([(0, CrashFault()), (0, CrashFault())])


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan.none()
        assert len(plan) == 0
        assert not plan.is_faulty((0, 0))
        assert plan.behavior((0, 0)) is None

    def test_from_nodes(self):
        plan = FaultPlan.from_nodes({(1, 2): CrashFault()})
        assert plan.is_faulty((1, 2))
        assert isinstance(plan.behavior((1, 2)), CrashFault)
        assert plan.faulty_nodes() == [(1, 2)]

    def test_with_fault(self):
        plan = FaultPlan.none().with_fault((0, 1), CrashFault())
        assert plan.is_faulty((0, 1))
        assert len(FaultPlan.none()) == 0  # original untouched

    def test_faults_in_layer(self):
        plan = FaultPlan.from_nodes(
            {(0, 1): CrashFault(), (3, 1): CrashFault(), (0, 2): CrashFault()}
        )
        assert plan.faults_in_layer(1) == [(0, 1), (3, 1)]

    def test_one_locality_holds_for_spread_faults(self):
        graph = LayeredGraph(replicated_line(6), 5)
        plan = FaultPlan.from_nodes(
            {(0, 1): CrashFault(), (4, 1): CrashFault(), (0, 3): CrashFault()}
        )
        assert plan.is_one_local(graph)

    def test_one_locality_violated_by_adjacent_faults(self):
        graph = LayeredGraph(replicated_line(6), 5)
        plan = FaultPlan.from_nodes(
            {(2, 1): CrashFault(), (3, 1): CrashFault()}
        )
        assert not plan.is_one_local(graph)
        violations = plan.one_locality_violations(graph)
        assert violations
        # The reported neighborhood contains both faults.
        _, hits = violations[0]
        assert set(hits) == {(2, 1), (3, 1)}

    def test_same_column_different_layers_is_one_local(self):
        graph = LayeredGraph(replicated_line(6), 5)
        plan = FaultPlan.from_nodes(
            {(2, 1): CrashFault(), (2, 2): CrashFault()}
        )
        assert plan.is_one_local(graph)

    def test_random_protects_layer0(self):
        graph = LayeredGraph(replicated_line(6), 6)
        plan = FaultPlan.random(graph, probability=0.3, rng_or_seed=0)
        assert not plan.faults_in_layer(0)

    def test_random_can_include_layer0(self):
        graph = LayeredGraph(replicated_line(6), 6)
        plan = FaultPlan.random(
            graph, probability=0.5, rng_or_seed=0, protect_layer0=False
        )
        assert plan.faults_in_layer(0)

    def test_random_deterministic(self):
        graph = LayeredGraph(replicated_line(6), 6)
        a = FaultPlan.random(graph, 0.1, rng_or_seed=4)
        b = FaultPlan.random(graph, 0.1, rng_or_seed=4)
        assert a.faulty_nodes() == b.faulty_nodes()

    def test_random_enforce_one_local(self):
        graph = LayeredGraph(replicated_line(8), 8)
        plan = FaultPlan.random(
            graph, 0.05, rng_or_seed=1, enforce_one_local=True
        )
        assert plan.is_one_local(graph)

    def test_random_enforce_gives_up_when_too_dense(self):
        graph = LayeredGraph(replicated_line(6), 6)
        with pytest.raises(RuntimeError):
            FaultPlan.random(
                graph, 0.9, rng_or_seed=0, enforce_one_local=True,
                max_resamples=5,
            )

    def test_random_rejects_bad_probability(self):
        graph = LayeredGraph(replicated_line(6), 6)
        with pytest.raises(ValueError):
            FaultPlan.random(graph, 1.5)

    def test_column_stack_positions(self):
        graph = LayeredGraph(replicated_line(6), 10)
        plan = FaultPlan.column_stack(
            graph, 3, base_vertex=2, first_layer=1, layer_spacing=2,
            behavior_factory=lambda node: CrashFault(),
        )
        assert plan.faulty_nodes() == [(2, 1), (2, 3), (2, 5)]

    def test_column_stack_rejects_overflow(self):
        graph = LayeredGraph(replicated_line(6), 4)
        with pytest.raises(ValueError):
            FaultPlan.column_stack(
                graph, 5, 2, 1, 2, lambda node: CrashFault()
            )

    def test_column_stack_rejects_layer0(self):
        graph = LayeredGraph(replicated_line(6), 4)
        with pytest.raises(ValueError):
            FaultPlan.column_stack(graph, 1, 2, 0, 1, lambda n: CrashFault())

    def test_count_behavior_changes(self):
        plan = FaultPlan.from_nodes(
            {
                (0, 1): MutableFault(
                    [(0, CrashFault()), (2, FixedOffsetFault(1.0))]
                ),
                (4, 2): CrashFault(),
            }
        )
        assert plan.count_behavior_changes(2) == 1
        assert plan.count_behavior_changes(1) == 0


class TestLocality:
    def test_no_faults_is_zero_faulty(self):
        graph = LayeredGraph(cycle_graph(8), 8)
        plan = FaultPlan.none()
        assert distance_delta_k_faulty(graph, plan, (0, 7), delta=2) == 0

    def test_single_nearby_fault_is_one_faulty(self):
        graph = LayeredGraph(cycle_graph(8), 8)
        plan = FaultPlan.from_nodes({(0, 6): CrashFault()})
        assert distance_delta_k_faulty(graph, plan, (0, 7), delta=2) == 1

    def test_distant_fault_does_not_count(self):
        graph = LayeredGraph(cycle_graph(16), 16)
        plan = FaultPlan.from_nodes({(8, 1): CrashFault()})
        # (0, 15): the fault is 14 layers up but 8 hops away in H, so it is
        # an ancestor; with delta = 1 and k = 1 the window (k+1)*delta = 2
        # misses it only if distance > 2.  Use a node whose ancestry at
        # small distance excludes the fault.
        assert distance_delta_k_faulty(graph, plan, (0, 3), delta=1) == 0

    def test_matches_definition_brute_force(self):
        graph = LayeredGraph(cycle_graph(8), 10)
        plan = FaultPlan.from_nodes(
            {(0, 5): CrashFault(), (3, 7): CrashFault(), (6, 2): CrashFault()}
        )
        node = (1, 9)
        delta = 2
        k = distance_delta_k_faulty(graph, plan, node, delta)
        # Definition 4.33: k minimal with <= k faults among the
        # distance-((k+1)*delta) ancestors.
        for candidate in range(k + 1):
            ancestors = graph.ancestors_within(node, (candidate + 1) * delta)
            count = sum(1 for a in ancestors if plan.is_faulty(a))
            if candidate < k:
                assert count > candidate
            else:
                assert count <= candidate

    def test_max_over_layer(self):
        graph = LayeredGraph(cycle_graph(8), 8)
        plan = FaultPlan.from_nodes({(0, 6): CrashFault()})
        assert max_k_faulty_over_layer(graph, plan, 7, delta=2) >= 1

    def test_rejects_bad_delta(self):
        graph = LayeredGraph(cycle_graph(8), 8)
        with pytest.raises(ValueError):
            distance_delta_k_faulty(graph, FaultPlan.none(), (0, 1), delta=0)
