"""Tests for repro.core.correction: the correction value C_{v,l}."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.correction import (
    CorrectionPolicy,
    compute_correction,
    raw_delta,
)

KAPPA = 0.02
VT = 1.001


def brute_force_delta(h_own, h_min, h_max, kappa, s_max=1000):
    """Literal min over s in N of the Algorithm 1 expression."""
    best = math.inf
    for s in range(s_max):
        value = max(
            h_own - h_max + 4 * s * kappa, h_own - h_min - 4 * s * kappa
        )
        best = min(best, value)
    return best - kappa / 2.0


class TestRawDelta:
    def test_all_equal_receptions(self):
        # h_own = h_min = h_max: delta = -kappa/2 (s = 0 is optimal).
        assert raw_delta(1.0, 1.0, 1.0, KAPPA) == pytest.approx(-KAPPA / 2)

    def test_own_late(self):
        delta = raw_delta(1.5, 1.0, 1.0, KAPPA)
        assert delta == pytest.approx(0.5 - KAPPA / 2)

    def test_own_early(self):
        delta = raw_delta(0.5, 1.0, 1.0, KAPPA)
        assert delta == pytest.approx(-0.5 - KAPPA / 2)

    def test_infinite_h_max(self):
        assert raw_delta(1.0, 0.5, math.inf, KAPPA) == -math.inf

    def test_kappa_zero(self):
        assert raw_delta(1.2, 1.0, 1.1, 0.0) == pytest.approx(0.2)

    def test_rejects_unordered(self):
        with pytest.raises(ValueError):
            raw_delta(1.0, 2.0, 1.0, KAPPA)

    def test_rejects_infinite_own(self):
        with pytest.raises(ValueError):
            raw_delta(math.inf, 1.0, 2.0, KAPPA)

    def test_rejects_negative_kappa(self):
        with pytest.raises(ValueError):
            raw_delta(1.0, 1.0, 1.0, -0.1)

    @given(
        h_own=st.floats(min_value=-5, max_value=5),
        h_min=st.floats(min_value=-5, max_value=5),
        spread=st.floats(min_value=0, max_value=3),
        kappa=st.floats(min_value=1e-4, max_value=0.5),
    )
    def test_closed_form_matches_brute_force(self, h_own, h_min, spread, kappa):
        h_max = h_min + spread
        expected = brute_force_delta(h_own, h_min, h_max, kappa, s_max=5000)
        got = raw_delta(h_own, h_min, h_max, kappa)
        assert got == pytest.approx(expected, abs=1e-9)


class TestComputeCorrection:
    def test_mid_branch(self):
        # Own moderately late: delta in [0, vt*kappa] -> C = delta.
        h_own = 1.0 + KAPPA  # delta = kappa - kappa/2 = kappa/2
        r = compute_correction(h_own, 1.0, 1.0, KAPPA, VT)
        assert r.branch == "mid"
        assert r.correction == pytest.approx(KAPPA / 2)

    def test_low_branch_clamps_to_zero_when_aligned(self):
        r = compute_correction(1.0, 1.0, 1.0, KAPPA, VT)
        assert r.branch == "low"
        assert r.correction == 0.0

    def test_low_branch_negative_jump(self):
        # Own far earlier than all neighbors: C goes negative (wait).
        r = compute_correction(0.0, 1.0, 1.0, KAPPA, VT)
        assert r.branch == "low"
        assert r.correction == pytest.approx(-1.0 + 1.5 * KAPPA)

    def test_high_branch_large_jump(self):
        # Own far later than all neighbors: C exceeds vt*kappa (catch up).
        r = compute_correction(2.0, 1.0, 1.0, KAPPA, VT)
        assert r.branch == "high"
        assert r.correction == pytest.approx(1.0 - 1.5 * KAPPA)

    def test_high_branch_clamps_to_vt_kappa(self):
        # Own just past the range: jump target below vt*kappa -> clamp.
        h_own = 1.0 + 2.2 * KAPPA
        r = compute_correction(h_own, 1.0, 1.0, KAPPA, VT)
        assert r.branch == "high"
        assert r.correction >= VT * KAPPA - 1e-12

    def test_infinite_h_max_goes_low(self):
        r = compute_correction(1.0, 0.9, math.inf, KAPPA, VT)
        assert r.branch == "low"
        # C = min(h_own - h_min + 3k/2, 0) = 0 since own is later.
        assert r.correction == 0.0

    def test_infinite_h_max_with_early_own(self):
        r = compute_correction(0.0, 1.0, math.inf, KAPPA, VT)
        assert r.correction == pytest.approx(-1.0 + 1.5 * KAPPA)

    def test_pulse_time_sticks_to_median(self):
        # Whatever the inputs, h_own - C stays within ~2k of the median
        # reception (Lemmas 4.27/4.28's engine).  Median of three values.
        cases = [
            (0.0, 1.0, 1.2),  # own earliest
            (1.1, 1.0, 1.2),  # own in the middle
            (3.0, 1.0, 1.2),  # own latest
        ]
        for h_own, h_min, h_max in cases:
            r = compute_correction(h_own, h_min, h_max, KAPPA, VT)
            median = sorted([h_own, h_min, h_max])[1]
            anchor = h_own - r.correction
            assert abs(anchor - median) <= 2 * KAPPA + 1e-12

    def test_stick_to_median_disabled_clamps(self):
        policy = CorrectionPolicy(stick_to_median=False)
        low = compute_correction(0.0, 1.0, 1.0, KAPPA, VT, policy)
        high = compute_correction(2.0, 1.0, 1.0, KAPPA, VT, policy)
        assert low.correction == 0.0
        assert high.correction == pytest.approx(VT * KAPPA)

    def test_continuous_policy_midpoint(self):
        policy = CorrectionPolicy(discretize=False)
        r = compute_correction(1.0 + KAPPA, 1.0, 1.0 + KAPPA, KAPPA, VT, policy)
        expected = (1.0 + KAPPA) - (2.0 + KAPPA) / 2.0 - KAPPA / 2.0
        assert r.delta == pytest.approx(expected)

    def test_jump_slack_shifts_targets(self):
        damped = compute_correction(0.0, 1.0, 1.0, KAPPA, VT)
        neutral = compute_correction(
            0.0, 1.0, 1.0, KAPPA, VT, CorrectionPolicy(jump_slack=0.0)
        )
        overshoot = compute_correction(
            0.0, 1.0, 1.0, KAPPA, VT, CorrectionPolicy(jump_slack=-1.0)
        )
        # Less slack -> more negative correction -> later pulse.
        assert damped.correction > neutral.correction > overshoot.correction
        assert damped.correction - neutral.correction == pytest.approx(KAPPA)

    @given(
        h_own=st.floats(min_value=-3, max_value=3),
        h_min=st.floats(min_value=-3, max_value=3),
        spread=st.floats(min_value=0, max_value=2),
    )
    def test_branches_partition_delta_range(self, h_own, h_min, spread):
        r = compute_correction(h_own, h_min, h_min + spread, KAPPA, VT)
        if r.branch == "mid":
            assert 0.0 <= r.delta <= VT * KAPPA
            assert r.correction == r.delta
        elif r.branch == "low":
            assert r.delta < 0.0
            assert r.correction <= 0.0
        else:
            assert r.delta > VT * KAPPA
            assert r.correction >= VT * KAPPA - 1e-12

    @given(
        h_own=st.floats(min_value=-3, max_value=3),
        h_min=st.floats(min_value=-3, max_value=3),
        spread=st.floats(min_value=0, max_value=2),
    )
    def test_median_anchor_property(self, h_own, h_min, spread):
        """Property: the pulse anchor h_own - C never strays more than
        2*kappa from the median reception time (fault containment)."""
        h_max = h_min + spread
        r = compute_correction(h_own, h_min, h_max, KAPPA, VT)
        median = sorted([h_own, h_min, h_max])[1]
        assert abs((h_own - r.correction) - median) <= 2 * KAPPA + 1e-9
