"""Tests for the experiment drivers: every paper artifact reproduces.

Each driver runs at reduced scale here; the benchmark harness runs the
paper-scale versions.  These tests pin the *qualitative* claims -- who
wins, what grows, what stays bounded -- so a regression in any subsystem
surfaces as a failed paper claim.
"""

from repro.experiments.ablations import (
    run_discretization_ablation,
    run_median_ablation,
)
from repro.experiments.common import standard_config
from repro.experiments.cor15_variation import run_cor15
from repro.experiments.fig1_trix_hex import run_fig1
from repro.experiments.fig23_structure import run_structure
from repro.experiments.fig5_jump import run_fig5
from repro.experiments.lemA1_layer0 import run_lemA1
from repro.experiments.potential_decay import run_potential_decay
from repro.experiments.table1 import run_table1
from repro.experiments.thm11_local_skew import run_thm11
from repro.experiments.thm12_worstcase_faults import run_thm12
from repro.experiments.thm13_random_faults import run_thm13
from repro.experiments.thm14_static_faults import run_thm14
from repro.experiments.thm16_selfstab import run_thm16


class TestCommon:
    def test_standard_config_shapes(self):
        config = standard_config(8, seed=1)
        assert config.graph.diameter == 8
        assert config.graph.num_layers == 8
        assert config.num_grid_nodes == config.graph.width * 8

    def test_config_rng_deterministic(self):
        a = standard_config(4, seed=2).rng(salt=1).integers(1000)
        b = standard_config(4, seed=2).rng(salt=1).integers(1000)
        assert a == b


class TestTable1:
    def test_qualitative_claims(self):
        result = run_table1(diameters=(8, 16), seeds=(0,), num_pulses=2)
        assert result.fits["naive-trix"].slope > 0.7  # ~linear in D
        # Gradient TRIX under the same worst case: much flatter and far
        # below the naive skew at the larger diameter.
        gt = dict(result.local_skews("gradient-trix"))
        naive = dict(result.local_skews("naive-trix"))
        assert gt[16] < naive[16]
        # Every gradient-trix row respects its theory bound.
        for row in result.rows:
            if row.method == "gradient-trix":
                assert row.local_skew <= row.theory_bound
        assert "Table 1" in result.table()

    def test_hex_crash_row_dwarfs_others(self):
        result = run_table1(diameters=(8,), seeds=(0,), num_pulses=2)
        by_method = {r.method: r for r in result.rows}
        assert (
            by_method["hex+crash"].local_skew
            > 10 * by_method["gradient-trix"].local_skew
        )


class TestFigures:
    def test_fig1_trix_pile_up_and_hex_penalty(self):
        result = run_fig1(diameter=16, num_pulses=2)
        # Left: naive TRIX piles up along layers; gradient TRIX does not.
        assert result.trix_final_skew > 3 * result.trix_skew_by_layer[1]
        assert result.gradient_skew_by_layer[-1] <= result.trix_final_skew
        # Right: the crash costs about d.
        assert result.hex_crash_penalty >= 0.5 * result.params.d
        assert "Figure 1" in result.table()

    def test_fig23_degree_claims(self):
        result = run_structure(length=16, num_layers=6)
        # Figure 2: minimum degree 2.
        assert result.min_base_degree == 2
        # Figure 3: "most nodes have in-degree 3, some 4".
        assert result.fraction_in_degree_3 > 0.5
        assert set(result.in_degrees) == {3, 4}
        assert set(result.out_degrees) == {3, 4}
        assert "Figure 2" in result.table()

    def test_fig5_oscillation(self):
        result = run_fig5(diameter=12)
        # Without JC the oscillation amplifies; with JC it dampens.
        assert result.final_without_jc > result.amplitude_without_jc[0]
        assert result.final_with_jc < result.amplitude_with_jc[0] / 3
        assert result.final_without_jc > 5 * result.final_with_jc
        assert "Figure 5" in result.table()


class TestTheorems:
    def test_thm11(self):
        result = run_thm11(diameters=(4, 8, 16), seeds=(0, 1), num_pulses=3)
        assert result.all_within_bound
        # Sub-linear growth: power exponent well below 1.
        assert result.power_fit.slope < 0.6
        assert "Theorem 1.1" in result.table()

    def test_thm12(self):
        result = run_thm12(diameter=12, fault_counts=(0, 1, 2), num_pulses=2)
        assert result.all_within_bound
        assert result.monotone
        assert result.rows[1].local_skew > result.rows[0].local_skew
        assert "Theorem 1.2" in result.table()

    def test_thm13(self):
        result = run_thm13(diameter=10, num_trials=5, num_pulses=2)
        assert result.fraction_within_envelope == 1.0
        assert result.max_skew <= result.envelope
        assert all(t.num_faults >= 0 for t in result.trials)
        assert "Theorem 1.3" in result.table()

    def test_thm14(self):
        result = run_thm14(diameter=12, num_pulses=3)
        assert result.within_envelope
        # Static faults: the schedule is exactly periodic.
        assert result.max_period_error < 1e-9
        assert "Theorem 1.4" in result.table()

    def test_cor15(self):
        result = run_cor15(diameter=12, num_pulses=4)
        assert result.within_envelope
        assert result.behavior_changes >= 1
        assert result.delay_step > 0
        assert "Corollary 1.5" in result.table()

    def test_thm16(self):
        result = run_thm16(diameter=5, num_trials=2)
        assert result.stabilized
        assert result.stabilized_within_budget
        assert result.churn_actions > 0  # the campaign actually churned
        assert result.last_event_pulse > 0
        # One skew sample per (trial, pulse); the recovered tail is clean.
        assert result.skew_series.shape == (2, result.num_pulses)
        assert result.worst_recovered_skew <= result.skew_bound
        # Churn accounting rode through the batch, parallel to
        # fallback_reasons.
        assert sorted(result.batch.campaign_stats) == [0, 1]
        assert "Theorem 1.6" in result.table()

    def test_lemA1(self):
        result = run_lemA1(chain_lengths=(8, 16), num_pulses=3)
        assert result.all_within_bound
        assert "Lemma A.1" in result.table()


class TestPotentialsAndAblations:
    def test_potential_decay(self):
        result = run_potential_decay(diameter=8, num_layers=24)
        assert result.decayed(1)
        assert result.decayed(2)
        assert "Potential decay" in result.table()

    def test_discretization_ablation_runs(self):
        result = run_discretization_ablation(diameter=8, num_pulses=2)
        assert result.skew_with > 0
        assert result.skew_without > 0
        assert "Ablation" in result.table()

    def test_median_ablation_shows_containment(self):
        result = run_median_ablation(diameter=8, num_pulses=2)
        assert result.degradation > 3.0
