"""Cross-validation: the event-driven simulator against the fast one.

Lemma B.1 guarantees the pulse/iteration alignment both modes assume; with
static delays and constant clock rates the two must produce identical pulse
times, which these tests assert to float precision.
"""

import numpy as np
import pytest

from repro.analysis.skew import times_from_trace
from repro.clocks import uniform_random_rates
from repro.core.fast import FastSimulation
from repro.core.layer0 import JitteredLayer0
from repro.core.network_sim import GridSimulation
from repro.delays import StaticDelayModel
from repro.faults import (
    AdversarialLateFault,
    CrashFault,
    FaultPlan,
    FixedOffsetFault,
)
from repro.params import Parameters
from repro.topology import LayeredGraph, replicated_line

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)


def build_pair(diameter=6, seed=0, plan=None, layer0=None, num_pulses=4):
    base = replicated_line(diameter + 1)
    graph = LayeredGraph(base, diameter + 1)
    delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=seed)
    clocks = uniform_random_rates(
        graph.nodes(), PARAMS.vartheta, rng_or_seed=seed + 1
    )
    rates = {node: clock.rate for node, clock in clocks.items()}
    fast = FastSimulation(
        graph,
        PARAMS,
        delay_model=delays,
        clock_rates=rates,
        fault_plan=plan,
        layer0=layer0,
    ).run(num_pulses)
    grid = GridSimulation(
        graph,
        PARAMS,
        delay_model=delays,
        clocks=dict(clocks),
        fault_plan=plan,
        layer0=layer0,
    )
    trace = grid.run(num_pulses)
    event = times_from_trace(trace, graph, num_pulses)
    return fast, event, grid


class TestCrossValidation:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fault_free_exact_agreement(self, seed):
        fast, event, _ = build_pair(seed=seed)
        assert np.array_equal(np.isnan(event), np.isnan(fast.times))
        assert np.nanmax(np.abs(event - fast.times)) == 0.0

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan.from_nodes({(3, 2): CrashFault()}),
            FaultPlan.from_nodes({(3, 2): AdversarialLateFault(10.0)}),
            FaultPlan.from_nodes({(3, 2): FixedOffsetFault(0.3)}),
            FaultPlan.from_nodes(
                {(1, 1): CrashFault(), (5, 4): AdversarialLateFault(4.0)}
            ),
        ],
    )
    def test_faulty_exact_agreement(self, plan):
        fast, event, _ = build_pair(plan=plan)
        assert np.array_equal(np.isnan(event), np.isnan(fast.times))
        diffs = np.abs(event - fast.times)
        assert np.nanmax(diffs) == 0.0

    def test_jittered_layer0_agreement(self):
        layer0 = JitteredLayer0(PARAMS.Lambda, 9, jitter_bound=0.05, seed=4)
        fast, event, _ = build_pair(diameter=6, layer0=layer0)
        assert np.nanmax(np.abs(event - fast.times)) == 0.0

    def test_event_mode_deterministic(self):
        _, event_a, _ = build_pair(seed=7)
        _, event_b, _ = build_pair(seed=7)
        assert np.array_equal(event_a, event_b)

    def test_trace_pulse_indices_aligned(self):
        # Lemma B.1: iteration k consumes pulse-k messages, so every node
        # records exactly num_pulses pulses, in order.
        _, _, grid = build_pair()
        low, high = grid.trace.pulse_count_range()
        assert low == high == 4

    def test_messages_sent_count(self):
        _, _, grid = build_pair(num_pulses=2)
        graph = grid.graph
        expected = 2 * sum(
            graph.out_degree((v, layer))
            for layer in range(graph.num_layers)
            for v in graph.base.nodes()
        )
        assert grid.network.messages_sent == expected


class TestGridSimulationGuards:
    def test_build_twice_rejected(self):
        graph = LayeredGraph(replicated_line(4), 4)
        grid = GridSimulation(graph, PARAMS)
        grid.build(2)
        with pytest.raises(RuntimeError):
            grid.build(2)

    def test_varying_rate_clock_rejected_with_faults(self):
        from repro.clocks import PiecewiseRateClock

        graph = LayeredGraph(replicated_line(4), 4)
        plan = FaultPlan.from_nodes({(1, 1): CrashFault()})
        clocks = {(0, 1): PiecewiseRateClock([0.0, 1.0], [1.0, 1.001])}
        grid = GridSimulation(graph, PARAMS, clocks=clocks, fault_plan=plan)
        with pytest.raises(ValueError, match="constant-rate"):
            grid.build(2)
