"""Hypothesis property tests over whole-simulation invariants.

These sample random parameter/delay/drift/topology configurations and check
the invariants the paper's analysis promises *for every execution*:
causality, the Theorem 1.1 skew bound, Lemma D.2's correction cap, the
SC/FC/JC conditions, and cross-mode determinism.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.clocks import uniform_random_rates
from repro.core.conditions import check_all_conditions
from repro.core.fast import FastSimulation
from repro.delays import StaticDelayModel
from repro.faults import CrashFault, FaultPlan
from repro.params import Parameters
from repro.topology import LayeredGraph, cycle_graph, replicated_line

SIM_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

configs = st.fixed_dictionaries(
    {
        "diameter": st.integers(min_value=2, max_value=10),
        "seed": st.integers(min_value=0, max_value=10_000),
        "u": st.floats(min_value=0.0, max_value=0.05),
        "drift": st.floats(min_value=0.0, max_value=0.005),
        "cycle": st.booleans(),
    }
)


def build(config):
    params = Parameters(
        d=1.0, u=config["u"], vartheta=1.0 + config["drift"], Lambda=2.0
    )
    if config["cycle"]:
        base = cycle_graph(2 * config["diameter"])
    else:
        base = replicated_line(config["diameter"] + 1)
    graph = LayeredGraph(base, max(4, config["diameter"]))
    delays = StaticDelayModel(params.d, params.u, seed=config["seed"])
    rates = {
        node: clock.rate
        for node, clock in uniform_random_rates(
            graph.nodes(), params.vartheta, rng_or_seed=config["seed"] + 1
        ).items()
    }
    return params, graph, FastSimulation(
        graph, params, delay_model=delays, clock_rates=rates
    )


@SIM_SETTINGS
@given(config=configs)
def test_theorem_11_bound_holds_for_random_configs(config):
    params, graph, sim = build(config)
    result = sim.run(2)
    assert result.max_local_skew() <= params.local_skew_bound(graph.diameter)


@SIM_SETTINGS
@given(config=configs)
def test_causality(config):
    """No node pulses before its own predecessor's message could arrive."""
    params, graph, sim = build(config)
    result = sim.run(2)
    for k in range(2):
        steps = result.times[k, 1:, :] - result.times[k, :-1, :]
        assert np.all(steps >= params.d - params.u - 1e-9)


@SIM_SETTINGS
@given(config=configs)
def test_corrections_capped_by_lemma_d2(config):
    params, _, sim = build(config)
    result = sim.run(2)
    finite = result.corrections[np.isfinite(result.corrections)]
    assert np.all(finite <= params.Lambda - params.d + 1e-9)


@SIM_SETTINGS
@given(config=configs)
def test_conditions_hold_for_random_configs(config):
    _, _, sim = build(config)
    assert check_all_conditions(sim.run(2)) == []


@SIM_SETTINGS
@given(config=configs)
def test_periodicity(config):
    """With static delays/rates, consecutive pulses are exactly Lambda
    apart (the engine of Theorem 1.4)."""
    params, _, sim = build(config)
    result = sim.run(3)
    gaps = np.diff(result.times, axis=0)
    assert np.allclose(gaps, params.Lambda, atol=1e-9)


@SIM_SETTINGS
@given(
    config=configs,
    fault_v=st.integers(min_value=0, max_value=100),
    fault_layer=st.integers(min_value=1, max_value=100),
)
def test_single_crash_never_breaks_correct_nodes(config, fault_v, fault_layer):
    params, graph, sim = build(config)
    node = (fault_v % graph.width, 1 + fault_layer % (graph.num_layers - 1))
    sim.fault_plan = FaultPlan.from_nodes({node: CrashFault()})
    result = sim.run(2)
    mask = result.faulty_mask
    # Every correct node still pulses, and skew respects the f=1 bound.
    assert not np.isnan(result.times[:, ~mask]).any()
    assert result.max_local_skew() <= params.worst_case_fault_bound(
        graph.diameter, 1
    )
