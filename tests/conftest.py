"""Shared test configuration: pinned hypothesis profiles.

The property suites (``test_fast_hetero``, ``test_differential``,
``test_properties``, ...) drive randomized scenarios through the
simulator equivalence promises.  Locally that randomness is welcome; in
CI it must be reproducible, so the ``ci`` profile derandomizes example
selection (examples are derived from the test body, identical on every
run) and disables per-example deadlines (shared runners jitter).  CI
selects it with ``--hypothesis-profile=ci``; the ``dev`` profile is the
library default and stays active otherwise.

Per-test ``@settings(...)`` decorators compose with the active profile:
they override only the fields they name, so ``max_examples`` choices in
the suites survive while ``derandomize`` comes from the profile.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", settings.default)
