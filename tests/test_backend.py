"""Kernel backend seam: resolution, ops contract, fallback accounting.

The bitwise agreement of the numba backend with NumPy across execution
paths lives in ``test_differential.py`` (gated on the optional extra);
this module pins everything that must hold *without* numba installed:

* ``resolve_kernel_ops`` resolution rules -- explicit names, the
  ``"auto"`` preference order, the clear error for an explicit
  ``"numba"`` when the package is absent, ``ValueError`` on unknown
  names from every entry point (``FastSimulation``, ``TrialStack``,
  ``BatchRunner``),
* the NumPy ops object computes exactly the expressions the kernels
  inlined before the seam existed (masked reductions, NaN propagation,
  empty CSR segments),
* the batched fault-adjacent fallback is accounted in
  ``compaction_stats`` (``fallback_cells`` / ``fallback_batches``) and
  never leaks per-cell entries into ``fallback_reasons``, and
* ``BaseGraph``'s cached neighbor tensors are frozen, so a stack/epoch
  revisiting a shared campaign graph can never see silently mutated
  adjacency arrays (the cache-safety satellite of this PR).
"""

import numpy as np
import pytest

import repro.core.backend as backend_mod
from repro.core.backend import (
    KERNEL_BACKENDS,
    NUMPY_OPS,
    NumbaOps,
    NumpyOps,
    numba_available,
    resolve_kernel_ops,
)
from repro.core.fast import FastSimulation
from repro.core.fast_batch import TrialStack
from repro.experiments.batch import BatchRunner, BatchTrial
from repro.experiments.common import standard_config
from repro.faults.injection import FaultPlan

NUM_PULSES = 3


def _simulation(diameter=6, seed=0, **kwargs):
    config = standard_config(diameter, seed=seed)
    return FastSimulation(
        config.graph,
        config.params,
        delay_model=config.delay_model,
        clock_rates=config.clock_rates,
        **kwargs,
    )


def _faulted_trials(n=4, seed0=0):
    trials = []
    for s in range(n):
        config = standard_config(6, seed=seed0 + s)
        plan = FaultPlan.random(config.graph, 0.10, rng_or_seed=seed0 + s)
        trials.append(BatchTrial(config=config, fault_plan=plan))
    return trials


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_numpy_resolves_to_shared_singleton(self):
        assert resolve_kernel_ops("numpy") is NUMPY_OPS
        assert resolve_kernel_ops("numpy").name == "numpy"

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            resolve_kernel_ops("fortran")

    def test_auto_prefers_numba_when_available(self, monkeypatch):
        # Force the probe both ways; NumbaOps construction is lazy (no
        # numba import until a kernel call), so this runs either way.
        monkeypatch.setattr(backend_mod, "_NUMBA_AVAILABLE", True)
        monkeypatch.setattr(backend_mod, "_NUMBA_OPS", None)
        ops = backend_mod.resolve_kernel_ops("auto")
        assert isinstance(ops, NumbaOps)
        assert ops.name == "numba"
        # Resolution caches one instance.
        assert backend_mod.resolve_kernel_ops("auto") is ops

    def test_auto_falls_back_to_numpy_when_absent(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_NUMBA_AVAILABLE", False)
        assert backend_mod.resolve_kernel_ops("auto") is NUMPY_OPS

    @pytest.mark.skipif(
        numba_available(), reason="numba installed; the error leg is moot"
    )
    def test_explicit_numba_without_package_raises_with_hint(self):
        with pytest.raises(RuntimeError, match=r"gradient-trix-repro\[numba\]"):
            resolve_kernel_ops("numba")

    @pytest.mark.skipif(
        not numba_available(), reason="optional numba extra not installed"
    )
    def test_explicit_numba_resolves(self):
        assert resolve_kernel_ops("numba").name == "numba"

    def test_entry_points_validate_the_knob(self):
        config = standard_config(4)
        with pytest.raises(ValueError, match="kernel_backend"):
            FastSimulation(
                config.graph, config.params, kernel_backend="cuda"
            )
        sims = [_simulation(4, seed=s) for s in range(2)]
        with pytest.raises(ValueError, match="kernel_backend"):
            TrialStack(sims, kernel_backend="cuda")
        with pytest.raises(ValueError, match="kernel_backend"):
            BatchRunner(num_pulses=2, kernel_backend="cuda")

    def test_simulation_records_requested_backend(self):
        sim = _simulation(4, kernel_backend="numpy")
        assert sim.kernel_backend == "numpy"
        assert sim._kernel_ops is NUMPY_OPS


class TestAvailabilityProbe:
    """``numba_available`` failure classification (the probe bugfix).

    The old probe swallowed *every* exception and cached ``False`` for
    the life of the process -- a transient non-import failure silently
    downgraded ``kernel_backend="auto"`` to NumPy forever.  Now only
    ``ImportError`` means "absent"; anything else warns, and
    ``refresh=True`` re-probes.
    """

    @pytest.fixture(autouse=True)
    def _restore_probe_cache(self):
        yield
        # Re-probe with the real import so later tests see the truth.
        numba_available(refresh=True)

    def test_import_error_means_absent_without_warning(self, monkeypatch):
        def absent():
            raise ImportError("No module named 'numba'")

        monkeypatch.setattr(backend_mod, "_probe_numba", absent)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert numba_available(refresh=True) is False

    def test_unexpected_failure_warns_and_reports_absent(self, monkeypatch):
        def broken():
            raise RuntimeError("llvmlite ABI mismatch")

        monkeypatch.setattr(backend_mod, "_probe_numba", broken)
        with pytest.warns(RuntimeWarning, match="llvmlite ABI mismatch"):
            assert numba_available(refresh=True) is False

    def test_unexpected_failure_warns_once_not_per_call(self, monkeypatch):
        def broken():
            raise RuntimeError("boom")

        monkeypatch.setattr(backend_mod, "_probe_numba", broken)
        with pytest.warns(RuntimeWarning):
            numba_available(refresh=True)
        import warnings as _warnings

        with _warnings.catch_warnings():
            # Cached verdict: no re-probe, no second warning.
            _warnings.simplefilter("error")
            assert numba_available() is False

    def test_refresh_recovers_after_transient_failure(self, monkeypatch):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return True

        monkeypatch.setattr(backend_mod, "_probe_numba", flaky)
        with pytest.warns(RuntimeWarning, match="transient"):
            assert numba_available(refresh=True) is False
        # Without refresh the bad verdict sticks...
        assert numba_available() is False
        # ...and refresh=True is the documented escape hatch.
        assert numba_available(refresh=True) is True


# ----------------------------------------------------------------------
# NumPy ops contract
# ----------------------------------------------------------------------
class TestNumpyOps:
    def test_masked_reductions_ignore_invalid_lanes(self):
        vals = np.array([[1.0, -5.0, 3.0], [2.0, 7.0, 0.5]])
        valid = np.array([[True, False, True], [True, True, False]])
        np.testing.assert_array_equal(
            NumpyOps.masked_min(vals, valid), [1.0, 2.0]
        )
        np.testing.assert_array_equal(
            NumpyOps.masked_max(vals, valid), [3.0, 7.0]
        )

    def test_neighbor_min_max_matches_inline_expression(self):
        rng = np.random.default_rng(0)
        width, deg = 7, 3
        prev = rng.normal(size=width)
        nb_idx = rng.integers(0, width, size=(width, deg))
        nb_valid = rng.random(size=(width, deg)) < 0.7
        nb_delay = rng.random(size=(width, deg))
        rate = 1.0 + 0.01 * rng.random(size=width)
        h_nb = rate[:, None] * (prev[nb_idx] + nb_delay)
        want_min = np.where(nb_valid, h_nb, np.inf).min(axis=-1)
        want_max = np.where(nb_valid, h_nb, -np.inf).max(axis=-1)
        got_min, got_max = NUMPY_OPS.neighbor_min_max(
            prev, nb_idx, nb_valid, nb_delay, rate
        )
        np.testing.assert_array_equal(got_min, want_min)
        np.testing.assert_array_equal(got_max, want_max)

    def test_neighbor_min_max_propagates_nan(self):
        prev = np.array([np.nan, 1.0, 2.0])
        nb_idx = np.array([[1], [0], [1]])
        nb_valid = np.ones((3, 1), dtype=bool)
        nb_delay = np.zeros((3, 1))
        rate = np.ones(3)
        h_min, h_max = NUMPY_OPS.neighbor_min_max(
            prev, nb_idx, nb_valid, nb_delay, rate
        )
        assert np.isnan(h_min[1]) and np.isnan(h_max[1])
        assert h_min[0] == 1.0 and h_max[2] == 1.0

    def test_segment_min_max_fills_empty_segments(self):
        # Vertex 1 has no neighbors (campaign epoch shape): the dense
        # identities must appear explicitly -- reduceat has no empty
        # reduction.
        prev = np.array([3.0, 5.0, 7.0])
        indices = np.array([2, 0], dtype=np.int64)  # v0 -> {2}, v2 -> {0}
        indptr = np.array([0, 1, 1, 2], dtype=np.int64)
        nb_delay = np.array([0.5, 0.25])
        rate = np.ones(3)
        owner = np.array([0, 2], dtype=np.int64)
        has_neighbors = np.array([True, False, True])
        h_min, h_max = NUMPY_OPS.segment_min_max(
            prev, indices, indptr, nb_delay, rate, owner, has_neighbors
        )
        np.testing.assert_array_equal(h_min, [7.5, np.inf, 3.25])
        np.testing.assert_array_equal(h_max, [7.5, -np.inf, 3.25])


# ----------------------------------------------------------------------
# Batched fallback accounting
# ----------------------------------------------------------------------
class TestFallbackAccounting:
    def test_faulted_stack_counts_cells_and_batches(self):
        runner = BatchRunner(num_pulses=NUM_PULSES, kernel_backend="numpy")
        batch = runner.run(_faulted_trials())
        assert len(batch.compaction_stats) == 1
        stats = batch.compaction_stats[0]
        assert stats["kernel_backend"] == "numpy"
        # Random 10% fault plans guarantee fault-adjacent cells; each is
        # resolved by a batched replay, never a per-cell Python loop.
        assert stats["fallback_cells"] > 0
        assert stats["fallback_batches"] > 0
        assert stats["fallback_cells"] >= stats["fallback_batches"]
        # Per-cell scalar replays used to ride outside any accounting;
        # fallback_reasons stays reserved for whole-trial stack refusals.
        assert batch.fallback_reasons == {}

    def test_fault_free_stack_has_no_fallback(self):
        trials = [
            BatchTrial(config=standard_config(6, seed=s)) for s in range(3)
        ]
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        stats = batch.compaction_stats[0]
        assert stats["fallback_cells"] == 0
        assert stats["fallback_batches"] == 0

    def test_single_simulation_accounts_fallback(self):
        config = standard_config(6, seed=1)
        plan = FaultPlan.random(config.graph, 0.10, rng_or_seed=1)
        sim = FastSimulation(
            config.graph,
            config.params,
            delay_model=config.delay_model,
            clock_rates=config.clock_rates,
            fault_plan=plan,
        )
        result = sim.run(NUM_PULSES)
        assert result.fallback_cells > 0
        assert result.fallback_batches > 0


# ----------------------------------------------------------------------
# Cache safety (frozen shared graph tensors)
# ----------------------------------------------------------------------
class TestFrozenGraphCaches:
    def test_cached_neighbor_tensors_are_frozen_and_stable(self):
        base = standard_config(6).graph.base
        idx, valid = base.neighbor_index_arrays()
        left, right = base.edge_index_arrays()
        for arr in (idx, valid, left, right):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[...] = 0
        # Revisits hand back the same objects -- one cache per graph,
        # shared across trials, stacks, and campaign epochs.
        idx2, valid2 = base.neighbor_index_arrays()
        assert idx2 is idx and valid2 is valid
        left2, right2 = base.edge_index_arrays()
        assert left2 is left and right2 is right

    def test_campaign_epoch_revisit_reuses_identical_tensors(self):
        """A revisited epoch state must see bit-identical adjacency.

        The chaos-campaign layer caches epoch graphs by state key; if a
        consumer mutated the shared cached tensors in between, the
        revisit would silently simulate a different topology.
        """
        from repro.faults.campaign import ChaosCampaign, EdgeFlap

        config = standard_config(6, seed=0)
        base = config.graph.base
        edge = base.edges[0]
        campaign = ChaosCampaign(
            base,
            config.graph.num_layers,
            # Down-up-down-up: pulses 1 and 3 revisit the degraded
            # state, pulses 0/2/4+ the seed state.
            [EdgeFlap(pulse=1, edge=edge), EdgeFlap(pulse=3, edge=edge)],
        )
        schedule = campaign.compile(num_pulses=6)
        by_state = {}
        for epoch in schedule.epochs:
            snap = epoch.graph.base.neighbor_index_arrays()
            prior = by_state.setdefault(epoch.state_key, snap)
            assert prior[0] is snap[0] and prior[1] is snap[1]
            np.testing.assert_array_equal(prior[0], snap[0])
            np.testing.assert_array_equal(prior[1], snap[1])
        assert len(by_state) >= 2


# ----------------------------------------------------------------------
# All-NaN reductions stay warning-clean (RuntimeWarning is an error
# repo-wide via pyproject's filterwarnings)
# ----------------------------------------------------------------------
class TestWarningHygiene:
    def test_all_vertices_leave_campaign_is_warning_clean(self):
        """Every vertex absent for a window: skew reducers see all-NaN
        planes and must mask them rather than warn (RuntimeWarning is
        promoted to an error suite-wide)."""
        from repro.experiments.thm16_selfstab import run_thm16
        from repro.faults.campaign import ChaosCampaign, NodeJoin, NodeLeave

        config = standard_config(4, seed=0)
        base = config.graph.base
        events = []
        for v in range(base.num_nodes):
            events.append(NodeLeave(pulse=1, vertex=v))
            events.append(NodeJoin(pulse=3, vertex=v))
        campaign = ChaosCampaign(base, config.graph.num_layers, events)
        result = run_thm16(
            diameter=4,
            num_trials=1,
            seed=0,
            campaign=campaign,
            churn_pulses=4,
            num_pulses=8,
        )
        assert result.skew_series.shape == (1, 8)

    def test_kernel_backends_tuple_is_closed(self):
        assert KERNEL_BACKENDS == ("auto", "numpy", "numba")
