"""Tests for repro.delays: delay model implementations."""

import pytest
from hypothesis import given, strategies as st

from repro.delays import (
    AdversarialSplitDelays,
    StaticDelayModel,
    UniformDelayModel,
    VaryingDelayModel,
)

EDGE = ((0, 0), (1, 1))
OTHER = ((1, 0), (0, 1))


class TestUniform:
    def test_default_midpoint(self):
        m = UniformDelayModel(d=1.0, u=0.2)
        assert m.delay(EDGE) == pytest.approx(0.9)

    def test_explicit_value(self):
        m = UniformDelayModel(d=1.0, u=0.2, value=0.85)
        assert m.delay(EDGE) == 0.85

    def test_rejects_value_outside_range(self):
        with pytest.raises(ValueError):
            UniformDelayModel(d=1.0, u=0.1, value=0.5)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            UniformDelayModel(d=0.0, u=0.0)
        with pytest.raises(ValueError):
            UniformDelayModel(d=1.0, u=2.0)


class TestStatic:
    def test_within_bounds(self):
        m = StaticDelayModel(d=1.0, u=0.1, seed=0)
        for v in range(20):
            delay = m.delay(((v, 0), (v, 1)))
            assert 0.9 <= delay <= 1.0

    def test_static_across_pulses(self):
        m = StaticDelayModel(d=1.0, u=0.1, seed=0)
        assert m.delay(EDGE, 0) == m.delay(EDGE, 7)

    def test_query_order_independent(self):
        a = StaticDelayModel(d=1.0, u=0.1, seed=3)
        b = StaticDelayModel(d=1.0, u=0.1, seed=3)
        a.delay(EDGE)
        a.delay(OTHER)
        b.delay(OTHER)  # reversed order
        b.delay(EDGE)
        assert a.delay(EDGE) == b.delay(EDGE)
        assert a.delay(OTHER) == b.delay(OTHER)

    def test_seed_changes_delays(self):
        a = StaticDelayModel(d=1.0, u=0.1, seed=0)
        b = StaticDelayModel(d=1.0, u=0.1, seed=1)
        assert a.delay(EDGE) != b.delay(EDGE)

    def test_string_node_parts_supported(self):
        # Layer-0 chains key the source edge with a string vertex.
        m = StaticDelayModel(d=1.0, u=0.1, seed=0)
        delay = m.delay((("source", -1), (0, 0)))
        assert 0.9 <= delay <= 1.0


class TestAdversarial:
    def test_split(self):
        m = AdversarialSplitDelays(
            d=1.0, u=0.1, slow_edge=lambda e: e[0][0] == 0
        )
        assert m.delay(EDGE) == 1.0
        assert m.delay(OTHER) == 0.9


class TestVarying:
    def test_within_bounds_always(self):
        m = VaryingDelayModel(d=1.0, u=0.1, max_step=0.05, seed=0)
        for pulse in range(50):
            assert 0.9 <= m.delay(EDGE, pulse) <= 1.0

    def test_step_bound(self):
        m = VaryingDelayModel(d=1.0, u=0.2, max_step=0.01, seed=1)
        values = [m.delay(EDGE, k) for k in range(40)]
        for a, b in zip(values, values[1:]):
            assert abs(b - a) <= 0.01 + 1e-12

    def test_zero_step_is_static(self):
        m = VaryingDelayModel(d=1.0, u=0.1, max_step=0.0, seed=2)
        values = {m.delay(EDGE, k) for k in range(10)}
        assert len(values) == 1

    def test_deterministic_given_seed(self):
        a = VaryingDelayModel(d=1.0, u=0.1, max_step=0.02, seed=9)
        b = VaryingDelayModel(d=1.0, u=0.1, max_step=0.02, seed=9)
        assert [a.delay(EDGE, k) for k in range(10)] == [
            b.delay(EDGE, k) for k in range(10)
        ]

    def test_out_of_order_queries_consistent(self):
        a = VaryingDelayModel(d=1.0, u=0.1, max_step=0.02, seed=4)
        late_first = a.delay(EDGE, 9)
        b = VaryingDelayModel(d=1.0, u=0.1, max_step=0.02, seed=4)
        for k in range(10):
            b.delay(EDGE, k)
        assert late_first == b.delay(EDGE, 9)

    def test_rejects_negative_pulse(self):
        m = VaryingDelayModel(d=1.0, u=0.1, max_step=0.01)
        with pytest.raises(ValueError):
            m.delay(EDGE, -1)

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            VaryingDelayModel(d=1.0, u=0.1, max_step=-0.1)


@given(
    d=st.floats(min_value=0.1, max_value=10.0),
    u_frac=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
    v=st.integers(min_value=0, max_value=1000),
    layer=st.integers(min_value=0, max_value=1000),
)
def test_static_delays_always_in_range(d, u_frac, seed, v, layer):
    """Property: every sampled delay lies in [d - u, d]."""
    u = d * u_frac
    m = StaticDelayModel(d=d, u=u, seed=seed)
    delay = m.delay(((v, layer), (v + 1, layer + 1)))
    assert d - u - 1e-12 <= delay <= d + 1e-12
