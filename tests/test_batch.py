"""Tests for repro.experiments.batch: the batched multi-trial runner."""

import multiprocessing
import os

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.skew import (
    global_skew,
    max_inter_layer_skew,
    max_local_skew,
    overall_skew,
)
from repro.delays.models import UniformDelayModel
from repro.experiments.batch import BatchRunner, BatchTrial, _shard_bounds
from repro.experiments.common import standard_config
from repro.experiments.thm13_random_faults import mixed_behavior_factory
from repro.faults import CrashFault, FaultPlan

NUM_PULSES = 3


def seed_batch(seeds=(0, 1, 2), diameter=6, **kwargs):
    runner = BatchRunner(num_pulses=NUM_PULSES, **kwargs)
    trials = BatchRunner.seed_sweep(diameter, seeds, num_pulses=NUM_PULSES)
    return trials, runner.run(trials)


class TestEquivalenceWithLoop:
    """Batch statistics must equal the one-trial-at-a-time reference."""

    def test_times_match_per_trial_runs(self):
        trials, batch = seed_batch()
        for i, trial in enumerate(trials):
            reference = trial.config.simulation(
                fault_plan=trial.fault_plan
            ).run(NUM_PULSES)
            np.testing.assert_array_equal(batch.times[i], reference.times)

    def test_skew_stats_match_per_result_helpers(self):
        trials, batch = seed_batch()
        for i, trial in enumerate(trials):
            reference = trial.config.simulation().run(NUM_PULSES)
            assert batch.max_local_skews()[i] == pytest.approx(
                max_local_skew(reference), abs=1e-12
            )
            assert batch.max_inter_layer_skews()[i] == pytest.approx(
                max_inter_layer_skew(reference), abs=1e-12
            )
            assert batch.global_skews()[i] == pytest.approx(
                global_skew(reference), abs=1e-12
            )
            assert batch.overall_skews()[i] == pytest.approx(
                overall_skew(reference), abs=1e-12
            )

    def test_vectorized_and_scalar_batches_agree(self):
        def plans(config):
            return FaultPlan.random(
                config.graph,
                probability=0.05,
                rng_or_seed=config.rng(salt=99),
                behavior_factory=mixed_behavior_factory,
            )

        trials = BatchRunner.seed_sweep(
            6, (0, 1), num_pulses=NUM_PULSES, fault_plan_factory=plans
        )
        fast = BatchRunner(num_pulses=NUM_PULSES, vectorize=True).run(trials)
        slow = BatchRunner(num_pulses=NUM_PULSES, vectorize=False).run(trials)
        np.testing.assert_allclose(
            fast.times, slow.times, rtol=0.0, atol=1e-9, equal_nan=True
        )


class TestBatchResult:
    def test_stacked_shapes(self):
        trials, batch = seed_batch()
        graph = trials[0].config.graph
        expected = (len(trials), NUM_PULSES, graph.num_layers, graph.width)
        assert batch.times.shape == expected
        assert batch.corrections.shape == expected
        assert batch.effective_corrections.shape == expected
        assert batch.faulty_masks.shape == (
            len(trials), graph.num_layers, graph.width,
        )
        assert len(batch) == len(trials)

    def test_num_faults_and_masks(self):
        config = standard_config(6, num_pulses=NUM_PULSES)
        plan = FaultPlan.from_nodes({(2, 2): CrashFault()})
        batch = BatchRunner(num_pulses=NUM_PULSES).run(
            [
                BatchTrial(config=config),
                BatchTrial(config=config, fault_plan=plan, label="crash"),
            ]
        )
        np.testing.assert_array_equal(batch.num_faults(), [0, 1])
        assert not batch.faulty_masks[0].any()
        assert batch.faulty_masks[1, 2, 2]
        assert np.isnan(batch.times[1, :, 2, 2]).all()

    def test_correction_stats(self):
        _, batch = seed_batch()
        stats = batch.correction_stats()
        assert stats["max_abs"].shape == (3,)
        assert (stats["num_corrections"] > 0).all()
        assert (stats["mean_abs"] <= stats["max_abs"] + 1e-15).all()


class TestNoCopySingleStack:
    """Single-stack batches adopt the TrialStack block without copying.

    The stacked kernel already materializes the padded
    ``(S, K, L_max, W_max)`` block the per-trial results window into;
    re-stacking it in the BatchResult constructor was the ROADMAP's known
    double-materialization.  The adopted block is frozen, so mutation
    through any handle -- a per-trial result or the batch matrices --
    raises instead of silently corrupting every other view.
    """

    def test_matrices_share_memory_with_trial_results(self):
        trials, batch = seed_batch()
        for attr in ("times", "corrections", "effective_corrections"):
            stacked = getattr(batch, attr)
            for result in batch.results:
                assert np.shares_memory(stacked, getattr(result, attr)), attr

    def test_mixed_geometry_single_stack_is_also_no_copy(self):
        trials = [
            BatchTrial(config=standard_config(4, num_pulses=NUM_PULSES)),
            BatchTrial(
                config=standard_config(
                    6, num_layers=3, num_pulses=NUM_PULSES
                )
            ),
        ]
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        assert batch.stack_groups == [[0, 1]]
        assert np.shares_memory(batch.times, batch.results[0].times)
        assert np.shares_memory(batch.times, batch.results[1].times)

    def test_mutation_cannot_corrupt_the_stack(self):
        _, batch = seed_batch()
        with pytest.raises(ValueError):
            batch.results[0].times[0, 0, 0] = 123.0
        with pytest.raises(ValueError):
            batch.times[0, 0, 0, 0] = 123.0
        with pytest.raises(ValueError):
            batch.results[1].corrections[0] = 0.0

    def test_faulty_masks_adopted_from_stack(self):
        config = standard_config(4, num_pulses=NUM_PULSES)
        plan = FaultPlan.from_nodes({(1, 2): CrashFault()})
        batch = BatchRunner(num_pulses=NUM_PULSES).run(
            [BatchTrial(config=config, fault_plan=plan), BatchTrial(config=config)]
        )
        assert batch.faulty_masks[0, 2, 1]
        assert not batch.faulty_masks[1].any()
        np.testing.assert_array_equal(
            batch.faulty_masks[0], batch.results[0].faulty_mask
        )

    def test_multi_group_batches_still_copy(self):
        # Two algorithm groups -> two blocks -> the stacked matrices must
        # be materialized fresh (and per-trial values stay correct).
        config = standard_config(4, num_pulses=NUM_PULSES)
        trials = [
            BatchTrial(config=config),
            BatchTrial(config=config, algorithm="simplified"),
        ]
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        assert len(batch.stack_groups) == 2
        for i, trial in enumerate(trials):
            reference = trial.simulation().run(NUM_PULSES)
            np.testing.assert_array_equal(batch.times[i], reference.times)

    def test_process_executor_still_assembles_correctly(self):
        # Shard results cross a pickle boundary, so no shared block: the
        # assembled copy must equal the serial no-copy batch exactly.
        trials = BatchRunner.seed_sweep(4, range(4), num_pulses=NUM_PULSES)
        serial = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        sharded = BatchRunner(
            num_pulses=NUM_PULSES, executor="process", shards=2
        ).run(trials)
        np.testing.assert_array_equal(serial.times, sharded.times)
        np.testing.assert_array_equal(
            serial.faulty_masks, sharded.faulty_masks
        )
        assert len(sharded.compaction_stats) == len(sharded.stack_groups)

    def test_per_trial_batches_remain_writable_copies(self):
        trials, batch = seed_batch(stack=False)
        assert batch.times.flags.writeable
        for result in batch.results:
            assert not np.shares_memory(batch.times, result.times)


class TestBatchRunnerValidation:
    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            BatchRunner(num_pulses=NUM_PULSES).run([])

    def test_rejects_zero_pulses(self):
        with pytest.raises(ValueError):
            BatchRunner(num_pulses=0)

    def test_mismatched_grids_pad_instead_of_raising(self):
        # Mixed geometries used to be rejected; they now run as one
        # padded stack with NaN past each trial's own (L, W) window.
        trials = [
            BatchTrial(config=standard_config(4)),
            BatchTrial(config=standard_config(6)),
        ]
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        assert batch.heterogeneous
        assert batch.stack_groups == [[0, 1]]
        small = trials[0].config.graph
        assert np.isnan(batch.times[0, :, small.num_layers:, :]).all()
        assert np.isnan(batch.times[0, :, :, small.width:]).all()
        reference = trials[0].config.simulation().run(NUM_PULSES)
        np.testing.assert_array_equal(
            batch.times[0, :, : small.num_layers, : small.width],
            reference.times,
        )

    def test_trial_overrides(self):
        config = standard_config(4, num_pulses=NUM_PULSES)
        params = config.params
        trial = BatchTrial(
            config=config,
            delay_model=UniformDelayModel(params.d, params.u),
            clock_rates=None,  # rate-1 clocks, not the config's sample
        )
        batch = BatchRunner(num_pulses=NUM_PULSES).run([trial])
        # Uniform delays + unit rates: a perfectly symmetric execution.
        assert batch.max_local_skews()[0] == 0.0


class TestSparseBatchOptions:
    """neighbor_backend / compact_width threading through the runner."""

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            BatchRunner(num_pulses=NUM_PULSES, neighbor_backend="coo")

    def test_explicit_csr_matches_dense_on_uniform_group(self):
        trials = BatchRunner.seed_sweep(4, (0, 1), num_pulses=NUM_PULSES)
        dense = BatchRunner(
            num_pulses=NUM_PULSES, neighbor_backend="dense"
        ).run(trials)
        csr = BatchRunner(
            num_pulses=NUM_PULSES, neighbor_backend="csr"
        ).run(trials)
        np.testing.assert_array_equal(csr.times, dense.times)
        assert csr.fallback_reasons == {}
        (stats,) = csr.compaction_stats
        assert stats["neighbor_backend"] == "csr"
        assert stats["backend_fallback"] is None

    def test_explicit_csr_on_padded_group_runs_per_trial(self):
        # Mixed geometries cannot share one CSR edge layout; the runner
        # honors the explicit request per trial and says why.
        trials = [
            BatchTrial(config=standard_config(4)),
            BatchTrial(config=standard_config(6)),
        ]
        dense = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        csr = BatchRunner(
            num_pulses=NUM_PULSES, neighbor_backend="csr"
        ).run(trials)
        np.testing.assert_array_equal(csr.times, dense.times)
        assert set(csr.fallback_reasons) == {0, 1}
        for reason in csr.fallback_reasons.values():
            assert "uniform-adjacency" in reason

    def test_compact_width_off_matches_default(self):
        trials = [
            BatchTrial(config=standard_config(4)),
            BatchTrial(config=standard_config(6)),
        ]
        on = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        off = BatchRunner(
            num_pulses=NUM_PULSES, compact_width=False
        ).run(trials)
        np.testing.assert_array_equal(on.times, off.times)
        (stats_on,) = on.compaction_stats
        (stats_off,) = off.compaction_stats
        assert "width" in stats_on["axes"]
        assert stats_on["active_lane_steps"] < stats_on["padded_lane_steps"]
        assert "width" not in stats_off["axes"]

    def test_shard_merge_keeps_lane_and_backend_stats(self):
        # Regression: shard merging must carry the new width/backend
        # keys through the pickle boundary, one stats dict per stack
        # group, identical to the serial run's accounting.
        trials = [
            BatchTrial(config=standard_config(4, seed=s)) for s in range(2)
        ] + [
            BatchTrial(config=standard_config(6, seed=s)) for s in range(2)
        ]
        serial = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        sharded = BatchRunner(
            num_pulses=NUM_PULSES, executor="process", shards=2
        ).run(trials)
        np.testing.assert_array_equal(serial.times, sharded.times)
        assert len(sharded.compaction_stats) == len(sharded.stack_groups)
        for stats in sharded.compaction_stats:
            for key in (
                "axes",
                "min_width",
                "max_width",
                "padded_lane_steps",
                "active_lane_steps",
                "lane_dropped_fraction",
                "neighbor_backend",
                "backend_fallback",
            ):
                assert key in stats, (key, stats)
        assert sharded.fallback_reasons == serial.fallback_reasons


class TestShardBounds:
    """Balanced shard boundaries (the linspace-truncation bugfix)."""

    @given(st.integers(1, 500), st.integers(1, 64))
    def test_sizes_differ_by_at_most_one(self, num_trials, shards):
        shards = min(shards, num_trials)
        bounds = _shard_bounds(num_trials, shards)
        assert bounds[0] == 0
        assert bounds[-1] == num_trials
        assert len(bounds) == shards + 1
        sizes = [b - a for a, b in zip(bounds, bounds[1:])]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(1, 500), st.integers(1, 64))
    def test_matches_array_split_semantics(self, num_trials, shards):
        shards = min(shards, num_trials)
        bounds = _shard_bounds(num_trials, shards)
        sizes = [b - a for a, b in zip(bounds, bounds[1:])]
        reference = [
            len(chunk)
            for chunk in np.array_split(np.arange(num_trials), shards)
        ]
        assert sizes == reference

    def test_results_bitwise_invariant_in_shard_count(self):
        trials = BatchRunner.seed_sweep(4, range(5), num_pulses=NUM_PULSES)
        serial = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        for shards in (2, 3, 5):
            sharded = BatchRunner(
                num_pulses=NUM_PULSES, executor="process", shards=shards
            ).run(trials)
            np.testing.assert_array_equal(serial.times, sharded.times)
            np.testing.assert_array_equal(
                serial.faulty_masks, sharded.faulty_masks
            )


class WorkerKiller:
    """Rate provider that kills the hosting process -- workers only.

    ``multiprocessing.parent_process()`` is ``None`` in the main
    process, so the in-parent shard retry (and the serial reference run)
    sees plain rate-1.0 clocks while any pool worker touching the trial
    dies with an uncatchable ``os._exit``, which is exactly the
    OOM-killer / SIGKILL shape ``BrokenProcessPool`` wraps.
    """

    def __call__(self, node, pulse):
        if multiprocessing.parent_process() is not None:
            os._exit(17)
        return 1.0


class TestWorkerDeathRetry:
    """A dead worker must not discard completed shards (batch.py bugfix)."""

    def _trials(self):
        trials = [
            BatchTrial(config=standard_config(4, seed=s)) for s in range(4)
        ]
        trials.append(
            BatchTrial(
                config=standard_config(4, seed=99),
                clock_rates=WorkerKiller(),
                label="killer",
            )
        )
        return trials

    def test_batch_completes_and_matches_serial(self):
        trials = self._trials()
        serial = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        events = []
        sharded = BatchRunner(
            num_pulses=NUM_PULSES, executor="process", shards=2
        ).run(trials, on_shard=events.append)
        np.testing.assert_array_equal(serial.times, sharded.times)
        statuses = [e["status"] for e in events if e["event"] == "shard"]
        assert "lost" in statuses
        assert statuses.count("retried") == statuses.count("lost")
        # Every trial of a lost shard carries the retry note.
        assert any(
            "worker death" in why
            for why in sharded.fallback_reasons.values()
        )

    def test_lost_shards_annotated_without_clobbering(self):
        trials = self._trials()
        sharded = BatchRunner(
            num_pulses=NUM_PULSES, executor="process", shards=2
        ).run(trials)
        bounds = _shard_bounds(len(trials), 2)
        # The killer sits in the last shard; at minimum that whole
        # shard must be annotated (the pool may break before the other
        # shard lands, in which case it is lost-and-retried too).
        for i in range(bounds[-2], bounds[-1]):
            assert "worker death" in sharded.fallback_reasons[i]

    def test_healthy_process_runs_emit_no_retry_events(self):
        trials = BatchRunner.seed_sweep(4, range(4), num_pulses=NUM_PULSES)
        events = []
        BatchRunner(
            num_pulses=NUM_PULSES, executor="process", shards=2
        ).run(trials, on_shard=events.append)
        assert events[0]["event"] == "plan"
        assert events[0]["shards"] == 2
        assert sum(events[0]["sizes"]) == len(trials)
        statuses = [e["status"] for e in events if e["event"] == "shard"]
        assert statuses == ["done", "done"]

    def test_serial_runs_speak_the_same_progress_protocol(self):
        trials = BatchRunner.seed_sweep(4, range(2), num_pulses=NUM_PULSES)
        events = []
        BatchRunner(num_pulses=NUM_PULSES).run(trials, on_shard=events.append)
        assert [e["event"] for e in events] == ["plan", "shard"]
        assert events[0]["sizes"] == [len(trials)]
        assert events[1]["status"] == "done"
