"""Unit tests for the stabilization analyzer and the experiment CLI."""

import math

from repro.analysis.stabilization import measure_stabilization
from repro.engine.trace import Trace
from repro.experiments.__main__ import RUNNERS, main
from repro.faults import CrashFault, FaultPlan
from repro.params import Parameters
from repro.topology import LayeredGraph, replicated_line

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
GRAPH = LayeredGraph(replicated_line(4), 3)


def clean_trace(num_pulses=5, offset=0.0):
    trace = Trace()
    for layer in range(GRAPH.num_layers):
        for v in GRAPH.base.nodes():
            for k in range(num_pulses):
                trace.record_pulse(
                    (v, layer), k, offset + (k + layer) * PARAMS.Lambda
                )
    return trace


class TestMeasureStabilization:
    def test_clean_trace_is_stable(self):
        report = measure_stabilization(
            clean_trace(), GRAPH, PARAMS, skew_bound=0.1
        )
        assert report.stabilized
        assert report.violations == 0
        assert report.stabilization_pulses == 0
        assert report.last_violation is None
        assert report.stable_from == -math.inf

    def test_period_violation_detected(self):
        trace = clean_trace()
        # One extra pulse breaking node (0, 0)'s period.
        trace.record_pulse((0, 0), 99, 1.3)
        report = measure_stabilization(
            trace, GRAPH, PARAMS, skew_bound=0.2, period_tolerance=0.2
        )
        assert report.violations > 0
        assert "period" in str(report.last_violation) or "adjacency" in str(
            report.last_violation
        )

    def test_adjacency_violation_detected(self):
        trace = clean_trace()
        # Node (0, 1) pulses far away from its neighbors, mid-window.
        trace.record_pulse((0, 1), 50, 2 * PARAMS.Lambda + 0.9)
        report = measure_stabilization(trace, GRAPH, PARAMS, skew_bound=0.2)
        assert any(
            "adjacency" in v or "period" in v
            for v in [report.last_violation]
        )

    def test_violation_then_clean_reports_stabilized(self):
        trace = clean_trace(num_pulses=10)
        trace.record_pulse((0, 1), 77, 1 * PARAMS.Lambda + 0.9)  # early garbage
        report = measure_stabilization(trace, GRAPH, PARAMS, skew_bound=0.2)
        assert report.violations > 0
        assert report.stabilized  # clean afterwards
        assert report.stabilization_pulses >= 1

    def test_observe_window_filters(self):
        trace = clean_trace(num_pulses=10)
        trace.record_pulse((0, 1), 77, 1 * PARAMS.Lambda + 0.9)
        report = measure_stabilization(
            trace,
            GRAPH,
            PARAMS,
            skew_bound=0.2,
            observe_from=6 * PARAMS.Lambda,
        )
        assert report.violations == 0  # garbage predates the window

    def test_faulty_nodes_excluded(self):
        trace = clean_trace()
        # The "faulty" node pulses garbage, but is excluded by the plan.
        trace.record_pulse((2, 1), 50, 2 * PARAMS.Lambda + 0.9)
        plan = FaultPlan.from_nodes({(2, 1): CrashFault()})
        report = measure_stabilization(
            trace, GRAPH, PARAMS, skew_bound=0.2, fault_plan=plan
        )
        assert report.violations == 0


class TestExperimentCLI:
    def test_runner_registry_complete(self):
        expected = {
            "T1", "F1", "F23", "F5", "TH1", "TH2", "TH3", "TH4",
            "C15", "TH6", "LA1", "P1", "AB1", "AB2",
        }
        assert set(RUNNERS) == expected

    def test_unknown_id_rejected(self, capsys):
        assert main(["NOPE"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "available ids" in capsys.readouterr().out

    def test_single_experiment_runs(self, capsys):
        assert main(["F23"]) == 0
        out = capsys.readouterr().out
        assert "[F23]" in out
        assert "Figure 2" in out
