"""Tests for Algorithm 4 (self-stabilization) and stabilization analysis."""

import math

import numpy as np
from repro.analysis.stabilization import measure_stabilization
from repro.clocks import AffineClock
from repro.core.algorithm import PULSE, GradientTrixNode
from repro.core.network_sim import GridSimulation
from repro.core.selfstab import ChainForwardNode, SelfStabilizingNode, corrupt_node
from repro.delays import UniformDelayModel
from repro.engine import Simulator, Trace
from repro.engine.network import Network
from repro.params import Parameters
from repro.topology import LayeredGraph, replicated_line

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)


def selfstab_grid(diameter=5, layers=None):
    graph = LayeredGraph(replicated_line(diameter + 1), layers or diameter + 1)
    bound = PARAMS.local_skew_bound(graph.diameter)
    grid = GridSimulation(
        graph,
        PARAMS,
        node_class=SelfStabilizingNode,
        node_kwargs={"skew_estimate": bound, "max_pulses": None},
    )
    return grid, bound


class TestCleanOperation:
    def test_selfstab_node_matches_plain_node_when_clean(self):
        from repro.analysis.skew import times_from_trace

        graph = LayeredGraph(replicated_line(5), 5)
        plain = GridSimulation(graph, PARAMS)
        trace_plain = plain.run(3)
        stab, _ = selfstab_grid(diameter=4)
        stab.build(3)
        stab.sim.run_until((3 + 6 + 5) * PARAMS.Lambda)
        a = times_from_trace(trace_plain, graph, 3)
        b = times_from_trace(stab.trace, stab.graph, 3)
        assert np.nanmax(np.abs(a - b)) == 0.0

    def test_clean_run_reports_stabilized_immediately(self):
        grid, bound = selfstab_grid()
        grid.run(4)
        report = measure_stabilization(
            grid.trace, grid.graph, PARAMS, skew_bound=bound
        )
        assert report.stabilized
        assert report.violations == 0
        assert report.stabilization_pulses == 0


class TestCorruption:
    def _run_with_corruption(self, corrupt_fraction=1.0, seed=0):
        grid, bound = selfstab_grid(diameter=5, layers=6)
        total = 20
        grid.build(total)
        corrupt_at = 10 * PARAMS.Lambda
        grid.sim.run_until(corrupt_at)
        rng = np.random.default_rng(seed)
        for node, process in grid.nodes.items():
            if not isinstance(process, GradientTrixNode):
                continue
            if rng.random() <= corrupt_fraction:
                corrupt_node(process, rng, time_scale=2 * PARAMS.Lambda)
        grid.sim.run_until((total + 12) * PARAMS.Lambda)
        return grid, bound, corrupt_at, total

    def test_full_corruption_recovers(self):
        grid, bound, corrupt_at, total = self._run_with_corruption(1.0)
        report = measure_stabilization(
            grid.trace,
            grid.graph,
            PARAMS,
            skew_bound=bound,
            observe_from=corrupt_at,
            observe_until=(total - 1) * PARAMS.Lambda,
        )
        assert report.stabilized
        # O(sqrt n) budget, generously interpreted.
        n = grid.graph.num_nodes
        assert report.stabilization_pulses <= 4 * math.sqrt(n) + 10

    def test_partial_corruption_recovers(self):
        grid, bound, corrupt_at, total = self._run_with_corruption(0.4, seed=3)
        report = measure_stabilization(
            grid.trace,
            grid.graph,
            PARAMS,
            skew_bound=bound,
            observe_from=corrupt_at,
            observe_until=(total - 1) * PARAMS.Lambda,
        )
        assert report.stabilized

    def test_corruption_actually_disrupts(self):
        grid, bound, corrupt_at, total = self._run_with_corruption(1.0)
        report = measure_stabilization(
            grid.trace,
            grid.graph,
            PARAMS,
            skew_bound=bound,
            observe_from=corrupt_at,
            observe_until=(total - 1) * PARAMS.Lambda,
        )
        # The transient fault must be visible (otherwise the test is vacuous).
        assert report.violations > 0

    def test_spurious_messages_absorbed(self):
        grid, bound = selfstab_grid(diameter=5, layers=6)
        total = 18
        grid.build(total)
        inject_at = 8 * PARAMS.Lambda
        grid.sim.run_until(inject_at)
        rng = np.random.default_rng(1)
        for layer in range(1, grid.graph.num_layers):
            v = int(rng.integers(0, grid.graph.width))
            grid.network.inject_at(
                (v, layer),
                {PULSE: 0},
                (v, layer - 1),
                inject_at + float(rng.uniform(0, PARAMS.d)),
            )
        grid.sim.run_until((total + 10) * PARAMS.Lambda)
        report = measure_stabilization(
            grid.trace,
            grid.graph,
            PARAMS,
            skew_bound=bound,
            observe_from=inject_at,
            observe_until=(total - 1) * PARAMS.Lambda,
        )
        assert report.stabilized
        assert report.stabilization_pulses <= grid.graph.num_layers + 6


class TestWatchdog:
    def test_watchdog_clears_orphan_reception(self):
        """A lone neighbor pulse with nothing following is forgotten."""
        sim = Simulator()
        net = Network(sim, UniformDelayModel(PARAMS.d, PARAMS.u))
        trace = Trace()
        node = SelfStabilizingNode(
            sim,
            net,
            trace,
            (1, 1),
            AffineClock(),
            PARAMS,
            own_pred=(1, 0),
            neighbor_preds=[(0, 0), (2, 0)],
            successors=[],
            skew_estimate=0.5,
        )
        net.register(node)
        net.inject_at((1, 1), {PULSE: 0}, (0, 0), time=1.0)
        sim.run_until(50.0)
        assert math.isinf(node.h_min)
        assert not node._received
        assert len(trace) == 0  # never pulsed on garbage

    def test_watchdog_does_not_clear_when_own_present(self):
        sim = Simulator()
        net = Network(sim, UniformDelayModel(PARAMS.d, PARAMS.u))
        trace = Trace()
        node = SelfStabilizingNode(
            sim,
            net,
            trace,
            (1, 1),
            AffineClock(),
            PARAMS,
            own_pred=(1, 0),
            neighbor_preds=[(0, 0), (2, 0)],
            successors=[],
            skew_estimate=0.5,
        )
        net.register(node)
        net.inject_at((1, 1), {PULSE: 0}, (1, 0), time=1.0)  # own
        net.inject_at((1, 1), {PULSE: 0}, (0, 0), time=1.01)  # one neighbor
        sim.run_until(50.0)
        # Own + first neighbor present: the missing-H_max timeout fires
        # instead and the node pulses.
        assert len(trace) == 1


class TestChainForwardNode:
    def _chain(self, length=4):
        sim = Simulator()
        net = Network(sim, UniformDelayModel(PARAMS.d, PARAMS.u))
        trace = Trace()
        nodes = []
        for i in range(length):
            node = ChainForwardNode(
                sim,
                net,
                trace,
                (i, 0),
                AffineClock(),
                PARAMS,
                chain_pred=(i - 1, 0) if i > 0 else None,
                chain_succ=(i + 1, 0) if i < length - 1 else None,
                layer1_successors=[],
            )
            net.register(node)
            nodes.append(node)
        return sim, net, trace, nodes

    def test_forwards_down_the_chain(self):
        sim, net, trace, nodes = self._chain()
        net.inject_at((0, 0), {PULSE: 0}, "source", time=0.0)
        sim.run_until(50.0)
        times = [trace.pulse_time((i, 0), 0) for i in range(4)]
        assert all(t is not None for t in times)
        # Each hop takes delay + (Lambda - d) local: within [L - k/2, L].
        for a, b in zip(times, times[1:]):
            assert PARAMS.Lambda - PARAMS.kappa / 2 - 1e-9 <= b - a <= PARAMS.Lambda + 1e-9

    def test_overwrite_semantics_self_stabilize(self):
        # A spurious pulse in flight is overwritten by the next real pulse.
        sim, net, trace, nodes = self._chain(length=3)
        net.inject_at((1, 0), {PULSE: 3}, (0, 0), time=0.1)  # garbage
        net.inject_at((0, 0), {PULSE: 0}, "source", time=0.5)
        sim.run_until(50.0)
        # Node 1 pulses twice at most (garbage + real), node 2 follows the
        # latest forwarding; the chain keeps operating.
        assert trace.num_pulses((2, 0)) >= 1

    def test_ignores_non_pred_senders(self):
        sim, net, trace, nodes = self._chain(length=3)
        net.inject_at((1, 0), {PULSE: 0}, (2, 0), time=0.1)  # wrong sender
        sim.run_until(10.0)
        assert trace.num_pulses((1, 0)) == 0
