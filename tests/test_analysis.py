"""Tests for repro.analysis: skew measures, potentials, fits, reports."""

import math

import numpy as np
import pytest

from repro.analysis import (
    Psi,
    Xi,
    fit_linear,
    fit_log2,
    fit_power,
    format_table,
    global_skew,
    inter_layer_skew,
    local_skew_per_layer,
    max_local_skew,
    overall_skew,
    psi,
    times_from_trace,
    xi,
)
from repro.analysis.potentials import local_skew_bound_from_potential
from repro.analysis.report import format_value
from repro.core.fast import FastResult
from repro.core.layer0 import AlternatingLayer0
from repro.engine.trace import Trace
from repro.faults import FaultPlan
from repro.topology import LayeredGraph, replicated_line
from tests.test_fast_sim import PARAMS, noisy_sim


def synthetic_result(times):
    """FastResult with hand-written pulse times (K, L, W)."""
    times = np.asarray(times, dtype=float)
    k, layers, width = times.shape
    base = replicated_line(width - 2)
    assert base.num_nodes == width
    graph = LayeredGraph(base, layers)
    result = FastResult(graph, PARAMS, FaultPlan.none(), k)
    result.times[:] = times
    return result


class TestSkewMeasures:
    def test_zero_for_identical_times(self):
        result = synthetic_result(np.zeros((2, 3, 6)))
        assert max_local_skew(result) == 0.0
        assert global_skew(result) == 0.0

    def test_local_skew_simple(self):
        times = np.zeros((1, 2, 6))
        times[0, 1, 2] = 0.5  # one node late on layer 1
        result = synthetic_result(times)
        skews = local_skew_per_layer(result)
        assert skews[0] == 0.0
        assert skews[1] == 0.5

    def test_local_skew_uses_adjacent_pairs_only(self):
        # A gradient of 0.1 per hop: local skew 0.1, global skew larger.
        times = np.zeros((1, 1, 6))
        times[0, 0, :] = [0.0, 0.1, 0.2, 0.3, 0.05, 0.25]
        result = synthetic_result(times)
        assert local_skew_per_layer(result)[0] <= 0.2
        assert global_skew(result) == pytest.approx(0.3)

    def test_nan_entries_skipped(self):
        times = np.zeros((1, 2, 6))
        times[0, 1, 2] = np.nan
        result = synthetic_result(times)
        assert max_local_skew(result) == 0.0

    def test_all_nan_layer_gives_zero(self):
        times = np.full((1, 2, 6), np.nan)
        result = synthetic_result(times)
        assert max_local_skew(result) == 0.0
        assert global_skew(result) == 0.0

    def test_inter_layer_skew_perfect_pipeline(self):
        # Layer l pulses k at (k + l) * Lambda: inter-layer skew 0.
        k_count, layers, width = 3, 4, 6
        times = np.zeros((k_count, layers, width))
        for k in range(k_count):
            for layer in range(layers):
                times[k, layer, :] = (k + layer) * 2.0
        result = synthetic_result(times)
        assert np.all(inter_layer_skew(result) == 0.0)
        assert overall_skew(result) == 0.0

    def test_inter_layer_skew_detects_offset(self):
        k_count, layers, width = 2, 2, 6
        times = np.zeros((k_count, layers, width))
        times[0, 0, :] = 0.0
        times[1, 0, :] = 2.0
        times[0, 1, :] = 2.3  # layer 1 late vs layer 0's next pulse
        times[1, 1, :] = 4.3
        result = synthetic_result(times)
        assert inter_layer_skew(result)[0] == pytest.approx(0.3)

    def test_single_pulse_has_no_inter_layer_skew(self):
        result = synthetic_result(np.zeros((1, 3, 6)))
        assert np.all(inter_layer_skew(result) == 0.0)

    def test_pulse_subset(self):
        times = np.zeros((3, 1, 6))
        times[2, 0, 0] = 5.0
        result = synthetic_result(times)
        assert max_local_skew(result, pulses=[0, 1]) == 0.0
        assert max_local_skew(result) == 5.0

    def test_times_from_trace(self):
        graph = LayeredGraph(replicated_line(4), 2)
        trace = Trace()
        trace.record_pulse((0, 0), 0, 1.0)
        trace.record_pulse((0, 1), 0, 3.0)
        trace.record_pulse((0, 0), 5, 99.0)  # beyond num_pulses: dropped
        times = times_from_trace(trace, graph, num_pulses=2)
        assert times[0, 0, 0] == 1.0
        assert times[0, 1, 0] == 3.0
        assert math.isnan(times[1, 0, 0])


class TestSkewEmptyAndBatchEntryPoints:
    """Explicit all-NaN behavior and the array-shaped (batched) reducers."""

    def test_empty_layers_report_requested_value(self):
        from repro.analysis.skew import global_skew_per_layer

        times = np.zeros((2, 3, 6))
        times[:, 1, :] = np.nan  # layer 1: no correct pulses at all
        result = synthetic_result(times)
        default = local_skew_per_layer(result)
        assert default[1] == 0.0  # historical default
        explicit = local_skew_per_layer(result, empty=np.nan)
        assert math.isnan(explicit[1])
        assert explicit[0] == 0.0 and explicit[2] == 0.0
        neg = local_skew_per_layer(result, empty=-np.inf)
        assert neg[1] == -np.inf
        assert math.isnan(global_skew_per_layer(result, empty=np.nan)[1])

    def test_no_runtime_warning_on_all_nan_slices(self):
        import warnings

        times = np.full((2, 3, 6), np.nan)
        result = synthetic_result(times)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert max_local_skew(result) == 0.0
            assert global_skew(result) == 0.0
            assert np.all(inter_layer_skew(result) == 0.0)

    def test_batched_reducers_match_per_result_loop(self):
        from repro.analysis.skew import (
            global_skew_layers,
            global_skew_per_layer,
            inter_layer_skew_layers,
            local_skew_layers,
        )

        rng = np.random.default_rng(7)
        stack = []
        results = []
        for _ in range(4):
            times = rng.normal(size=(3, 4, 6))
            times[rng.random(times.shape) < 0.1] = np.nan
            stack.append(times)
            results.append(synthetic_result(times))
        stacked = np.stack(stack)  # (S, K, L, W)
        graph = results[0].graph
        per_layer = local_skew_layers(stacked, graph)
        inter = inter_layer_skew_layers(stacked, graph)
        global_per_layer = global_skew_layers(stacked)
        assert per_layer.shape == (4, 4)
        assert inter.shape == (4, 3)
        assert global_per_layer.shape == (4, 4)
        for i, result in enumerate(results):
            np.testing.assert_allclose(
                per_layer[i], local_skew_per_layer(result), atol=1e-12
            )
            np.testing.assert_allclose(
                inter[i], inter_layer_skew(result), atol=1e-12
            )
            np.testing.assert_allclose(
                global_per_layer[i], global_skew_per_layer(result), atol=1e-12
            )

    def test_overall_skew_layers_matches_per_result(self):
        from repro.analysis.skew import overall_skew, overall_skew_layers

        rng = np.random.default_rng(11)
        stack = []
        results = []
        for _ in range(3):
            times = rng.normal(size=(3, 4, 6))
            times[rng.random(times.shape) < 0.1] = np.nan
            stack.append(times)
            results.append(synthetic_result(times))
        stacked = np.stack(stack)
        graph = results[0].graph
        overall = overall_skew_layers(stacked, graph)
        assert overall.shape == (3,)
        for i, result in enumerate(results):
            np.testing.assert_allclose(
                overall[i], overall_skew(result), atol=1e-12
            )

    def test_overall_skew_layers_single_layer(self):
        from repro.analysis.skew import overall_skew_layers

        times = np.zeros((2, 3, 1, 6))
        times[..., 0] = 0.25  # one edge pair differs within the layer
        graph = synthetic_result(np.zeros((3, 1, 6))).graph
        overall = overall_skew_layers(times, graph)
        assert overall.shape == (2,)
        np.testing.assert_allclose(overall, 0.25)


class TestPotentials:
    def test_psi_definition(self):
        result = noisy_sim(diameter=6).run(1)
        kappa = PARAMS.kappa
        t = result.times
        v, w, layer, s = 2, 5, 3, 1
        d = result.graph.base.distance(v, w)
        expected = t[0, layer, v] - t[0, layer, w] - 4 * s * kappa * d
        assert psi(result, s, v, w, layer, 0) == pytest.approx(expected)

    def test_xi_definition(self):
        result = noisy_sim(diameter=6).run(1)
        kappa = PARAMS.kappa
        t = result.times
        v, w, layer, s = 1, 4, 2, 2
        d = result.graph.base.distance(v, w)
        expected = t[0, layer, v] - t[0, layer, w] - (4 * s - 2) * kappa * d
        assert xi(result, s, v, w, layer, 0) == pytest.approx(expected)

    def test_psi_at_most_xi(self):
        # psi subtracts more per hop: psi <= xi pairwise, so Psi <= Xi.
        result = noisy_sim(diameter=6).run(1)
        for layer in (0, 2, 5):
            assert Psi(result, 1, layer, 0) <= Xi(result, 1, layer, 0) + 1e-12

    def test_Psi_nonnegative(self):
        # Psi maxes over ordered pairs incl. (v, v): always >= 0.
        result = noisy_sim(diameter=6).run(1)
        assert Psi(result, 1, 3, 0) >= 0.0

    def test_observation_4_2(self):
        """Psi^s(l) <= B implies L_l <= B + 4 s kappa."""
        result = noisy_sim(diameter=6).run(2)
        s = 1
        for layer in range(result.graph.num_layers):
            for pulse in range(2):
                bound = local_skew_bound_from_potential(
                    result, s, Psi(result, s, layer, pulse)
                )
                measured = local_skew_per_layer(result, pulses=[pulse])[layer]
                assert measured <= bound + 1e-9

    def test_potential_decays_down_the_grid(self):
        """Lemma 4.22 empirically: injected Psi^1 shrinks layer by layer."""
        sim = noisy_sim(diameter=6, layers=24)
        sim.layer0 = AlternatingLayer0(PARAMS.Lambda, 6 * PARAMS.kappa)
        result = sim.run(1)
        first = Psi(result, 1, 0, 0)
        last = Psi(result, 1, 23, 0)
        assert last < first / 2


class TestFits:
    def test_linear_exact(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_log2_exact(self):
        xs = [2, 4, 8, 16]
        ys = [1 + 3 * math.log2(x) for x in xs]
        fit = fit_log2(xs, ys)
        assert fit.slope == pytest.approx(3.0)
        assert fit.predict(32) == pytest.approx(16.0)

    def test_power_exact(self):
        xs = [1, 2, 4, 8]
        ys = [5 * x**1.5 for x in xs]
        fit = fit_power(xs, ys)
        assert fit.slope == pytest.approx(1.5)
        assert fit.predict(16) == pytest.approx(5 * 16**1.5, rel=1e-6)

    def test_power_discriminates_linear_from_log(self):
        xs = [4, 8, 16, 32, 64]
        linear = fit_power(xs, [0.01 * x for x in xs])
        logish = fit_power(xs, [0.01 * math.log2(x) for x in xs])
        assert linear.slope > 0.9
        assert logish.slope < 0.5

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])
        with pytest.raises(ValueError):
            fit_log2([0, 1], [1, 2])
        with pytest.raises(ValueError):
            fit_power([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_linear([1, 2], [1, 2, 3])

    def test_constant_data_r_squared_one(self):
        fit = fit_linear([1, 2, 3], [4, 4, 4])
        assert fit.r_squared == 1.0
        assert fit.slope == pytest.approx(0.0)


class TestReport:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(3) == "3"
        assert "e" in format_value(1.23e-7)
        assert format_value(0.1234) == "0.1234"

    def test_format_table_alignment(self):
        table = format_table(
            ["a", "bb"], [(1, 2.5), (10, 0.125)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])
