"""Streaming reducers: memory contract, shard merging, pickling, sketch.

The bitwise agreement of streamed statistics with the materialized array
reducers across every execution path lives in ``test_differential.py``;
this module pins everything else the streaming pipeline promises:

* ``store_times=False`` never allocates the ``(S, K, L, W)`` pulse-time
  block (asserted with :mod:`tracemalloc`, not by inspection),
* streamed accumulators survive process-executor pickling, shard merges
  reproduce the serial run bitwise, and one stack group's results share
  one :class:`StreamedStats` even after a pickle round-trip,
* the incremental low-rank sketch reconstructs the block exactly while
  the data rank fits, stays bounded when it does not, and merges across
  shards, and
* the failure modes raise instead of silently serving garbage (mixed
  streamed/materialized batches, missing reducers, block-less results
  without accumulators).
"""

import pickle
import tracemalloc

import numpy as np
import pytest

from repro.analysis.skew import local_skew_layers
from repro.analysis.streaming import (
    IncrementalSketch,
    StreamLayout,
    StreamedStats,
    default_reducers,
)
from repro.core.fast import FastSimulation
from repro.core.fast_batch import TrialStack
from repro.experiments.batch import BatchRunner, BatchTrial
from repro.experiments.common import standard_config
from repro.faults.injection import FaultPlan

NUM_PULSES = 4


def _trials(n=6, seed0=0, faults=True):
    """A mixed-geometry, mixed-fault trial list (exercises every path)."""
    trials = []
    for s in range(n):
        diameter = [6, 8, 10][s % 3]
        config = standard_config(diameter, seed=seed0 + s)
        plan = (
            FaultPlan.random(config.graph, 0.08, rng_or_seed=seed0 + s)
            if faults and s % 2
            else None
        )
        trials.append(BatchTrial(config=config, fault_plan=plan))
    return trials


def _simulation(diameter=6, seed=0):
    config = standard_config(diameter, seed=seed)
    return FastSimulation(
        config.graph,
        config.params,
        delay_model=config.delay_model,
        clock_rates=config.clock_rates,
    )


# ----------------------------------------------------------------------
# Memory contract
# ----------------------------------------------------------------------
class TestMemoryContract:
    def test_streaming_never_allocates_the_block(self):
        """Peak streamed allocation stays under ONE (S, K, L, W) matrix.

        The materialized run keeps five such matrices; if the streaming
        path ever materialized even one, its traced peak would exceed
        the single-block budget this asserts against.
        """
        num_pulses = 48
        trials = [
            BatchTrial(config=standard_config(8, seed=s)) for s in range(24)
        ]
        graph = trials[0].config.graph
        block_bytes = (
            len(trials) * num_pulses * graph.num_layers * graph.width * 8
        )
        # Warm the per-edge delay/rate caches (they live on the configs'
        # delay models and scale with S*L*W, independent of the pulse
        # count) so the traced peaks below isolate the result matrices.
        BatchRunner(num_pulses=2, store_times=False).run(trials)

        tracemalloc.start()
        tracemalloc.reset_peak()
        streamed = BatchRunner(
            num_pulses=num_pulses, store_times=False
        ).run(trials)
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert streamed.streaming
        assert stream_peak < block_bytes, (
            f"streaming peak {stream_peak} exceeds one pulse-time block "
            f"({block_bytes} bytes) -- the (S, K, L, W) block leaked back"
        )

        tracemalloc.start()
        tracemalloc.reset_peak()
        materialized = BatchRunner(num_pulses=num_pulses).run(trials)
        _, full_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Sanity: the materialized run really pays for the block(s), so
        # the streamed bound above is a real constraint, not a tautology.
        assert full_peak > 2 * block_bytes
        np.testing.assert_array_equal(
            streamed.max_local_skews(), materialized.max_local_skews()
        )

    def test_streamed_results_hold_no_matrices(self):
        batch = BatchRunner(num_pulses=3, store_times=False).run(_trials())
        assert batch.times is None
        assert batch.corrections is None
        assert batch.effective_corrections is None
        for result in batch.results:
            assert result.times is None
            assert result.protocol_times is None
            assert result.corrections is None
            assert result.effective_corrections is None
            assert result.branches is None
            assert result.streamed is not None


# ----------------------------------------------------------------------
# Process shards and pickling
# ----------------------------------------------------------------------
class TestShardsAndPickling:
    def test_process_shard_merge_matches_serial_bitwise(self):
        """Satellite regression: accumulators cross the process boundary.

        ``FastResult.__getstate__`` must keep ``streamed`` (it strips the
        stacked pulse-time block); a silent drop here would make every
        process-sharded streaming sweep raise on first accessor use.
        """
        serial = BatchRunner(num_pulses=NUM_PULSES, store_times=False).run(
            _trials(8)
        )
        sharded = BatchRunner(
            num_pulses=NUM_PULSES,
            store_times=False,
            executor="process",
            shards=3,
        ).run(_trials(8))
        assert sharded.streaming
        for name in (
            "local_skews",
            "inter_layer_skews",
            "max_local_skews",
            "max_inter_layer_skews",
            "overall_skews",
            "global_skews",
        ):
            np.testing.assert_array_equal(
                getattr(serial, name)(),
                getattr(sharded, name)(),
                err_msg=name,
            )
        want, got = serial.correction_stats(), sharded.correction_stats()
        for key in want:
            np.testing.assert_array_equal(want[key], got[key], err_msg=key)
        np.testing.assert_array_equal(
            serial.faulty_masks, sharded.faulty_masks
        )

    def test_pickle_round_trip_preserves_accessors(self):
        result = _simulation().run(NUM_PULSES, store_times=False)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.times is None
        assert clone.max_local_skew() == result.max_local_skew()
        assert clone.global_skew() == result.global_skew()
        np.testing.assert_array_equal(
            clone.streamed["local"].trial_values(clone.streamed_row),
            result.streamed["local"].trial_values(result.streamed_row),
        )

    def test_stack_group_shares_one_stream_through_pickle(self):
        """Pickle memoization dedupes the group's shared accumulators."""
        sims = [_simulation(seed=s) for s in range(3)]
        results = TrialStack(sims).run(NUM_PULSES, store_times=False)
        assert all(r.streamed is results[0].streamed for r in results)
        clones = pickle.loads(pickle.dumps(results))
        assert all(c.streamed is clones[0].streamed for c in clones)
        for clone, result in zip(clones, results):
            assert clone.streamed_row == result.streamed_row
            assert clone.max_local_skew() == result.max_local_skew()

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_every_shard_count_matches_serial_bitwise(self, shards):
        """Shard-count regression: 1, 2, and 3 shards all reassemble to
        the serial trial order (uneven splits included -- 8 trials over
        3 shards)."""
        serial = BatchRunner(num_pulses=NUM_PULSES, store_times=False).run(
            _trials(8)
        )
        sharded = BatchRunner(
            num_pulses=NUM_PULSES,
            store_times=False,
            executor="process",
            shards=shards,
        ).run(_trials(8))
        np.testing.assert_array_equal(
            serial.max_local_skews(), sharded.max_local_skews()
        )
        np.testing.assert_array_equal(
            serial.global_skews(), sharded.global_skews()
        )

    def test_merge_orders_shards_by_trial_offset(self):
        """Satellite regression: ``merge`` follows batch position, not
        argument order.

        Shard futures can resolve in any order; a consumer folding
        ``later.merge(earlier)`` used to concatenate the trial axis
        backwards, silently misattributing every per-trial statistic.
        """
        batch = BatchRunner(
            num_pulses=NUM_PULSES,
            store_times=False,
            executor="process",
            shards=2,
        ).run(_trials(6))
        streams = []
        for result in batch.results:
            if not any(result.streamed is s for s in streams):
                streams.append(result.streamed)
        assert len(streams) >= 2
        offsets = [s.trial_offset for s in streams]
        assert offsets == sorted(offsets) and len(set(offsets)) == len(
            offsets
        )
        a, b = streams[0], streams[1]
        forward = a.merge(b)
        backward = b.merge(a)
        assert forward.trial_offset == backward.trial_offset == min(
            a.trial_offset, b.trial_offset
        )
        for row in range(forward.layout.num_trials):
            np.testing.assert_array_equal(
                forward["local"].trial_values(row),
                backward["local"].trial_values(row),
            )
            assert forward["corrections"].trial_stats(row) == backward[
                "corrections"
            ].trial_stats(row)
        # Row 0 of the merged stream is the batch's first trial either
        # way (the lower-offset shard leads).
        np.testing.assert_array_equal(
            backward["local"].trial_values(0),
            a["local"].trial_values(0),
        )

    def test_streamed_stats_merge_concatenates_trials(self):
        a = _simulation(6, seed=0).run(NUM_PULSES, store_times=False)
        b = _simulation(8, seed=1).run(NUM_PULSES, store_times=False)
        merged = a.streamed.merge(b.streamed)
        assert merged.layout.num_trials == 2
        np.testing.assert_array_equal(
            merged["local"].trial_values(0),
            a.streamed["local"].trial_values(a.streamed_row),
        )
        np.testing.assert_array_equal(
            merged["local"].trial_values(1),
            b.streamed["local"].trial_values(b.streamed_row),
        )
        for row, source in ((0, a), (1, b)):
            assert (
                merged["corrections"].trial_stats(row)
                == source.streamed["corrections"].trial_stats(
                    source.streamed_row
                )
            )


# ----------------------------------------------------------------------
# Incremental sketch
# ----------------------------------------------------------------------
class TestIncrementalSketch:
    def _run_with_sketch(self, rank, diameter=6, seed=0):
        sim = _simulation(diameter, seed=seed)
        reducers = default_reducers(sketch_rank=rank)
        streamed = sim.run(NUM_PULSES, reducers=reducers, store_times=True)
        return streamed, streamed.streamed["sketch"]

    def test_exact_reconstruction_at_full_rank(self):
        graph = standard_config(6).graph
        planes = NUM_PULSES * graph.num_layers
        result, sketch = self._run_with_sketch(rank=planes)
        assert sketch.num_columns == planes
        want = np.where(np.isnan(result.times), 0.0, result.times)[None]
        np.testing.assert_allclose(
            sketch.reconstruct(), want, rtol=0.0, atol=1e-8
        )

    def test_rank_stays_bounded(self):
        rank = 3
        _, sketch = self._run_with_sketch(rank=rank)
        assert sketch._sv.size <= rank
        assert sketch._u.shape[1] <= rank
        assert sketch._vt.shape[0] <= rank
        # Still a sensible approximation: the dominant singular direction
        # of pulse-time planes is huge (times grow ~linearly per pulse).
        result, _ = self._run_with_sketch(rank=rank)
        want = np.where(np.isnan(result.times), 0.0, result.times)[None]
        got = sketch.reconstruct()
        rel = np.linalg.norm(got - want) / np.linalg.norm(want)
        assert rel < 0.05

    def test_merged_sketch_covers_both_shards(self):
        planes = NUM_PULSES * standard_config(6).graph.num_layers
        result_a, sketch_a = self._run_with_sketch(rank=planes, seed=0)
        result_b, sketch_b = self._run_with_sketch(rank=planes, seed=1)
        layout = StreamLayout(
            [result_a.graph, result_b.graph],
            [result_a.params.kappa, result_b.params.kappa],
            NUM_PULSES,
        )
        merged = sketch_a.merged(sketch_b, layout)
        stacked = np.concatenate(
            [
                np.where(np.isnan(r.times), 0.0, r.times)[None]
                for r in (result_a, result_b)
            ]
        )
        np.testing.assert_allclose(
            merged.reconstruct(), stacked, rtol=0.0, atol=1e-8
        )

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            IncrementalSketch(0)

    def test_batch_carries_the_sketch(self):
        batch = BatchRunner(
            num_pulses=3, store_times=False, sketch_rank=2
        ).run(_trials(4, faults=False))
        sketches = batch.sketches()
        assert sketches and all(s._sv.size <= 2 for s in sketches)


# ----------------------------------------------------------------------
# Failure modes
# ----------------------------------------------------------------------
class TestFailureModes:
    def test_mixed_streamed_and_materialized_batch_rejected(self):
        from repro.experiments.batch import BatchResult

        streamed = _simulation(seed=0).run(NUM_PULSES, store_times=False)
        materialized = _simulation(seed=1).run(NUM_PULSES)
        with pytest.raises(ValueError, match="mix"):
            BatchResult(_trials(2), [streamed, materialized])

    def test_missing_reducer_raises_on_access(self):
        batch = BatchRunner(num_pulses=3, store_times=False).run(_trials(2))
        with pytest.raises(ValueError, match="potential_s2"):
            batch.potentials(2)
        with pytest.raises(ValueError, match="sketch"):
            batch.sketches()

    def test_blockless_result_without_stream_raises(self):
        result = _simulation().run(NUM_PULSES, store_times=False)
        result.streamed = None
        with pytest.raises(ValueError, match="store_times=True"):
            result.max_local_skew()

    def test_streamed_accessors_match_materialized_reference(self):
        streamed = _simulation(seed=3).run(NUM_PULSES, store_times=False)
        materialized = _simulation(seed=3).run(NUM_PULSES)
        np.testing.assert_array_equal(
            streamed.streamed["local"].trial_values(streamed.streamed_row),
            local_skew_layers(materialized.times, materialized.graph),
        )
        assert streamed.max_local_skew() == materialized.max_local_skew()
        assert streamed.global_skew() == materialized.global_skew()
