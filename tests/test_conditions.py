"""Tests for repro.core.conditions: SC/FC/JC hold on real executions.

These are the empirical counterparts of Lemmas D.4-D.6: every execution of
the algorithm must satisfy the slow, fast, and jump conditions at every
correct node with correct predecessors.
"""

import numpy as np
import pytest

from repro.core.conditions import (
    check_all_conditions,
    check_fast_condition,
    check_jump_condition,
    check_slow_condition,
)
from repro.core.layer0 import AlternatingLayer0, JitteredLayer0
from repro.faults import AdversarialLateFault, CrashFault, FaultPlan
from tests.test_fast_sim import PARAMS, noisy_sim


class TestFaultFree:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_no_violations_on_noisy_runs(self, seed):
        result = noisy_sim(diameter=8, seed=seed).run(3)
        assert check_all_conditions(result) == []

    def test_no_violations_with_jittered_input(self):
        sim = noisy_sim(diameter=8, seed=0)
        sim.layer0 = JitteredLayer0(
            PARAMS.Lambda, sim.graph.width, jitter_bound=2 * PARAMS.kappa, seed=1
        )
        assert check_all_conditions(sim.run(3)) == []

    def test_no_violations_with_zigzag_input(self):
        # Large initial skew exercises the low/high jump branches.
        sim = noisy_sim(diameter=8, seed=0)
        sim.layer0 = AlternatingLayer0(PARAMS.Lambda, 5 * PARAMS.kappa)
        result = sim.run(2)
        assert check_all_conditions(result) == []
        # Sanity: the run actually used jump branches.
        from repro.core.fast import BRANCH_CODES

        used = set(np.unique(result.branches))
        assert BRANCH_CODES["low"] in used or BRANCH_CODES["high"] in used


class TestWithFaults:
    def test_conditions_hold_at_unaffected_nodes(self):
        # Checkers skip nodes with faulty predecessors; everything else
        # must still satisfy the conditions.
        plan = FaultPlan.from_nodes(
            {(4, 3): CrashFault(), (1, 5): AdversarialLateFault(30.0)}
        )
        sim = noisy_sim(diameter=8, seed=1)
        sim.fault_plan = plan
        assert check_all_conditions(sim.run(3)) == []


class TestViolationDetection:
    def _doctored(self):
        result = noisy_sim(diameter=6, seed=0).run(2)
        return result

    def test_slow_violation_detected(self):
        result = self._doctored()
        # Inflate one effective correction: a big positive C with no
        # matching lateness violates SC.
        result.effective_corrections[0, 2, 3] = 1.0
        violations = check_slow_condition(result)
        assert violations
        assert violations[0].node == (3, 2)

    def test_fast_violation_detected(self):
        result = self._doctored()
        # A hugely negative C with aligned predecessors violates FC.
        result.effective_corrections[0, 2, 3] = -1.0
        violations = check_fast_condition(result)
        assert violations
        assert violations[0].condition.startswith("FC")

    def test_jump_violation_detected(self):
        result = self._doctored()
        # A moderately negative C without the required gap to the earliest
        # neighbor violates JC (JC-2 needs C >= t - t_min + kappa).
        result.effective_corrections[0, 2, 3] = -3 * PARAMS.kappa
        violations = check_jump_condition(result)
        assert violations
        assert violations[0].condition == "JC"

    def test_violation_string_rendering(self):
        result = self._doctored()
        result.effective_corrections[0, 2, 3] = 1.0
        violation = check_slow_condition(result)[0]
        text = str(violation)
        assert "SC" in text and "node=(3, 2)" in text
