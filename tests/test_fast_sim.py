"""Tests for repro.core.fast: the layer-recurrence simulator, fault-free."""

import math

import numpy as np
import pytest

from repro.analysis.skew import max_inter_layer_skew
from repro.clocks import uniform_random_rates
from repro.core.correction import CorrectionPolicy
from repro.core.fast import BRANCH_CODES, FastSimulation
from repro.core.layer0 import JitteredLayer0
from repro.delays import StaticDelayModel
from repro.params import Parameters
from repro.topology import LayeredGraph, cycle_graph, replicated_line

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)


#: FastResult arrays the scalar/vectorized cross-validation compares.
RESULT_ARRAYS = ("times", "protocol_times", "corrections", "effective_corrections")


def assert_results_equivalent(vec, scalar, check_fault_sends=False):
    """Assert two FastResults agree to 1e-9 (shared by the sim/fault tests)."""
    for attr in RESULT_ARRAYS:
        np.testing.assert_allclose(
            getattr(vec, attr),
            getattr(scalar, attr),
            rtol=0.0,
            atol=1e-9,
            equal_nan=True,
            err_msg=attr,
        )
    assert np.array_equal(vec.branches, scalar.branches)
    if not check_fault_sends:
        return
    assert set(vec.fault_sends) == set(scalar.fault_sends)
    for edge, pulses in vec.fault_sends.items():
        reference = scalar.fault_sends[edge]
        assert set(pulses) == set(reference)
        for pulse, send in pulses.items():
            other = reference[pulse]
            if send is None or other is None:
                assert send is other
            else:
                assert send == pytest.approx(other, abs=1e-9)


def noisy_sim(diameter=8, layers=None, seed=0, **kwargs):
    base = replicated_line(diameter + 1)
    graph = LayeredGraph(base, layers or diameter + 1)
    delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=seed)
    rates = {
        node: clock.rate
        for node, clock in uniform_random_rates(
            graph.nodes(), PARAMS.vartheta, rng_or_seed=seed + 1
        ).items()
    }
    return FastSimulation(
        graph, PARAMS, delay_model=delays, clock_rates=rates, **kwargs
    )


class TestIdealExecution:
    def test_uniform_setup_has_zero_skew(self):
        graph = LayeredGraph(replicated_line(6), 6)
        sim = FastSimulation(graph, PARAMS)
        result = sim.run(3)
        assert result.max_local_skew() == 0.0
        assert result.global_skew() == 0.0

    def test_every_node_pulses(self):
        graph = LayeredGraph(replicated_line(6), 6)
        result = FastSimulation(graph, PARAMS).run(3)
        assert not np.isnan(result.times).any()

    def test_layer_latency_about_lambda(self):
        # Each layer forwards about Lambda - u/2 after the previous.
        graph = LayeredGraph(replicated_line(6), 6)
        result = FastSimulation(graph, PARAMS).run(2)
        gaps = result.times[0, 1:, 0] - result.times[0, :-1, 0]
        assert np.all(np.abs(gaps - PARAMS.Lambda) < 3 * PARAMS.kappa + PARAMS.u)

    def test_period_is_lambda(self):
        graph = LayeredGraph(replicated_line(6), 6)
        result = FastSimulation(graph, PARAMS).run(3)
        periods = np.diff(result.times, axis=0)
        assert np.allclose(periods, PARAMS.Lambda)

    def test_rejects_zero_pulses(self):
        graph = LayeredGraph(replicated_line(6), 6)
        with pytest.raises(ValueError):
            FastSimulation(graph, PARAMS).run(0)

    def test_rejects_unknown_algorithm(self):
        graph = LayeredGraph(replicated_line(6), 6)
        with pytest.raises(ValueError):
            FastSimulation(graph, PARAMS, algorithm="bogus")


class TestNoisyExecution:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_local_skew_within_theorem_11_bound(self, seed):
        sim = noisy_sim(diameter=8, seed=seed)
        result = sim.run(4)
        assert result.max_local_skew() <= PARAMS.local_skew_bound(8)

    def test_global_skew_within_bound(self):
        result = noisy_sim(diameter=8).run(4)
        assert result.global_skew() <= PARAMS.global_skew_bound(8)

    def test_inter_layer_skew_bounded(self):
        result = noisy_sim(diameter=8).run(4)
        assert max_inter_layer_skew(result) <= PARAMS.local_skew_bound(8)

    def test_lemma_d3_step_bounds(self):
        """Lemma D.3: d - u + (Lambda - d - C)/vt <= t_{v,l} - t_{v,l-1}
        <= Lambda - C for correct nodes."""
        result = noisy_sim(diameter=6).run(3)
        graph = result.graph
        for k in range(3):
            for layer in range(1, graph.num_layers):
                for v in graph.base.nodes():
                    c = result.effective_corrections[k, layer, v]
                    if math.isnan(c):
                        continue
                    step = (
                        result.times[k, layer, v]
                        - result.times[k, layer - 1, v]
                    )
                    upper = PARAMS.Lambda - c + 1e-9
                    lower = (
                        PARAMS.d
                        - PARAMS.u
                        + (PARAMS.Lambda - PARAMS.d - c) / PARAMS.vartheta
                        - 1e-9
                    )
                    assert lower <= step <= upper

    def test_lemma_d2_correction_bound(self):
        """Lemma D.2: C_{v,l} <= Lambda - d."""
        result = noisy_sim(diameter=8).run(3)
        finite = result.corrections[np.isfinite(result.corrections)]
        assert np.all(finite <= PARAMS.Lambda - PARAMS.d + 1e-9)

    def test_jittered_input_converges(self):
        # Moderate input jitter is absorbed within a few layers.
        graph = LayeredGraph(replicated_line(8), 20)
        layer0 = JitteredLayer0(
            PARAMS.Lambda, graph.width, jitter_bound=3 * PARAMS.kappa, seed=3
        )
        delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
        result = FastSimulation(
            graph, PARAMS, delay_model=delays, layer0=layer0
        ).run(2)
        from repro.analysis.skew import local_skew_per_layer

        skews = local_skew_per_layer(result)
        assert skews[-1] < skews[0]
        assert skews[-1] <= PARAMS.local_skew_bound(graph.diameter)

    def test_branch_codes_cover_run(self):
        result = noisy_sim(diameter=8).run(3)
        seen = set(np.unique(result.branches))
        assert BRANCH_CODES["layer0"] in seen
        # Correction branches dominate in fault-free noisy runs.
        assert (
            BRANCH_CODES["mid"] in seen
            or BRANCH_CODES["low"] in seen
            or BRANCH_CODES["high"] in seen
        )
        assert BRANCH_CODES["none"] not in seen

    def test_deterministic(self):
        a = noisy_sim(diameter=6, seed=4).run(3)
        b = noisy_sim(diameter=6, seed=4).run(3)
        assert np.array_equal(a.times, b.times)

    def test_cycle_base_graph(self):
        graph = LayeredGraph(cycle_graph(10), 10)
        delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
        result = FastSimulation(graph, PARAMS, delay_model=delays).run(3)
        assert result.max_local_skew() <= PARAMS.local_skew_bound(5)


class TestSimplifiedEquivalence:
    """Lemma B.2: without faults, Algorithms 1 and 3 behave alike.

    The pseudocode equivalence is exact except in a ~kappa-wide regime of
    very late own-copies (see the discussion in repro.core.fast); the test
    asserts agreement within one kappa.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agreement_within_kappa(self, seed):
        full = noisy_sim(diameter=8, seed=seed, algorithm="full").run(3)
        simple = noisy_sim(diameter=8, seed=seed, algorithm="simplified").run(3)
        diff = np.abs(full.times - simple.times)
        assert np.nanmax(diff) <= PARAMS.kappa + 1e-9

    def test_exact_agreement_in_ideal_setup(self):
        graph = LayeredGraph(replicated_line(6), 6)
        full = FastSimulation(graph, PARAMS, algorithm="full").run(3)
        simple = FastSimulation(graph, PARAMS, algorithm="simplified").run(3)
        assert np.array_equal(full.times, simple.times)


class TestVectorizedCrossValidation:
    """The array kernel must match the scalar replay to float precision."""

    def assert_equivalent(self, vec, scalar):
        assert_results_equivalent(vec, scalar)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_scalar_on_random_rates_and_delays(self, seed):
        vec = noisy_sim(diameter=8, seed=seed).run(4)
        scalar = noisy_sim(diameter=8, seed=seed, vectorize=False).run(4)
        self.assert_equivalent(vec, scalar)

    def test_matches_scalar_on_cycle_base_graph(self):
        def build(vectorize):
            graph = LayeredGraph(cycle_graph(10), 10)
            delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=2)
            return FastSimulation(
                graph, PARAMS, delay_model=delays, vectorize=vectorize
            ).run(3)

        self.assert_equivalent(build(True), build(False))

    def test_matches_scalar_with_jittered_layer0(self):
        def build(vectorize):
            graph = LayeredGraph(replicated_line(8), 12)
            layer0 = JitteredLayer0(
                PARAMS.Lambda, graph.width, jitter_bound=3 * PARAMS.kappa, seed=5
            )
            delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=1)
            return FastSimulation(
                graph, PARAMS, delay_model=delays, layer0=layer0,
                vectorize=vectorize,
            ).run(3)

        self.assert_equivalent(build(True), build(False))

    def test_matches_scalar_with_continuous_policy(self):
        policy = CorrectionPolicy(discretize=False)
        vec = noisy_sim(diameter=8, seed=1, policy=policy).run(3)
        scalar = noisy_sim(
            diameter=8, seed=1, policy=policy, vectorize=False
        ).run(3)
        self.assert_equivalent(vec, scalar)

    def test_swapping_delay_model_between_runs_invalidates_caches(self):
        # The sweep caches per-layer delay/rate arrays across runs; swapping
        # the provider must not serve stale arrays (regression test).
        graph = LayeredGraph(replicated_line(6), 6)
        sim = FastSimulation(
            graph, PARAMS, delay_model=StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
        )
        sim.run(2)
        sim.delay_model = StaticDelayModel(PARAMS.d, PARAMS.u, seed=99)
        swapped = sim.run(2)
        fresh = FastSimulation(
            graph, PARAMS,
            delay_model=StaticDelayModel(PARAMS.d, PARAMS.u, seed=99),
            vectorize=False,
        ).run(2)
        self.assert_equivalent(swapped, fresh)

    def test_mutating_rates_dict_between_runs_is_honored(self):
        # The rate cache is rebuilt per run, so in-place edits to a rates
        # dict between runs must reach the kernel (regression test).
        graph = LayeredGraph(replicated_line(6), 6)
        rates = {node: 1.0 for node in graph.nodes()}
        sim = FastSimulation(graph, PARAMS, clock_rates=rates)
        sim.run(2)
        for node in rates:
            rates[node] = 1.0005
        mutated = sim.run(2)
        fresh = FastSimulation(
            graph, PARAMS, clock_rates=dict(rates), vectorize=False
        ).run(2)
        self.assert_equivalent(mutated, fresh)

    def test_matches_scalar_with_callable_rates(self):
        def rates(node, pulse):
            v, layer = node
            return 1.0 + 0.0008 * ((v * 31 + layer * 7 + pulse) % 11) / 11.0

        def build(vectorize):
            graph = LayeredGraph(replicated_line(8), 8)
            delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
            return FastSimulation(
                graph, PARAMS, delay_model=delays, clock_rates=rates,
                vectorize=vectorize,
            ).run(3)

        self.assert_equivalent(build(True), build(False))


class TestPolicies:
    def test_continuous_policy_still_bounded(self):
        result = noisy_sim(
            diameter=8, policy=CorrectionPolicy(discretize=False)
        ).run(3)
        assert result.max_local_skew() <= PARAMS.local_skew_bound(8)

    def test_rate_provider_callable(self):
        graph = LayeredGraph(replicated_line(6), 6)
        sim = FastSimulation(
            graph, PARAMS, clock_rates=lambda node, pulse: 1.0005
        )
        result = sim.run(2)
        assert not np.isnan(result.times).any()

    def test_result_accessors(self):
        result = noisy_sim(diameter=6).run(2)
        node = (2, 3)
        assert result.pulse_time(node, 1) == result.times[1, 3, 2]
        assert result.faulty_mask.sum() == 0
