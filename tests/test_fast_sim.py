"""Tests for repro.core.fast: the layer-recurrence simulator, fault-free."""

import math

import numpy as np
import pytest

from repro.analysis.skew import max_inter_layer_skew
from repro.clocks import uniform_random_rates
from repro.core.correction import CorrectionPolicy
from repro.core.fast import BRANCH_CODES, FastSimulation
from repro.core.layer0 import JitteredLayer0, PerfectLayer0
from repro.delays import StaticDelayModel, UniformDelayModel
from repro.params import Parameters
from repro.topology import LayeredGraph, cycle_graph, replicated_line

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)


def noisy_sim(diameter=8, layers=None, seed=0, **kwargs):
    base = replicated_line(diameter + 1)
    graph = LayeredGraph(base, layers or diameter + 1)
    delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=seed)
    rates = {
        node: clock.rate
        for node, clock in uniform_random_rates(
            graph.nodes(), PARAMS.vartheta, rng_or_seed=seed + 1
        ).items()
    }
    return FastSimulation(
        graph, PARAMS, delay_model=delays, clock_rates=rates, **kwargs
    )


class TestIdealExecution:
    def test_uniform_setup_has_zero_skew(self):
        graph = LayeredGraph(replicated_line(6), 6)
        sim = FastSimulation(graph, PARAMS)
        result = sim.run(3)
        assert result.max_local_skew() == 0.0
        assert result.global_skew() == 0.0

    def test_every_node_pulses(self):
        graph = LayeredGraph(replicated_line(6), 6)
        result = FastSimulation(graph, PARAMS).run(3)
        assert not np.isnan(result.times).any()

    def test_layer_latency_about_lambda(self):
        # Each layer forwards about Lambda - u/2 after the previous.
        graph = LayeredGraph(replicated_line(6), 6)
        result = FastSimulation(graph, PARAMS).run(2)
        gaps = result.times[0, 1:, 0] - result.times[0, :-1, 0]
        assert np.all(np.abs(gaps - PARAMS.Lambda) < 3 * PARAMS.kappa + PARAMS.u)

    def test_period_is_lambda(self):
        graph = LayeredGraph(replicated_line(6), 6)
        result = FastSimulation(graph, PARAMS).run(3)
        periods = np.diff(result.times, axis=0)
        assert np.allclose(periods, PARAMS.Lambda)

    def test_rejects_zero_pulses(self):
        graph = LayeredGraph(replicated_line(6), 6)
        with pytest.raises(ValueError):
            FastSimulation(graph, PARAMS).run(0)

    def test_rejects_unknown_algorithm(self):
        graph = LayeredGraph(replicated_line(6), 6)
        with pytest.raises(ValueError):
            FastSimulation(graph, PARAMS, algorithm="bogus")


class TestNoisyExecution:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_local_skew_within_theorem_11_bound(self, seed):
        sim = noisy_sim(diameter=8, seed=seed)
        result = sim.run(4)
        assert result.max_local_skew() <= PARAMS.local_skew_bound(8)

    def test_global_skew_within_bound(self):
        result = noisy_sim(diameter=8).run(4)
        assert result.global_skew() <= PARAMS.global_skew_bound(8)

    def test_inter_layer_skew_bounded(self):
        result = noisy_sim(diameter=8).run(4)
        assert max_inter_layer_skew(result) <= PARAMS.local_skew_bound(8)

    def test_lemma_d3_step_bounds(self):
        """Lemma D.3: d - u + (Lambda - d - C)/vt <= t_{v,l} - t_{v,l-1}
        <= Lambda - C for correct nodes."""
        result = noisy_sim(diameter=6).run(3)
        graph = result.graph
        for k in range(3):
            for layer in range(1, graph.num_layers):
                for v in graph.base.nodes():
                    c = result.effective_corrections[k, layer, v]
                    if math.isnan(c):
                        continue
                    step = (
                        result.times[k, layer, v]
                        - result.times[k, layer - 1, v]
                    )
                    upper = PARAMS.Lambda - c + 1e-9
                    lower = (
                        PARAMS.d
                        - PARAMS.u
                        + (PARAMS.Lambda - PARAMS.d - c) / PARAMS.vartheta
                        - 1e-9
                    )
                    assert lower <= step <= upper

    def test_lemma_d2_correction_bound(self):
        """Lemma D.2: C_{v,l} <= Lambda - d."""
        result = noisy_sim(diameter=8).run(3)
        finite = result.corrections[np.isfinite(result.corrections)]
        assert np.all(finite <= PARAMS.Lambda - PARAMS.d + 1e-9)

    def test_jittered_input_converges(self):
        # Moderate input jitter is absorbed within a few layers.
        graph = LayeredGraph(replicated_line(8), 20)
        layer0 = JitteredLayer0(
            PARAMS.Lambda, graph.width, jitter_bound=3 * PARAMS.kappa, seed=3
        )
        delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
        result = FastSimulation(
            graph, PARAMS, delay_model=delays, layer0=layer0
        ).run(2)
        from repro.analysis.skew import local_skew_per_layer

        skews = local_skew_per_layer(result)
        assert skews[-1] < skews[0]
        assert skews[-1] <= PARAMS.local_skew_bound(graph.diameter)

    def test_branch_codes_cover_run(self):
        result = noisy_sim(diameter=8).run(3)
        seen = set(np.unique(result.branches))
        assert BRANCH_CODES["layer0"] in seen
        # Correction branches dominate in fault-free noisy runs.
        assert (
            BRANCH_CODES["mid"] in seen
            or BRANCH_CODES["low"] in seen
            or BRANCH_CODES["high"] in seen
        )
        assert BRANCH_CODES["none"] not in seen

    def test_deterministic(self):
        a = noisy_sim(diameter=6, seed=4).run(3)
        b = noisy_sim(diameter=6, seed=4).run(3)
        assert np.array_equal(a.times, b.times)

    def test_cycle_base_graph(self):
        graph = LayeredGraph(cycle_graph(10), 10)
        delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
        result = FastSimulation(graph, PARAMS, delay_model=delays).run(3)
        assert result.max_local_skew() <= PARAMS.local_skew_bound(5)


class TestSimplifiedEquivalence:
    """Lemma B.2: without faults, Algorithms 1 and 3 behave alike.

    The pseudocode equivalence is exact except in a ~kappa-wide regime of
    very late own-copies (see the discussion in repro.core.fast); the test
    asserts agreement within one kappa.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agreement_within_kappa(self, seed):
        full = noisy_sim(diameter=8, seed=seed, algorithm="full").run(3)
        simple = noisy_sim(diameter=8, seed=seed, algorithm="simplified").run(3)
        diff = np.abs(full.times - simple.times)
        assert np.nanmax(diff) <= PARAMS.kappa + 1e-9

    def test_exact_agreement_in_ideal_setup(self):
        graph = LayeredGraph(replicated_line(6), 6)
        full = FastSimulation(graph, PARAMS, algorithm="full").run(3)
        simple = FastSimulation(graph, PARAMS, algorithm="simplified").run(3)
        assert np.array_equal(full.times, simple.times)


class TestPolicies:
    def test_continuous_policy_still_bounded(self):
        result = noisy_sim(
            diameter=8, policy=CorrectionPolicy(discretize=False)
        ).run(3)
        assert result.max_local_skew() <= PARAMS.local_skew_bound(8)

    def test_rate_provider_callable(self):
        graph = LayeredGraph(replicated_line(6), 6)
        sim = FastSimulation(
            graph, PARAMS, clock_rates=lambda node, pulse: 1.0005
        )
        result = sim.run(2)
        assert not np.isnan(result.times).any()

    def test_result_accessors(self):
        result = noisy_sim(diameter=6).run(2)
        node = (2, 3)
        assert result.pulse_time(node, 1) == result.times[1, 3, 2]
        assert result.faulty_mask.sum() == 0
