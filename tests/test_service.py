"""Tests for repro.service: job runner, dedup store, HTTP API.

The service contract under test, end to end:

* a grid submitted through the API returns statistics **bitwise equal**
  to a direct in-process ``BatchRunner.run`` (JSON floats round-trip
  ``float.__repr__`` exactly, so the equality is checked on the decoded
  JSON, NaN-aware),
* resubmitting the same grid is a **recorded cache hit** (the
  content-addressed store dedups on stack key + seed + pulse budget +
  backend knobs; ``executor``/``shards`` deliberately excluded),
* a worker process dying mid-batch loses no completed shard and the
  job still completes (the ``BrokenProcessPool`` retry path, exercised
  deterministically through the service with an ``os._exit`` trial and
  for real -- SIGKILL on a live worker PID -- in the HTTP smoke).
"""

import json
import math
import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.batch import BatchRunner, BatchTrial
from repro.experiments.common import standard_config
from repro.service import (
    Job,
    JobRunner,
    ResultStore,
    ServiceClient,
    ServiceServer,
    build_trials,
    grid_key,
)
from repro.service.jobs import batch_payload, to_jsonable

SMALL_GRID = {"kind": "thm11", "diameters": [4, 6], "seeds": [0, 1]}
NUM_PULSES = 3


def direct_payload(grid, num_pulses=NUM_PULSES):
    """The reference statistics: an in-process run of the same grid."""
    batch = BatchRunner(num_pulses=num_pulses, store_times=False).run(
        build_trials(grid)
    )
    return to_jsonable(batch_payload(batch))


def deep_equal(a, b):
    """Recursive equality with float NaN == NaN (bitwise via repr round-trip)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            deep_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            deep_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


#: Payload keys that describe the *execution path*, not the results: a
#: process-sharded run stacks per shard (different ``stack_groups``) and
#: a retried shard carries its worker-death note (different
#: ``fallback_reasons``).  Everything else is bitwise executor-invariant.
EXECUTOR_DIAGNOSTICS = ("stack_groups", "fallback_reasons")


def equal_statistics(served, reference):
    """``deep_equal`` over the statistics, minus executor diagnostics."""
    served = {
        k: v for k, v in served.items() if k not in EXECUTOR_DIAGNOSTICS
    }
    reference = {
        k: v for k, v in reference.items() if k not in EXECUTOR_DIAGNOSTICS
    }
    return deep_equal(served, reference)


class WorkerKiller:
    """Rate provider killing any pool worker that touches its trial.

    ``multiprocessing.parent_process()`` is None in the main process, so
    the in-parent shard retry (and any serial reference run) sees plain
    rate-1.0 clocks.
    """

    def __call__(self, node, pulse):
        if multiprocessing.parent_process() is not None:
            os._exit(17)
        return 1.0


# ----------------------------------------------------------------------
# Result store + grid keys
# ----------------------------------------------------------------------
class TestGridKey:
    def test_deterministic_across_rebuilds(self):
        key1 = grid_key(build_trials(SMALL_GRID), NUM_PULSES)
        key2 = grid_key(build_trials(SMALL_GRID), NUM_PULSES)
        assert key1 is not None
        assert key1 == key2

    def test_pulse_budget_enters_the_key(self):
        trials = build_trials(SMALL_GRID)
        assert grid_key(trials, 3) != grid_key(trials, 4)

    def test_grid_contents_enter_the_key(self):
        other = dict(SMALL_GRID, seeds=[0, 2])
        assert grid_key(build_trials(SMALL_GRID), NUM_PULSES) != grid_key(
            build_trials(other), NUM_PULSES
        )

    def test_executor_and_shards_are_excluded(self):
        trials = build_trials(SMALL_GRID)
        assert grid_key(trials, NUM_PULSES) == grid_key(
            trials, NUM_PULSES, {"executor": "process", "shards": 4}
        )

    def test_backend_knobs_are_included(self):
        trials = build_trials(SMALL_GRID)
        assert grid_key(trials, NUM_PULSES) != grid_key(
            trials, NUM_PULSES, {"kernel_backend": "numpy"}
        )

    def test_explicit_default_hashes_like_omitted(self):
        trials = build_trials(SMALL_GRID)
        assert grid_key(trials, NUM_PULSES) == grid_key(
            trials, NUM_PULSES, {"kernel_backend": "auto"}
        )

    def test_unpicklable_grid_is_uncacheable(self):
        trial = BatchTrial(
            config=standard_config(4),
            clock_rates=lambda node, pulse: 1.0,
        )
        assert grid_key([trial], NUM_PULSES) is None


class TestResultStore:
    def test_pickle_round_trip_returns_fresh_copies(self):
        store = ResultStore()
        payload = {"skews": np.array([1.0, np.nan, 3.0])}
        store.put("k", payload)
        first = store.get("k")
        first["skews"][0] = 999.0
        second = store.get("k")
        np.testing.assert_array_equal(
            second["skews"], [1.0, np.nan, 3.0]
        )

    def test_stats_count_dedup_decisions_only(self):
        store = ResultStore()
        assert store.get("missing") is None
        store.put("k", {"x": 1})
        assert store.get("k") == {"x": 1}
        assert store.peek_bytes("k") is not None  # result fetch: no stat
        assert store.stats == {"entries": 1, "hits": 1, "misses": 1}

    def test_directory_persistence_round_trip(self, tmp_path):
        first = ResultStore(directory=str(tmp_path))
        first.put("cafe", {"skews": np.arange(3.0)})
        assert (tmp_path / "cafe.pkl").exists()
        second = ResultStore(directory=str(tmp_path))
        assert "cafe" in second
        np.testing.assert_array_equal(
            second.get("cafe")["skews"], np.arange(3.0)
        )


# ----------------------------------------------------------------------
# Job runner (in-process)
# ----------------------------------------------------------------------
@pytest.fixture()
def runner():
    instance = JobRunner(
        runner_defaults={"executor": "serial", "store_times": False}
    ).start()
    yield instance
    instance.shutdown()


class TestJobRunner:
    def test_payload_bitwise_equal_to_direct_run(self, runner):
        job = runner.submit({"grid": SMALL_GRID, "num_pulses": NUM_PULSES})
        runner.wait(job.id, timeout=120)
        assert job.status == "done"
        assert job.cache_hit is False
        assert deep_equal(
            to_jsonable(job.payload()), direct_payload(SMALL_GRID)
        )

    def test_resubmission_is_a_recorded_cache_hit(self, runner):
        first = runner.submit({"grid": SMALL_GRID, "num_pulses": NUM_PULSES})
        runner.wait(first.id, timeout=120)
        second = runner.submit({"grid": SMALL_GRID, "num_pulses": NUM_PULSES})
        runner.wait(second.id, timeout=120)
        assert second.key == first.key
        assert second.cache_hit is True
        assert deep_equal(
            to_jsonable(second.payload()), to_jsonable(first.payload())
        )
        stats = runner.store.stats
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert any(
            e["event"] == "cache" and e["status"] == "hit"
            for e in second.events
        )

    def test_different_pulse_budget_misses(self, runner):
        first = runner.submit({"grid": SMALL_GRID, "num_pulses": NUM_PULSES})
        runner.wait(first.id, timeout=120)
        other = runner.submit(
            {"grid": SMALL_GRID, "num_pulses": NUM_PULSES + 1}
        )
        runner.wait(other.id, timeout=120)
        assert other.cache_hit is False
        assert runner.store.stats["entries"] == 2

    def test_progress_stream_ordering(self, runner):
        job = runner.submit({"grid": SMALL_GRID, "num_pulses": NUM_PULSES})
        runner.wait(job.id, timeout=120)
        events = job.events_since(0)
        assert [e["seq"] for e in events] == list(range(len(events)))
        names = [e["event"] for e in events]
        assert names[0] == "queued"
        assert names[1] == "started"
        assert names[2] == "cache"
        assert names[-1] == "done"
        # Executor progress sits between the cache decision and done.
        assert names.index("plan") > names.index("cache")
        shard_events = [e for e in events if e["event"] == "shard"]
        assert shard_events, names
        assert all(e["status"] == "done" for e in shard_events)
        # Timestamps are monotone with seq.
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_concurrent_submissions_all_complete(self, runner):
        grids = [
            {"kind": "seed_sweep", "diameter": d, "seeds": [s]}
            for d, s in [(4, 0), (4, 1), (6, 0), (6, 1)]
        ]
        jobs, errors = [], []

        def submit(grid):
            try:
                jobs.append(
                    runner.submit({"grid": grid, "num_pulses": NUM_PULSES})
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(g,)) for g in grids
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len({job.id for job in jobs}) == len(grids)
        for job in jobs:
            runner.wait(job.id, timeout=120)
            assert job.status == "done"
            assert job.payload() is not None
        assert len({job.key for job in jobs}) == len(grids)

    def test_uncacheable_grid_still_runs(self, runner):
        trial = BatchTrial(
            config=standard_config(4),
            clock_rates=lambda node, pulse: 1.0,
        )
        job = runner.submit(
            {"num_pulses": NUM_PULSES, "runner": {"executor": "serial"}},
            trials=[trial],
        )
        runner.wait(job.id, timeout=120)
        assert job.status == "done"
        assert job.key is None
        assert any(
            e["event"] == "cache" and e["status"] == "uncacheable"
            for e in job.events
        )
        assert runner.store.stats["entries"] == 0

    def test_bad_submissions_fail_the_submit_call(self, runner):
        with pytest.raises(ValueError, match="kind"):
            runner.submit({"grid": {"kind": "thm99"}})
        with pytest.raises(ValueError, match="grid spec"):
            runner.submit({"grid": None})
        with pytest.raises(ValueError):
            runner.submit(
                {"grid": SMALL_GRID, "runner": {"kernel_backend": "cuda"}}
            )
        assert runner.jobs() == []

    def test_trial_error_fails_the_job_not_the_runner(self, runner):
        config = standard_config(4)
        bad = BatchTrial(
            config=config,
            clock_rates=lambda node, pulse: (_ for _ in ()).throw(
                RuntimeError("clock exploded")
            ),
        )
        job = runner.submit(
            {"num_pulses": NUM_PULSES, "runner": {"executor": "serial"}},
            trials=[bad],
        )
        runner.wait(job.id, timeout=120)
        assert job.status == "failed"
        assert "clock exploded" in job.error
        assert job.events[-1]["event"] == "failed"
        # The runner survives and serves the next job.
        ok = runner.submit({"grid": SMALL_GRID, "num_pulses": NUM_PULSES})
        runner.wait(ok.id, timeout=120)
        assert ok.status == "done"

    def test_worker_death_through_the_service(self):
        runner = JobRunner(
            runner_defaults={
                "executor": "process",
                "shards": 2,
                "store_times": False,
            }
        ).start()
        try:
            trials = [
                BatchTrial(config=standard_config(4, seed=s))
                for s in range(4)
            ]
            trials.append(
                BatchTrial(
                    config=standard_config(4, seed=99),
                    clock_rates=WorkerKiller(),
                    label="killer",
                )
            )
            job = runner.submit({"num_pulses": NUM_PULSES}, trials=trials)
            runner.wait(job.id, timeout=120)
            assert job.status == "done"
            statuses = [
                e["status"] for e in job.events if e["event"] == "shard"
            ]
            assert "lost" in statuses
            assert statuses.count("retried") == statuses.count("lost")
            reference = BatchRunner(
                num_pulses=NUM_PULSES, store_times=False
            ).run(trials)
            assert deep_equal(
                to_jsonable(job.payload()["max_local_skews"]),
                to_jsonable(reference.max_local_skews()),
            )
        finally:
            runner.shutdown()

    def test_submit_before_start_raises(self):
        with pytest.raises(RuntimeError, match="start"):
            JobRunner().submit({"grid": SMALL_GRID})


class TestJobEvents:
    def test_long_poll_wakes_on_emit(self):
        job = Job("job-x", {}, [], NUM_PULSES, {}, key=None)
        seen = {}

        def poll():
            seen["events"] = job.events_since(0, wait=10.0)

        thread = threading.Thread(target=poll)
        thread.start()
        time.sleep(0.05)
        job.emit({"event": "queued"})
        thread.join(5.0)
        assert not thread.is_alive()
        assert [e["event"] for e in seen["events"]] == ["queued"]

    def test_since_offsets_paginate(self):
        job = Job("job-x", {}, [], NUM_PULSES, {}, key=None)
        for i in range(3):
            job.emit({"event": f"e{i}"})
        assert [e["seq"] for e in job.events_since(1)] == [1, 2]
        assert job.events_since(3) == []


# ----------------------------------------------------------------------
# HTTP API
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    instance = ServiceServer(port=0).start()
    yield instance
    instance.stop()


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestServiceHTTP:
    GRID = {"kind": "thm11", "diameters": [4], "seeds": [0, 1]}

    def test_health(self, client):
        view = client.health()
        assert view["status"] == "ok"

    def test_submit_wait_fetch_bitwise(self, client):
        accepted = client.submit(
            self.GRID, num_pulses=NUM_PULSES, runner={"executor": "serial"}
        )
        assert accepted["status"] in ("queued", "running", "done")
        job = client.wait(accepted["id"])
        assert job["status"] == "done"
        served = client.result(accepted["id"])
        assert deep_equal(served, direct_payload(self.GRID))
        # The pickle fetch serves the same payload, arrays intact.
        pickled = client.result_pickle(accepted["id"])
        assert deep_equal(to_jsonable(pickled), served)

    def test_resubmit_is_a_cache_hit_over_http(self, client):
        first = client.submit(
            self.GRID, num_pulses=NUM_PULSES, runner={"executor": "serial"}
        )
        client.wait(first["id"])
        hits_before = client.store_stats()["hits"]
        second = client.submit(
            self.GRID, num_pulses=NUM_PULSES, runner={"executor": "serial"}
        )
        job = client.wait(second["id"])
        assert job["cache_hit"] is True
        assert job["key"] == client.job(first["id"])["key"]
        assert client.store_stats()["hits"] == hits_before + 1
        assert deep_equal(
            client.result(second["id"]), client.result(first["id"])
        )

    def test_event_stream_pagination(self, client):
        accepted = client.submit(
            self.GRID, num_pulses=NUM_PULSES, runner={"executor": "serial"}
        )
        client.wait(accepted["id"])
        view = client.events(accepted["id"])
        names = [e["event"] for e in view["events"]]
        assert names[0] == "queued"
        assert names[-1] == "done"
        assert view["next"] == len(view["events"])
        tail = client.events(accepted["id"], since=view["next"])
        assert tail["events"] == []

    def test_jobs_listing_in_submission_order(self, client):
        views = client.jobs()
        ids = [v["id"] for v in views]
        assert ids == sorted(ids)

    def test_workers_endpoint_lists_pids(self, client):
        assert isinstance(client.workers(), list)

    def test_bad_grid_is_a_400(self, client):
        with pytest.raises(RuntimeError, match="HTTP 400"):
            client.submit({"kind": "thm99"})

    def test_unknown_job_is_a_404(self, client):
        with pytest.raises(RuntimeError, match="HTTP 404"):
            client.job("job-99999")
        with pytest.raises(RuntimeError, match="HTTP 404"):
            client.result("job-99999")

    def test_unknown_route_is_a_404(self, client):
        with pytest.raises(RuntimeError, match="HTTP 404"):
            client._request("/frobnicate")

    def test_experiments_cli_submit_path(self, server, capsys):
        from repro.experiments.__main__ import main as experiments_main

        code = experiments_main(
            [
                "--submit",
                json.dumps(self.GRID),
                "--url",
                server.url,
                "--pulses",
                str(NUM_PULSES),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "submitted job-" in out
        assert "max local skews" in out


# ----------------------------------------------------------------------
# Full-stack smoke: boot the app, kill a real worker, dedup on resubmit
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestServiceSmoke:
    """The CI ``service-smoke`` scenario, runnable locally.

    Boots ``python -m repro.service`` as a real subprocess, submits a
    grid big enough to hold worker processes busy for ~2 s, SIGKILLs
    one live worker PID from ``/workers`` mid-run, and requires the job
    to complete with a ``lost``/``retried`` shard pair and statistics
    bitwise equal to an in-process reference run; a resubmission must
    then be a recorded cache hit.
    """

    GRID = {"kind": "thm13", "diameter": 32, "num_trials": 12}
    PULSES = 10

    def _boot(self):
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = proc.stdout.readline().strip()
        assert line.startswith("listening on "), line
        return proc, line.split()[-1]

    def _submit_and_kill(self, client, num_pulses):
        accepted = client.submit(
            self.GRID,
            num_pulses=num_pulses,
            runner={"executor": "process", "shards": 2},
        )
        deadline = time.monotonic() + 30.0
        pids = []
        while time.monotonic() < deadline:
            pids = client.workers()
            if pids:
                break
            time.sleep(0.02)
        assert pids, "worker processes never appeared"
        os.kill(pids[0], signal.SIGKILL)
        job = client.wait(accepted["id"], timeout=180)
        assert job["status"] == "done"
        events = client.events(accepted["id"])["events"]
        statuses = [
            e["status"] for e in events if e["event"] == "shard"
        ]
        return accepted["id"], job, statuses

    def test_boot_kill_worker_and_dedup(self):
        proc, url = self._boot()
        try:
            client = ServiceClient(url, timeout=60.0)
            assert client.health()["status"] == "ok"
            # The kill is real (SIGKILL on a live PID), so in principle
            # the batch could finish before it lands; one more attempt
            # at a fresh key keeps the assertion deterministic in
            # practice without weakening it.
            for attempt in range(2):
                job_id, job, statuses = self._submit_and_kill(
                    client, self.PULSES + attempt
                )
                if "lost" in statuses:
                    break
            assert "lost" in statuses, statuses
            assert statuses.count("retried") == statuses.count("lost")
            served = client.result(job_id)
            reference = direct_payload(
                self.GRID, num_pulses=self.PULSES + attempt
            )
            assert equal_statistics(served, reference)
            # The retry annotations name the worker death.
            assert any(
                "worker death" in why
                for why in served["fallback_reasons"].values()
            )
            # Resubmission: a recorded cache hit, no new worker pool.
            again = client.submit(
                self.GRID,
                num_pulses=self.PULSES + attempt,
                runner={"executor": "process", "shards": 2},
            )
            view = client.wait(again["id"])
            assert view["cache_hit"] is True
            stats = client.store_stats()
            assert stats["hits"] >= 1
            assert deep_equal(client.result(again["id"]), served)
        finally:
            proc.terminate()
            try:
                proc.wait(10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()

    def test_pickle_result_round_trips_over_http(self):
        proc, url = self._boot()
        try:
            client = ServiceClient(url, timeout=60.0)
            grid = {"kind": "cor15", "diameter": 8, "seed": 0}
            accepted = client.submit(
                grid, num_pulses=NUM_PULSES, runner={"executor": "serial"}
            )
            client.wait(accepted["id"])
            payload = client.result_pickle(accepted["id"])
            blob = pickle.dumps(payload)
            assert deep_equal(
                to_jsonable(pickle.loads(blob)),
                to_jsonable(payload),
            )
            assert deep_equal(
                to_jsonable(payload), direct_payload(grid)
            )
        finally:
            proc.terminate()
            try:
                proc.wait(10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
