"""Tests for the fast simulator under faults: containment and envelopes."""

import math

import numpy as np
import pytest

from repro.core.correction import CorrectionPolicy
from repro.core.fast import BRANCH_CODES
from repro.faults import (
    AdversarialEarlyFault,
    AdversarialLateFault,
    ByzantineRandomFault,
    CrashFault,
    FaultPlan,
    FixedOffsetFault,
)
from tests.test_fast_sim import PARAMS, assert_results_equivalent, noisy_sim


def faulty_sim(plan, diameter=8, seed=0, **kwargs):
    sim = noisy_sim(diameter=diameter, seed=seed, **kwargs)
    sim.fault_plan = plan
    return sim


FAULT_NODE = (4, 3)


class TestCrashFault:
    def test_faulty_node_masked(self):
        plan = FaultPlan.from_nodes({FAULT_NODE: CrashFault()})
        result = faulty_sim(plan).run(3)
        assert np.isnan(result.times[:, 3, 4]).all()
        assert result.faulty_mask[3, 4]

    def test_correct_nodes_all_pulse(self):
        plan = FaultPlan.from_nodes({FAULT_NODE: CrashFault()})
        result = faulty_sim(plan).run(3)
        mask = result.faulty_mask
        assert not np.isnan(result.times[:, ~mask]).any()

    def test_skew_contained(self):
        plan = FaultPlan.from_nodes({FAULT_NODE: CrashFault()})
        result = faulty_sim(plan).run(3)
        assert result.max_local_skew() <= PARAMS.worst_case_fault_bound(8, 1)

    def test_crash_successor_uses_via_max_branch(self):
        plan = FaultPlan.from_nodes({FAULT_NODE: CrashFault()})
        result = faulty_sim(plan).run(3)
        # (4, 4)'s own predecessor is silent -> own-missing branch.
        assert result.branches[0, 4, 4] == BRANCH_CODES["via_max"]

    def test_fault_sends_recorded_as_none(self):
        plan = FaultPlan.from_nodes({FAULT_NODE: CrashFault()})
        result = faulty_sim(plan).run(2)
        sends = {
            succ: pulses
            for (node, succ), pulses in result.fault_sends.items()
            if node == FAULT_NODE
        }
        assert sends
        assert all(t is None for pulses in sends.values() for t in pulses.values())


class TestTimingFaults:
    @pytest.mark.parametrize(
        "behavior",
        [
            AdversarialLateFault(30.0),
            AdversarialEarlyFault(30.0),
            FixedOffsetFault(0.5),
            ByzantineRandomFault(span=0.6, seed=3),
        ],
    )
    def test_single_fault_contained(self, behavior):
        plan = FaultPlan.from_nodes({FAULT_NODE: behavior})
        result = faulty_sim(plan).run(3)
        bound = PARAMS.worst_case_fault_bound(8, 1)
        assert result.max_local_skew() <= bound

    def test_corollary_4_29_envelope(self):
        """Nodes with one faulty predecessor still pulse inside
        [t_min + Lambda - 2k, t_max + Lambda + 2k] of their correct
        predecessors (Corollary 4.29)."""
        plan = FaultPlan.from_nodes({FAULT_NODE: AdversarialLateFault(40.0)})
        result = faulty_sim(plan).run(3)
        graph = result.graph
        kappa = PARAMS.kappa
        for k in range(3):
            for layer in range(1, graph.num_layers):
                for v in graph.base.nodes():
                    node = (v, layer)
                    preds = graph.predecessors(node)
                    if not any(p == FAULT_NODE for p in preds):
                        continue
                    correct_times = [
                        result.times[k, pl, pv]
                        for (pv, pl) in preds
                        if (pv, pl) != FAULT_NODE
                    ]
                    t = result.times[k, layer, v]
                    assert (
                        min(correct_times) + PARAMS.Lambda - 2 * kappa - 1e-9
                        <= t
                        <= max(correct_times) + PARAMS.Lambda + 2 * kappa + 1e-9
                    )

    def test_protocol_times_defined_for_faulty_nodes(self):
        plan = FaultPlan.from_nodes({FAULT_NODE: AdversarialLateFault(10.0)})
        result = faulty_sim(plan).run(2)
        assert not math.isnan(result.protocol_times[0, 3, 4])
        # The fault's send time is the protocol time plus the lag.
        send = result.fault_sends[(FAULT_NODE, (4, 4))][0]
        assert send == pytest.approx(
            result.protocol_times[0, 3, 4] + 10.0 * PARAMS.kappa
        )

    def test_late_fault_effect_shrinks_downstream(self):
        """Self-stabilization: the bump a fault injects decays over layers."""
        plan = FaultPlan.from_nodes({(4, 2): AdversarialLateFault(40.0)})
        result = faulty_sim(plan, diameter=8).run(2)
        clean = noisy_sim(diameter=8).run(2)
        shift = np.abs(result.times - clean.times)
        near = np.nanmax(shift[0, 3, :])
        far = np.nanmax(shift[0, -1, :])
        assert far <= near + 1e-12

    def test_two_spread_faults_contained(self):
        plan = FaultPlan.from_nodes(
            {(2, 2): CrashFault(), (7, 5): AdversarialEarlyFault(20.0)}
        )
        graph = noisy_sim(diameter=8).graph
        assert plan.is_one_local(graph)
        result = faulty_sim(plan).run(3)
        assert result.max_local_skew() <= PARAMS.worst_case_fault_bound(8, 2)


class TestMedianContainmentAblation:
    def test_stick_to_median_contains_late_fault(self):
        # Algorithm 1 semantics: nodes *wait* for the late message, so the
        # correction rule alone must contain it.  (In Algorithm 3 the
        # missing-message fallback independently caps late own-copies.)
        plan = FaultPlan.from_nodes({FAULT_NODE: AdversarialLateFault(50.0)})
        with_median = (
            faulty_sim(plan, algorithm="simplified").run(3).max_local_skew()
        )
        without_median = (
            faulty_sim(
                plan,
                algorithm="simplified",
                policy=CorrectionPolicy(stick_to_median=False),
            )
            .run(3)
            .max_local_skew()
        )
        # Without the median rule the victim column inherits a large part
        # of the 50-kappa lag; with it the damage stays near 2-kappa scale.
        assert without_median > 3.0 * with_median

    def test_full_algorithm_contains_late_fault_via_fallback(self):
        # The full algorithm's own-missing fallback keeps even the
        # policy-ablated variant bounded -- containment is layered.
        plan = FaultPlan.from_nodes({FAULT_NODE: AdversarialLateFault(50.0)})
        ablated = (
            faulty_sim(plan, policy=CorrectionPolicy(stick_to_median=False))
            .run(3)
            .max_local_skew()
        )
        assert ablated <= PARAMS.worst_case_fault_bound(8, 1)

    def test_layer0_fault_supported(self):
        plan = FaultPlan.from_nodes({(3, 0): CrashFault()})
        result = faulty_sim(plan).run(2)
        assert np.isnan(result.times[:, 0, 3]).all()
        assert not np.isnan(result.times[:, 1, :]).any()


class TestVectorizedFaultCrossValidation:
    """Array kernel vs scalar replay under faults (fallback path coverage)."""

    def assert_equivalent(self, vec, scalar):
        assert_results_equivalent(vec, scalar, check_fault_sends=True)

    @pytest.mark.parametrize(
        "behavior",
        [
            CrashFault(),
            AdversarialLateFault(30.0),
            AdversarialEarlyFault(30.0),
            ByzantineRandomFault(span=0.6, seed=3),
        ],
    )
    def test_matches_scalar_single_fault(self, behavior):
        plan = FaultPlan.from_nodes({FAULT_NODE: behavior})
        vec = faulty_sim(plan).run(3)
        scalar = faulty_sim(plan, vectorize=False).run(3)
        self.assert_equivalent(vec, scalar)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_random_fault_plans(self, seed):
        from repro.experiments.thm13_random_faults import mixed_behavior_factory

        graph = noisy_sim(diameter=8).graph
        plan = FaultPlan.random(
            graph,
            probability=0.06,
            rng_or_seed=seed,
            behavior_factory=mixed_behavior_factory,
        )
        vec = faulty_sim(plan, seed=seed).run(3)
        scalar = faulty_sim(plan, seed=seed, vectorize=False).run(3)
        self.assert_equivalent(vec, scalar)

    def test_matches_scalar_layer0_fault(self):
        plan = FaultPlan.from_nodes({(3, 0): CrashFault()})
        vec = faulty_sim(plan).run(2)
        scalar = faulty_sim(plan, vectorize=False).run(2)
        self.assert_equivalent(vec, scalar)

    def test_matches_scalar_outside_model(self):
        # Two silent predecessors (1-locality violated): the victim takes
        # the never-exits branch; the kernel must defer to the scalar path.
        plan = FaultPlan.from_nodes(
            {(3, 3): CrashFault(), (5, 3): CrashFault()}
        )
        vec = faulty_sim(plan).run(2)
        scalar = faulty_sim(plan, vectorize=False).run(2)
        self.assert_equivalent(vec, scalar)


class TestDeadlockRegimes:
    def test_two_faulty_predecessors_stall_simplified(self):
        # Algorithm 1 deadlocks when any predecessor is silent.
        plan = FaultPlan.from_nodes({FAULT_NODE: CrashFault()})
        result = faulty_sim(plan, algorithm="simplified").run(2)
        # The crash's own-copy successor never pulses under Algorithm 1...
        assert np.isnan(result.times[:, 4, 4]).all()
        # ...which is exactly why the paper needs Algorithm 3.
        full = faulty_sim(plan, algorithm="full").run(2)
        assert not np.isnan(full.times[:, 4, 4]).any()

    def test_outside_model_two_silent_preds(self):
        # Two crashed predecessors of one node (violates 1-locality): the
        # full algorithm cannot fill all registers and the victim stalls.
        plan = FaultPlan.from_nodes(
            {(3, 3): CrashFault(), (5, 3): CrashFault()}
        )
        graph = noisy_sim(diameter=8).graph
        assert not plan.is_one_local(graph)
        result = faulty_sim(plan).run(2)
        assert result.branches[0, 4, 4] in (
            BRANCH_CODES["none"],
            BRANCH_CODES["via_max"],
            BRANCH_CODES["low"],
        )
