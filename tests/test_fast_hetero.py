"""Property-based equivalence suite for heterogeneous trial stacking.

The padded ``(S, W_max)`` kernel of :class:`repro.core.fast_batch.TrialStack`
promises results *bit-identical* to per-trial :class:`FastSimulation` runs
for arbitrary mixes of grid widths, depths, topologies, parameters, delay
models, clock rates, layer-0 schedules, numeric policy knobs, and fault
sets.  Hypothesis drives randomized stacks through that promise, and
through the invariant that padding cells (NaN) never leak into the skew
reducers of :mod:`repro.analysis.skew`.

Deterministic regressions cover the relaxed grouping (`stack_compatibility`
/ ``_stack_key``): a thm11-style mixed-width sweep is one group, process
sharding stays order-preserving on heterogeneous groups, and per-trial
fallbacks always record their reason on :class:`BatchResult`.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.skew import (
    global_skew,
    max_inter_layer_skew,
    max_local_skew,
    overall_skew,
)
from repro.core.correction import CorrectionPolicy
from repro.core.fast import FastSimulation
from repro.core.fast_batch import TrialStack, stack_compatibility
from repro.core.layer0 import (
    AlternatingLayer0,
    ChainLayer0,
    JitteredLayer0,
    PerfectLayer0,
    stacked_pulse_times,
)
from repro.delays.models import (
    StaticDelayModel,
    UniformDelayModel,
    VaryingDelayModel,
)
from repro.experiments.batch import (
    BatchResult,
    BatchRunner,
    BatchTrial,
    _stack_key,
)
from repro.experiments.common import standard_config
from repro.faults.injection import FaultPlan
from repro.faults.model import (
    AdversarialLateFault,
    ByzantineRandomFault,
    CrashFault,
)
from repro.params import Parameters
from repro.topology.base_graph import (
    complete_graph,
    cycle_graph,
    replicated_line,
    torus_graph,
)
from repro.topology.layered import LayeredGraph

NUM_PULSES = 3

PARAMS_CHOICES = (
    Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0),
    Parameters(d=1.0, u=0.05, vartheta=1.01, Lambda=2.5),
)

HETERO_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def base_graphs(draw):
    """Mixed topologies and widths: line, cycle, complete, torus."""
    kind = draw(st.sampled_from(["line", "cycle", "complete", "torus"]))
    if kind == "line":
        return replicated_line(draw(st.integers(2, 8)))
    if kind == "cycle":
        return cycle_graph(draw(st.integers(3, 10)))
    if kind == "complete":
        return complete_graph(draw(st.integers(3, 6)))
    return torus_graph(3, draw(st.integers(3, 4)))


@st.composite
def simulations(draw, algorithm):
    """One randomized trial: geometry, delays, rates, layer 0, faults."""
    base = draw(base_graphs())
    num_layers = draw(st.integers(2, 5))
    graph = LayeredGraph(base, num_layers)
    params = draw(st.sampled_from(PARAMS_CHOICES))
    seed = draw(st.integers(0, 2**16))

    delay_kind = draw(st.sampled_from(["uniform", "static", "varying"]))
    if delay_kind == "uniform":
        delay_model = UniformDelayModel(params.d, params.u)
    elif delay_kind == "static":
        delay_model = StaticDelayModel(params.d, params.u, seed=seed)
    else:
        delay_model = VaryingDelayModel(
            params.d, params.u, max_step=params.u / 4.0, seed=seed
        )

    layer0_kind = draw(st.sampled_from(["perfect", "jittered", "alternating"]))
    if layer0_kind == "perfect":
        layer0 = PerfectLayer0(params.Lambda)
    elif layer0_kind == "jittered":
        layer0 = JitteredLayer0(
            params.Lambda, base.num_nodes, params.kappa / 2.0, seed=seed
        )
    else:
        layer0 = AlternatingLayer0(params.Lambda, params.kappa)

    if draw(st.booleans()):
        clock_rates = None
    else:
        rng = np.random.default_rng(seed + 1)
        clock_rates = {
            (v, layer): float(rng.uniform(1.0, params.vartheta))
            for layer in range(num_layers)
            for v in base.nodes()
        }

    fault_plan = None
    num_faults = draw(st.integers(0, 2))
    if num_faults:
        rng = np.random.default_rng(seed + 2)
        behaviors = {}
        for _ in range(num_faults):
            node = (
                int(rng.integers(base.num_nodes)),
                int(rng.integers(num_layers)),
            )
            roll = rng.random()
            if roll < 0.5:
                behavior = CrashFault()
            elif roll < 0.8:
                behavior = AdversarialLateFault(float(rng.uniform(5.0, 30.0)))
            else:
                behavior = ByzantineRandomFault(
                    span=float(rng.uniform(0.1, 1.0)),
                    seed=int(rng.integers(1 << 30)),
                )
            behaviors[node] = behavior
        fault_plan = FaultPlan.from_nodes(behaviors)

    policy = CorrectionPolicy(
        jump_slack=draw(st.sampled_from([1.0, 0.0, -1.0]))
    )

    def build(vectorize=True):
        return FastSimulation(
            graph,
            params,
            delay_model=delay_model,
            clock_rates=clock_rates,
            fault_plan=fault_plan,
            layer0=layer0,
            policy=policy,
            algorithm=algorithm,
            vectorize=vectorize,
        )

    return build


def assert_same_results(got, want, exact=True):
    for attr in (
        "times",
        "protocol_times",
        "corrections",
        "effective_corrections",
    ):
        got_arr, want_arr = getattr(got, attr), getattr(want, attr)
        if exact:
            np.testing.assert_array_equal(got_arr, want_arr, err_msg=attr)
        else:
            np.testing.assert_allclose(
                got_arr, want_arr, rtol=0.0, atol=1e-9,
                equal_nan=True, err_msg=attr,
            )
    if exact:
        np.testing.assert_array_equal(got.branches, want.branches)
        assert got.fault_sends == want.fault_sends


class TestStackedEquivalenceProperties:
    """Randomized mixed-geometry stacks == per-trial runs, bit for bit."""

    @HETERO_SETTINGS
    @given(data=st.data())
    def test_padded_stack_bit_identical_to_per_trial(self, data):
        algorithm = data.draw(st.sampled_from(["full", "simplified"]))
        builders = [
            data.draw(simulations(algorithm))
            for _ in range(data.draw(st.integers(2, 4)))
        ]
        sims = [build() for build in builders]
        assert stack_compatibility(sims) is None
        stacked = TrialStack(sims).run(NUM_PULSES)
        for result, build in zip(stacked, builders):
            assert_same_results(result, build().run(NUM_PULSES))

    @HETERO_SETTINGS
    @given(data=st.data())
    def test_padded_stack_close_to_scalar_reference(self, data):
        algorithm = data.draw(st.sampled_from(["full", "simplified"]))
        builders = [
            data.draw(simulations(algorithm)) for _ in range(2)
        ]
        sims = [build() for build in builders]
        stacked = TrialStack(sims).run(NUM_PULSES)
        for result, build in zip(stacked, builders):
            assert_same_results(
                result, build(vectorize=False).run(NUM_PULSES), exact=False
            )

    @HETERO_SETTINGS
    @given(data=st.data())
    def test_padding_never_leaks_into_skew_reducers(self, data):
        """Padded cells are NaN and invisible to every stacked reducer."""
        diameters = data.draw(
            st.lists(st.sampled_from([4, 6, 8, 12]), min_size=2, max_size=4)
        )
        trials = [
            BatchTrial(
                config=standard_config(
                    d,
                    seed=data.draw(st.integers(0, 100)),
                    num_layers=data.draw(st.integers(2, 6)),
                    num_pulses=NUM_PULSES,
                )
            )
            for d in diameters
        ]
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        for i, trial in enumerate(trials):
            graph = trial.config.graph
            depth, width = graph.num_layers, graph.width
            # Stacked matrices NaN-pad strictly outside the trial window.
            assert np.isnan(batch.times[i, :, depth:, :]).all()
            assert np.isnan(batch.times[i, :, :, width:]).all()
            reference = trial.simulation().run(NUM_PULSES)
            assert batch.max_local_skews()[i] == pytest.approx(
                max_local_skew(reference), abs=0.0
            )
            assert batch.max_inter_layer_skews()[i] == pytest.approx(
                max_inter_layer_skew(reference), abs=0.0
            )
            assert batch.overall_skews()[i] == pytest.approx(
                overall_skew(reference), abs=0.0
            )
            assert batch.global_skews()[i] == pytest.approx(
                global_skew(reference), abs=0.0
            )
            # Layers past this trial's depth exist only as padding: NaN in
            # the per-layer statistics, never silently zero.
            if depth < batch.times.shape[-2]:
                assert np.isnan(batch.local_skews()[i, depth:]).all()


class TestSameShapeDifferentTopology:
    """Equal (K, L, W) shapes must not short-circuit per-geometry skews.

    Regression: a cycle-9 and a complete-9 trial stack into same-shape
    matrices, but reducing both along trial 0's edge set silently
    under-reports the complete graph's skew.  BatchResult must group by
    geometry, not by array shape.
    """

    def test_reducers_use_each_trials_own_edges(self):
        params = PARAMS_CHOICES[0]
        sims = [
            FastSimulation(
                LayeredGraph(base, 4),
                params,
                delay_model=StaticDelayModel(params.d, params.u, seed=seed),
            )
            for seed, base in enumerate([cycle_graph(9), complete_graph(9)])
        ]
        results = TrialStack(sims).run(NUM_PULSES)
        batch = BatchResult(sims, results)
        assert batch.heterogeneous  # same shape, different adjacency
        for i, result in enumerate(results):
            assert batch.max_local_skews()[i] == pytest.approx(
                max_local_skew(result), abs=0.0
            )
            assert batch.overall_skews()[i] == pytest.approx(
                overall_skew(result), abs=0.0
            )


class TestStackedLayer0Fill:
    """stacked_pulse_times == per-schedule pulse_times_array, bit for bit."""

    def _assert_stack_matches(self, schedules, bases):
        block = stacked_pulse_times(schedules, bases, NUM_PULSES)
        width = max(base.num_nodes for base in bases)
        assert block.shape == (len(schedules), NUM_PULSES, width)
        for s, (schedule, base) in enumerate(zip(schedules, bases)):
            np.testing.assert_array_equal(
                block[s, :, : base.num_nodes],
                schedule.pulse_times_array(base, NUM_PULSES),
            )
            assert np.isnan(block[s, :, base.num_nodes:]).all()

    def test_mixed_schedule_types_and_widths(self):
        params = PARAMS_CHOICES[0]
        bases = [
            replicated_line(3),
            cycle_graph(7),
            replicated_line(5),
            cycle_graph(4),
        ]
        schedules = [
            PerfectLayer0(params.Lambda),
            JitteredLayer0(params.Lambda, 7, params.kappa, seed=3),
            AlternatingLayer0(params.Lambda, params.kappa),
            ChainLayer0(params, chain_order=list(range(4))),
        ]
        self._assert_stack_matches(schedules, bases)

    def test_mixed_lambdas_within_one_type(self):
        bases = [cycle_graph(5), cycle_graph(8)]
        schedules = [PerfectLayer0(2.0), PerfectLayer0(3.5)]
        self._assert_stack_matches(schedules, bases)

    def test_validation(self):
        with pytest.raises(ValueError, match="schedules"):
            stacked_pulse_times([PerfectLayer0(2.0)], [], NUM_PULSES)
        with pytest.raises(ValueError, match="pulses"):
            stacked_pulse_times(
                [PerfectLayer0(2.0)], [cycle_graph(3)], -1
            )


def thm11_style_trials(diameters=(4, 8, 16), seeds=(0, 1)):
    return [
        BatchTrial(config=standard_config(d, seed=s, num_pulses=NUM_PULSES))
        for d in diameters
        for s in seeds
    ]


class TestHeterogeneousGrouping:
    """Relaxed _stack_key: mixed-width sweeps are one stack group."""

    def test_mixed_width_sweep_is_one_group(self):
        trials = thm11_style_trials()
        keys = {_stack_key(trial) for trial in trials}
        assert len(keys) == 1
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        assert batch.stack_groups == [list(range(len(trials)))]
        assert batch.fallback_reasons == {}

    def test_mixed_width_sims_are_stack_compatible(self):
        sims = [trial.simulation() for trial in thm11_style_trials()]
        assert stack_compatibility(sims) is None

    def test_opt_out_groups_by_geometry(self):
        trials = thm11_style_trials()
        batch = BatchRunner(
            num_pulses=NUM_PULSES, stack_mixed_geometry=False
        ).run(trials)
        assert sorted(len(g) for g in batch.stack_groups) == [2, 2, 2]
        reference = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        np.testing.assert_array_equal(batch.times, reference.times)

    def test_algorithms_still_split_groups(self):
        config = standard_config(4, num_pulses=NUM_PULSES)
        trials = [
            BatchTrial(config=config),
            BatchTrial(config=config, algorithm="simplified"),
        ]
        batch = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        assert sorted(len(g) for g in batch.stack_groups) == [1, 1]

    def test_process_sharding_deterministic_on_hetero_groups(self):
        trials = thm11_style_trials(diameters=(4, 6, 8), seeds=(0, 1))
        serial = BatchRunner(num_pulses=NUM_PULSES).run(trials)
        for shards in (2, 3):
            sharded = BatchRunner(
                num_pulses=NUM_PULSES, executor="process", shards=shards
            ).run(trials)
            np.testing.assert_array_equal(sharded.times, serial.times)
            np.testing.assert_array_equal(
                sharded.corrections, serial.corrections
            )
            # Shard-local stack groups re-offset to batch trial indices,
            # partitioning the whole batch in order.
            flattened = [i for group in sharded.stack_groups for i in group]
            assert flattened == list(range(len(trials)))


class TestDepthSkewCompaction:
    """Depth compaction never changes results, only the work done.

    Randomized and extreme (1-vs-512) per-trial layer counts through the
    compacted stack vs the uncompacted padded stack vs per-trial runs --
    all bit-identical -- plus the bookkeeping invariants: stack_groups /
    fallback_reasons survive row dropping, the per-group compaction
    stats account exactly for the layers each trial owns, and the skew
    reducers never see a compacted-away cell (layers a trial does not
    have stay NaN in its per-layer statistics).
    """

    @staticmethod
    def _depth_trials(depths, diameter=4, num_pulses=2):
        return [
            BatchTrial(
                config=standard_config(
                    diameter, seed=s, num_layers=d, num_pulses=num_pulses
                )
            )
            for s, d in enumerate(depths)
        ]

    @HETERO_SETTINGS
    @given(
        depths=st.lists(st.integers(1, 9), min_size=2, max_size=6),
        diameter=st.sampled_from([3, 5]),
    )
    def test_compaction_bit_identical_and_accounted(self, depths, diameter):
        trials = self._depth_trials(depths, diameter=diameter)
        compact = BatchRunner(num_pulses=2).run(trials)
        padded = BatchRunner(num_pulses=2, compact_depth=False).run(trials)
        per_trial = BatchRunner(num_pulses=2, stack=False).run(trials)
        np.testing.assert_array_equal(compact.times, padded.times)
        np.testing.assert_array_equal(compact.times, per_trial.times)
        np.testing.assert_array_equal(
            compact.corrections, per_trial.corrections
        )
        # Bookkeeping survives row dropping: still one stack group over
        # every trial, no fallbacks, and the stats account exactly for
        # the layer steps the trials own (fault-free: no dead rows).
        assert compact.stack_groups == [list(range(len(trials)))]
        assert compact.fallback_reasons == {}
        (stats,) = compact.compaction_stats
        assert stats["enabled"]
        assert stats["padded_row_steps"] == (
            2 * (max(depths) - 1) * len(depths)
        )
        assert stats["active_row_steps"] == 2 * sum(d - 1 for d in depths)
        (padded_stats,) = padded.compaction_stats
        assert not padded_stats["enabled"]
        assert (
            padded_stats["active_row_steps"]
            == padded_stats["padded_row_steps"]
        )

    @HETERO_SETTINGS
    @given(depths=st.lists(st.integers(1, 7), min_size=2, max_size=5))
    def test_skew_reducers_never_see_compacted_cells(self, depths):
        trials = self._depth_trials(depths)
        batch = BatchRunner(num_pulses=2).run(trials)
        local = batch.local_skews()
        for i, trial in enumerate(trials):
            depth = trial.config.graph.num_layers
            reference = trial.simulation().run(2)
            assert batch.max_local_skews()[i] == pytest.approx(
                max_local_skew(reference), abs=0.0
            )
            assert batch.overall_skews()[i] == pytest.approx(
                overall_skew(reference), abs=0.0
            )
            # Layers this trial never ran exist only as padding: NaN in
            # its per-layer statistics, never a fabricated 0.
            if depth < local.shape[1]:
                assert np.isnan(local[i, depth:]).all()
            assert np.isnan(batch.times[i, :, depth:, :]).all()

    def test_extreme_1_vs_512_layer_skew(self):
        """The acceptance cell: depths {1, 512} in one stack, bit-identical."""
        trials = self._depth_trials([1, 512, 1, 3])
        compact = BatchRunner(num_pulses=2).run(trials)
        per_trial = BatchRunner(num_pulses=2, stack=False).run(trials)
        np.testing.assert_array_equal(compact.times, per_trial.times)
        np.testing.assert_array_equal(
            compact.effective_corrections, per_trial.effective_corrections
        )
        (stats,) = compact.compaction_stats
        # 511 + 0 + 0 + 2 owned layer steps per pulse out of 511 * 4.
        assert stats["active_row_steps"] == 2 * (511 + 2)
        assert stats["padded_row_steps"] == 2 * 511 * 4
        assert stats["min_depth"] == 1 and stats["max_depth"] == 512
        # The depth-1 trials own no computed layers at all, yet their
        # layer-0 row and skew statistics are intact.
        assert np.isfinite(compact.times[0, :, 0, :5]).all()
        assert compact.max_local_skews().shape == (4,)

    def test_compaction_with_faults_matches_everywhere(self):
        """Dead-row dropping (a fully crashed layer) stays bit-identical."""
        config = standard_config(4, seed=9, num_layers=6, num_pulses=3)
        wipe = FaultPlan.from_nodes(
            {(v, 1): CrashFault() for v in range(config.graph.width)}
        )
        trials = [
            BatchTrial(config=config, fault_plan=wipe, label="wiped"),
            BatchTrial(
                config=standard_config(4, seed=10, num_layers=2, num_pulses=3)
            ),
            BatchTrial(
                config=standard_config(6, seed=11, num_layers=6, num_pulses=3)
            ),
        ]
        compact = BatchRunner(num_pulses=3).run(trials)
        padded = BatchRunner(num_pulses=3, compact_depth=False).run(trials)
        per_trial = BatchRunner(num_pulses=3, stack=False).run(trials)
        for reference in (padded, per_trial):
            np.testing.assert_array_equal(compact.times, reference.times)
            np.testing.assert_array_equal(
                compact.corrections, reference.corrections
            )
        for got, want in zip(compact.results, per_trial.results):
            assert got.fault_sends == want.fault_sends
            np.testing.assert_array_equal(got.branches, want.branches)
        (stats,) = compact.compaction_stats
        # The wiped trial goes dead above layer 1, so it executes fewer
        # row steps than its depth alone would grant.
        fault_free_budget = 3 * ((6 - 1) + (2 - 1) + (6 - 1))
        assert stats["active_row_steps"] < fault_free_budget


class TestFallbackReasons:
    """Per-trial fallbacks always leave a trace on BatchResult."""

    def test_stack_disabled_records_reason(self):
        trials = thm11_style_trials(diameters=(4,), seeds=(0, 1))
        batch = BatchRunner(num_pulses=NUM_PULSES, stack=False).run(trials)
        assert batch.stack_groups == []
        assert set(batch.fallback_reasons) == {0, 1}
        assert all(
            "stack=False" in why for why in batch.fallback_reasons.values()
        )

    def test_scalar_path_records_reason(self):
        trials = thm11_style_trials(diameters=(4,), seeds=(0,))
        batch = BatchRunner(num_pulses=NUM_PULSES, vectorize=False).run(trials)
        assert "vectorize=False" in batch.fallback_reasons[0]

    def test_stacked_runs_record_no_reason(self):
        batch = BatchRunner(num_pulses=NUM_PULSES).run(thm11_style_trials())
        assert batch.fallback_reasons == {}

    def test_process_executor_propagates_reasons(self):
        trials = thm11_style_trials(diameters=(4, 6), seeds=(0, 1))
        batch = BatchRunner(
            num_pulses=NUM_PULSES, executor="process", shards=2, stack=False
        ).run(trials)
        assert set(batch.fallback_reasons) == set(range(len(trials)))
