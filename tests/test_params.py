"""Tests for repro.params: kappa, bounds, and feasibility constraints."""

import pytest

from repro.params import Parameters


class TestConstruction:
    def test_basic_construction(self):
        p = Parameters(d=1.0, u=0.01, vartheta=1.001)
        assert p.d == 1.0
        assert p.u == 0.01
        assert p.vartheta == 1.001

    def test_lambda_defaults_to_twice_d(self):
        p = Parameters(d=1.5, u=0.01)
        assert p.Lambda == 3.0

    def test_explicit_lambda(self):
        p = Parameters(d=1.0, u=0.01, Lambda=4.0)
        assert p.Lambda == 4.0

    def test_min_delay(self):
        p = Parameters(d=1.0, u=0.25)
        assert p.min_delay == 0.75

    @pytest.mark.parametrize("d", [0.0, -1.0])
    def test_rejects_nonpositive_d(self, d):
        with pytest.raises(ValueError, match="d must be positive"):
            Parameters(d=d, u=0.0)

    @pytest.mark.parametrize("u", [-0.1, 1.5])
    def test_rejects_u_outside_range(self, u):
        with pytest.raises(ValueError, match="u must lie"):
            Parameters(d=1.0, u=u)

    def test_rejects_vartheta_below_one(self):
        with pytest.raises(ValueError, match="vartheta"):
            Parameters(d=1.0, u=0.01, vartheta=0.99)

    def test_rejects_lambda_below_d(self):
        with pytest.raises(ValueError, match="Lambda"):
            Parameters(d=1.0, u=0.01, Lambda=0.5)

    def test_frozen(self):
        p = Parameters(d=1.0, u=0.01)
        with pytest.raises(Exception):
            p.d = 2.0


class TestKappa:
    def test_kappa_equation_1(self):
        # kappa = 2(u + (1 - 1/vt)(Lambda - d))
        p = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
        expected = 2.0 * (0.01 + (1.0 - 1.0 / 1.001) * 1.0)
        assert p.kappa == pytest.approx(expected)

    def test_kappa_zero_when_ideal(self):
        p = Parameters(d=1.0, u=0.0, vartheta=1.0)
        assert p.kappa == 0.0

    def test_kappa_grows_with_u(self):
        base = Parameters(d=1.0, u=0.01).kappa
        more = Parameters(d=1.0, u=0.02).kappa
        assert more > base

    def test_kappa_grows_with_vartheta(self):
        base = Parameters(d=1.0, u=0.01, vartheta=1.001).kappa
        more = Parameters(d=1.0, u=0.01, vartheta=1.01).kappa
        assert more > base

    def test_kappa_grows_with_lambda(self):
        base = Parameters(d=1.0, u=0.01, Lambda=2.0).kappa
        more = Parameters(d=1.0, u=0.01, Lambda=3.0).kappa
        assert more > base


class TestBounds:
    def test_local_skew_bound_formula(self):
        p = Parameters(d=1.0, u=0.01)
        assert p.local_skew_bound(8) == pytest.approx(
            4.0 * p.kappa * (2.0 + 3.0)
        )

    def test_local_skew_bound_d1(self):
        p = Parameters(d=1.0, u=0.01)
        assert p.local_skew_bound(1) == pytest.approx(8.0 * p.kappa)

    def test_local_skew_bound_monotone_in_d(self):
        p = Parameters(d=1.0, u=0.01)
        bounds = [p.local_skew_bound(D) for D in (2, 4, 8, 16, 32)]
        assert bounds == sorted(bounds)

    def test_local_skew_bound_rejects_zero(self):
        p = Parameters(d=1.0, u=0.01)
        with pytest.raises(ValueError):
            p.local_skew_bound(0)

    def test_worst_case_fault_bound_f0_matches_local(self):
        p = Parameters(d=1.0, u=0.01)
        assert p.worst_case_fault_bound(8, 0) == pytest.approx(
            p.local_skew_bound(8)
        )

    def test_worst_case_fault_bound_recurrence(self):
        # The paper's induction: B_{i+1} = 5 B_i + B_0 >= 5 B_i + 4 kappa,
        # with B_0 = 4k(2 + log2 D); the ratio decreases toward 5.
        p = Parameters(d=1.0, u=0.01)
        b0 = p.worst_case_fault_bound(8, 0)
        ratios = []
        for f in range(4):
            b_f = p.worst_case_fault_bound(8, f)
            b_next = p.worst_case_fault_bound(8, f + 1)
            assert b_next == pytest.approx(5.0 * b_f + b0)
            assert b_next >= 5.0 * b_f + 4.0 * p.kappa
            ratios.append(b_next / b_f)
        assert ratios == sorted(ratios, reverse=True)
        assert 5.0 < ratios[-1] < 5.1

    def test_worst_case_rejects_negative_f(self):
        p = Parameters(d=1.0, u=0.01)
        with pytest.raises(ValueError):
            p.worst_case_fault_bound(8, -1)

    def test_global_skew_bound(self):
        p = Parameters(d=1.0, u=0.01)
        assert p.global_skew_bound(10) == pytest.approx(60.0 * p.kappa)


class TestFeasibility:
    def test_valid_regime_passes(self):
        p = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
        p.validate(skew_bound=p.local_skew_bound(32))

    def test_equation_2_violation_detected(self):
        p = Parameters(d=1.0, u=0.01, Lambda=1.05)
        with pytest.raises(ValueError, match="Equation \\(2\\)"):
            p.validate(skew_bound=0.5)

    def test_equation_3_violation_detected(self):
        # Huge skew bound relative to d violates (3) (Lambda kept large
        # enough that (2) passes first is not required; match on either).
        p = Parameters(d=1.0, u=0.01, Lambda=100.0)
        with pytest.raises(ValueError, match="Equation"):
            p.validate(skew_bound=10.0)

    def test_is_feasible_boolean(self):
        p = Parameters(d=1.0, u=0.01, Lambda=2.0)
        assert p.is_feasible(p.local_skew_bound(32))
        assert not p.is_feasible(100.0)

    def test_with_lambda_copies(self):
        p = Parameters(d=1.0, u=0.01)
        q = p.with_lambda(3.0)
        assert q.Lambda == 3.0
        assert q.d == p.d
        assert p.Lambda == 2.0  # original untouched

    def test_vlsi_defaults_are_feasible(self):
        p = Parameters.vlsi_defaults()
        assert p.is_feasible(p.local_skew_bound(64))
        # The regime of interest: d >> kappa.
        assert p.d > 20 * p.kappa
