"""Tests for repro.core.layer0: input pulse generation (Appendix A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clocks import PiecewiseRateClock, uniform_random_rates
from repro.core.layer0 import (
    AlternatingLayer0,
    ChainLayer0,
    JitteredLayer0,
    PerfectLayer0,
)
from repro.delays import StaticDelayModel
from repro.params import Parameters
from repro.topology import replicated_line

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)


class TestPerfect:
    def test_pulse_times(self):
        s = PerfectLayer0(Lambda=2.0)
        assert s.pulse_time(0, 0) == 0.0
        assert s.pulse_time(5, 3) == 6.0

    def test_zero_local_skew(self):
        s = PerfectLayer0(Lambda=2.0)
        assert s.local_skew(replicated_line(4), pulses=3) == 0.0

    def test_rejects_negative_pulse(self):
        with pytest.raises(ValueError):
            PerfectLayer0(2.0).pulse_time(0, -1)

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            PerfectLayer0(0.0)


class TestJittered:
    def test_jitter_bounded(self):
        s = JitteredLayer0(Lambda=2.0, num_vertices=20, jitter_bound=0.05, seed=1)
        for v in range(20):
            offset = s.pulse_time(v, 0)
            assert 0.0 <= offset <= 0.1  # base offset keeps times >= 0

    def test_static_across_pulses(self):
        s = JitteredLayer0(Lambda=2.0, num_vertices=5, jitter_bound=0.05, seed=1)
        j0 = s.pulse_time(3, 0)
        assert s.pulse_time(3, 4) == pytest.approx(j0 + 8.0)

    def test_local_skew_within_twice_bound(self):
        base = replicated_line(8)
        s = JitteredLayer0(2.0, base.num_nodes, jitter_bound=0.03, seed=2)
        assert s.local_skew(base, pulses=2) <= 0.06 + 1e-12


class TestAlternating:
    def test_zigzag_pattern(self):
        s = AlternatingLayer0(Lambda=2.0, amplitude=0.1)
        assert s.pulse_time(0, 0) == pytest.approx(0.2)
        assert s.pulse_time(1, 0) == pytest.approx(0.0)
        assert s.pulse_time(2, 1) == pytest.approx(2.2)

    def test_adjacent_offset_is_twice_amplitude(self):
        s = AlternatingLayer0(Lambda=2.0, amplitude=0.1)
        assert abs(s.pulse_time(0, 0) - s.pulse_time(1, 0)) == pytest.approx(0.2)


class TestChain:
    def _chain(self, length=8, seed=0, rates=True):
        order = list(range(length))
        delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=seed)
        clocks = (
            uniform_random_rates(order, PARAMS.vartheta, rng_or_seed=seed + 1)
            if rates
            else None
        )
        return ChainLayer0(PARAMS, order, delay_model=delays, clocks=clocks)

    def test_lemma_a1_envelope(self):
        chain = self._chain()
        for pos in range(8):
            for k in range(5):
                t = chain.chain_pulse_time(pos, k)
                low, high = chain.lemma_a1_envelope(pos, k)
                assert low - 1e-9 <= t <= high + 1e-9

    def test_adjacent_chain_skew_at_most_half_kappa(self):
        # Lemma A.1: pipelined-adjacent offsets bounded by kappa / 2.
        chain = self._chain(length=16, seed=3)
        for k in range(4):
            for pos in range(1, 16):
                a = chain.chain_pulse_time(pos - 1, k + 1)
                b = chain.chain_pulse_time(pos, k)
                assert abs(a - b) <= PARAMS.kappa / 2 + 1e-12

    def test_grid_reindexing_aligns_pulses(self):
        # Grid pulse k of every vertex lands near (k + P) * Lambda.
        chain = self._chain(length=8)
        for k in range(3):
            times = [chain.pulse_time(v, k) for v in range(8)]
            nominal = (k + 8) * PARAMS.Lambda
            assert all(nominal - 8 * PARAMS.kappa <= t <= nominal for t in times)

    def test_grid_adjacent_skew_small(self):
        chain = self._chain(length=12, seed=5)
        for k in range(3):
            times = [chain.pulse_time(v, k) for v in range(12)]
            for a, b in zip(times, times[1:]):
                assert abs(a - b) <= PARAMS.kappa / 2 + 1e-12

    def test_period_is_source_period(self):
        chain = self._chain()
        t0 = chain.pulse_time(3, 0)
        t1 = chain.pulse_time(3, 1)
        assert t1 - t0 == pytest.approx(PARAMS.Lambda)

    def test_rejects_unknown_vertex(self):
        chain = self._chain(length=4)
        with pytest.raises(ValueError):
            chain.pulse_time(99, 0)

    def test_rejects_duplicate_chain(self):
        with pytest.raises(ValueError):
            ChainLayer0(PARAMS, [0, 1, 1])

    def test_rejects_varying_rate_clock(self):
        clock = PiecewiseRateClock([0.0, 1.0], [1.0, 1.001])
        chain = ChainLayer0(PARAMS, [0, 1], clocks={1: clock})
        with pytest.raises(ValueError, match="constant-rate"):
            chain.pulse_time(1, 0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_lemma_a1_envelope_property(self, seed):
        """Property: the Lemma A.1 envelope holds for any delay/rate draw."""
        chain = self._chain(length=10, seed=seed)
        for pos in (0, 4, 9):
            for k in (0, 3):
                t = chain.chain_pulse_time(pos, k)
                low, high = chain.lemma_a1_envelope(pos, k)
                assert low - 1e-9 <= t <= high + 1e-9

    def test_wide_chain_no_recursion_blowup(self):
        """Regression: a cold far-end query on a 5000-node chain used to
        recurse through every predecessor position and blow the interpreter
        recursion limit; the iterative fill must handle it."""
        order = list(range(5000))
        delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
        chain = ChainLayer0(PARAMS, order, delay_model=delays)
        t = chain.chain_pulse_time(4999, 0)
        low, high = chain.lemma_a1_envelope(4999, 0)
        assert low - 1e-9 <= t <= high + 1e-9
        # Grid re-indexing at the chain head needs the deepest chain pulse.
        assert chain.pulse_time(0, 0) > 0.0


def _loop_times(schedule, base, pulses):
    """The pre-array reference: per-node, per-pulse ``pulse_time`` calls."""
    return np.array(
        [[schedule.pulse_time(v, k) for v in base.nodes()] for k in range(pulses)]
    ).reshape(pulses, base.num_nodes)


def _loop_local_skew(schedule, base, pulses):
    """The old O(pulses x edges) double-loop ``local_skew`` reference."""
    worst = 0.0
    for k in range(pulses):
        for v, w in base.edges:
            worst = max(
                worst, abs(schedule.pulse_time(v, k) - schedule.pulse_time(w, k))
            )
    return worst


class TestPulseTimesArray:
    """pulse_times_array must be bit-identical to pulse_time loops."""

    def _schedules(self, base):
        delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=2)
        clocks = uniform_random_rates(
            list(base.nodes()), PARAMS.vartheta, rng_or_seed=3
        )
        return [
            PerfectLayer0(PARAMS.Lambda),
            JitteredLayer0(PARAMS.Lambda, base.num_nodes, 0.05, seed=1),
            AlternatingLayer0(PARAMS.Lambda, 0.1),
            ChainLayer0(
                PARAMS, list(base.nodes()), delay_model=delays, clocks=clocks
            ),
        ]

    @pytest.mark.parametrize("pulses", [1, 4])
    def test_bit_identical_to_scalar_loop(self, pulses):
        base = replicated_line(8)
        for schedule in self._schedules(base):
            np.testing.assert_array_equal(
                schedule.pulse_times_array(base, pulses),
                _loop_times(schedule, base, pulses),
                err_msg=type(schedule).__name__,
            )

    def test_zero_pulses_empty_shape(self):
        base = replicated_line(4)
        assert PerfectLayer0(2.0).pulse_times_array(base, 0).shape == (
            0,
            base.num_nodes,
        )

    def test_rejects_negative_pulses(self):
        base = replicated_line(4)
        for schedule in (
            PerfectLayer0(2.0),
            AlternatingLayer0(2.0, 0.1),
            JitteredLayer0(2.0, base.num_nodes, 0.05),
        ):
            with pytest.raises(ValueError):
                schedule.pulse_times_array(base, -1)

    def test_chain_rejects_off_chain_vertices(self):
        chain = ChainLayer0(PARAMS, [0, 1, 2])
        with pytest.raises(ValueError, match="not on the chain"):
            chain.pulse_times_array(replicated_line(4), 2)

    def test_local_skew_matches_double_loop(self):
        base = replicated_line(8)
        for schedule in self._schedules(base):
            assert schedule.local_skew(base, 3) == pytest.approx(
                _loop_local_skew(schedule, base, 3), abs=0.0
            ), type(schedule).__name__

    def test_local_skew_zero_pulses(self):
        base = replicated_line(4)
        assert PerfectLayer0(2.0).local_skew(base, 0) == 0.0


class TestChainVectorizedFill:
    """The pulse-axis-vectorized chain fill == the per-entry cached fill.

    Regression for the Chain layer-0 fill: a cold ``pulse_times_array``
    on a P-node chain used to walk O(P^2) per-entry Python iterations
    (~6 s at P = 5000); pulse-invariant models now advance the whole
    pulse axis per hop.  Both fills must stay bit-identical -- the
    vectorized sweep evaluates the same expressions in the same
    association.
    """

    def _chain(self, base, seed=0, rates=True):
        clocks = (
            uniform_random_rates(
                list(base.nodes()), PARAMS.vartheta, rng_or_seed=seed + 1
            )
            if rates
            else None
        )
        return ChainLayer0(
            PARAMS,
            list(base.nodes()),
            delay_model=StaticDelayModel(PARAMS.d, PARAMS.u, seed=seed),
            clocks=clocks,
        )

    @pytest.mark.parametrize("pulses", [1, 3])
    def test_bit_identical_to_cached_fill(self, pulses):
        base = replicated_line(120)
        chain = self._chain(base, seed=4)
        positions = [chain._position[v] for v in base.nodes()]
        vectorized = chain._pulse_rows_invariant(positions, pulses)
        cached = self._chain(base, seed=4)._pulse_rows_cached(
            positions, pulses
        )
        np.testing.assert_array_equal(vectorized, cached)

    def test_pulse_varying_model_uses_cached_fill(self):
        # A VaryingDelayModel with max_step=0 draws the same base delays
        # as StaticDelayModel from the same seed but is not declared
        # pulse-invariant, so it exercises the per-entry path; both must
        # agree bit for bit.
        from repro.delays import VaryingDelayModel

        base = replicated_line(40)
        static = self._chain(base, seed=7, rates=False)
        varying = ChainLayer0(
            PARAMS,
            list(base.nodes()),
            delay_model=VaryingDelayModel(PARAMS.d, PARAMS.u, 0.0, seed=7),
        )
        np.testing.assert_array_equal(
            static.pulse_times_array(base, 3),
            varying.pulse_times_array(base, 3),
        )

    def test_five_thousand_node_chain_stacked_equals_per_trial(self):
        """The 5000-node acceptance cell: stacked == per-trial == scalar."""
        from repro.core.layer0 import stacked_pulse_times

        base = replicated_line(4998)
        assert base.num_nodes == 5000
        chain = self._chain(base, seed=0, rates=False)
        arr = chain.pulse_times_array(base, 3)
        block = stacked_pulse_times([chain], [base], 3)
        np.testing.assert_array_equal(block[0], arr)
        # Scalar spot checks at both chain ends (cheap cache fills).
        probe = self._chain(base, seed=0, rates=False)
        for v in (0, 1, 4998, 4999):
            for k in (0, 2):
                assert arr[k, v] == probe.pulse_time(v, k)
