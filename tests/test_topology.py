"""Tests for repro.topology: base graphs and the layered DAG."""

import pytest

from repro.topology import (
    BaseGraph,
    LayeredGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    replicated_line,
    sparse_base_graph,
    sparse_layered,
    star_graph,
    torus_graph,
)


class TestBaseGraphConstruction:
    def test_triangle(self):
        g = BaseGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.num_nodes == 3
        assert g.min_degree() == 2
        assert g.diameter == 1

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            BaseGraph(3, [(0, 0), (0, 1), (1, 2), (0, 2)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            BaseGraph(3, [(0, 1), (1, 0), (1, 2), (0, 2)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="out of range"):
            BaseGraph(2, [(0, 5)])

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            BaseGraph(4, [(0, 1), (2, 3)], require_min_degree_2=False)

    def test_rejects_min_degree_below_2(self):
        with pytest.raises(ValueError, match="minimum degree 2"):
            BaseGraph(3, [(0, 1), (1, 2)])

    def test_min_degree_check_can_be_disabled(self):
        g = BaseGraph(3, [(0, 1), (1, 2)], require_min_degree_2=False)
        assert g.min_degree() == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BaseGraph(0, [])

    def test_neighbors_sorted(self):
        g = BaseGraph(4, [(0, 3), (0, 1), (0, 2), (1, 2), (2, 3), (1, 3)])
        assert g.neighbors(0) == (1, 2, 3)

    def test_has_edge(self):
        g = cycle_graph(5)
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 4)
        assert not g.has_edge(0, 2)


class TestFactories:
    def test_replicated_line_structure(self):
        g = replicated_line(5)
        # 5 path nodes + 2 twins.
        assert g.num_nodes == 7
        assert g.min_degree() == 2
        # Twins: node 5 adjacent to {0, 1}, node 6 adjacent to {3, 4}.
        assert g.neighbors(5) == (0, 1)
        assert g.neighbors(6) == (3, 4)
        # Figure 3's "some degree 3": the nodes next to the boundary.
        assert g.degree(1) == 3
        assert g.degree(3) == 3
        assert g.degree(2) == 2

    def test_replicated_line_diameter(self):
        # Twin-to-twin distance dominates: D = m - 1 (except the tiny m=2
        # case where the two twins are 2 hops apart).
        for m in (2, 3, 5, 9, 16):
            g = replicated_line(m)
            assert g.diameter == max(m - 1, 2)

    def test_replicated_line_minimum_length(self):
        with pytest.raises(ValueError):
            replicated_line(1)

    def test_replicated_line_length_2(self):
        g = replicated_line(2)
        assert g.num_nodes == 4
        assert g.min_degree() == 2

    def test_cycle(self):
        g = cycle_graph(8)
        assert g.num_nodes == 8
        assert all(g.degree(v) == 2 for v in g.nodes())
        assert g.diameter == 4

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(5)
        assert g.diameter == 1
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_torus(self):
        g = torus_graph(3, 4)
        assert g.num_nodes == 12
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_torus_minimum_size(self):
        with pytest.raises(ValueError):
            torus_graph(2, 5)

    def test_path_and_star_bypass_degree_check(self):
        assert path_graph(4).min_degree() == 1
        assert star_graph(3).min_degree() == 1


class TestDistances:
    def test_distance_symmetric(self):
        g = replicated_line(6)
        for v in g.nodes():
            for w in g.nodes():
                assert g.distance(v, w) == g.distance(w, v)

    def test_distance_triangle_inequality(self):
        g = replicated_line(6)
        nodes = list(g.nodes())
        for v in nodes:
            for w in nodes:
                for x in nodes:
                    assert g.distance(v, w) <= g.distance(v, x) + g.distance(
                        x, w
                    )

    def test_distance_zero_to_self(self):
        g = cycle_graph(5)
        assert all(g.distance(v, v) == 0 for v in g.nodes())

    def test_adjacent_distance_one(self):
        g = cycle_graph(7)
        for v, w in g.edges:
            assert g.distance(v, w) == 1

    def test_ball(self):
        g = cycle_graph(8)
        assert sorted(g.ball(0, 1)) == [0, 1, 7]
        assert sorted(g.ball(0, 2)) == [0, 1, 2, 6, 7]
        assert len(g.ball(0, 4)) == 8


class TestLayeredGraph:
    def test_sizes(self):
        base = replicated_line(4)
        g = LayeredGraph(base, 5)
        assert g.width == 6
        assert g.num_nodes == 30
        assert g.diameter == base.diameter

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            LayeredGraph(replicated_line(4), 0)

    def test_index_roundtrip(self):
        g = LayeredGraph(replicated_line(4), 5)
        for node in g.nodes():
            assert g.node_at(g.index(node)) == node

    def test_index_out_of_range(self):
        g = LayeredGraph(replicated_line(4), 5)
        with pytest.raises(ValueError):
            g.index((0, 5))
        with pytest.raises(ValueError):
            g.node_at(g.num_nodes)

    def test_layer0_has_no_predecessors(self):
        g = LayeredGraph(cycle_graph(5), 3)
        for v in range(5):
            assert g.predecessors((v, 0)) == []
            assert g.in_degree((v, 0)) == 0

    def test_predecessors_own_copy_first(self):
        g = LayeredGraph(cycle_graph(5), 3)
        preds = g.predecessors((2, 1))
        assert preds[0] == (2, 0)
        assert set(preds[1:]) == {(1, 0), (3, 0)}

    def test_neighbor_predecessors_excludes_own(self):
        g = LayeredGraph(cycle_graph(5), 3)
        assert (2, 0) not in g.neighbor_predecessors((2, 1))

    def test_in_degree_matches_paper(self):
        # "Most nodes have in- and out-degree 3, some 4" (Figure 3).
        g = LayeredGraph(replicated_line(6), 3)
        degrees = [g.in_degree((v, 1)) for v in g.base.nodes()]
        assert sorted(set(degrees)) == [3, 4]
        assert degrees.count(3) > degrees.count(4)

    def test_successors_mirror_predecessors(self):
        g = LayeredGraph(replicated_line(4), 4)
        for layer in range(3):
            for v in g.base.nodes():
                for succ in g.successors((v, layer)):
                    assert (v, layer) in g.predecessors(succ)

    def test_last_layer_no_successors(self):
        g = LayeredGraph(cycle_graph(4), 3)
        assert g.successors((0, 2)) == []
        assert g.out_degree((0, 2)) == 0

    def test_edges_between_count(self):
        base = cycle_graph(5)
        g = LayeredGraph(base, 3)
        edges = list(g.edges_between(0))
        # Each node has deg+1 = 3 outgoing edges.
        assert len(edges) == 15
        assert list(g.edges_between(2)) == []  # last layer

    def test_intra_layer_pairs(self):
        base = cycle_graph(5)
        g = LayeredGraph(base, 2)
        pairs = list(g.intra_layer_pairs(1))
        assert len(pairs) == len(base.edges)
        assert all(a[1] == 1 and b[1] == 1 for a, b in pairs)


class TestAncestors:
    def _brute_force_ancestors(self, g, node, distance):
        """BFS backwards over explicit predecessor edges."""
        frontier = {node}
        found = set()
        for _ in range(distance):
            nxt = set()
            for x in frontier:
                for p in g.predecessors(x):
                    if p not in found:
                        found.add(p)
                        nxt.add(p)
            frontier = nxt
        return found

    @pytest.mark.parametrize("distance", [0, 1, 2, 3, 5])
    def test_matches_brute_force(self, distance):
        g = LayeredGraph(replicated_line(5), 7)
        node = (3, 6)
        assert g.ancestors_within(node, distance) == self._brute_force_ancestors(
            g, node, distance
        )

    def test_count_matches_set(self):
        g = LayeredGraph(cycle_graph(6), 5)
        node = (2, 4)
        for distance in range(5):
            assert g.count_ancestors_within(node, distance) == len(
                g.ancestors_within(node, distance)
            )

    def test_excludes_self(self):
        g = LayeredGraph(cycle_graph(6), 5)
        assert (2, 4) not in g.ancestors_within((2, 4), 3)

    def test_rejects_negative_distance(self):
        g = LayeredGraph(cycle_graph(6), 5)
        with pytest.raises(ValueError):
            g.ancestors_within((0, 1), -1)

    def test_growth_is_linear_in_distance(self):
        # The paper: the d-hop ancestry grows ~quadratically in d (linearly
        # per layer) on grid-like graphs -- the hinge of Observation 4.34.
        g = LayeredGraph(cycle_graph(30), 20)
        counts = [g.count_ancestors_within((0, 19), j) for j in (2, 4, 8)]
        # Quadratic: quadrupling distance ~16x the count.
        assert counts[2] > 3 * counts[1] > 6 * counts[0]


class TestNeighborCSR:
    """The cached CSR representation mirrors the adjacency exactly."""

    def _check_csr(self, g):
        indptr, indices, edge_slot = g.neighbor_csr()
        assert indptr.shape == (g.num_nodes + 1,)
        assert indptr[0] == 0 and indptr[-1] == len(indices)
        assert len(indices) == 2 * len(g.edges)
        assert len(edge_slot) == len(indices)
        edges = g.edges
        for v in range(g.num_nodes):
            segment = indices[indptr[v]: indptr[v + 1]]
            assert tuple(segment) == g.neighbors(v)  # sorted-neighbor order
            for pos, w in zip(range(indptr[v], indptr[v + 1]), segment):
                assert edges[edge_slot[pos]] == (min(v, w), max(v, w))

    def test_matches_neighbors_and_edges(self):
        for g in (cycle_graph(8), complete_graph(5), replicated_line(4),
                  torus_graph(3, 4), sparse_base_graph(40, num_hubs=1)):
            self._check_csr(g)

    def test_cached_and_write_protected(self):
        g = cycle_graph(6)
        first = g.neighbor_csr()
        assert all(a is b for a, b in zip(first, g.neighbor_csr()))
        for arr in first:
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_distances_match_neighbor_bfs(self):
        # The vectorized frontier BFS against a hand-rolled queue BFS.
        from collections import deque

        for g in (sparse_base_graph(30, num_hubs=2, hub_degree=5),
                  torus_graph(4, 5)):
            for source in (0, g.num_nodes - 1):
                dist = {source: 0}
                queue = deque([source])
                while queue:
                    v = queue.popleft()
                    for w in g.neighbors(v):
                        if w not in dist:
                            dist[w] = dist[v] + 1
                            queue.append(w)
                got = g.distances_from(source)
                assert [dist[v] for v in range(g.num_nodes)] == list(got)

    def test_ball_returns_python_ints(self):
        # Campaign state keys hash ball members; numpy ints would change
        # the key equality semantics across platforms.
        members = cycle_graph(8).ball(0, 2)
        assert all(type(v) is int for v in members)


class TestSparseGraphs:
    def test_ring_is_degree_4(self):
        g = sparse_base_graph(100)
        assert g.max_degree() == 4
        assert min(len(g.neighbors(v)) for v in range(g.num_nodes)) >= 2

    def test_diameter_scales_like_sqrt(self):
        # C_n(1, s) with s ~ sqrt(n): diameter O(sqrt(n)), far below n/2.
        g = sparse_base_graph(400)
        assert g.diameter <= 4 * 20

    def test_hubs_skew_degree(self):
        g = sparse_base_graph(101, num_hubs=1, hub_degree=32)
        degrees = [len(g.neighbors(v)) for v in range(g.num_nodes)]
        assert max(degrees) == 32
        assert sorted(degrees)[g.num_nodes // 2] <= 6  # median stays tiny

    def test_hub_ids_trail_the_ring(self):
        g = sparse_base_graph(20, num_hubs=2, hub_degree=4)
        assert len(g.neighbors(18)) >= 4 and len(g.neighbors(19)) >= 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            sparse_base_graph(4)
        with pytest.raises(ValueError):
            sparse_base_graph(10, chord_stride=1)
        with pytest.raises(ValueError):
            sparse_base_graph(10, num_hubs=1, hub_degree=1)
        with pytest.raises(ValueError):
            sparse_base_graph(10, num_hubs=-1)

    def test_layered_constructor(self):
        g = sparse_layered(64, 3)
        assert (g.width, g.num_layers) == (64, 3)
        assert g.base.max_degree() == 4
