"""TH4: Theorem 1.4 -- static faults keep the overall L in O(k log D)."""

from repro.experiments.thm14_static_faults import run_thm14


def test_thm14(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_thm14(diameter=16, num_pulses=5), rounds=1, iterations=1
    )
    report(result)
    assert result.within_envelope
    # Static behaviour => exactly periodic schedule (the proof's engine).
    assert result.max_period_error < 1e-9
    assert result.num_faults >= 3
