"""C15: Corollary 1.5 -- sustained delay/clock/fault variation."""

from repro.experiments.cor15_variation import run_cor15


def test_cor15(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_cor15(diameter=16, num_pulses=6), rounds=1, iterations=1
    )
    report(result)
    assert result.within_envelope
    # All three variation channels were active.
    assert result.delay_step > 0
    assert result.rate_step > 0
    assert result.behavior_changes >= 1
