"""AB1/AB2: design-choice ablations (discretization, stick-to-median)."""

from repro.experiments.ablations import (
    run_discretization_ablation,
    run_median_ablation,
)


def test_ablation_discretization(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_discretization_ablation(diameter=16, num_pulses=4),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Both variants stay bounded in the fault-free noisy regime; the
    # discretization's value is analytical (it makes the proof go
    # through), so we only require comparable magnitudes.
    assert result.skew_with > 0
    assert result.skew_without < 10 * result.skew_with


def test_ablation_median(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_median_ablation(diameter=16, num_pulses=4),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Dropping the median rule forfeits fault containment.
    assert result.degradation > 3.0
