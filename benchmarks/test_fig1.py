"""F1: regenerate Figure 1 (TRIX skew pile-up; HEX crash cost)."""

from repro.experiments.fig1_trix_hex import run_fig1


def test_fig1(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig1(diameter=32, num_pulses=2), rounds=1, iterations=1
    )
    report(result)
    # Left panel: Theta(u) per layer pile-up for naive TRIX, absorbed by
    # Gradient TRIX on identical delays.
    assert result.trix_final_skew >= 0.15 * result.params.u * 32
    assert result.trix_final_skew > 3 * result.trix_skew_by_layer[1]
    assert result.gradient_skew_by_layer[-1] < 0.3 * result.trix_final_skew
    # Right panel: a single crash costs HEX an additive ~d >> u.
    assert result.hex_crash_penalty >= 0.5 * result.params.d
    assert result.hex_skew_before_crash < 5 * result.params.u
