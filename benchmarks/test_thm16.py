"""TH6: Theorem 1.6 -- self-stabilization within O(sqrt n) pulses."""

from repro.experiments.thm16_selfstab import run_thm16


def test_thm16(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_thm16(diameter=8), rounds=1, iterations=1
    )
    report(result)
    assert result.report.stabilized
    assert result.stabilized_within_budget
    # The transient fault was not a no-op.
    assert result.corrupted_nodes > 0
    assert result.report.violations > 0
