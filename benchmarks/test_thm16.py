"""TH6: Theorem 1.6 -- self-stabilization within O(sqrt n) pulses.

Since the chaos-campaign rewrite, ``run_thm16`` measures recovery from
*sustained churn* (a random :class:`~repro.faults.campaign.ChaosCampaign`
per trial) through the fast path, not a one-shot state corruption.
"""

from repro.experiments.thm16_selfstab import run_thm16


def test_thm16(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_thm16(diameter=8), rounds=1, iterations=1
    )
    report(result)
    assert result.stabilized
    assert result.stabilized_within_budget
    # The churn window was not a no-op.
    assert result.churn_actions > 0
    assert result.last_event_pulse > 0
