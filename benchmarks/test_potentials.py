"""P1: Lemma 4.22 / Theorem 4.26 -- potential decay and recovery."""

from repro.experiments.potential_decay import run_potential_decay


def test_potential_decay(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_potential_decay(diameter=16, amplitude_kappas=6.0),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Injected skew is burned off level by level (Lemma 4.25's halving).
    assert result.decayed(1)
    assert result.decayed(2)
    # Higher levels sit below lower ones everywhere.
    for layer in range(0, len(result.series[0]), 8):
        assert result.series[2][layer] <= result.series[1][layer] + 1e-9
        assert result.series[1][layer] <= result.series[0][layer] + 1e-9
