"""TH1: Theorem 1.1 -- fault-free local skew <= 4k(2 + log2 D)."""

from repro.experiments.thm11_local_skew import run_thm11


def test_thm11(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_thm11(
            diameters=(4, 8, 16, 32, 64), seeds=(0, 1, 2), num_pulses=3
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert result.all_within_bound
    # Log-like growth: the power-law exponent is far below linear.
    assert result.power_fit.slope < 0.6
    # And the bound is not vacuous: measured skew grows with D at all.
    first, last = result.rows[0], result.rows[-1]
    assert last.local_skew > first.local_skew
