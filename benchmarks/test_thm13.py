"""TH3: Theorem 1.3 -- random sparse faults keep L_l in O(k log D) whp."""

from repro.experiments.thm13_random_faults import run_thm13


def test_thm13(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_thm13(diameter=16, num_trials=15, num_pulses=3),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Every sampled plan stayed within the O(k log D) envelope, despite
    # mixing crash / early / late / Byzantine behaviours.
    assert result.fraction_within_envelope == 1.0
    # The trials actually injected faults.
    assert max(t.num_faults for t in result.trials) >= 1
