"""F2/F3: regenerate Figures 2-3 (base graph / layer structure)."""

from repro.experiments.fig23_structure import run_structure


def test_fig23(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_structure(length=32, num_layers=16), rounds=1, iterations=1
    )
    report(result)
    # Figure 2: the replicated line has minimum degree 2 and D = length-1.
    assert result.min_base_degree == 2
    assert result.diameter == 31
    # Figure 3: "most nodes have in- and out-degree 3, some 4".
    assert set(result.in_degrees) == {3, 4}
    assert set(result.out_degrees) == {3, 4}
    assert result.fraction_in_degree_3 > 0.8
