"""LA1: Lemma A.1 -- the layer-0 chain keeps local skew <= kappa/2."""

from repro.experiments.lemA1_layer0 import run_lemA1


def test_lemA1(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_lemA1(chain_lengths=(8, 16, 32, 64), num_pulses=5),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert result.all_within_bound
    # The bound does not degrade with chain length (per-hop, not total).
    skews = [r.max_adjacent_skew for r in result.rows]
    assert max(skews) <= result.rows[0].kappa_half
