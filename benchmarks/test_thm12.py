"""TH2: Theorem 1.2 -- stacked worst-case faults, O(5^f k log D) bound."""

from repro.experiments.thm12_worstcase_faults import run_thm12


def test_thm12(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_thm12(
            diameter=16, fault_counts=(0, 1, 2, 3), num_pulses=3
        ),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert result.all_within_bound
    assert result.monotone
    # Faults hurt: one stacked fault visibly inflates the skew.
    assert result.rows[1].local_skew > 1.5 * result.rows[0].local_skew
