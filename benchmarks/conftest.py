"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact (table, figure, or theorem)
at paper-representative scale, prints the measured table next to the
paper's claim, and asserts the qualitative shape.  Timing numbers come
from pytest-benchmark; run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

# The bench/slow markers are registered repo-wide in pyproject.toml's
# [tool.pytest.ini_options]; this conftest only carries shared fixtures.


def emit(result) -> None:
    """Print an experiment's table under a visible separator."""
    print()
    print("=" * 72)
    print(result.table())
    print("=" * 72)


@pytest.fixture
def report():
    """Fixture handing benches the table printer."""
    return emit
