"""Throughput trajectory of the fast simulator's batch kernels.

Four micro-benchmarks track the performance trajectory across PRs:

* ``test_vectorized_kernel_speedup`` (marked ``slow``): scalar per-node
  replay vs the whole-layer array kernel on the PR-1 acceptance grid
  (fault-free, D = 64, 64 layers), asserting the >= 10x floor.
* ``test_trial_stacked_speedup``: per-trial vectorized loop vs the
  trial-stacked ``(S, W)`` kernel on a fault-free S = 64, D = 32 batch,
  asserting the >= 3x floor.
* ``test_simplified_stacked_speedup``: the vectorized + trial-stacked
  simplified (Algorithm 1) path vs its scalar replay at D = 64,
  asserting the >= 5x floor and bit-identical times.
* ``test_heterogeneous_stacked_speedup``: a thm11-style mixed-width
  sweep (S = 16 over D in {16, 32, 64}) through the padded
  mixed-geometry stack vs the per-trial loop and the per-geometry
  grouping, asserting a single stack group, bit-identical times, and
  the >= 1.3x floor over the per-trial loop.
* ``test_depth_skewed_compaction_speedup``: the workload the padded
  stack used to *lose* -- S = 16 mixed widths with 1-vs-512 layer
  skew -- through the depth-compacted stack vs per-geometry grouping
  and the uncompacted padded stack, asserting bit-identical times and
  the >= 1.3x floor over per-geometry grouping (the previous best mode
  on this shape).
* ``test_campaign_stacked_speedup``: an S = 32, D = 32 batch where every
  trial carries its own random :class:`ChaosCampaign`, run through the
  trial-stacked kernel vs the per-trial loop (>= 1.5x floor, times
  within 1e-9), plus the quiet-campaign overhead probe: a no-event
  campaign must stay within 2x of the static kernel and reproduce its
  times bitwise.  Recorded under the ``"churn"`` section.
* ``test_width_skewed_lane_compaction_speedup``: one wide shallow trial
  stacked with a field of narrow deep ones -- the shape where depth
  compaction alone still drags every surviving row across the wide
  trial's padded lanes.  Lane (width) compaction vs the lane-padded
  stack, bit-identical times, >= 1.3x floor; recorded under the
  ``"sparse"`` section.
* ``test_csr_backend_memory_reduction``: a hub-skewed 10^5-node sparse
  layered graph through the CSR segment-reduce kernel vs the dense
  padded kernel, tracking peak memory with ``tracemalloc`` and asserting
  the CSR peak stays <= 0.5x dense (it is ~10x smaller in practice) with
  bit-identical times on a small companion cell; also recorded under
  ``"sparse"``.
* ``test_dense_backend_no_regression``: the regular trial-stacked cell
  with ``neighbor_backend="auto"`` vs explicit ``"dense"`` -- the
  density heuristic must pick dense on regular graphs and cost nothing
  measurable (<= 1.25x, bitwise-identical times).
* ``test_kernel_backend_ops_speedup``: the pluggable kernel backend at
  the ops level -- the dense padded neighbor reduction and its CSR
  segment twin on the S = 64, D = 32 stacked cell shape, NumPy vs the
  numba JIT backend.  The numba legs run (and the >= 2x dense floor is
  asserted) only when the optional ``numba`` extra is installed --
  CI's numba-backend job; a NumPy-only run still records its own legs.
  Recorded under the ``"backend"`` section, together with a
  full-kernel trial-stacked timing per installed backend.
* ``test_streaming_memory_reduction``: the streaming result pipeline
  (``store_times=False``) vs the materialized ``(S, K, L, W)`` block on
  an S = 64, 32-pulse cell, tracking peak memory with ``tracemalloc``
  and asserting the >= 4x reduction floor (and that the streamed peak
  stays under a single block -- CI fails if the block ever comes back).

The batch benches record their modes into ``BENCH_batch.json`` next to
this file (merge-updating their own section, so running a subset keeps
the others' numbers) with machine-readable throughput, so the perf
trajectory is tracked across PRs; CI's bench-smoke job uploads it as an
artifact.  The slow single-simulation bench only prints its table.

Select just these with ``pytest benchmarks/test_batch_speed.py -m bench``;
``-m 'bench and not slow'`` is the CI smoke selection.
"""

import json
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.clocks import uniform_random_rates
from repro.core.backend import (
    NUMPY_OPS,
    numba_available,
    resolve_kernel_ops,
)
from repro.core.fast import FastSimulation
from repro.delays import StaticDelayModel, UniformDelayModel
from repro.experiments.batch import BatchRunner
from repro.faults import ChaosCampaign
from repro.params import Parameters
from repro.topology import LayeredGraph, replicated_line, sparse_layered

pytestmark = pytest.mark.bench

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
DIAMETER = 64
NUM_LAYERS = 64
NUM_PULSES = 4

#: The trial-stacked acceptance cell: fault-free S = 64 trials at D = 32.
BATCH_DIAMETER = 32
BATCH_TRIALS = 64
#: Scalar replay is ~2 orders slower; measure a subset and report rates.
SCALAR_TRIALS = 4

#: The simplified-path acceptance cell: Algorithm 1 trials at D = 64.
SIMPLIFIED_DIAMETER = 64
SIMPLIFIED_TRIALS = 16
SIMPLIFIED_SCALAR_TRIALS = 2

#: The churn acceptance cell: every trial carries its own random campaign.
CHURN_DIAMETER = 32
CHURN_TRIALS = 32
CHURN_PULSES = 6

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_batch.json"


def _merge_bench_json(update):
    """Merge ``update`` into BENCH_batch.json, keeping other benches' keys."""
    report = {}
    if BENCH_JSON.exists():
        try:
            report = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(update)
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")


def _merge_sparse_section(subkey, value):
    """Merge one sub-entry into the ``"sparse"`` section of the report.

    The sparse benches each own a sub-entry (``width_skew``,
    ``csr_memory``); a plain top-level update would clobber the sibling
    when only one bench runs.
    """
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text()).get("sparse", {})
        except json.JSONDecodeError:
            existing = {}
    existing[subkey] = value
    _merge_bench_json({"sparse": existing})


def acceptance_grid():
    """The PR-1 acceptance cell: fault-free D=64, 64-layer grid."""
    graph = LayeredGraph(replicated_line(DIAMETER + 1), NUM_LAYERS)
    delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
    rates = {
        node: clock.rate
        for node, clock in uniform_random_rates(
            graph.nodes(), PARAMS.vartheta, rng_or_seed=1
        ).items()
    }
    return graph, delays, rates


def timed(fn, repeats=3):
    """Best-of-``repeats`` wall-clock seconds (plus the last result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.slow
def test_vectorized_kernel_speedup():
    graph, delays, rates = acceptance_grid()
    vectorized = FastSimulation(
        graph, PARAMS, delay_model=delays, clock_rates=rates, vectorize=True
    )
    scalar = FastSimulation(
        graph, PARAMS, delay_model=delays, clock_rates=rates, vectorize=False
    )
    # Warm the shared per-edge delay cache and the per-layer array caches
    # so the measured ratio reflects the kernels, not one-time RNG setup.
    vectorized.run(1)
    # Both paths get the same best-of-N treatment (an asymmetric protocol
    # would bias the recorded trajectory); escalate once on a noisy host
    # before failing the floor.
    for repeats in (3, 5):
        scalar_time, scalar_result = timed(
            lambda: scalar.run(NUM_PULSES), repeats=repeats
        )
        vector_time, vector_result = timed(
            lambda: vectorized.run(NUM_PULSES), repeats=repeats
        )
        if scalar_time / vector_time >= 10.0:
            break

    np.testing.assert_allclose(
        vector_result.times,
        scalar_result.times,
        rtol=0.0,
        atol=1e-9,
        equal_nan=True,
    )
    node_pulses = graph.num_nodes * NUM_PULSES
    speedup = scalar_time / vector_time
    print()
    print(
        format_table(
            ["path", "seconds", "node-pulses/s"],
            [
                ("scalar", scalar_time, node_pulses / scalar_time),
                ("vectorized", vector_time, node_pulses / vector_time),
                ("speedup", speedup, ""),
            ],
            title=f"Layer-sweep kernel, D={DIAMETER}, {NUM_LAYERS} layers, "
            f"{NUM_PULSES} pulses",
        )
    )
    assert speedup >= 10.0, (
        f"vectorized kernel only {speedup:.1f}x faster than scalar "
        f"({vector_time:.4f}s vs {scalar_time:.4f}s)"
    )


def _mode_record(trials_measured, seconds, node_pulses_per_trial, **extra):
    """One mode's JSON entry, normalized to rates so modes compare."""
    record = {
        "trials_measured": trials_measured,
        "seconds": seconds,
        "trials_per_s": trials_measured / seconds,
        "node_pulses_per_s": trials_measured * node_pulses_per_trial / seconds,
    }
    record.update(extra)
    return record


def test_trial_stacked_speedup():
    """Trial-stacked kernel >= 3x over the per-trial vectorized loop.

    Also times the scalar reference (on a subset) and the process-sharded
    executor, and records all four modes in ``BENCH_batch.json``.
    """
    trials = BatchRunner.seed_sweep(
        BATCH_DIAMETER, range(BATCH_TRIALS), num_pulses=NUM_PULSES
    )
    graph = trials[0].config.graph
    node_pulses = graph.num_nodes * NUM_PULSES

    stacked_runner = BatchRunner(num_pulses=NUM_PULSES)
    per_trial_runner = BatchRunner(num_pulses=NUM_PULSES, stack=False)
    scalar_runner = BatchRunner(num_pulses=NUM_PULSES, vectorize=False)
    sharded_runner = BatchRunner(
        num_pulses=NUM_PULSES, executor="process", shards=2
    )

    # Warm the per-edge and per-layer delay caches once; every timed mode
    # then measures its kernel, not one-time RNG setup.
    stacked_runner.run(trials)
    for repeats in (3, 5):
        stacked_time, stacked_batch = timed(
            lambda: stacked_runner.run(trials), repeats=repeats
        )
        per_trial_time, per_trial_batch = timed(
            lambda: per_trial_runner.run(trials), repeats=repeats
        )
        if per_trial_time / stacked_time >= 3.0:
            break
    scalar_time, _ = timed(
        lambda: scalar_runner.run(trials[:SCALAR_TRIALS]), repeats=1
    )
    sharded_time, sharded_batch = timed(
        lambda: sharded_runner.run(trials), repeats=1
    )

    np.testing.assert_allclose(
        stacked_batch.times,
        per_trial_batch.times,
        rtol=0.0,
        atol=1e-9,
        equal_nan=True,
    )
    np.testing.assert_array_equal(stacked_batch.times, sharded_batch.times)

    speedup = per_trial_time / stacked_time
    report = {
        "benchmark": "batch_speed",
        "grid": {
            "diameter": BATCH_DIAMETER,
            "num_layers": graph.num_layers,
            "width": graph.width,
            "num_pulses": NUM_PULSES,
            "trials": BATCH_TRIALS,
            "faults": 0,
        },
        "modes": {
            "scalar": _mode_record(SCALAR_TRIALS, scalar_time, node_pulses),
            "per_trial_vectorized": _mode_record(
                BATCH_TRIALS, per_trial_time, node_pulses
            ),
            "trial_stacked": _mode_record(
                BATCH_TRIALS, stacked_time, node_pulses
            ),
            "process_sharded": _mode_record(
                BATCH_TRIALS, sharded_time, node_pulses, shards=2
            ),
        },
        "speedups": {
            "stacked_vs_per_trial": speedup,
            "stacked_vs_scalar": (
                (scalar_time / SCALAR_TRIALS) / (stacked_time / BATCH_TRIALS)
            ),
        },
    }
    _merge_bench_json(report)

    print()
    print(
        format_table(
            ["mode", "trials", "seconds", "node-pulses/s"],
            [
                (name, mode["trials_measured"], mode["seconds"],
                 mode["node_pulses_per_s"])
                for name, mode in report["modes"].items()
            ],
            title=f"Batch kernels, S={BATCH_TRIALS}, D={BATCH_DIAMETER}, "
            f"{NUM_PULSES} pulses (stacked {speedup:.1f}x vs per-trial)",
        )
    )
    assert speedup >= 3.0, (
        f"trial-stacked kernel only {speedup:.1f}x faster than the "
        f"per-trial loop ({stacked_time:.4f}s vs {per_trial_time:.4f}s)"
    )


def test_simplified_stacked_speedup():
    """Vectorized + stacked Algorithm 1 >= 5x over its scalar replay at D=64.

    The simplified path used to be replayed scalar-only; this bench pins
    the vectorized/trial-stacked kernel's throughput on the ``fig5_jump``/
    ``ablations``-scale cell and records it under the ``"simplified"``
    section of ``BENCH_batch.json``.
    """
    trials = BatchRunner.seed_sweep(
        SIMPLIFIED_DIAMETER, range(SIMPLIFIED_TRIALS), num_pulses=NUM_PULSES
    )
    for trial in trials:
        trial.algorithm = "simplified"
    graph = trials[0].config.graph
    node_pulses = graph.num_nodes * NUM_PULSES

    stacked_runner = BatchRunner(num_pulses=NUM_PULSES)
    scalar_runner = BatchRunner(num_pulses=NUM_PULSES, vectorize=False)

    stacked_runner.run(trials)  # warm the delay/rate caches
    stacked_time, stacked_batch = timed(lambda: stacked_runner.run(trials))
    scalar_time, scalar_batch = timed(
        lambda: scalar_runner.run(trials[:SIMPLIFIED_SCALAR_TRIALS]), repeats=1
    )

    # Acceptance: the stacked kernel is bit-identical to the scalar replay.
    np.testing.assert_array_equal(
        stacked_batch.times[:SIMPLIFIED_SCALAR_TRIALS], scalar_batch.times
    )

    speedup = (scalar_time / SIMPLIFIED_SCALAR_TRIALS) / (
        stacked_time / SIMPLIFIED_TRIALS
    )
    _merge_bench_json(
        {
            "simplified": {
                "grid": {
                    "diameter": SIMPLIFIED_DIAMETER,
                    "num_layers": graph.num_layers,
                    "width": graph.width,
                    "num_pulses": NUM_PULSES,
                    "trials": SIMPLIFIED_TRIALS,
                    "faults": 0,
                    "algorithm": "simplified",
                },
                "modes": {
                    "scalar": _mode_record(
                        SIMPLIFIED_SCALAR_TRIALS, scalar_time, node_pulses
                    ),
                    "trial_stacked": _mode_record(
                        SIMPLIFIED_TRIALS, stacked_time, node_pulses
                    ),
                },
                "speedups": {"stacked_vs_scalar": speedup},
            }
        }
    )

    print()
    print(
        format_table(
            ["mode", "trials", "seconds", "node-pulses/s"],
            [
                (
                    "scalar",
                    SIMPLIFIED_SCALAR_TRIALS,
                    scalar_time,
                    SIMPLIFIED_SCALAR_TRIALS * node_pulses / scalar_time,
                ),
                (
                    "trial_stacked",
                    SIMPLIFIED_TRIALS,
                    stacked_time,
                    SIMPLIFIED_TRIALS * node_pulses / stacked_time,
                ),
            ],
            title=f"Simplified (Alg. 1) kernel, S={SIMPLIFIED_TRIALS}, "
            f"D={SIMPLIFIED_DIAMETER}, {NUM_PULSES} pulses "
            f"(stacked {speedup:.1f}x vs scalar)",
        )
    )
    assert speedup >= 5.0, (
        f"stacked simplified kernel only {speedup:.1f}x faster than the "
        f"scalar replay ({stacked_time:.4f}s vs {scalar_time:.4f}s)"
    )


#: The heterogeneous acceptance cell: S = 16 trials over mixed widths
#: (thm11's D in {16, 32, 64}), which before padding ran as width-1
#: stacks or separate per-geometry batches.
HETERO_DIAMETERS = (16, 32, 64)
HETERO_TRIALS = 16


def hetero_trials():
    """S = 16 fault-free trials cycling through the mixed diameters."""
    trials = []
    for i in range(HETERO_TRIALS):
        diameter = HETERO_DIAMETERS[i % len(HETERO_DIAMETERS)]
        trials.extend(
            BatchRunner.seed_sweep(diameter, [i], num_pulses=NUM_PULSES)
        )
    return trials


def test_heterogeneous_stacked_speedup():
    """Padded mixed-geometry stack >= 1.3x over the per-trial loop.

    The sweep the paper's headline experiments run (mixed widths/depths)
    used to bypass the trial stack entirely; this bench pins the padded
    kernel's throughput against the per-trial vectorized loop and the
    per-geometry grouping (`stack_mixed_geometry=False`), and records all
    three modes under the ``"heterogeneous"`` section of
    ``BENCH_batch.json``.
    """
    trials = hetero_trials()
    node_pulses = sum(
        t.config.graph.num_nodes * NUM_PULSES for t in trials
    ) / len(trials)

    stacked_runner = BatchRunner(num_pulses=NUM_PULSES)
    grouped_runner = BatchRunner(
        num_pulses=NUM_PULSES, stack_mixed_geometry=False
    )
    per_trial_runner = BatchRunner(num_pulses=NUM_PULSES, stack=False)

    # Warm the per-edge and per-layer delay caches once.
    warm = stacked_runner.run(trials)
    assert warm.stack_groups == [list(range(len(trials)))], (
        "mixed-width sweep must run as a single padded stack"
    )
    for repeats in (3, 5):
        stacked_time, stacked_batch = timed(
            lambda: stacked_runner.run(trials), repeats=repeats
        )
        per_trial_time, per_trial_batch = timed(
            lambda: per_trial_runner.run(trials), repeats=repeats
        )
        if per_trial_time / stacked_time >= 1.3:
            break
    grouped_time, grouped_batch = timed(
        lambda: grouped_runner.run(trials), repeats=1
    )

    # Acceptance: the padded stack is bit-identical to the per-trial runs.
    np.testing.assert_array_equal(stacked_batch.times, per_trial_batch.times)
    np.testing.assert_array_equal(stacked_batch.times, grouped_batch.times)

    speedup = per_trial_time / stacked_time
    _merge_bench_json(
        {
            "heterogeneous": {
                "grid": {
                    "diameters": list(HETERO_DIAMETERS),
                    "num_pulses": NUM_PULSES,
                    "trials": len(trials),
                    "faults": 0,
                },
                "modes": {
                    "per_trial_vectorized": _mode_record(
                        len(trials), per_trial_time, node_pulses
                    ),
                    "geometry_grouped": _mode_record(
                        len(trials), grouped_time, node_pulses,
                        groups=len(grouped_batch.stack_groups),
                    ),
                    "hetero_stacked": _mode_record(
                        len(trials), stacked_time, node_pulses, groups=1
                    ),
                },
                "speedups": {
                    "stacked_vs_per_trial": speedup,
                    "stacked_vs_grouped": grouped_time / stacked_time,
                },
            }
        }
    )

    print()
    print(
        format_table(
            ["mode", "trials", "seconds", "node-pulses/s"],
            [
                ("per_trial_vectorized", len(trials), per_trial_time,
                 len(trials) * node_pulses / per_trial_time),
                ("geometry_grouped", len(trials), grouped_time,
                 len(trials) * node_pulses / grouped_time),
                ("hetero_stacked", len(trials), stacked_time,
                 len(trials) * node_pulses / stacked_time),
            ],
            title=f"Heterogeneous stack, S={len(trials)}, "
            f"D in {HETERO_DIAMETERS}, {NUM_PULSES} pulses "
            f"(stacked {speedup:.1f}x vs per-trial)",
        )
    )
    assert speedup >= 1.3, (
        f"padded mixed-geometry stack only {speedup:.1f}x faster than the "
        f"per-trial loop ({stacked_time:.4f}s vs {per_trial_time:.4f}s)"
    )


#: The depth-skew acceptance cell: S = 16 mixed-width trials where a few
#: deep outliers (up to 512 layers, each a distinct geometry) tower over
#: a field of depth-1 trials.  Before compaction this was the shape where
#: per-geometry grouping beat the padded stack (ROADMAP PR-4 note): the
#: padded loop dragged 15 inert rows through ~500 layers.
DEPTH_SKEW_DIAMETERS = (16, 32, 64)
DEPTH_SKEW_DEEP = {0: 512, 3: 448, 6: 384, 9: 320, 12: 256, 15: 512}
DEPTH_SKEW_TRIALS = 16


def depth_skew_trials():
    """Mixed widths, depths 1 vs {256..512}: maximally skewed stacking."""
    trials = []
    for i in range(DEPTH_SKEW_TRIALS):
        diameter = DEPTH_SKEW_DIAMETERS[i % len(DEPTH_SKEW_DIAMETERS)]
        trials.extend(
            BatchRunner.seed_sweep(
                diameter,
                [i],
                num_pulses=NUM_PULSES,
                num_layers=DEPTH_SKEW_DEEP.get(i, 1),
            )
        )
    return trials


def test_depth_skewed_compaction_speedup():
    """Depth-compacted stack >= 1.3x over per-geometry grouping.

    Grouping was the best pre-compaction mode on this shape (each deep
    outlier runs alone, no padding waste) but fragments the batch into
    one stack per distinct geometry; the compacted stack keeps the
    single padded stack and simply retires finished rows, so it pays the
    same layer steps as grouping with the Python/launch overhead of one
    stack.  Records all three modes (plus the uncompacted padded stack,
    which still loses to grouping here -- the regression this feature
    closes) under the ``"depth_skewed"`` section of
    ``BENCH_batch.json``.
    """
    trials = depth_skew_trials()
    node_pulses = sum(
        t.config.graph.num_nodes * NUM_PULSES for t in trials
    ) / len(trials)

    compacted_runner = BatchRunner(num_pulses=NUM_PULSES)
    grouped_runner = BatchRunner(
        num_pulses=NUM_PULSES, stack_mixed_geometry=False
    )
    padded_runner = BatchRunner(num_pulses=NUM_PULSES, compact_depth=False)

    # Warm the per-edge and per-layer delay caches once; also pin the
    # single-stack + compaction bookkeeping while we are at it.
    warm = compacted_runner.run(trials)
    assert warm.stack_groups == [list(range(len(trials)))], (
        "depth-skewed sweep must still run as a single padded stack"
    )
    (stats,) = warm.compaction_stats
    assert stats["enabled"] and stats["dropped_fraction"] > 0.5, (
        "compaction should reclaim most of the depth padding here"
    )
    for repeats in (3, 5):
        compacted_time, compacted_batch = timed(
            lambda: compacted_runner.run(trials), repeats=repeats
        )
        grouped_time, grouped_batch = timed(
            lambda: grouped_runner.run(trials), repeats=repeats
        )
        if grouped_time / compacted_time >= 1.3:
            break
    padded_time, padded_batch = timed(
        lambda: padded_runner.run(trials), repeats=1
    )

    # Acceptance: compaction changes the work done, never the results.
    np.testing.assert_array_equal(compacted_batch.times, grouped_batch.times)
    np.testing.assert_array_equal(compacted_batch.times, padded_batch.times)

    speedup = grouped_time / compacted_time
    _merge_bench_json(
        {
            "depth_skewed": {
                "grid": {
                    "diameters": list(DEPTH_SKEW_DIAMETERS),
                    "deep_layers": sorted(
                        set(DEPTH_SKEW_DEEP.values()), reverse=True
                    ),
                    "shallow_layers": 1,
                    "num_pulses": NUM_PULSES,
                    "trials": len(trials),
                    "faults": 0,
                },
                "compaction": {
                    "dropped_fraction": stats["dropped_fraction"],
                    "padded_row_steps": stats["padded_row_steps"],
                    "active_row_steps": stats["active_row_steps"],
                },
                "modes": {
                    "geometry_grouped": _mode_record(
                        len(trials), grouped_time, node_pulses,
                        groups=len(grouped_batch.stack_groups),
                    ),
                    "padded_uncompacted": _mode_record(
                        len(trials), padded_time, node_pulses, groups=1
                    ),
                    "depth_compacted": _mode_record(
                        len(trials), compacted_time, node_pulses, groups=1
                    ),
                },
                "speedups": {
                    "compacted_vs_grouped": speedup,
                    "compacted_vs_padded": padded_time / compacted_time,
                    "grouped_vs_padded": padded_time / grouped_time,
                },
            }
        }
    )

    print()
    print(
        format_table(
            ["mode", "trials", "seconds", "node-pulses/s"],
            [
                ("geometry_grouped", len(trials), grouped_time,
                 len(trials) * node_pulses / grouped_time),
                ("padded_uncompacted", len(trials), padded_time,
                 len(trials) * node_pulses / padded_time),
                ("depth_compacted", len(trials), compacted_time,
                 len(trials) * node_pulses / compacted_time),
            ],
            title=f"Depth-skewed stack, S={len(trials)}, 1-vs-512 layers, "
            f"{NUM_PULSES} pulses (compacted {speedup:.1f}x vs grouped)",
        )
    )
    assert speedup >= 1.3, (
        f"depth-compacted stack only {speedup:.1f}x faster than per-geometry "
        f"grouping ({compacted_time:.4f}s vs {grouped_time:.4f}s)"
    )


#: The streaming acceptance cell: S = 64 trials, 32 pulses -- deep enough
#: in the pulse axis that the (S, K, L, W) block dominates the footprint.
STREAM_TRIALS = 64
STREAM_PULSES = 32
STREAM_DIAMETER = 32
#: Floor on materialized-peak / streaming-peak; the block is ~5 matrices
#: deep, so anything under this means streaming materialized the block.
STREAM_MEMORY_FLOOR = 4.0


def test_streaming_memory_reduction():
    """Streaming folds >= 4x less peak memory than the materialized block.

    ``store_times=False`` promises the ``(S, K, L, W)`` pulse-time block
    is never allocated; this bench pins that with :mod:`tracemalloc` on
    the S = 64, K = 32 cell, asserts the >= 4x peak-memory floor (CI
    fails if the streaming path ever allocates the full block again),
    checks the streamed statistics still match the materialized reducers
    bitwise, and records both modes under the ``"streaming"`` section of
    ``BENCH_batch.json``.
    """
    trials = BatchRunner.seed_sweep(
        STREAM_DIAMETER, range(STREAM_TRIALS), num_pulses=STREAM_PULSES
    )
    graph = trials[0].config.graph
    node_pulses = graph.num_nodes * STREAM_PULSES
    block_bytes = (
        STREAM_TRIALS * STREAM_PULSES * graph.num_layers * graph.width * 8
    )

    streaming_runner = BatchRunner(num_pulses=STREAM_PULSES, store_times=False)
    materialized_runner = BatchRunner(num_pulses=STREAM_PULSES)

    # Warm the per-edge delay/rate caches (they live on the shared trial
    # configs and scale with S*L*W, not K) so the traced peaks compare
    # the result pipelines, not one-time RNG setup.
    streaming_runner.run(trials)

    tracemalloc.start()
    tracemalloc.reset_peak()
    stream_start = time.perf_counter()
    streamed = streaming_runner.run(trials)
    stream_time = time.perf_counter() - stream_start
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    tracemalloc.reset_peak()
    full_start = time.perf_counter()
    materialized = materialized_runner.run(trials)
    full_time = time.perf_counter() - full_start
    _, full_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Acceptance: streamed statistics equal the materialized reducers.
    np.testing.assert_array_equal(
        streamed.local_skews(), materialized.local_skews()
    )
    np.testing.assert_array_equal(
        streamed.overall_skews(), materialized.overall_skews()
    )
    np.testing.assert_array_equal(
        streamed.global_skews(), materialized.global_skews()
    )
    want, got = materialized.correction_stats(), streamed.correction_stats()
    for key in want:
        np.testing.assert_array_equal(want[key], got[key], err_msg=key)

    reduction = full_peak / stream_peak
    _merge_bench_json(
        {
            "streaming": {
                "grid": {
                    "diameter": STREAM_DIAMETER,
                    "num_layers": graph.num_layers,
                    "width": graph.width,
                    "num_pulses": STREAM_PULSES,
                    "trials": STREAM_TRIALS,
                    "faults": 0,
                },
                "block_bytes": block_bytes,
                "modes": {
                    "materialized": dict(
                        _mode_record(STREAM_TRIALS, full_time, node_pulses),
                        peak_bytes=full_peak,
                    ),
                    "streamed": dict(
                        _mode_record(STREAM_TRIALS, stream_time, node_pulses),
                        peak_bytes=stream_peak,
                    ),
                },
                "memory_reduction": reduction,
            }
        }
    )

    print()
    print(
        format_table(
            ["mode", "seconds", "peak MiB", "node-pulses/s"],
            [
                ("materialized", full_time, full_peak / 2**20,
                 STREAM_TRIALS * node_pulses / full_time),
                ("streamed", stream_time, stream_peak / 2**20,
                 STREAM_TRIALS * node_pulses / stream_time),
            ],
            title=f"Streaming reducers, S={STREAM_TRIALS}, "
            f"D={STREAM_DIAMETER}, {STREAM_PULSES} pulses "
            f"({reduction:.1f}x less peak memory)",
        )
    )
    assert stream_peak < block_bytes, (
        f"streaming peak {stream_peak} bytes exceeds one (S, K, L, W) "
        f"block ({block_bytes} bytes) -- the block leaked back in"
    )
    assert reduction >= STREAM_MEMORY_FLOOR, (
        f"streaming only reduced peak memory {reduction:.1f}x "
        f"({stream_peak} vs {full_peak} bytes); floor is "
        f"{STREAM_MEMORY_FLOOR}x"
    )


def test_campaign_stacked_speedup():
    """Stacked campaign trials >= 1.5x per-trial; quiet campaigns near-free.

    Every trial carries its own random :class:`ChaosCampaign`, so the
    stacked kernel has to re-gather neighbor tensors at each trial's
    epoch boundaries; the floor pins that the epoch machinery still
    amortizes across the stack.  The quiet-campaign probe (a campaign
    with no events) bounds the pure bookkeeping overhead against the
    static kernel and requires bitwise-identical times.  Records the
    ``"churn"`` section of ``BENCH_batch.json``.
    """
    trials = BatchRunner.seed_sweep(
        CHURN_DIAMETER, range(CHURN_TRIALS), num_pulses=CHURN_PULSES
    )
    graph = trials[0].config.graph
    node_pulses = graph.num_nodes * CHURN_PULSES
    for i, trial in enumerate(trials):
        trial.campaign = ChaosCampaign.random(
            trial.config.graph.base,
            trial.config.graph.num_layers,
            churn_pulses=CHURN_PULSES - 1,
            rng_or_seed=i,
            event_rate=0.5,
        )
        trial.label = f"churn-seed={i}"

    static_trials = BatchRunner.seed_sweep(
        CHURN_DIAMETER, range(CHURN_TRIALS), num_pulses=CHURN_PULSES
    )
    quiet_trials = BatchRunner.seed_sweep(
        CHURN_DIAMETER, range(CHURN_TRIALS), num_pulses=CHURN_PULSES
    )
    for trial in quiet_trials:
        trial.campaign = ChaosCampaign(
            trial.config.graph.base, trial.config.graph.num_layers, events=()
        )

    stacked_runner = BatchRunner(num_pulses=CHURN_PULSES)
    per_trial_runner = BatchRunner(num_pulses=CHURN_PULSES, stack=False)

    # Warm the per-edge delay and rate caches so every timed mode
    # measures its kernel, not one-time RNG setup.
    stacked_runner.run(trials)
    for repeats in (3, 5):
        stacked_time, stacked_batch = timed(
            lambda: stacked_runner.run(trials), repeats=repeats
        )
        per_trial_time, per_trial_batch = timed(
            lambda: per_trial_runner.run(trials), repeats=repeats
        )
        if per_trial_time / stacked_time >= 1.5:
            break
    static_time, static_batch = timed(lambda: stacked_runner.run(static_trials))
    quiet_time, quiet_batch = timed(lambda: stacked_runner.run(quiet_trials))

    # Correctness riding along with the timing: the stacked epoch
    # machinery must agree with the per-trial loop, and a no-event
    # campaign must be indistinguishable from the static kernel.
    np.testing.assert_allclose(
        stacked_batch.times,
        per_trial_batch.times,
        rtol=0.0,
        atol=1e-9,
        equal_nan=True,
    )
    np.testing.assert_array_equal(quiet_batch.times, static_batch.times)
    assert any(
        stats.get("actions", 0) > 0
        for stats in stacked_batch.campaign_stats.values()
    )

    speedup = per_trial_time / stacked_time
    quiet_overhead = quiet_time / static_time
    _merge_bench_json(
        {
            "churn": {
                "grid": {
                    "diameter": CHURN_DIAMETER,
                    "num_layers": graph.num_layers,
                    "width": graph.width,
                    "num_pulses": CHURN_PULSES,
                    "trials": CHURN_TRIALS,
                    "event_rate": 0.5,
                },
                "modes": {
                    "per_trial_campaign": _mode_record(
                        CHURN_TRIALS, per_trial_time, node_pulses
                    ),
                    "trial_stacked_campaign": _mode_record(
                        CHURN_TRIALS, stacked_time, node_pulses
                    ),
                    "quiet_campaign_stacked": _mode_record(
                        CHURN_TRIALS, quiet_time, node_pulses
                    ),
                    "static_stacked": _mode_record(
                        CHURN_TRIALS, static_time, node_pulses
                    ),
                },
                "speedups": {
                    "stacked_vs_per_trial": speedup,
                    "quiet_vs_static_overhead": quiet_overhead,
                },
            }
        }
    )

    print()
    print(
        format_table(
            ["mode", "trials", "seconds", "node-pulses/s"],
            [
                ("per-trial campaign", CHURN_TRIALS, per_trial_time,
                 CHURN_TRIALS * node_pulses / per_trial_time),
                ("stacked campaign", CHURN_TRIALS, stacked_time,
                 CHURN_TRIALS * node_pulses / stacked_time),
                ("quiet campaign (stacked)", CHURN_TRIALS, quiet_time,
                 CHURN_TRIALS * node_pulses / quiet_time),
                ("static (stacked)", CHURN_TRIALS, static_time,
                 CHURN_TRIALS * node_pulses / static_time),
            ],
            title=f"Churn kernels, S={CHURN_TRIALS}, D={CHURN_DIAMETER}, "
            f"{CHURN_PULSES} pulses (stacked {speedup:.1f}x vs per-trial, "
            f"quiet overhead {quiet_overhead:.2f}x)",
        )
    )
    assert speedup >= 1.5, (
        f"stacked campaign kernel only {speedup:.2f}x faster than the "
        f"per-trial loop ({stacked_time:.4f}s vs {per_trial_time:.4f}s)"
    )
    assert quiet_overhead <= 2.0, (
        f"quiet campaign costs {quiet_overhead:.2f}x the static kernel "
        f"({quiet_time:.4f}s vs {static_time:.4f}s)"
    )


#: The width-skew acceptance cell: one wide shallow trial (W ~ 1537,
#: 2 layers) stacked with 15 narrow deep ones (W ~ 65, 8 layers).  Depth
#: compaction retires the wide row after its two layers, but without lane
#: compaction the surviving narrow rows still sweep all ~1537 padded
#: lanes for every remaining layer step.
WIDTH_SKEW_WIDE_DIAMETER = 1536
WIDTH_SKEW_NARROW_DIAMETER = 64
WIDTH_SKEW_NARROW_TRIALS = 15
WIDTH_SKEW_DEEP_LAYERS = 8

#: The CSR acceptance cell: a hub-skewed sparse layered graph with 10^5
#: simulated nodes.  One degree-256 hub pads every dense row to 256
#: entries while the ring median stays at 4 -- the dense kernel's
#: footprint is ~60x the edge list's.
CSR_WIDTH = 25_000
CSR_LAYERS = 4
CSR_HUB_DEGREE = 256
CSR_PULSES = 3
#: Ceiling on csr_peak / dense_peak; in practice CSR is ~10x smaller.
CSR_MEMORY_CEILING = 0.5


def width_skew_trials():
    """One wide shallow trial towering over a field of narrow deep ones."""
    trials = BatchRunner.seed_sweep(
        WIDTH_SKEW_WIDE_DIAMETER, [0], num_pulses=NUM_PULSES, num_layers=2
    )
    for i in range(WIDTH_SKEW_NARROW_TRIALS):
        trials.extend(
            BatchRunner.seed_sweep(
                WIDTH_SKEW_NARROW_DIAMETER,
                [i + 1],
                num_pulses=NUM_PULSES,
                num_layers=WIDTH_SKEW_DEEP_LAYERS,
            )
        )
    return trials


def test_width_skewed_lane_compaction_speedup():
    """Lane-compacted stack >= 1.3x over the lane-padded stack.

    The complement of the depth-skew bench: there the waste was inert
    *rows*, here it is inert *columns*.  Once the wide trial's rows
    retire, lane compaction gathers the surviving narrow rows down to
    their own union width instead of sweeping the wide trial's padded
    lanes, and the result must stay bit-identical.  Records the lane
    modes under the ``"sparse"`` section of ``BENCH_batch.json``.
    """
    trials = width_skew_trials()
    node_pulses = sum(
        t.config.graph.num_nodes * NUM_PULSES for t in trials
    ) / len(trials)

    lane_runner = BatchRunner(num_pulses=NUM_PULSES)
    padded_runner = BatchRunner(num_pulses=NUM_PULSES, compact_width=False)

    # Warm the per-edge delay and rate caches; pin the stacking shape
    # and the width-axis accounting while we are at it.
    warm = lane_runner.run(trials)
    assert warm.stack_groups == [list(range(len(trials)))], (
        "width-skewed sweep must run as a single padded stack"
    )
    (stats,) = warm.compaction_stats
    assert "width" in stats["axes"], stats
    assert stats["lane_dropped_fraction"] > 0.5, (
        "lane compaction should reclaim most of the width padding here"
    )
    for repeats in (3, 5):
        lane_time, lane_batch = timed(
            lambda: lane_runner.run(trials), repeats=repeats
        )
        padded_time, padded_batch = timed(
            lambda: padded_runner.run(trials), repeats=repeats
        )
        if padded_time / lane_time >= 1.3:
            break

    # Acceptance: lane compaction changes the work, never the results.
    np.testing.assert_array_equal(lane_batch.times, padded_batch.times)

    speedup = padded_time / lane_time
    _merge_sparse_section(
        "width_skew",
        {
            "grid": {
                "wide_diameter": WIDTH_SKEW_WIDE_DIAMETER,
                "narrow_diameter": WIDTH_SKEW_NARROW_DIAMETER,
                "deep_layers": WIDTH_SKEW_DEEP_LAYERS,
                "num_pulses": NUM_PULSES,
                "trials": len(trials),
                "faults": 0,
            },
            "compaction": {
                "lane_dropped_fraction": stats["lane_dropped_fraction"],
                "padded_lane_steps": stats["padded_lane_steps"],
                "active_lane_steps": stats["active_lane_steps"],
            },
            "modes": {
                "lane_padded": _mode_record(
                    len(trials), padded_time, node_pulses
                ),
                "lane_compacted": _mode_record(
                    len(trials), lane_time, node_pulses
                ),
            },
            "speedups": {"lane_vs_padded": speedup},
        },
    )

    print()
    print(
        format_table(
            ["mode", "trials", "seconds", "node-pulses/s"],
            [
                ("lane_padded", len(trials), padded_time,
                 len(trials) * node_pulses / padded_time),
                ("lane_compacted", len(trials), lane_time,
                 len(trials) * node_pulses / lane_time),
            ],
            title=f"Width-skewed stack, S={len(trials)}, "
            f"W {WIDTH_SKEW_WIDE_DIAMETER + 1} vs "
            f"{WIDTH_SKEW_NARROW_DIAMETER + 1}, {NUM_PULSES} pulses "
            f"(lane-compacted {speedup:.1f}x vs padded)",
        )
    )
    assert speedup >= 1.3, (
        f"lane-compacted stack only {speedup:.1f}x faster than the "
        f"lane-padded stack ({lane_time:.4f}s vs {padded_time:.4f}s)"
    )


def _csr_cell_run(neighbor_backend, width=CSR_WIDTH):
    """Build and sweep one hub-skewed sparse cell on ``neighbor_backend``.

    Construction stays inside the traced region on purpose: the dense
    kernel's cost is dominated by the ``(L, W, max_deg)`` delay tensors
    it builds up front, which is exactly the footprint the CSR backend
    exists to avoid.
    """
    graph = sparse_layered(
        width, CSR_LAYERS, num_hubs=1, hub_degree=CSR_HUB_DEGREE
    )
    # UniformDelayModel bulk-fills its delay arrays; the static per-edge
    # model would spend the traced region in per-edge bookkeeping and
    # distort the peak comparison (and slow it ~25x under tracemalloc).
    sim = FastSimulation(
        graph,
        PARAMS,
        delay_model=UniformDelayModel(PARAMS.d, PARAMS.u),
        neighbor_backend=neighbor_backend,
    )
    return sim.run(CSR_PULSES)


def test_csr_backend_memory_reduction():
    """CSR peak memory <= 0.5x dense on a hub-skewed 10^5-node graph.

    A small companion cell first pins CSR against dense bitwise; the
    traced cell then compares end-to-end peaks (graph + kernel + delay
    tensors) with ``tracemalloc``.  Records both backends under the
    ``"sparse"`` section of ``BENCH_batch.json``.
    """
    small_dense = _csr_cell_run("dense", width=512)
    small_csr = _csr_cell_run("csr", width=512)
    np.testing.assert_array_equal(small_csr.times, small_dense.times)
    np.testing.assert_array_equal(
        small_csr.corrections, small_dense.corrections
    )

    peaks, times = {}, {}
    for backend in ("dense", "csr"):
        tracemalloc.start()
        tracemalloc.reset_peak()
        start = time.perf_counter()
        _csr_cell_run(backend)
        times[backend] = time.perf_counter() - start
        _, peaks[backend] = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    node_pulses = CSR_WIDTH * CSR_LAYERS * CSR_PULSES
    ratio = peaks["csr"] / peaks["dense"]
    _merge_sparse_section(
        "csr_memory",
        {
            "grid": {
                "width": CSR_WIDTH,
                "num_layers": CSR_LAYERS,
                "hub_degree": CSR_HUB_DEGREE,
                "num_pulses": CSR_PULSES,
                "simulated_nodes": CSR_WIDTH * CSR_LAYERS,
            },
            "modes": {
                backend: dict(
                    _mode_record(1, times[backend], node_pulses),
                    peak_bytes=peaks[backend],
                )
                for backend in ("dense", "csr")
            },
            "memory_ratio_csr_vs_dense": ratio,
        },
    )

    print()
    print(
        format_table(
            ["backend", "seconds", "peak MiB", "node-pulses/s"],
            [
                (backend, times[backend], peaks[backend] / 2**20,
                 node_pulses / times[backend])
                for backend in ("dense", "csr")
            ],
            title=f"CSR backend, W={CSR_WIDTH}, {CSR_LAYERS} layers, "
            f"hub degree {CSR_HUB_DEGREE} "
            f"(CSR peak {ratio:.2f}x of dense)",
        )
    )
    assert ratio <= CSR_MEMORY_CEILING, (
        f"CSR peak memory is {ratio:.2f}x the dense kernel's "
        f"({peaks['csr']} vs {peaks['dense']} bytes); ceiling is "
        f"{CSR_MEMORY_CEILING}x"
    )


def test_dense_backend_no_regression():
    """``auto`` must pick dense on regular graphs and cost ~nothing.

    The density heuristic guards the default path: on the standard
    trial-stacked cell (replicated lines, padding ratio 1.0) ``auto``
    resolves to the dense kernel, produces bit-identical times, and
    stays within 1.25x of an explicit ``neighbor_backend="dense"`` run.
    """
    trials = BatchRunner.seed_sweep(
        BATCH_DIAMETER, range(16), num_pulses=NUM_PULSES
    )
    auto_runner = BatchRunner(num_pulses=NUM_PULSES, neighbor_backend="auto")
    dense_runner = BatchRunner(num_pulses=NUM_PULSES, neighbor_backend="dense")

    warm = auto_runner.run(trials)
    (stats,) = warm.compaction_stats
    assert stats["neighbor_backend"] == "dense", (
        f"auto picked {stats['neighbor_backend']!r} on a regular graph"
    )
    for repeats in (3, 5):
        auto_time, auto_batch = timed(
            lambda: auto_runner.run(trials), repeats=repeats
        )
        dense_time, dense_batch = timed(
            lambda: dense_runner.run(trials), repeats=repeats
        )
        if auto_time / dense_time <= 1.25:
            break
    np.testing.assert_array_equal(auto_batch.times, dense_batch.times)
    overhead = auto_time / dense_time
    print(
        f"\nauto-vs-dense overhead {overhead:.3f}x "
        f"({auto_time:.4f}s vs {dense_time:.4f}s)"
    )
    assert overhead <= 1.25, (
        f"the auto backend heuristic costs {overhead:.2f}x the explicit "
        f"dense run ({auto_time:.4f}s vs {dense_time:.4f}s)"
    )


#: The kernel-backend ops cell mirrors the trial-stacked acceptance cell
#: (S = 64 trials at D = 32); the reductions are microseconds each, so
#: every timed leg loops the op to push the measurement out of timer
#: noise.
BACKEND_OPS_ITERS = 200


def _looped(fn, iters=BACKEND_OPS_ITERS):
    """Wrap an op so one timed call runs it ``iters`` times."""

    def run():
        out = None
        for _ in range(iters):
            out = fn()
        return out

    return run


def test_kernel_backend_ops_speedup():
    """Numba dense neighbor reduction >= 2x NumPy (when installed).

    Benchmarks the two reductions behind the layer-step kernels --
    dense padded gather-reduce and the CSR segment reduce -- on the
    S = 64, D = 32 stacked cell shape, per kernel backend, plus one
    full-kernel trial-stacked run per installed backend.  The numba
    legs are bitwise-checked against NumPy and the >= 2x dense-ops
    floor asserted only when the optional extra is installed (CI's
    numba-backend job); NumPy-only environments still refresh their
    legs of the ``"backend"`` section in ``BENCH_batch.json``.
    """
    base = replicated_line(BATCH_DIAMETER + 1)
    nb_idx, nb_valid = base.neighbor_index_arrays()
    indptr, indices, _ = base.neighbor_csr()
    width = base.num_nodes
    max_deg = nb_idx.shape[1]
    nnz = indices.shape[0]
    owner = np.repeat(np.arange(width, dtype=np.int64), np.diff(indptr))
    has_neighbors = np.diff(indptr) > 0

    rng = np.random.default_rng(0)
    prev = rng.normal(size=(BATCH_TRIALS, width))
    rate = 1.0 + (PARAMS.vartheta - 1.0) * rng.random((BATCH_TRIALS, width))
    dense_delay = rng.uniform(
        PARAMS.d - PARAMS.u, PARAMS.d, size=(BATCH_TRIALS, width, max_deg)
    )
    csr_delay = rng.uniform(
        PARAMS.d - PARAMS.u, PARAMS.d, size=(BATCH_TRIALS, nnz)
    )

    def dense_leg(ops):
        return lambda: ops.neighbor_min_max(
            prev, nb_idx, nb_valid, dense_delay, rate
        )

    def csr_leg(ops):
        return lambda: ops.segment_min_max(
            prev, indices, indptr, csr_delay, rate, owner, has_neighbors
        )

    ops_times = {}
    ops_times["numpy_dense"], want_dense = timed(_looped(dense_leg(NUMPY_OPS)))
    ops_times["numpy_csr"], want_csr = timed(_looped(csr_leg(NUMPY_OPS)))

    # Full-kernel context: the same reduction inside the trial-stacked
    # BatchRunner cell, per installed backend.
    trials = BatchRunner.seed_sweep(
        BATCH_DIAMETER, range(BATCH_TRIALS), num_pulses=NUM_PULSES
    )
    numpy_runner = BatchRunner(num_pulses=NUM_PULSES, kernel_backend="numpy")
    numpy_runner.run(trials)  # warm the delay/rate caches
    full_times = {}
    full_times["numpy"], numpy_batch = timed(lambda: numpy_runner.run(trials))

    speedup = None
    if numba_available():
        numba_ops = resolve_kernel_ops("numba")
        dense_leg(numba_ops)()  # trigger JIT compilation outside timing
        csr_leg(numba_ops)()
        ops_times["numba_dense"], got_dense = timed(
            _looped(dense_leg(numba_ops))
        )
        ops_times["numba_csr"], got_csr = timed(_looped(csr_leg(numba_ops)))
        # Bit-exactness contract of repro.core.backend, at the ops level.
        for got, want in ((got_dense, want_dense), (got_csr, want_csr)):
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])
        numba_runner = BatchRunner(
            num_pulses=NUM_PULSES, kernel_backend="numba"
        )
        numba_runner.run(trials)  # warm caches + compile
        full_times["numba"], numba_batch = timed(
            lambda: numba_runner.run(trials)
        )
        np.testing.assert_array_equal(numba_batch.times, numpy_batch.times)
        speedup = ops_times["numpy_dense"] / ops_times["numba_dense"]

    elements = BATCH_TRIALS * width * max_deg * BACKEND_OPS_ITERS
    _merge_bench_json(
        {
            "backend": {
                "grid": {
                    "diameter": BATCH_DIAMETER,
                    "width": width,
                    "max_deg": max_deg,
                    "nnz": nnz,
                    "trials": BATCH_TRIALS,
                    "ops_iters": BACKEND_OPS_ITERS,
                },
                "numba_available": numba_available(),
                "ops": {
                    name: {
                        "seconds": seconds,
                        "lanes_per_s": elements / seconds,
                    }
                    for name, seconds in ops_times.items()
                },
                "full_kernel": {
                    name: _mode_record(
                        BATCH_TRIALS,
                        seconds,
                        trials[0].config.graph.num_nodes * NUM_PULSES,
                    )
                    for name, seconds in full_times.items()
                },
                "speedups": {"numba_vs_numpy_dense_ops": speedup},
            }
        }
    )

    print()
    print(
        format_table(
            ["leg", "seconds", "lanes/s"],
            [
                (name, seconds, elements / seconds)
                for name, seconds in ops_times.items()
            ]
            + [
                (f"full_kernel[{name}]", seconds, "")
                for name, seconds in full_times.items()
            ],
            title=f"Kernel backends, S={BATCH_TRIALS}, D={BATCH_DIAMETER} "
            + (
                f"(numba {speedup:.1f}x vs numpy on dense ops)"
                if speedup is not None
                else "(numba not installed; NumPy legs only)"
            ),
        )
    )
    if speedup is not None:
        assert speedup >= 2.0, (
            f"numba dense reduction only {speedup:.1f}x faster than NumPy "
            f"({ops_times['numba_dense']:.4f}s vs "
            f"{ops_times['numpy_dense']:.4f}s)"
        )


def test_batch_runner_throughput():
    seeds = range(8)
    trials = BatchRunner.seed_sweep(16, seeds, num_pulses=NUM_PULSES)
    runner = BatchRunner(num_pulses=NUM_PULSES)
    runner.run(trials)  # warm delay/rate caches
    elapsed, batch = timed(lambda: runner.run(trials))
    per_trial = elapsed / len(trials)
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ("trials", len(trials)),
                ("total seconds", elapsed),
                ("seconds/trial", per_trial),
                ("max local skew", float(batch.max_local_skews().max())),
            ],
            title="BatchRunner sweep, D=16, 8 seeds",
        )
    )
    assert len(batch) == len(trials)
    assert per_trial < 1.0  # sanity floor, not a tight bound
