"""Scalar-vs-vectorized throughput of the fast simulator.

Records the wall-clock ratio between the per-node scalar replay and the
whole-layer array kernel on the acceptance grid (fault-free, D = 64,
64 layers) so future PRs can track the performance trajectory, and
asserts the >= 10x floor.  Also times a :class:`BatchRunner` sweep to
record multi-trial throughput.

Select just these with ``pytest benchmarks/test_batch_speed.py -m bench``;
they also carry the ``slow`` marker, so ``-m 'not slow'`` drops the timing
work from a quick suite run.
"""

import time

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.clocks import uniform_random_rates
from repro.core.fast import FastSimulation
from repro.delays import StaticDelayModel
from repro.experiments.batch import BatchRunner
from repro.params import Parameters
from repro.topology import LayeredGraph, replicated_line

pytestmark = [pytest.mark.bench, pytest.mark.slow]

PARAMS = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
DIAMETER = 64
NUM_LAYERS = 64
NUM_PULSES = 4


def acceptance_grid():
    """The acceptance-criterion cell: fault-free D=64, 64-layer grid."""
    graph = LayeredGraph(replicated_line(DIAMETER + 1), NUM_LAYERS)
    delays = StaticDelayModel(PARAMS.d, PARAMS.u, seed=0)
    rates = {
        node: clock.rate
        for node, clock in uniform_random_rates(
            graph.nodes(), PARAMS.vartheta, rng_or_seed=1
        ).items()
    }
    return graph, delays, rates


def timed(fn, repeats=3):
    """Best-of-``repeats`` wall-clock seconds (plus the last result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_vectorized_kernel_speedup():
    graph, delays, rates = acceptance_grid()
    vectorized = FastSimulation(
        graph, PARAMS, delay_model=delays, clock_rates=rates, vectorize=True
    )
    scalar = FastSimulation(
        graph, PARAMS, delay_model=delays, clock_rates=rates, vectorize=False
    )
    # Warm the shared per-edge delay cache and the per-layer array caches
    # so the measured ratio reflects the kernels, not one-time RNG setup.
    vectorized.run(1)
    # Both paths get the same best-of-N treatment (an asymmetric protocol
    # would bias the recorded trajectory); escalate once on a noisy host
    # before failing the floor.
    for repeats in (3, 5):
        scalar_time, scalar_result = timed(
            lambda: scalar.run(NUM_PULSES), repeats=repeats
        )
        vector_time, vector_result = timed(
            lambda: vectorized.run(NUM_PULSES), repeats=repeats
        )
        if scalar_time / vector_time >= 10.0:
            break

    np.testing.assert_allclose(
        vector_result.times,
        scalar_result.times,
        rtol=0.0,
        atol=1e-9,
        equal_nan=True,
    )
    node_pulses = graph.num_nodes * NUM_PULSES
    speedup = scalar_time / vector_time
    print()
    print(
        format_table(
            ["path", "seconds", "node-pulses/s"],
            [
                ("scalar", scalar_time, node_pulses / scalar_time),
                ("vectorized", vector_time, node_pulses / vector_time),
                ("speedup", speedup, ""),
            ],
            title=f"Layer-sweep kernel, D={DIAMETER}, {NUM_LAYERS} layers, "
            f"{NUM_PULSES} pulses",
        )
    )
    assert speedup >= 10.0, (
        f"vectorized kernel only {speedup:.1f}x faster than scalar "
        f"({vector_time:.4f}s vs {scalar_time:.4f}s)"
    )


def test_batch_runner_throughput():
    seeds = range(8)
    trials = BatchRunner.seed_sweep(16, seeds, num_pulses=NUM_PULSES)
    runner = BatchRunner(num_pulses=NUM_PULSES)
    runner.run(trials)  # warm delay/rate caches
    elapsed, batch = timed(lambda: runner.run(trials))
    per_trial = elapsed / len(trials)
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ("trials", len(trials)),
                ("total seconds", elapsed),
                ("seconds/trial", per_trial),
                ("max local skew", float(batch.max_local_skews().max())),
            ],
            title="BatchRunner sweep, D=16, 8 seeds",
        )
    )
    assert len(batch) == len(trials)
    assert per_trial < 1.0  # sanity floor, not a tight bound
