"""F5: regenerate Figure 5 (oscillation without the jump condition)."""

from repro.experiments.fig5_jump import run_fig5


def test_fig5(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig5(diameter=24), rounds=1, iterations=1
    )
    report(result)
    # Without JC the oscillation amplifies layer over layer; with JC it is
    # dampened within a few layers -- exactly Figure 5's two panels.
    assert result.final_without_jc > 2 * result.amplitude_without_jc[0]
    assert result.final_with_jc < result.amplitude_with_jc[0] / 4
    assert result.final_without_jc > 10 * result.final_with_jc
