"""T1: regenerate Table 1 (method comparison and growth exponents)."""

from repro.experiments.table1 import run_table1


def test_table1(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_table1(diameters=(8, 16, 32), seeds=(0, 1), num_pulses=3),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Paper's Table 1 shapes: naive TRIX local skew ~ u*D (exponent ~1),
    # Gradient TRIX sub-linear and within the Theorem 1.1 bound, HEX with
    # a crash pays an additive d.
    assert result.fits["naive-trix"].slope > 0.8
    assert result.fits["gradient-trix"].slope < 0.8
    by = {}
    for row in result.rows:
        by.setdefault(row.method, {})[row.diameter] = row
    for d, row in by["gradient-trix"].items():
        assert row.local_skew <= row.theory_bound
        assert row.worst_case_skew < by["naive-trix"][d].worst_case_skew
    assert by["hex+crash"][32].local_skew > 0.5 * 1.0  # ~d
