"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``).

The environment ships a setuptools without the ``wheel`` package, so the
PEP 517 editable path is unavailable; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
