#!/usr/bin/env python3
"""A million-node layered graph through the fast path, via CSR.

The dense vectorized kernel pads every vertex row to the maximum degree:
one well-connected hub widens *every* row of the ``(L, W, max_deg)``
delay tensors, and a hub-skewed graph at W = 250,000 would need tens of
GiB before the first pulse fires.  The CSR neighbor backend stores the
edge list once (``O(n + m)``) and reduces over per-vertex edge segments,
so the same sweep fits in a few hundred MiB.

This script builds a sparse circulant base graph with one high-degree
hub, stacks it four layers deep (10^6 simulated nodes), and runs a
multi-pulse sweep with streaming reducers (``store_times=False``, so the
``(P, L, W)`` pulse-time block is never materialized either).  The
``neighbor_backend="auto"`` heuristic picks CSR on its own; a small
companion run pins CSR against the dense kernel bitwise first, so the
big run's numbers are backed by the differential guarantee.

Run:  python examples/sparse_sweep.py
"""

import time

import numpy as np

from repro.analysis.streaming import default_reducers
from repro.clocks import uniform_random_rates
from repro.core.fast import FastSimulation
from repro.core.layer0 import JitteredLayer0
from repro.delays.models import UniformDelayModel
from repro.params import Parameters
from repro.topology import sparse_base_graph, sparse_layered

PARAMS = Parameters(d=1.0, u=0.05, vartheta=1.01, Lambda=2.5)
NUM_PULSES = 3


def simulation(graph, neighbor_backend="auto"):
    # Jittered layer 0 and drifting clocks: the perfectly symmetric
    # setup (PerfectLayer0 + unit rates) synchronizes exactly and shows
    # a skew of 0.0, which makes for a boring demonstration.
    rates = {
        node: clock.rate
        for node, clock in uniform_random_rates(
            list(graph.nodes()), PARAMS.vartheta, rng_or_seed=5
        ).items()
    }
    return FastSimulation(
        graph,
        PARAMS,
        delay_model=UniformDelayModel(PARAMS.d, PARAMS.u),
        clock_rates=rates,
        layer0=JitteredLayer0(
            PARAMS.Lambda, graph.width, PARAMS.kappa / 2.0, seed=7
        ),
        neighbor_backend=neighbor_backend,
    )


def main() -> None:
    # --------------------------------------------------------------
    # 1. Small companion: CSR is bit-identical to dense, not merely
    #    close.  Same graph family, small enough for both kernels.
    # --------------------------------------------------------------
    small = sparse_layered(512, 3, num_hubs=1, hub_degree=64)
    dense = simulation(small, neighbor_backend="dense").run(NUM_PULSES)
    csr = simulation(small, neighbor_backend="csr").run(NUM_PULSES)
    np.testing.assert_array_equal(csr.times, dense.times)
    np.testing.assert_array_equal(csr.corrections, dense.corrections)
    print("small companion (W=512): CSR == dense bitwise")

    # --------------------------------------------------------------
    # 2. The big one: 250,000-vertex base, 4 layers = 10^6 nodes.
    # --------------------------------------------------------------
    width, num_layers, hub_degree = 250_000, 4, 4_096
    build_start = time.perf_counter()
    base = sparse_base_graph(width, num_hubs=1, hub_degree=hub_degree)
    graph = sparse_layered(
        width, num_layers, num_hubs=1, hub_degree=hub_degree
    )
    build = time.perf_counter() - build_start

    nnz = 2 * len(base.edges)
    dense_plane = width * base.max_degree() * 8  # one (W, max_deg) float64
    print(
        f"\ngraph: {base.name} x {num_layers} layers\n"
        f"  simulated nodes      {width * num_layers:,}\n"
        f"  undirected edges     {len(base.edges):,} per layer\n"
        f"  max degree           {base.max_degree():,} (hub) "
        f"vs median 4 (ring)\n"
        f"  dense padded plane   {dense_plane / 2**30:.1f} GiB "
        f"per (W, max_deg) tensor -- x{num_layers} layers x several "
        f"tensors: not allocatable\n"
        f"  CSR edge entries     {nnz:,} "
        f"({nnz * 8 / 2**20:.0f} MiB per per-edge array)\n"
        f"  build time           {build:.1f}s"
    )

    sweep_start = time.perf_counter()
    result = simulation(graph).run(
        NUM_PULSES,
        # No potential stream here: Psi^s folds against an all-pairs
        # distance matrix, which is itself O(W^2) -- the skew and
        # correction folds are O(W).
        reducers=default_reducers(),
        store_times=False,
    )
    sweep = time.perf_counter() - sweep_start

    # The exact diameter needs all-pairs BFS (250k sweeps); a single
    # eccentricity gives the classic 2-approximation upper bound, and
    # the Theorem 1.1 bound is monotone in D, so it stays a valid bound.
    diameter_ub = 2 * int(base.distances_from(0).max())
    bound = PARAMS.local_skew_bound(diameter_ub)
    print(
        f"\nswept {NUM_PULSES} pulses in {sweep:.1f}s "
        f"({NUM_PULSES * num_layers * width / sweep:,.0f} node-steps/s)\n"
        f"  max local skew       {result.max_local_skew():.4f}\n"
        f"  Theorem 1.1 bound    {bound:.4f} (D <= {diameter_ub})"
    )
    assert result.max_local_skew() <= bound


if __name__ == "__main__":
    main()
