#!/usr/bin/env python3
"""Fault drill: watch the stick-to-the-median rule contain a Byzantine node.

Injects a single node that reports its pulses 50 kappa late -- far outside
anything its successors should believe -- and shows layer by layer how the
median rule pins the damage to ~2 kappa while the naive clamping variant
(the same algorithm with ``stick_to_median=False``, Algorithm 1 semantics)
lets the whole downstream column inherit the lie.

Both variants run as one :class:`~repro.experiments.batch.BatchRunner`
batch: they share a geometry, so the runner advances them through a single
stacked kernel instead of two separate simulations.

Run:  python examples/fault_drill.py
"""

import numpy as np

from repro import CorrectionPolicy, Parameters, StaticDelayModel
from repro.analysis import local_skew_per_layer
from repro.experiments.batch import BatchRunner, BatchTrial
from repro.experiments.common import ExperimentConfig
from repro.faults import AdversarialLateFault, FaultPlan


def main() -> None:
    params = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
    # replicated_line(16) with 16 layers, as in the paper's Figure 2 chip.
    config = ExperimentConfig(diameter=15, params=params, num_layers=16)
    delays = StaticDelayModel(params.d, params.u, seed=5)

    liar = (8, 4)
    lag = 50.0
    plan = FaultPlan.from_nodes({liar: AdversarialLateFault(lag)})
    print(f"Byzantine node {liar} reports pulses {lag:.0f} kappa "
          f"({lag * params.kappa:.3f} time units) late.\n")

    trials = [
        BatchTrial(
            config=config,
            fault_plan=plan,
            delay_model=delays,
            clock_rates=None,  # perfect clocks, as in the original drill
            policy=CorrectionPolicy(stick_to_median=True),
            algorithm="simplified",
            label="stick-to-median",
        ),
        BatchTrial(
            config=config,
            fault_plan=plan,
            delay_model=delays,
            clock_rates=None,
            policy=CorrectionPolicy(stick_to_median=False),
            algorithm="simplified",
            label="naive clamp",
        ),
    ]
    batch = BatchRunner(num_pulses=3).run(trials)
    assert batch.stack_groups, "same geometry => one shared stacked kernel"
    contained, naive = batch.results

    print("per-layer local skew (pulse-forwarding with Algorithm 1 semantics):")
    print(f"{'layer':>6} | {'stick-to-median':>16} | {'naive clamp':>12}")
    print("-" * 42)
    skews_m = local_skew_per_layer(contained)
    skews_n = local_skew_per_layer(naive)
    for layer in range(config.graph.num_layers):
        marker = "  <- fault layer" if layer == liar[1] else ""
        print(f"{layer:6d} | {skews_m[layer]:16.4f} | "
              f"{skews_n[layer]:12.4f}{marker}")

    print(f"\nworst skew, median rule : {np.max(skews_m):.4f}")
    print(f"worst skew, naive clamp : {np.max(skews_n):.4f}")
    print(f"containment factor      : {np.max(skews_n) / np.max(skews_m):.1f}x")
    print("\nThe full Algorithm 3 adds a second safety net: a node whose")
    print("own predecessor stays silent or reports absurdly late simply")
    print("anchors on its last neighbor reception (the 'via H_max' branch).")


if __name__ == "__main__":
    main()
