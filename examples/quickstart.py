#!/usr/bin/env python3
"""Quickstart: build a grid, run Gradient TRIX, compare skew to theory.

Builds the paper's synchronization network (a replicated-line base graph
stacked into layers), runs the full pulse-forwarding algorithm under random
static link delays and drifting hardware clocks, and prints the measured
local skew next to the Theorem 1.1 bound ``4*kappa*(2 + log2 D)``.

Run:  python examples/quickstart.py
"""

from repro import (
    FastSimulation,
    LayeredGraph,
    Parameters,
    StaticDelayModel,
    replicated_line,
)
from repro.analysis import local_skew_per_layer, max_inter_layer_skew
from repro.clocks import uniform_random_rates


def main() -> None:
    # Physical parameters: max delay d, uncertainty u, clock drift vartheta.
    params = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
    print(f"kappa = {params.kappa:.5f}  (Equation (1))")

    # The paper's topology: a line with replicated endpoints (Figure 2),
    # stacked into as many layers as its diameter (a square chip).
    base = replicated_line(24)
    graph = LayeredGraph(base, num_layers=24)
    print(f"base graph: {base.name}, diameter D = {base.diameter}")
    print(f"grid: {graph.num_layers} layers, n = {graph.num_nodes} nodes")

    # Random static per-edge delays in [d-u, d], random clock rates in
    # [1, vartheta] -- the paper's communication and clock model.
    delays = StaticDelayModel(params.d, params.u, seed=42)
    clocks = uniform_random_rates(graph.nodes(), params.vartheta, rng_or_seed=7)
    rates = {node: clock.rate for node, clock in clocks.items()}

    sim = FastSimulation(graph, params, delay_model=delays, clock_rates=rates)
    result = sim.run(num_pulses=5)

    bound = params.local_skew_bound(base.diameter)
    print(f"\nmeasured sup_l L_l      = {result.max_local_skew():.5f}")
    print(f"measured sup_l L_l,l+1  = {max_inter_layer_skew(result):.5f}")
    print(f"Theorem 1.1 bound       = {bound:.5f}")
    print(f"measured global skew    = {result.global_skew():.5f}")
    print(f"global bound (6 k D)    = {params.global_skew_bound(base.diameter):.5f}")

    print("\nper-layer local skew (every 4th layer):")
    for layer, skew in enumerate(local_skew_per_layer(result)):
        if layer % 4 == 0:
            bar = "#" * int(60 * skew / bound)
            print(f"  layer {layer:3d}  {skew:.5f}  {bar}")

    assert result.max_local_skew() <= bound, "Theorem 1.1 violated?!"
    print("\nOK: measured skew is within the Theorem 1.1 bound.")


if __name__ == "__main__":
    main()
