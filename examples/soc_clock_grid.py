#!/usr/bin/env python3
"""SoC clock distribution: the paper's motivating VLSI scenario, in ns.

Models the clock grid of a large System-on-Chip: a 2 GHz-class source
feeds a grid whose nodes are roots of local clock trees.  Units are
nanoseconds -- 1 ns hop delay, 10 ps delay uncertainty, 100 ppm clock
drift -- and the script reports what a chip architect would ask:

* the worst skew between adjacent grid points (in picoseconds),
* the skew budget left for the local clock trees (L + 2*Delta rule of
  Section 2), and
* what happens when fabrication faults knock out a handful of nodes.

Run:  python examples/soc_clock_grid.py
"""

from repro import (
    FastSimulation,
    LayeredGraph,
    Parameters,
    StaticDelayModel,
    replicated_line,
)
from repro.clocks import uniform_random_rates
from repro.faults import CrashFault, FaultPlan, FixedOffsetFault


def picoseconds(ns: float) -> str:
    return f"{1000.0 * ns:7.1f} ps"


def main() -> None:
    params = Parameters.vlsi_defaults()  # d=1ns, u=10ps, 100ppm, 500MHz grid
    print("SoC clock grid (units: ns)")
    print(f"  hop delay d        = {params.d} ns")
    print(f"  delay uncertainty  = {picoseconds(params.u)}")
    print(f"  clock drift        = {(params.vartheta - 1) * 1e6:.0f} ppm")
    print(f"  grid input period  = {params.Lambda} ns "
          f"({1000.0 / params.Lambda:.0f} MHz)")
    print(f"  kappa              = {picoseconds(params.kappa)}")

    # A 32x32-ish grid of clock-tree roots.
    base = replicated_line(32)
    graph = LayeredGraph(base, num_layers=32)
    print(f"  grid               = {graph.width} x {graph.num_layers} "
          f"({graph.num_nodes} tree roots), D = {base.diameter}")

    delays = StaticDelayModel(params.d, params.u, seed=2024)
    rates = {
        node: clock.rate
        for node, clock in uniform_random_rates(
            graph.nodes(), params.vartheta, rng_or_seed=11
        ).items()
    }

    # Healthy chip.
    healthy = FastSimulation(
        graph, params, delay_model=delays, clock_rates=rates
    ).run(4)
    skew = healthy.max_local_skew()
    bound = params.local_skew_bound(base.diameter)
    print("\nHealthy chip:")
    print(f"  adjacent-root skew (measured) = {picoseconds(skew)}")
    print(f"  Theorem 1.1 worst-case bound  = {picoseconds(bound)}")

    # Section 2: components under adjacent roots see L + 2*Delta, where
    # Delta is the local clock tree's own skew contribution.
    tree_delta_ns = 0.005  # 5 ps local trees
    component_skew = skew + 2 * tree_delta_ns
    print(f"  + local trees (2 x 5 ps)      = "
          f"{picoseconds(component_skew)} between adjacent components")

    # Fabrication faults: a dead root and two slow (delay-fault) roots.
    plan = FaultPlan.from_nodes(
        {
            (8, 10): CrashFault(),
            (20, 16): FixedOffsetFault(25 * params.kappa),
            (28, 24): FixedOffsetFault(-25 * params.kappa),
        }
    )
    assert plan.is_one_local(graph)
    faulty = FastSimulation(
        graph, params, delay_model=delays, clock_rates=rates, fault_plan=plan
    ).run(4)
    print("\nWith 3 fabrication faults (1 dead root, 2 delay faults):")
    print(f"  adjacent-root skew (measured) = "
          f"{picoseconds(faulty.max_local_skew())}")
    print(f"  f=3 worst-case bound          = "
          f"{picoseconds(params.worst_case_fault_bound(base.diameter, 3))}")

    growth = faulty.max_local_skew() / skew
    print(f"\nFaults multiplied the skew by {growth:.2f}x; the clock still "
          "meets a multi-GHz budget,")
    print("which is the paper's headline: fault tolerance at minimal "
          "degree without losing the O(log D) skew.")


if __name__ == "__main__":
    main()
