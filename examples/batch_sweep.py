#!/usr/bin/env python3
"""Batched parameter study: many trials, one call, stacked statistics.

Sweeps 16 seeds at two diameters with :class:`BatchRunner` -- compatible
trials advance through the trial-stacked ``(S, W)`` kernel in lock-step,
and skew statistics for the whole stack reduce in single array sweeps --
then injects a random fault plan per seed and compares the two skew
distributions.  The closing section demonstrates the executor knobs:

* ``BatchRunner(...)``                       -- trial-stacked (the default)
* ``BatchRunner(stack=False)``               -- per-trial vectorized loop
* ``BatchRunner(vectorize=False)``           -- scalar reference path
* ``BatchRunner(executor="process", shards=N)`` -- shard trials across
  worker processes (fault-heavy sweeps; trials must be picklable)

All strategies produce bit-identical results; only the wall clock moves.

Run:  python examples/batch_sweep.py
"""

import time

import numpy as np

from repro.experiments.batch import BatchRunner
from repro.experiments.common import standard_config
from repro.experiments.thm13_random_faults import mixed_behavior_factory
from repro.faults import FaultPlan


def percentile_row(label, values):
    lo, mid, hi = np.percentile(values, [5, 50, 95])
    print(f"  {label:<22} p5={lo:.4f}  median={mid:.4f}  p95={hi:.4f}")


def main() -> None:
    seeds = range(16)
    runner = BatchRunner(num_pulses=4)

    for diameter in (16, 24):
        bound = standard_config(diameter).params.local_skew_bound(diameter)
        print(f"\nD = {diameter}  (Theorem 1.1 bound {bound:.4f})")

        # Fault-free sweep: one batch, per-trial maxima in one array sweep.
        clean = runner.run(BatchRunner.seed_sweep(diameter, seeds))
        percentile_row("fault-free L_l", clean.max_local_skews())

        # Same seeds, each with its own random sparse fault plan.
        def random_plan(config):
            return FaultPlan.random(
                config.graph,
                probability=0.8 * config.num_grid_nodes**-0.6,
                rng_or_seed=config.rng(salt=13),
                behavior_factory=mixed_behavior_factory,
                enforce_one_local=True,
            )

        faulty = runner.run(
            BatchRunner.seed_sweep(
                diameter, seeds, fault_plan_factory=random_plan
            )
        )
        percentile_row("faulty L_l", faulty.max_local_skews())
        print(
            f"  faults/trial           min={faulty.num_faults().min()}  "
            f"max={faulty.num_faults().max()}"
        )

        stats = clean.correction_stats()
        percentile_row("fault-free max |C|", stats["max_abs"])

        worst = float(faulty.max_local_skews().max())
        assert worst <= 5.0 * bound, "random sparse faults exploded the skew?"
        print(f"  worst faulty skew {worst:.4f} stays within 5x the bound")

    # ------------------------------------------------------------------
    # Executor knobs: every strategy computes the same numbers; pick by
    # workload shape (see the BatchRunner docstring).
    # ------------------------------------------------------------------
    print("\nExecutor knobs (S=32 fault-free trials, D=16):")
    trials = BatchRunner.seed_sweep(16, range(32))
    BatchRunner().run(trials)  # warm the per-edge delay caches once
    runners = {
        "trial-stacked (default)": BatchRunner(),
        "per-trial vectorized": BatchRunner(stack=False),
        "process-sharded x4": BatchRunner(executor="process", shards=4),
    }
    reference = None
    for label, runner in runners.items():
        start = time.perf_counter()
        batch = runner.run(trials)
        elapsed = time.perf_counter() - start
        skews = batch.max_local_skews()
        if reference is None:
            reference = skews
        assert np.array_equal(skews, reference), "strategies must agree"
        print(f"  {label:<26} {elapsed:7.3f}s  median L_l={np.median(skews):.4f}")
    print("  (identical skews from every strategy, as asserted)")


if __name__ == "__main__":
    main()
