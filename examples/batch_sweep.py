#!/usr/bin/env python3
"""Batched parameter study: many trials, one call, stacked statistics.

Sweeps 16 seeds at two diameters with :class:`BatchRunner` -- each trial
runs through the vectorized layer-sweep kernel, and skew statistics for
the whole stack reduce in single array sweeps -- then injects a random
fault plan per seed and compares the two skew distributions.

Run:  python examples/batch_sweep.py
"""

import numpy as np

from repro.experiments.batch import BatchRunner, BatchTrial
from repro.experiments.common import standard_config
from repro.experiments.thm13_random_faults import mixed_behavior_factory
from repro.faults import FaultPlan


def percentile_row(label, values):
    lo, mid, hi = np.percentile(values, [5, 50, 95])
    print(f"  {label:<22} p5={lo:.4f}  median={mid:.4f}  p95={hi:.4f}")


def main() -> None:
    seeds = range(16)
    runner = BatchRunner(num_pulses=4)

    for diameter in (16, 24):
        bound = standard_config(diameter).params.local_skew_bound(diameter)
        print(f"\nD = {diameter}  (Theorem 1.1 bound {bound:.4f})")

        # Fault-free sweep: one batch, per-trial maxima in one array sweep.
        clean = runner.run(BatchRunner.seed_sweep(diameter, seeds))
        percentile_row("fault-free L_l", clean.max_local_skews())

        # Same seeds, each with its own random sparse fault plan.
        def random_plan(config):
            return FaultPlan.random(
                config.graph,
                probability=0.8 * config.num_grid_nodes**-0.6,
                rng_or_seed=config.rng(salt=13),
                behavior_factory=mixed_behavior_factory,
                enforce_one_local=True,
            )

        faulty = runner.run(
            BatchRunner.seed_sweep(
                diameter, seeds, fault_plan_factory=random_plan
            )
        )
        percentile_row("faulty L_l", faulty.max_local_skews())
        print(
            f"  faults/trial           min={faulty.num_faults().min()}  "
            f"max={faulty.num_faults().max()}"
        )

        stats = clean.correction_stats()
        percentile_row("fault-free max |C|", stats["max_abs"])

        worst = float(faulty.max_local_skews().max())
        assert worst <= 5.0 * bound, "random sparse faults exploded the skew?"
        print(f"  worst faulty skew {worst:.4f} stays within 5x the bound")


if __name__ == "__main__":
    main()
