#!/usr/bin/env python3
"""Self-healing: corrupt every node mid-flight and watch the grid recover.

Runs the event-driven simulation with Algorithm 4 (the self-stabilizing
pulse forwarding), lets the grid settle, then scrambles the volatile state
of *every* node on layers >= 1 -- reception registers pointing into the
future, bogus pending pulses, randomized pulse counters -- and injects
spurious in-flight messages.  Theorem 1.6 says the grid re-synchronizes
within O(sqrt(n)) pulses; the script prints the violation timeline so you
can watch it happen.

Run:  python examples/self_healing.py
"""

import numpy as np

from repro import LayeredGraph, Parameters, StaticDelayModel, replicated_line
from repro.analysis.stabilization import measure_stabilization
from repro.core.algorithm import PULSE, GradientTrixNode
from repro.core.network_sim import GridSimulation
from repro.core.selfstab import SelfStabilizingNode, corrupt_node


def main() -> None:
    params = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
    base = replicated_line(8)
    graph = LayeredGraph(base, num_layers=8)
    bound = params.local_skew_bound(base.diameter)

    grid = GridSimulation(
        graph,
        params,
        delay_model=StaticDelayModel(params.d, params.u, seed=1),
        node_class=SelfStabilizingNode,
        node_kwargs={"skew_estimate": bound, "max_pulses": None},
    )
    total_pulses = 30
    grid.build(total_pulses)

    # Phase 1: settle.
    corrupt_at = 14 * params.Lambda
    grid.sim.run_until(corrupt_at)
    print(f"t = {grid.sim.now:6.1f}: grid settled "
          f"({len(grid.trace)} pulses recorded); injecting transient fault")

    # Phase 2: scramble everything.
    rng = np.random.default_rng(99)
    corrupted = 0
    for process in grid.nodes.values():
        if isinstance(process, GradientTrixNode):
            corrupt_node(process, rng, time_scale=2 * params.Lambda)
            corrupted += 1
    for layer in range(1, graph.num_layers):
        victim = (int(rng.integers(0, graph.width)), layer)
        grid.network.inject_at(
            victim,
            {PULSE: int(rng.integers(0, 5))},
            (victim[0], layer - 1),
            grid.sim.now + float(rng.uniform(0, params.d)),
        )
    print(f"t = {grid.sim.now:6.1f}: scrambled {corrupted} nodes, injected "
          f"{graph.num_layers - 1} spurious messages")

    # Phase 3: recover.
    grid.sim.run_until((total_pulses + 12) * params.Lambda)
    report = measure_stabilization(
        grid.trace,
        graph,
        params,
        skew_bound=bound,
        observe_from=corrupt_at,
        observe_until=(total_pulses - 1) * params.Lambda,
    )

    n = graph.num_nodes
    print(f"\nviolations observed after corruption : {report.violations}")
    print(f"last violation at                     : t = "
          f"{report.stable_from:.2f}")
    print(f"stabilization time                    : "
          f"{report.stabilization_pulses} pulses")
    print(f"Theorem 1.6 budget O(sqrt n)          : ~{int(3 * np.sqrt(n))} "
          f"pulses (n = {n})")
    print(f"stabilized                            : {report.stabilized}")

    assert report.stabilized, "grid failed to re-synchronize!"
    print("\nOK: the grid healed itself -- Theorem 1.6, live.")


if __name__ == "__main__":
    main()
