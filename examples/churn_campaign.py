#!/usr/bin/env python3
"""Churn campaign tour: self-stabilization under sustained membership churn.

Two parts:

1. A hand-written :class:`~repro.faults.campaign.ChaosCampaign` -- a vertex
   leaves and rejoins, an edge flaps, a region browns out -- compiled to its
   epoch schedule so you can see exactly what the simulator will run.
2. The Theorem 1.6 measurement (``run_thm16``) swept over increasing churn
   intensities through one :class:`~repro.experiments.batch.BatchRunner`
   per sweep point: every trial gets its own randomly sampled sustained
   campaign, all disruptions revert by the churn window's end, and we count
   how many pulses the grid needs after the last event to re-enter the
   theory's local-skew bound -- Theorem 1.6 allows O(sqrt n).

Run:  python examples/churn_campaign.py
"""

from repro.experiments.thm16_selfstab import run_thm16
from repro.faults.campaign import (
    ChaosCampaign,
    EdgeFlap,
    NodeJoin,
    NodeLeave,
    RegionalOutage,
)
from repro.topology.base_graph import replicated_line

DIAMETER = 8
TRIALS = 3


def show_epochs() -> None:
    base = replicated_line(DIAMETER + 1)
    campaign = ChaosCampaign(
        base,
        num_layers=DIAMETER,
        events=[
            NodeLeave(pulse=1, vertex=4),
            EdgeFlap(pulse=2, edge=(0, 1), down_pulses=1),
            NodeJoin(pulse=4, vertex=4),
            RegionalOutage(pulse=5, center=7, radius=1, duration=2),
        ],
    )
    schedule = campaign.compile(num_pulses=10)
    print("hand-written campaign, compiled epoch schedule:")
    print(f"{'pulses':>10} | {'absent':>8} | {'edges down':>10} | faults")
    print("-" * 50)
    for epoch in schedule.epochs:
        span = f"[{epoch.start}, {epoch.end})"
        print(f"{span:>10} | {len(epoch.absent):8d} | "
              f"{len(epoch.down_edges):10d} | {len(epoch.fault_plan)}")
    print(f"actions: {schedule.num_actions}, "
          f"last event at pulse {schedule.last_event_pulse}\n")


def sweep_intensity() -> None:
    print(f"Theorem 1.6 sweep (D={DIAMETER}, {TRIALS} trials per point):")
    print(f"{'event rate':>10} | {'actions':>7} | {'worst churn skew':>16} | "
          f"{'stabilized in':>13} | {'budget':>6}")
    print("-" * 66)
    for rate in (0.3, 0.6, 0.9):
        result = run_thm16(
            diameter=DIAMETER,
            num_trials=TRIALS,
            seed=int(rate * 10),
            event_rate=rate,
        )
        worst = int(result.stabilization_pulses.max())
        ok = "" if result.stabilized_within_budget else "  EXCEEDED"
        print(f"{rate:10.1f} | {result.churn_actions:7d} | "
              f"{result.worst_churn_skew:16.4f} | {worst:13d} | "
              f"{result.budget_pulses:6d}{ok}")
    print("\nEvery sweep point runs its trials through one BatchRunner call;")
    print("each trial's campaign accounting rides back on")
    print("BatchResult.campaign_stats, next to fallback_reasons.")


def main() -> None:
    show_epochs()
    sweep_intensity()
    result = run_thm16(diameter=DIAMETER, num_trials=TRIALS, seed=0)
    print("\n" + result.table())


if __name__ == "__main__":
    main()
