#!/usr/bin/env python3
"""Baseline tour: why the paper's Table 1 looks the way it does.

Runs all four clock distribution strategies on comparable workloads --

* an ideal clock tree (no fault tolerance at all),
* naive TRIX [LW20] (minimal degree, but Theta(u * D) skew pile-up),
* HEX [DFL+16] (fault-tolerant, but an additive d per crash),
* Gradient TRIX (this paper: minimal degree, O(kappa log D) skew,
  crash contained to ~kappa scale)

-- and prints one side-by-side table.

Run:  python examples/baseline_tour.py
"""

from repro import (
    AdversarialSplitDelays,
    FastSimulation,
    LayeredGraph,
    Parameters,
    StaticDelayModel,
    replicated_line,
)
from repro.analysis import format_table
from repro.baselines import ClockTree, HexSimulation, NaiveTrixSimulation
from repro.faults import CrashFault, FaultPlan


def main() -> None:
    params = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
    diameter = 32
    base = replicated_line(diameter + 1)
    graph = LayeredGraph(base, num_layers=diameter + 1)
    random_delays = StaticDelayModel(params.d, params.u, seed=3)
    worst_delays = AdversarialSplitDelays(
        params.d, params.u, lambda e: e[1][0] >= e[0][0]
    )
    crash = FaultPlan.from_nodes({(diameter // 2, diameter // 2): CrashFault()})

    rows = []

    tree = ClockTree(depth=6, d=params.d, u=params.u, seed=3)
    broken = ClockTree(depth=6, d=params.d, u=params.u, seed=3,
                       broken_edges={2})
    rows.append((
        "clock tree", tree.local_skew(), "n/a",
        f"dead: {64 - broken.reachable_leaves()}/64 leaves lose the clock",
    ))

    trix_rand = NaiveTrixSimulation(graph, params, delay_model=random_delays)
    trix_worst = NaiveTrixSimulation(graph, params, delay_model=worst_delays)
    trix_crash = NaiveTrixSimulation(
        graph, params, delay_model=random_delays, fault_plan=crash
    )
    rows.append((
        "naive TRIX", trix_rand.run(3).max_local_skew(),
        trix_worst.run(3).max_local_skew(),
        f"crash skew {trix_crash.run(3).max_local_skew():.4f}",
    ))

    hex_clean = HexSimulation(
        graph.width, graph.num_layers, params, delay_model=random_delays
    )
    hex_crash = HexSimulation(
        graph.width, graph.num_layers, params, delay_model=random_delays,
        crashed={(graph.width // 2, graph.num_layers // 2)},
    )
    rows.append((
        "HEX", hex_clean.run(3).max_local_skew(), "n/a",
        f"crash skew {hex_crash.run(3).max_local_skew():.4f} (~d!)",
    ))

    gt_rand = FastSimulation(graph, params, delay_model=random_delays)
    gt_worst = FastSimulation(graph, params, delay_model=worst_delays)
    gt_crash = FastSimulation(
        graph, params, delay_model=random_delays, fault_plan=crash
    )
    rows.append((
        "Gradient TRIX", gt_rand.run(3).max_local_skew(),
        gt_worst.run(3).max_local_skew(),
        f"crash skew {gt_crash.run(3).max_local_skew():.4f}",
    ))

    print(format_table(
        ["method", "skew (random delays)", "skew (worst case)", "one crash"],
        rows,
        title=f"Clock distribution at D={diameter} "
              f"(d={params.d}, u={params.u}, kappa={params.kappa:.4f})",
    ))
    print(f"\nTheorem 1.1 bound for Gradient TRIX: "
          f"{params.local_skew_bound(diameter):.4f}")
    print("Takeaways: the tree dies outright; naive TRIX degrades linearly "
          "with depth;\nHEX survives crashes but pays ~d for each; Gradient "
          "TRIX stays at kappa scale\nthroughout -- Table 1 of the paper, "
          "measured.")


if __name__ == "__main__":
    main()
