"""Timing parameters of the Gradient TRIX system.

The paper (Section 3, Equations (1)-(3)) fixes three physical parameters --
the maximum end-to-end message delay ``d``, the delay uncertainty ``u``, and
the maximum hardware clock rate ``vartheta`` (clock rates lie in
``[1, vartheta]``) -- plus the nominal layer-to-layer propagation time
``Lambda`` (the inverse of the input clock frequency).  From these it derives
the discretization unit

    kappa = 2 * (u + (1 - 1/vartheta) * (Lambda - d))        (Equation (1))

which is both the measurement-error budget per layer and the step of the
``4*s*kappa`` correction grid.

Equations (2) and (3) are feasibility constraints tying ``Lambda`` and ``d``
to the worst-case local skew; :meth:`Parameters.validate` checks them for a
caller-supplied skew bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Parameters", "DEFAULT_FEASIBILITY_MARGIN"]

#: Multiplicative margin used for the feasibility checks of Equations (2)-(3).
#: The paper only requires "a sufficiently large constant C"; 1.0 is the
#: weakest self-consistent choice and suits the simulated parameter ranges.
DEFAULT_FEASIBILITY_MARGIN = 1.0


@dataclass(frozen=True)
class Parameters:
    """Physical and algorithmic timing parameters.

    Parameters
    ----------
    d:
        Maximum end-to-end communication delay (includes computation).
        Must be positive.
    u:
        Delay uncertainty; every link delay lies in ``[d - u, d]``.
        Must satisfy ``0 <= u <= d``.
    vartheta:
        Maximum hardware clock rate.  Rates lie in ``[1, vartheta]`` and
        ``vartheta > 1`` is required by the model (``vartheta == 1`` is
        accepted for idealized tests).
    Lambda:
        Nominal time for a pulse to propagate from one layer to the next;
        the input pulse period.  Defaults to ``2 * d``, the choice the paper
        singles out after Equation (3).
    """

    d: float
    u: float
    vartheta: float = 1.001
    Lambda: float = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.d <= 0:
            raise ValueError(f"d must be positive, got {self.d}")
        if not 0 <= self.u <= self.d:
            raise ValueError(f"u must lie in [0, d]=[0, {self.d}], got {self.u}")
        if self.vartheta < 1:
            raise ValueError(f"vartheta must be >= 1, got {self.vartheta}")
        if self.Lambda is None:
            object.__setattr__(self, "Lambda", 2.0 * self.d)
        if self.Lambda < self.d:
            raise ValueError(
                f"Lambda must be at least d={self.d}, got {self.Lambda}"
            )

    @property
    def kappa(self) -> float:
        """Discretization unit ``kappa`` of Equation (1)."""
        return 2.0 * (self.u + (1.0 - 1.0 / self.vartheta) * (self.Lambda - self.d))

    @property
    def min_delay(self) -> float:
        """Minimum end-to-end delay ``d - u``."""
        return self.d - self.u

    def local_skew_bound(self, diameter: int) -> float:
        """Fault-free local skew bound of Theorem 1.1: ``4*kappa*(2 + log2 D)``.

        ``diameter`` is the diameter ``D`` of the base graph.  For ``D == 1``
        the logarithm vanishes and the bound is ``8 * kappa``.
        """
        if diameter < 1:
            raise ValueError(f"diameter must be >= 1, got {diameter}")
        return 4.0 * self.kappa * (2.0 + math.log2(diameter))

    def worst_case_fault_bound(self, diameter: int, num_faults: int) -> float:
        """Worst-case skew bound of Theorem 1.2: ``B_f = 4k(2+log D) 5^f sum 5^-j``.

        This is the explicit constant tracked in the paper's induction:
        ``B_i = 4*kappa*(2 + log2 D) * 5**i * sum_{j<=i} 5**-j``.
        """
        if num_faults < 0:
            raise ValueError(f"num_faults must be >= 0, got {num_faults}")
        base = self.local_skew_bound(diameter)
        return base * 5.0**num_faults * sum(5.0**-j for j in range(num_faults + 1))

    def global_skew_bound(self, diameter: int) -> float:
        """Global skew bound of Corollary 4.24: ``6 * kappa * D``."""
        if diameter < 1:
            raise ValueError(f"diameter must be >= 1, got {diameter}")
        return 6.0 * self.kappa * diameter

    def validate(
        self,
        skew_bound: float,
        margin: float = DEFAULT_FEASIBILITY_MARGIN,
    ) -> None:
        """Check the feasibility constraints of Equations (2) and (3).

        ``skew_bound`` plays the role of ``sup_l L_l``.  Raises
        :class:`ValueError` naming the violated constraint; returns silently
        when both hold.
        """
        lhs2 = self.Lambda
        rhs2 = margin * self.vartheta * (skew_bound + self.u) + self.d
        if lhs2 < rhs2:
            raise ValueError(
                "Equation (2) violated: Lambda="
                f"{lhs2:.6g} < C*vartheta*(L+u)+d={rhs2:.6g}"
            )
        lhs3 = self.d
        rhs3 = margin * (self.vartheta * (skew_bound + self.u) + self.kappa)
        if lhs3 < rhs3:
            raise ValueError(
                "Equation (3) violated: d="
                f"{lhs3:.6g} < C*(vartheta*(L+u)+kappa)={rhs3:.6g}"
            )

    def is_feasible(
        self,
        skew_bound: float,
        margin: float = DEFAULT_FEASIBILITY_MARGIN,
    ) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(skew_bound, margin)
        except ValueError:
            return False
        return True

    def with_lambda(self, Lambda: float) -> "Parameters":
        """Return a copy with a different nominal period ``Lambda``."""
        return Parameters(d=self.d, u=self.u, vartheta=self.vartheta, Lambda=Lambda)

    @classmethod
    def vlsi_defaults(cls) -> "Parameters":
        """Parameters representative of a large SoC clock grid.

        Units are nanoseconds: ``d = 1 ns`` hop delay, ``u = 10 ps``
        uncertainty, clock drift of 100 ppm, ``Lambda = 2 ns`` (500 MHz
        grid input).  These follow the regime the paper motivates
        (``d >> u + (vartheta-1)d``).
        """
        return cls(d=1.0, u=0.01, vartheta=1.0001, Lambda=2.0)
