"""C15 -- Corollary 1.5: sustained variation does not break the skew bound.

Per pulse, the corollary tolerates (i) a constant number of faulty nodes
changing their behaviour, (ii) link delays drifting by up to
``n^{-1/2} u log D``, and (iii) clock speeds drifting by up to
``n^{-1/2} (vartheta - 1) log D``.

The driver runs with all three enabled -- a bounded per-pulse random walk
on every edge delay, a bounded per-pulse random walk on every clock rate,
and a :class:`~repro.faults.model.MutableFault` that flips between late,
silent, and early phases -- and measures the overall local skew ``L``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.report import format_table
from repro.delays.models import VaryingDelayModel
from repro.faults.injection import FaultPlan
from repro.faults.model import (
    AdversarialEarlyFault,
    AdversarialLateFault,
    CrashFault,
    MutableFault,
)
from repro.experiments.batch import BatchRunner, BatchTrial
from repro.experiments.common import standard_config
from repro.topology.layered import NodeId

__all__ = ["Cor15Result", "run_cor15", "cor15_trial"]


@dataclass
class Cor15Result:
    """Measured overall skew under sustained variation."""

    diameter: int
    delay_step: float
    rate_step: float
    overall: float
    envelope: float
    behavior_changes: int

    @property
    def within_envelope(self) -> bool:
        """Whether ``L`` stayed within the envelope."""
        return self.overall <= self.envelope

    def table(self) -> str:
        """ASCII rendering."""
        return format_table(
            ["quantity", "value"],
            [
                ("D", self.diameter),
                ("per-pulse delay step (ii)", self.delay_step),
                ("per-pulse rate step (iii)", self.rate_step),
                ("fault behaviour changes (i)", self.behavior_changes),
                ("overall L", self.overall),
                ("envelope", self.envelope),
            ],
            title="Corollary 1.5: skew under sustained variation",
        )


class _DriftingRates:
    """Per-node clock rates performing a bounded per-pulse random walk."""

    def __init__(self, vartheta: float, step: float, seed: int) -> None:
        self.vartheta = vartheta
        self.step = step
        self.seed = seed
        self._rates: Dict[NodeId, list] = {}
        self._rngs: Dict[NodeId, np.random.Generator] = {}

    def __call__(self, node: NodeId, pulse: int) -> float:
        rates = self._rates.get(node)
        if rates is None:
            v, layer = node
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, v, layer])
            )
            rates = [float(rng.uniform(1.0, self.vartheta))]
            self._rates[node] = rates
            self._rngs[node] = rng
        rng = self._rngs[node]
        while len(rates) <= pulse:
            delta = float(rng.uniform(-self.step, self.step))
            rates.append(min(max(rates[-1] + delta, 1.0), self.vartheta))
        return rates[pulse]


def cor15_trial(
    diameter: int = 16,
    num_pulses: int = 6,
    seed: int = 0,
) -> tuple[BatchTrial, Dict[str, float]]:
    """The sustained-variation trial :func:`run_cor15` batches.

    Returns ``(trial, drift)`` where ``drift`` records the per-pulse
    ``delay_step`` (ii), ``rate_step`` (iii), and the fault plan's
    ``behavior_changes`` (i).  Factored out of the driver so other
    callers -- the :mod:`repro.service` job runner in particular --
    can submit the same cell.
    """
    config = standard_config(diameter, seed=seed, num_pulses=num_pulses)
    params = config.params
    graph = config.graph
    n = config.num_grid_nodes
    log_d = math.log2(max(diameter, 2))

    delay_step = params.u * log_d / math.sqrt(n)
    rate_step = (params.vartheta - 1.0) * log_d / math.sqrt(n)

    delays = VaryingDelayModel(
        params.d, params.u, max_step=delay_step, seed=seed + 31
    )
    rates = _DriftingRates(params.vartheta, rate_step, seed + 47)

    mutable = MutableFault(
        [
            (0, AdversarialLateFault(25.0)),
            (2, CrashFault()),
            (4, AdversarialEarlyFault(25.0)),
        ]
    )
    plan = FaultPlan.from_nodes(
        {(graph.width // 2, max(1, graph.num_layers // 2)): mutable}
    )
    changes = sum(plan.count_behavior_changes(k) for k in range(num_pulses))
    trial = BatchTrial(
        config=config,
        fault_plan=plan,
        delay_model=delays,
        clock_rates=rates,
        label="sustained-variation",
    )
    drift = {
        "delay_step": delay_step,
        "rate_step": rate_step,
        "behavior_changes": changes,
    }
    return trial, drift


def run_cor15(
    diameter: int = 16,
    num_pulses: int = 6,
    seed: int = 0,
    envelope_factor: float = 1.5,
    executor: str = "serial",
    shards: Optional[int] = None,
    stack_mixed_geometry: bool = True,
    compact_width: bool = True,
    neighbor_backend: str = "auto",
    kernel_backend: str = "auto",
    store_times: bool = False,
) -> Cor15Result:
    """Run with per-pulse delay/rate drift and a mutating fault.

    ``executor``/``shards``/``stack_mixed_geometry`` are forwarded to
    :class:`BatchRunner` so multi-seed/multi-diameter variants of this
    study shard and stack like the other drivers (the default
    single-trial run gains nothing from either).  Only the folded
    overall skew is consumed, so the run streams by default
    (``store_times=False``); ``store_times=True`` keeps raw pulse times.

    Example
    -------
    >>> from repro.experiments.cor15_variation import run_cor15
    >>> result = run_cor15(diameter=8, num_pulses=2)
    >>> result.within_envelope
    True
    """
    trial, drift = cor15_trial(diameter, num_pulses=num_pulses, seed=seed)
    params = trial.config.params

    batch = BatchRunner(
        num_pulses=num_pulses,
        executor=executor,
        shards=shards,
        stack_mixed_geometry=stack_mixed_geometry,
        compact_width=compact_width,
        neighbor_backend=neighbor_backend,
        kernel_backend=kernel_backend,
        store_times=store_times,
    ).run([trial])
    return Cor15Result(
        diameter=diameter,
        delay_step=drift["delay_step"],
        rate_step=drift["rate_step"],
        overall=float(batch.overall_skews()[0]),
        envelope=envelope_factor * params.local_skew_bound(diameter),
        behavior_changes=int(drift["behavior_changes"]),
    )
