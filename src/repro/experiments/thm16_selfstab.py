"""TH6 -- Theorem 1.6: the pulse propagation self-stabilizes in ``O(sqrt n)``
pulses.

The driver runs the event-driven grid with Algorithm 4 nodes
(:class:`~repro.core.selfstab.SelfStabilizingNode`), lets it warm up, then
hits every node of layers ``>= 1`` with a transient fault: volatile state is
scrambled (reception registers possibly in the local future, bogus pending
pulses, random pulse counters) and spurious messages are injected in
flight.  It then measures how long the system needs to return to a clean
schedule (period ``Lambda``, adjacent offsets within the skew bound).

Theorem 1.6 predicts stabilization within ``O(sqrt n)`` pulses -- on our
grids, a small multiple of the layer count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.stabilization import StabilizationReport, measure_stabilization
from repro.core.algorithm import PULSE, GradientTrixNode
from repro.core.network_sim import GridSimulation
from repro.core.selfstab import SelfStabilizingNode, corrupt_node
from repro.experiments.common import standard_config

__all__ = ["Thm16Result", "run_thm16"]


@dataclass
class Thm16Result:
    """Stabilization measurement after a full-grid transient fault."""

    diameter: int
    num_grid_nodes: int
    corrupted_nodes: int
    injected_messages: int
    report: StabilizationReport
    budget_pulses: int

    @property
    def stabilized_within_budget(self) -> bool:
        """Whether stabilization beat the ``O(sqrt n)`` budget."""
        return (
            self.report.stabilized
            and self.report.stabilization_pulses <= self.budget_pulses
        )

    def table(self) -> str:
        """ASCII rendering."""
        return format_table(
            ["quantity", "value"],
            [
                ("D", self.diameter),
                ("n (grid nodes)", self.num_grid_nodes),
                ("nodes corrupted", self.corrupted_nodes),
                ("spurious messages injected", self.injected_messages),
                ("stabilized", self.report.stabilized),
                ("stabilization pulses", self.report.stabilization_pulses),
                ("budget (pulses)", self.budget_pulses),
                ("violations observed", self.report.violations),
            ],
            title="Theorem 1.6: self-stabilization after transient faults",
        )


def run_thm16(
    diameter: int = 8,
    warmup_pulses: int = 3,
    recovery_pulses: int | None = None,
    seed: int = 0,
    budget_factor: float = 3.0,
    corruption_scale_periods: float = 2.0,
) -> Thm16Result:
    """Corrupt the whole grid mid-run and measure recovery."""
    config = standard_config(diameter, seed=seed)
    params = config.params
    graph = config.graph
    if recovery_pulses is None:
        recovery_pulses = 3 * graph.num_layers + 10
    total_pulses = warmup_pulses + recovery_pulses

    skew_bound = params.local_skew_bound(diameter)
    grid = GridSimulation(
        graph,
        params,
        delay_model=config.delay_model,
        node_class=SelfStabilizingNode,
        node_kwargs={"skew_estimate": skew_bound, "max_pulses": None},
    )
    grid.build(total_pulses)

    # Warm up: let the first pulses flood the grid.
    corrupt_at = (warmup_pulses + graph.num_layers + 1) * params.Lambda
    grid.sim.run_until(corrupt_at)

    rng = np.random.default_rng(seed + 1613)
    scale = corruption_scale_periods * params.Lambda
    corrupted = 0
    for node, process in grid.nodes.items():
        if isinstance(process, GradientTrixNode):
            corrupt_node(process, rng, time_scale=scale)
            corrupted += 1

    # Spurious in-flight messages: one per layer, delivered shortly after.
    injected = 0
    for layer in range(1, graph.num_layers):
        v = int(rng.integers(0, graph.width))
        target = (v, layer)
        fake_sender = (v, layer - 1)
        delivery = grid.sim.now + float(rng.uniform(0, params.d))
        grid.network.inject_at(
            target, {PULSE: int(rng.integers(0, 5))}, fake_sender, delivery
        )
        injected += 1

    horizon = (total_pulses + graph.num_layers + 5) * params.Lambda
    grid.sim.run_until(horizon)

    report = measure_stabilization(
        grid.trace,
        graph,
        params,
        skew_bound=skew_bound,
        observe_from=corrupt_at,
        observe_until=(total_pulses - 1) * params.Lambda,
    )
    n = config.num_grid_nodes
    budget = int(budget_factor * math.sqrt(n)) + graph.num_layers
    return Thm16Result(
        diameter=diameter,
        num_grid_nodes=n,
        corrupted_nodes=corrupted,
        injected_messages=injected,
        report=report,
        budget_pulses=budget,
    )
