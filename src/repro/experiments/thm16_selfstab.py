"""TH6 -- Theorem 1.6: self-stabilization under *sustained* churn.

Earlier revisions of this driver staged a one-shot transient fault (corrupt
every node once, watch the event engine recover).  The chaos-campaign layer
(:mod:`repro.faults.campaign`) replaces that with the regime the theorem is
actually about: a *sustained* window of churn -- nodes crashing and
recovering, vertices leaving and rejoining, edges flapping, correlated
regional outages -- after which the system must return to a clean gradient
schedule on its own.  The driver

1. samples a seeded :meth:`~repro.faults.campaign.ChaosCampaign.random`
   campaign (or takes one the caller -- e.g. a hypothesis test -- hands
   in) whose disruptions all revert by ``churn_pulses``,
2. runs it through the fast path via :class:`~repro.experiments.batch.
   BatchRunner` (``BatchTrial.campaign``), one trial per seed, and
3. measures the per-pulse local-skew series over the *seed* edge set: the
   stabilization time is the number of pulses after the last churn event
   until the max local skew re-enters ``params.local_skew_bound(D)`` and
   stays there for the rest of the run.

Theorem 1.6 predicts stabilization within ``O(sqrt n)`` pulses.  Our
measured times are far inside that budget, and honesty requires saying
why: the fast path evaluates the Lemma B.1 recurrence, in which pulse
``k`` of layer ``l`` depends only on pulse ``k`` of layer ``l - 1`` --
there is no cross-pulse memory, so once the last disruption reverts, the
very next pulse wave propagates through a clean topology and the skew
re-enters the bound within about one wave.  The measurement is therefore
consistent with (and much stronger than) the theorem's upper bound; the
event-engine legs of ``tests/test_differential.py`` pin the fast path's
churn-era behaviour to the engine at 1e-9, so the quick recovery is a
property of the algorithm, not an artifact of the shortcut.

Example
-------
>>> from repro.experiments.thm16_selfstab import run_thm16
>>> result = run_thm16(diameter=4, num_trials=2, seed=1)
>>> bool(result.stabilized)
True
>>> result.skew_series.shape == (2, result.num_pulses)
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.skew import masked_max
from repro.experiments.batch import BatchResult, BatchRunner, BatchTrial
from repro.faults.campaign import ChaosCampaign
from repro.experiments.common import standard_config

__all__ = ["Thm16Result", "run_thm16"]


@dataclass
class Thm16Result:
    """Self-stabilization measurement under a sustained churn campaign.

    ``skew_series`` is the per-trial, per-pulse max local skew over the
    seed edge set (shape ``(num_trials, num_pulses)``; NaN pulses -- e.g.
    a fully silenced layer -- never occur on these campaigns because
    layer 0 keeps beating).  ``stabilization_pulses`` counts, per trial,
    the pulses after the campaign's last event until the series re-enters
    ``skew_bound`` for good (-1 when it never does within the horizon).
    """

    diameter: int
    num_grid_nodes: int
    num_trials: int
    num_pulses: int
    churn_pulses: int
    skew_bound: float
    budget_pulses: int
    last_event_pulse: int
    churn_actions: int
    skew_series: np.ndarray
    stabilization_pulses: np.ndarray
    worst_churn_skew: float
    worst_recovered_skew: float
    batch: BatchResult = field(repr=False)

    @property
    def stabilized(self) -> bool:
        """Whether every trial re-entered the skew bound after the churn."""
        return bool((self.stabilization_pulses >= 0).all())

    @property
    def stabilized_within_budget(self) -> bool:
        """Whether every trial stabilized within the ``O(sqrt n)`` budget."""
        return self.stabilized and bool(
            (self.stabilization_pulses <= self.budget_pulses).all()
        )

    def table(self) -> str:
        """ASCII rendering."""
        worst = int(self.stabilization_pulses.max())
        return format_table(
            ["quantity", "value"],
            [
                ("D", self.diameter),
                ("n (grid nodes)", self.num_grid_nodes),
                ("trials", self.num_trials),
                ("churn window (pulses)", self.churn_pulses),
                ("churn actions (worst trial)", self.churn_actions),
                ("last event pulse", self.last_event_pulse),
                ("skew bound", f"{self.skew_bound:.4f}"),
                ("worst churn-era skew", f"{self.worst_churn_skew:.4f}"),
                ("worst recovered skew", f"{self.worst_recovered_skew:.4f}"),
                ("stabilized", self.stabilized),
                ("stabilization pulses (worst)", worst),
                ("budget (pulses)", self.budget_pulses),
            ],
            title="Theorem 1.6: self-stabilization under sustained churn",
        )


def _stabilization_pulses(
    series: np.ndarray, bound: float, last_event: int
) -> np.ndarray:
    """Per-trial pulses-after-last-event until the series stays in bound.

    For each row, the smallest ``p > last_event`` with ``series[p:]``
    entirely within ``bound`` gives ``p - last_event``; rows that never
    settle report -1.  NaN pulses (nothing to compare) count as within
    bound -- they carry no skew evidence either way.
    """
    series = np.asarray(series, dtype=float)
    within = np.isnan(series) | (series <= bound)
    out = np.full(series.shape[0], -1, dtype=np.int64)
    for s in range(series.shape[0]):
        settled = -1
        for p in range(series.shape[1] - 1, last_event, -1):
            if not within[s, p]:
                break
            settled = p
        if settled >= 0:
            out[s] = settled - last_event
    return out


def run_thm16(
    diameter: int = 8,
    num_pulses: Optional[int] = None,
    churn_pulses: Optional[int] = None,
    seed: int = 0,
    num_trials: int = 1,
    budget_factor: float = 3.0,
    event_rate: float = 0.7,
    campaign: Optional[ChaosCampaign] = None,
    executor: str = "serial",
    shards: Optional[int] = None,
    compact_width: bool = True,
    neighbor_backend: str = "auto",
    kernel_backend: str = "auto",
) -> Thm16Result:
    """Measure self-stabilization under a sustained churn campaign.

    Builds one :func:`~repro.experiments.common.standard_config` trial per
    seed offset, attaches a sustained-churn
    :class:`~repro.faults.campaign.ChaosCampaign` (seeded
    :meth:`~repro.faults.campaign.ChaosCampaign.random` by default;
    ``campaign=`` injects a caller-supplied one, e.g. hypothesis-drawn in
    the tests), runs the batch through the fast path, and reduces the
    per-pulse local-skew series; see the module docstring.

    Args
    ----
    diameter:
        Base-graph diameter ``D`` of the standard config.
    num_pulses:
        Total pulses simulated; default leaves a full recovery tail of
        ``num_layers + 2`` quiet pulses after the churn window.
    churn_pulses:
        Length of the churn window; every disruption reverts by this
        pulse.  Default ``max(4, num_layers // 2)``.
    seed:
        Base seed; trial ``t`` uses config seed ``seed + t`` and its own
        campaign stream.
    num_trials:
        Independent (config, campaign) trials, stacked through one
        :class:`~repro.experiments.batch.BatchRunner` call.
    budget_factor:
        The budget is ``int(budget_factor * sqrt(n)) + num_layers``
        pulses, the experiment's concrete stand-in for ``O(sqrt n)``.
    event_rate:
        Per-pulse event probability of the sampled campaigns.
    campaign:
        Use this campaign for every trial instead of sampling (its base
        graph must match the standard config's, i.e. the replicated line
        of the given ``diameter``).
    executor, shards:
        Forwarded to :class:`~repro.experiments.batch.BatchRunner`, as
        are ``neighbor_backend`` and ``kernel_backend``.

    Returns
    -------
    Thm16Result
        Skew series, per-trial stabilization pulse counts, and the batch
        (whose ``campaign_stats`` holds per-trial churn accounting).
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    probe = standard_config(diameter, seed=seed)
    num_layers = probe.graph.num_layers
    if churn_pulses is None:
        churn_pulses = max(4, num_layers // 2)
    if num_pulses is None:
        num_pulses = churn_pulses + num_layers + 2
    if num_pulses <= churn_pulses:
        raise ValueError(
            f"num_pulses ({num_pulses}) must exceed churn_pulses "
            f"({churn_pulses}) to leave a recovery tail"
        )

    trials: List[BatchTrial] = []
    for t in range(num_trials):
        config = standard_config(diameter, seed=seed + t)
        trial_campaign = campaign
        if trial_campaign is None:
            trial_campaign = ChaosCampaign.random(
                config.graph.base,
                num_layers,
                churn_pulses=churn_pulses,
                rng_or_seed=np.random.SeedSequence([seed + t, 1613]),
                event_rate=event_rate,
            )
        trials.append(
            BatchTrial(
                config=config,
                campaign=trial_campaign,
                label=f"churn seed={seed + t}",
            )
        )

    runner = BatchRunner(
        num_pulses=num_pulses,
        executor=executor,
        shards=shards,
        compact_width=compact_width,
        neighbor_backend=neighbor_backend,
        kernel_backend=kernel_backend,
    )
    batch = runner.run(trials)

    # Per-pulse max local skew over the seed edge set: |t_v - t_w| along
    # every base edge, max over layers and edges, per (trial, pulse).
    # Absent/crashed cells are NaN and mask out automatically.
    graph = probe.graph
    left, right = graph.base.edge_index_arrays()
    times = batch.times  # (S, K, L, W)
    diffs = np.abs(times[..., left] - times[..., right])  # (S, K, L, E)
    skew_series = masked_max(diffs, axis=(-2, -1), empty=np.nan)  # (S, K)

    last_event = max(
        (
            stats["last_event_pulse"]
            for stats in batch.campaign_stats.values()
            if stats["last_event_pulse"] is not None
        ),
        default=0,
    )
    churn_actions = max(
        (stats["actions"] for stats in batch.campaign_stats.values()),
        default=0,
    )
    skew_bound = probe.params.local_skew_bound(diameter)
    stabilization = _stabilization_pulses(skew_series, skew_bound, last_event)

    churn_era = skew_series[:, : last_event + 1]
    worst_churn = (
        float(np.nanmax(churn_era)) if np.isfinite(churn_era).any() else 0.0
    )
    recovered = skew_series[:, last_event + 1 :]
    worst_recovered = (
        float(np.nanmax(recovered)) if np.isfinite(recovered).any() else 0.0
    )

    n = probe.num_grid_nodes
    budget = int(budget_factor * math.sqrt(n)) + num_layers
    return Thm16Result(
        diameter=diameter,
        num_grid_nodes=n,
        num_trials=num_trials,
        num_pulses=num_pulses,
        churn_pulses=churn_pulses,
        skew_bound=skew_bound,
        budget_pulses=budget,
        last_event_pulse=int(last_event),
        churn_actions=int(churn_actions),
        skew_series=skew_series,
        stabilization_pulses=stabilization,
        worst_churn_skew=worst_churn,
        worst_recovered_skew=worst_recovered,
        batch=batch,
    )
