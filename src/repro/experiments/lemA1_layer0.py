"""LA1 -- Lemma A.1 / Corollary A.2: the layer-0 chain stays within
``kappa/2`` of local skew.

Algorithm 2 feeds the clock source through a simple chain across layer 0;
Lemma A.1 bounds the chain-adjacent pulse offset by ``kappa/2`` and pins
each pulse inside the envelope ``[(k+i-1)L - i*k/2, (k+i-1)L]``.

The driver runs the chain over random delays and clock rates and verifies
both claims, sweeping chain lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.report import format_table
from repro.clocks.drift import uniform_random_rates
from repro.core.layer0 import ChainLayer0
from repro.delays.models import StaticDelayModel
from repro.params import Parameters

__all__ = ["LemA1Row", "LemA1Result", "run_lemA1"]


@dataclass(frozen=True)
class LemA1Row:
    """One chain length: measured adjacency skew and envelope compliance."""

    chain_length: int
    max_adjacent_skew: float
    kappa_half: float
    envelope_violations: int


@dataclass
class LemA1Result:
    """Sweep rows."""

    rows: List[LemA1Row]

    @property
    def all_within_bound(self) -> bool:
        """Whether every length satisfied Lemma A.1."""
        return all(
            r.max_adjacent_skew <= r.kappa_half + 1e-12
            and r.envelope_violations == 0
            for r in self.rows
        )

    def table(self) -> str:
        """ASCII rendering."""
        body = [
            (r.chain_length, r.max_adjacent_skew, r.kappa_half, r.envelope_violations)
            for r in self.rows
        ]
        return format_table(
            ["chain length", "max adjacent skew", "kappa/2", "envelope violations"],
            body,
            title="Lemma A.1: layer-0 chain skew",
        )


def run_lemA1(
    chain_lengths: Sequence[int] = (8, 16, 32, 64),
    num_pulses: int = 6,
    seeds: Sequence[int] = (0, 1),
    params: Parameters | None = None,
) -> LemA1Result:
    """Measure chain-adjacent skew and the Lemma A.1 envelope.

    Example
    -------
    >>> from repro.experiments.lemA1_layer0 import run_lemA1
    >>> result = run_lemA1(chain_lengths=(8,), num_pulses=2)
    >>> result.all_within_bound
    True
    """
    if params is None:
        params = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
    rows: List[LemA1Row] = []
    for length in chain_lengths:
        worst_skew = 0.0
        violations = 0
        for seed in seeds:
            chain_order = list(range(length))
            delays = StaticDelayModel(params.d, params.u, seed=seed)
            clocks = uniform_random_rates(
                chain_order, params.vartheta, rng_or_seed=seed + 7
            )
            chain = ChainLayer0(
                params, chain_order, delay_model=delays, clocks=clocks
            )
            # Adjacent skew between consecutive chain positions: compare
            # chain pulse k at position i with pulse k+1 at position i-1
            # (the pipelined alignment of Lemma A.1).
            for k in range(num_pulses):
                for pos in range(1, length):
                    earlier = chain.chain_pulse_time(pos - 1, k + 1)
                    later = chain.chain_pulse_time(pos, k)
                    worst_skew = max(worst_skew, abs(later - earlier))
            # Envelope check for every (position, pulse).
            for pos in range(length):
                for k in range(num_pulses):
                    t = chain.chain_pulse_time(pos, k)
                    low, high = chain.lemma_a1_envelope(pos, k)
                    if not low - 1e-9 <= t <= high + 1e-9:
                        violations += 1
        rows.append(
            LemA1Row(
                chain_length=length,
                max_adjacent_skew=worst_skew,
                kappa_half=params.kappa / 2.0,
                envelope_violations=violations,
            )
        )
    return LemA1Result(rows=rows)
