"""P1 -- Lemma 4.22 / Theorem 4.26: the potentials decay layer by layer.

The skew analysis is driven by the potentials ``Psi^s`` (Definition 4.1):
Lemma 4.25 shows each level roughly halves once the previous level has
settled, and Theorem 4.26 turns this into a self-stabilization statement --
an abnormally large skew is burned off at a rate of ``~kappa/2`` per layer
per level.

The driver injects a large zigzag skew at layer 0 (amplitude several
``kappa``) and tracks ``Psi^s(l)`` for ``s = 0, 1, 2, ...`` down the grid,
checking that each potential decays to its steady plateau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.potentials import Psi
from repro.analysis.report import format_table
from repro.core.layer0 import AlternatingLayer0
from repro.experiments.common import standard_config

__all__ = ["PotentialDecayResult", "run_potential_decay"]


@dataclass
class PotentialDecayResult:
    """``Psi^s(l)`` series per level ``s``."""

    diameter: int
    kappa: float
    injected_amplitude: float
    series: Dict[int, List[float]]

    def initial(self, s: int) -> float:
        """``Psi^s`` at layer 0."""
        return self.series[s][0]

    def final(self, s: int) -> float:
        """``Psi^s`` on the deepest layer."""
        return self.series[s][-1]

    def decayed(self, s: int, factor: float = 2.0) -> bool:
        """Whether ``Psi^s`` shrank by at least ``factor`` down the grid."""
        initial = self.initial(s)
        if initial <= 0:
            return True
        return self.final(s) <= initial / factor

    def table(self) -> str:
        """ASCII rendering of the decay series."""
        levels = sorted(self.series)
        layers = len(self.series[levels[0]])
        step = max(1, layers // 10)
        rows = []
        for layer in range(0, layers, step):
            rows.append(
                (layer, *(self.series[s][layer] for s in levels))
            )
        headers = ["layer"] + [f"Psi^{s}" for s in levels]
        return format_table(
            headers,
            rows,
            title=(
                f"Potential decay (D={self.diameter}, injected amplitude "
                f"{self.injected_amplitude / self.kappa:.1f} kappa)"
            ),
        )


def run_potential_decay(
    diameter: int = 16,
    amplitude_kappas: float = 6.0,
    levels: Sequence[int] = (0, 1, 2),
    num_layers: int | None = None,
    seed: int = 0,
) -> PotentialDecayResult:
    """Inject layer-0 skew and track the potentials down the grid.

    Example
    -------
    >>> from repro.experiments.potential_decay import run_potential_decay
    >>> result = run_potential_decay(diameter=4, num_layers=12)
    >>> result.decayed(1)
    True
    """
    config = standard_config(
        diameter,
        seed=seed,
        num_layers=num_layers or 4 * diameter,
        num_pulses=1,
    )
    params = config.params
    layer0 = AlternatingLayer0(
        params.Lambda, amplitude_kappas * params.kappa
    )
    result = config.simulation(layer0=layer0).run(1)
    series: Dict[int, List[float]] = {}
    for s in levels:
        series[s] = [
            Psi(result, s, layer, 0)
            for layer in range(config.graph.num_layers)
        ]
    return PotentialDecayResult(
        diameter=diameter,
        kappa=params.kappa,
        injected_amplitude=amplitude_kappas * params.kappa,
        series=series,
    )
