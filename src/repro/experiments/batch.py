"""Batched multi-trial runner for the fast simulator.

Experiment drivers used to run one ``(seed, fault_plan, params)`` cell at a
time and reduce skews with per-result helpers in a Python loop.  This
module sweeps many trials in one call instead:

* every trial runs through the vectorized layer-sweep kernel of
  :class:`~repro.core.fast.FastSimulation` (all ``W`` nodes of a layer per
  array op), and
* the per-trial results are stacked along a leading *trial axis* --
  ``times`` of shape ``(S, K, L, W)`` -- so skew and correction statistics
  for the whole sweep reduce in single array sweeps through the
  array-shaped entry points of :mod:`repro.analysis.skew`.

:class:`BatchRunner` is the backend of the ``thm11_local_skew``,
``thm13_random_faults``, ``cor15_variation``, and ``table1`` experiment
drivers; new parameter studies should build on it rather than hand-rolled
seed loops.

Example
-------
>>> from repro.experiments.batch import BatchRunner, BatchTrial
>>> from repro.experiments.common import standard_config
>>> trials = [BatchTrial(config=standard_config(8, seed=s)) for s in range(16)]
>>> batch = BatchRunner(num_pulses=4).run(trials)
>>> batch.max_local_skews().shape
(16,)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.correction import CorrectionPolicy, PAPER_POLICY
from repro.core.fast import FastResult, FastSimulation, RateProvider
from repro.core.layer0 import Layer0Schedule
from repro.delays.models import DelayModel
from repro.experiments.common import ExperimentConfig, standard_config
from repro.faults.injection import FaultPlan
from repro.analysis.skew import (
    global_skew_layers,
    inter_layer_skew_layers,
    local_skew_layers,
)

__all__ = ["BatchTrial", "BatchResult", "BatchRunner", "CONFIG_RATES"]

#: Sentinel: "use the trial config's sampled clock rates" (``None`` means
#: rate-1 clocks everywhere, matching :class:`FastSimulation`).
CONFIG_RATES = object()


@dataclass
class BatchTrial:
    """One cell of a sweep: a config plus per-trial overrides.

    Every override defaults to "inherit from ``config``" (``delay_model``,
    ``clock_rates``) or to the :class:`FastSimulation` default
    (``fault_plan``, ``layer0``, ``policy``, ``algorithm``).
    """

    config: ExperimentConfig
    fault_plan: Optional[FaultPlan] = None
    layer0: Optional[Layer0Schedule] = None
    delay_model: Optional[DelayModel] = None
    clock_rates: RateProvider = field(default=CONFIG_RATES)  # type: ignore[assignment]
    policy: CorrectionPolicy = PAPER_POLICY
    algorithm: str = "full"
    label: str = ""

    def simulation(self, vectorize: bool = True) -> FastSimulation:
        """The :class:`FastSimulation` realizing this trial."""
        rates = (
            self.config.clock_rates
            if self.clock_rates is CONFIG_RATES
            else self.clock_rates
        )
        return FastSimulation(
            self.config.graph,
            self.config.params,
            delay_model=self.delay_model or self.config.delay_model,
            clock_rates=rates,
            fault_plan=self.fault_plan,
            layer0=self.layer0,
            policy=self.policy,
            algorithm=self.algorithm,
            vectorize=vectorize,
        )

    @property
    def num_faults(self) -> int:
        """Number of faulty nodes injected into this trial."""
        return 0 if self.fault_plan is None else len(self.fault_plan)


class BatchResult:
    """Stacked outcome of a multi-trial sweep.

    Attributes
    ----------
    trials:
        The :class:`BatchTrial` specs, in run order.
    times, corrections, effective_corrections:
        Arrays of shape ``(S, K, L, W)`` -- the per-trial
        :class:`~repro.core.fast.FastResult` matrices stacked along the
        trial axis.
    faulty_masks:
        Boolean ``(S, L, W)``.
    results:
        The underlying per-trial :class:`FastResult` objects (for drill-in
        and for ``fault_sends``).
    """

    def __init__(
        self, trials: Sequence[BatchTrial], results: Sequence[FastResult]
    ) -> None:
        self.trials = list(trials)
        self.results = list(results)
        self.graph = results[0].graph
        self.num_pulses = results[0].num_pulses
        self.times = np.stack([r.times for r in results])
        self.corrections = np.stack([r.corrections for r in results])
        self.effective_corrections = np.stack(
            [r.effective_corrections for r in results]
        )
        self.faulty_masks = np.stack([r.faulty_mask for r in results])

    def __len__(self) -> int:
        return len(self.trials)

    # ------------------------------------------------------------------
    # Stacked skew statistics (one array sweep across all trials)
    # ------------------------------------------------------------------
    def local_skews(self, empty: float = 0.0) -> np.ndarray:
        """Per-trial, per-layer ``L_l``; shape ``(S, L)``."""
        return local_skew_layers(self.times, self.graph, empty=empty)

    def max_local_skews(self) -> np.ndarray:
        """Per-trial ``sup_l L_l``; shape ``(S,)``."""
        return self.local_skews().max(axis=-1)

    def inter_layer_skews(self, empty: float = 0.0) -> np.ndarray:
        """Per-trial, per-boundary ``L_{l,l+1}``; shape ``(S, L - 1)``."""
        return inter_layer_skew_layers(self.times, self.graph, empty=empty)

    def max_inter_layer_skews(self) -> np.ndarray:
        """Per-trial ``sup_l L_{l,l+1}``; shape ``(S,)``."""
        values = self.inter_layer_skews()
        if values.shape[-1] == 0:
            return np.zeros(len(self))
        return values.max(axis=-1)

    def overall_skews(self) -> np.ndarray:
        """Per-trial ``L = sup_l max(L_l, L_{l,l+1})``; shape ``(S,)``."""
        return np.maximum(self.max_local_skews(), self.max_inter_layer_skews())

    def global_skews(self) -> np.ndarray:
        """Per-trial global skew; shape ``(S,)``."""
        return global_skew_layers(self.times).max(axis=-1)

    # ------------------------------------------------------------------
    # Correction statistics
    # ------------------------------------------------------------------
    def correction_stats(self) -> Dict[str, np.ndarray]:
        """Per-trial correction summary: max/mean ``|C|`` and count.

        Reduces over the finite entries of the stacked ``corrections``
        array (layer 0 and via-``H_max`` iterations are NaN).
        """
        flat = self.corrections.reshape(len(self), -1)
        finite = np.isfinite(flat)
        counts = finite.sum(axis=1)
        abs_vals = np.where(finite, np.abs(flat), 0.0)
        totals = abs_vals.sum(axis=1)
        return {
            "max_abs": abs_vals.max(axis=1, initial=0.0),
            "mean_abs": np.where(counts > 0, totals / np.maximum(counts, 1), 0.0),
            "num_corrections": counts,
        }

    def num_faults(self) -> np.ndarray:
        """Per-trial injected-fault counts; shape ``(S,)``."""
        return np.array([t.num_faults for t in self.trials], dtype=np.int64)


class BatchRunner:
    """Run many ``(seed, fault_plan, params)`` trials and stack the results.

    All trials of one batch must share the grid shape ``(L, W)`` so their
    matrices stack; the runner validates this upfront.  ``vectorize`` is
    forwarded to every :class:`FastSimulation` (``False`` forces the
    scalar reference path, used by the equivalence tests and the
    throughput benchmark).
    """

    def __init__(self, num_pulses: int = 4, vectorize: bool = True) -> None:
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        self.num_pulses = num_pulses
        self.vectorize = vectorize

    def run(self, trials: Sequence[BatchTrial]) -> BatchResult:
        """Execute every trial and return the stacked :class:`BatchResult`."""
        trials = list(trials)
        if not trials:
            raise ValueError("need at least one trial")
        shape0 = (trials[0].config.graph.num_layers, trials[0].config.graph.width)
        for trial in trials[1:]:
            shape = (trial.config.graph.num_layers, trial.config.graph.width)
            if shape != shape0:
                raise ValueError(
                    f"trial grid shapes differ: {shape} vs {shape0}; "
                    "run mismatched geometries in separate batches"
                )
        results = [
            trial.simulation(vectorize=self.vectorize).run(self.num_pulses)
            for trial in trials
        ]
        return BatchResult(trials, results)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def seed_sweep(
        diameter: int,
        seeds: Sequence[int],
        num_pulses: int = 4,
        params=None,
        num_layers: Optional[int] = None,
        fault_plan_factory=None,
    ) -> List[BatchTrial]:
        """Standard-config trials over ``seeds`` at one diameter.

        ``fault_plan_factory`` (``config -> FaultPlan | None``) attaches a
        per-seed fault plan; the default is fault-free.
        """
        trials: List[BatchTrial] = []
        for seed in seeds:
            config = standard_config(
                diameter,
                seed=seed,
                num_layers=num_layers,
                num_pulses=num_pulses,
                params=params,
            )
            plan = fault_plan_factory(config) if fault_plan_factory else None
            trials.append(
                BatchTrial(config=config, fault_plan=plan, label=f"seed={seed}")
            )
        return trials
