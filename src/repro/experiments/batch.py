"""Batched multi-trial runner for the fast simulator.

Experiment drivers used to run one ``(seed, fault_plan, params)`` cell at a
time and reduce skews with per-result helpers in a Python loop.  This
module sweeps many trials in one call instead:

* compatible trials advance through the pulse/layer recurrence *together*
  via the trial-stacked ``(S, W)`` kernel of
  :class:`~repro.core.fast_batch.TrialStack` -- one array op per layer
  step for the whole batch instead of one per trial; both the full
  Algorithm 3 and the ``simplified`` Algorithm 1 semantics stack (each in
  its own group),
* trials the stack cannot take (mismatched parameters/policies/
  geometries, ``vectorize=False``) fall back to the per-trial vectorized
  kernel of :class:`~repro.core.fast.FastSimulation`, and
* the per-trial results are stacked along a leading *trial axis* --
  ``times`` of shape ``(S, K, L, W)`` -- so skew and correction statistics
  for the whole sweep reduce in single array sweeps through the
  array-shaped entry points of :mod:`repro.analysis.skew`.

For fault-heavy sweeps whose cells mostly replay the scalar path,
``BatchRunner(executor="process", shards=N)`` splits the trial list into
``N`` shards and runs them in worker processes via
:mod:`concurrent.futures`; every trial is deterministic given its spec, so
the assembled :class:`BatchResult` is identical for every ``shards``
setting (the test suite pins this).  Trials must be picklable for the
process executor -- use module-level functions/classes, not lambdas, for
delay classifiers and rate providers.

:class:`BatchRunner` is the backend of the ``thm11_local_skew``,
``thm13_random_faults``, ``cor15_variation``, and ``table1`` experiment
drivers; new parameter studies should build on it rather than hand-rolled
seed loops.

Example
-------
>>> from repro.experiments.batch import BatchRunner, BatchTrial
>>> from repro.experiments.common import standard_config
>>> trials = [BatchTrial(config=standard_config(8, seed=s)) for s in range(16)]
>>> batch = BatchRunner(num_pulses=4).run(trials)
>>> batch.max_local_skews().shape
(16,)
"""

from __future__ import annotations

import enum
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.correction import CorrectionPolicy, PAPER_POLICY
from repro.core.fast import FastResult, FastSimulation, RateProvider
from repro.core.fast_batch import TrialStack, stack_compatibility
from repro.core.layer0 import Layer0Schedule
from repro.delays.models import DelayModel
from repro.experiments.common import ExperimentConfig, standard_config
from repro.faults.injection import FaultPlan
from repro.analysis.skew import (
    global_skew_layers,
    inter_layer_skew_layers,
    local_skew_layers,
    overall_skew_layers,
)

__all__ = ["BatchTrial", "BatchResult", "BatchRunner", "CONFIG_RATES"]


class _ConfigRates(enum.Enum):
    """Pickle-stable sentinel type; see :data:`CONFIG_RATES`."""

    CONFIG_RATES = "CONFIG_RATES"


#: Sentinel: "use the trial config's sampled clock rates" (``None`` means
#: rate-1 clocks everywhere, matching :class:`FastSimulation`).  An enum
#: member rather than a bare ``object()`` so the ``is CONFIG_RATES``
#: identity test survives pickling: enum members unpickle by name to the
#: module-level singleton, which is what lets :class:`BatchTrial` specs
#: round-trip into ``executor="process"`` worker processes.
CONFIG_RATES = _ConfigRates.CONFIG_RATES


@dataclass
class BatchTrial:
    """One cell of a sweep: a config plus per-trial overrides.

    Every override defaults to "inherit from ``config``" (``delay_model``,
    ``clock_rates``) or to the :class:`FastSimulation` default
    (``fault_plan``, ``layer0``, ``policy``, ``algorithm``).
    """

    config: ExperimentConfig
    fault_plan: Optional[FaultPlan] = None
    layer0: Optional[Layer0Schedule] = None
    delay_model: Optional[DelayModel] = None
    clock_rates: RateProvider = field(default=CONFIG_RATES)  # type: ignore[assignment]
    policy: CorrectionPolicy = PAPER_POLICY
    algorithm: str = "full"
    label: str = ""

    def simulation(self, vectorize: bool = True) -> FastSimulation:
        """The :class:`FastSimulation` realizing this trial."""
        rates = (
            self.config.clock_rates
            if self.clock_rates is CONFIG_RATES
            else self.clock_rates
        )
        return FastSimulation(
            self.config.graph,
            self.config.params,
            delay_model=self.delay_model or self.config.delay_model,
            clock_rates=rates,
            fault_plan=self.fault_plan,
            layer0=self.layer0,
            policy=self.policy,
            algorithm=self.algorithm,
            vectorize=vectorize,
        )

    @property
    def num_faults(self) -> int:
        """Number of faulty nodes injected into this trial."""
        return 0 if self.fault_plan is None else len(self.fault_plan)


class BatchResult:
    """Stacked outcome of a multi-trial sweep.

    Attributes
    ----------
    trials:
        The :class:`BatchTrial` specs, in run order.
    times, corrections, effective_corrections:
        Arrays of shape ``(S, K, L, W)`` -- the per-trial
        :class:`~repro.core.fast.FastResult` matrices stacked along the
        trial axis.
    faulty_masks:
        Boolean ``(S, L, W)``.
    results:
        The underlying per-trial :class:`FastResult` objects (for drill-in
        and for ``fault_sends``).
    """

    def __init__(
        self, trials: Sequence[BatchTrial], results: Sequence[FastResult]
    ) -> None:
        self.trials = list(trials)
        self.results = list(results)
        self.graph = results[0].graph
        self.num_pulses = results[0].num_pulses
        self.times = np.stack([r.times for r in results])
        self.corrections = np.stack([r.corrections for r in results])
        self.effective_corrections = np.stack(
            [r.effective_corrections for r in results]
        )
        self.faulty_masks = np.stack([r.faulty_mask for r in results])

    def __len__(self) -> int:
        return len(self.trials)

    # ------------------------------------------------------------------
    # Stacked skew statistics (one array sweep across all trials)
    # ------------------------------------------------------------------
    def local_skews(self, empty: float = 0.0) -> np.ndarray:
        """Per-trial, per-layer ``L_l``; shape ``(S, L)``."""
        return local_skew_layers(self.times, self.graph, empty=empty)

    def max_local_skews(self) -> np.ndarray:
        """Per-trial ``sup_l L_l``; shape ``(S,)``."""
        return self.local_skews().max(axis=-1)

    def inter_layer_skews(self, empty: float = 0.0) -> np.ndarray:
        """Per-trial, per-boundary ``L_{l,l+1}``; shape ``(S, L - 1)``."""
        return inter_layer_skew_layers(self.times, self.graph, empty=empty)

    def max_inter_layer_skews(self) -> np.ndarray:
        """Per-trial ``sup_l L_{l,l+1}``; shape ``(S,)``."""
        values = self.inter_layer_skews()
        if values.shape[-1] == 0:
            return np.zeros(len(self))
        return values.max(axis=-1)

    def overall_skews(self) -> np.ndarray:
        """Per-trial ``L = sup_l max(L_l, L_{l,l+1})``; shape ``(S,)``."""
        return overall_skew_layers(self.times, self.graph)

    def global_skews(self) -> np.ndarray:
        """Per-trial global skew; shape ``(S,)``."""
        return global_skew_layers(self.times).max(axis=-1)

    # ------------------------------------------------------------------
    # Correction statistics
    # ------------------------------------------------------------------
    def correction_stats(self) -> Dict[str, np.ndarray]:
        """Per-trial correction summary: max/mean ``|C|`` and count.

        Reduces over the finite entries of the stacked ``corrections``
        array (layer 0 and via-``H_max`` iterations are NaN).
        """
        flat = self.corrections.reshape(len(self), -1)
        finite = np.isfinite(flat)
        counts = finite.sum(axis=1)
        abs_vals = np.where(finite, np.abs(flat), 0.0)
        totals = abs_vals.sum(axis=1)
        return {
            "max_abs": abs_vals.max(axis=1, initial=0.0),
            "mean_abs": np.where(counts > 0, totals / np.maximum(counts, 1), 0.0),
            "num_corrections": counts,
        }

    def num_faults(self) -> np.ndarray:
        """Per-trial injected-fault counts; shape ``(S,)``."""
        return np.array([t.num_faults for t in self.trials], dtype=np.int64)


def _stack_key(trial: BatchTrial) -> Tuple:
    """Hashable grouping key for trials that can share a :class:`TrialStack`.

    Groups by the structural requirements of
    :func:`repro.core.fast_batch.stack_compatibility`: algorithm (both
    ``"full"`` and ``"simplified"`` stack, but not together), parameters,
    policy, and grid structure.  The adjacency component is the tuple the
    base graph caches at construction (``BaseGraph.adjacency``), not a
    per-trial re-gather -- building it per trial was O(S * W * deg) of
    redundant Python per batch.
    """
    graph = trial.config.graph
    return (
        trial.algorithm,
        trial.config.params,
        trial.policy,
        graph.num_layers,
        graph.base.adjacency,
    )


def _run_shard(
    trials: List[BatchTrial], num_pulses: int, vectorize: bool, stack: bool
) -> List[FastResult]:
    """Process-executor worker: run one contiguous shard serially.

    Module-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it under every start method (fork, spawn, forkserver).
    """
    runner = BatchRunner(
        num_pulses=num_pulses, vectorize=vectorize, stack=stack
    )
    return runner._run_serial(trials)


class BatchRunner:
    """Run many ``(seed, fault_plan, params)`` trials and stack the results.

    All trials of one batch must share the grid shape ``(L, W)`` so their
    matrices stack; the runner validates this upfront.

    Parameters
    ----------
    num_pulses:
        Pulses simulated per trial.
    vectorize:
        Forwarded to every :class:`FastSimulation`; ``False`` forces the
        scalar reference path everywhere (used by the equivalence tests
        and the throughput benchmark) and disables trial stacking.
    stack:
        Run compatible trials through the trial-stacked ``(S, W)`` kernel
        (:class:`~repro.core.fast_batch.TrialStack`); the default.  Trials
        are grouped by (parameters, policy, geometry) so heterogeneous
        batches still stack whatever subsets they can; ``False`` keeps the
        per-trial loop of the vectorized kernel.
    executor:
        ``"serial"`` (default) or ``"process"``.  The process executor
        shards the trial list across worker processes -- worthwhile for
        fault-heavy sweeps dominated by the scalar fallback.  Trials must
        be picklable.
    shards:
        Number of process shards; defaults to ``os.cpu_count()`` capped at
        the trial count.  Ignored by the serial executor.
    """

    def __init__(
        self,
        num_pulses: int = 4,
        vectorize: bool = True,
        stack: bool = True,
        executor: str = "serial",
        shards: Optional[int] = None,
    ) -> None:
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        if executor not in ("serial", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; use 'serial' or 'process'"
            )
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.num_pulses = num_pulses
        self.vectorize = vectorize
        self.stack = stack
        self.executor = executor
        self.shards = shards

    def run(self, trials: Sequence[BatchTrial]) -> BatchResult:
        """Execute every trial and return the stacked :class:`BatchResult`."""
        trials = list(trials)
        if not trials:
            raise ValueError("need at least one trial")
        shape0 = (trials[0].config.graph.num_layers, trials[0].config.graph.width)
        for trial in trials[1:]:
            shape = (trial.config.graph.num_layers, trial.config.graph.width)
            if shape != shape0:
                raise ValueError(
                    f"trial grid shapes differ: {shape} vs {shape0}; "
                    "run mismatched geometries in separate batches"
                )
        if self.executor == "process":
            results = self._run_process(trials)
        else:
            results = self._run_serial(trials)
        return BatchResult(trials, results)

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_serial(self, trials: List[BatchTrial]) -> List[FastResult]:
        """In-process execution: stacked groups, per-trial fallback."""
        if not (self.stack and self.vectorize):
            return [
                trial.simulation(vectorize=self.vectorize).run(self.num_pulses)
                for trial in trials
            ]
        results: List[Optional[FastResult]] = [None] * len(trials)
        groups: Dict[Tuple, List[int]] = {}
        for i, trial in enumerate(trials):
            groups.setdefault(_stack_key(trial), []).append(i)
        for indices in groups.values():
            sims = [trials[i].simulation(vectorize=True) for i in indices]
            if stack_compatibility(sims) is not None:
                for i, sim in zip(indices, sims):
                    results[i] = sim.run(self.num_pulses)
                continue
            for i, result in zip(indices, TrialStack(sims).run(self.num_pulses)):
                results[i] = result
        return results  # type: ignore[return-value]

    def _run_process(self, trials: List[BatchTrial]) -> List[FastResult]:
        """Shard the trial list across worker processes, preserving order.

        Per-trial execution is deterministic given the trial spec, so the
        reassembled result list is independent of the shard count.
        """
        shards = self.shards or os.cpu_count() or 1
        shards = max(1, min(shards, len(trials)))
        if shards == 1:
            return self._run_serial(trials)
        bounds = np.linspace(0, len(trials), shards + 1).astype(int)
        chunks = [
            trials[bounds[i]: bounds[i + 1]]
            for i in range(shards)
            if bounds[i] < bounds[i + 1]
        ]
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            futures = [
                pool.submit(
                    _run_shard, chunk, self.num_pulses, self.vectorize, self.stack
                )
                for chunk in chunks
            ]
            shard_results = [future.result() for future in futures]
        return [result for shard in shard_results for result in shard]

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def seed_sweep(
        diameter: int,
        seeds: Sequence[int],
        num_pulses: int = 4,
        params=None,
        num_layers: Optional[int] = None,
        fault_plan_factory=None,
    ) -> List[BatchTrial]:
        """Standard-config trials over ``seeds`` at one diameter.

        ``fault_plan_factory`` (``config -> FaultPlan | None``) attaches a
        per-seed fault plan; the default is fault-free.
        """
        trials: List[BatchTrial] = []
        for seed in seeds:
            config = standard_config(
                diameter,
                seed=seed,
                num_layers=num_layers,
                num_pulses=num_pulses,
                params=params,
            )
            plan = fault_plan_factory(config) if fault_plan_factory else None
            trials.append(
                BatchTrial(config=config, fault_plan=plan, label=f"seed={seed}")
            )
        return trials
