"""Batched multi-trial runner for the fast simulator.

Experiment drivers used to run one ``(seed, fault_plan, params)`` cell at a
time and reduce skews with per-result helpers in a Python loop.  This
module sweeps many trials in one call instead:

* compatible trials advance through the pulse/layer recurrence *together*
  via the trial-stacked ``(S, W)`` kernel of
  :class:`~repro.core.fast_batch.TrialStack` -- one array op per layer
  step for the whole batch instead of one per trial.  Trials with
  *different* geometries, parameters, and numeric policy knobs stack too
  (padded to ``(S, W_max)`` with inert cells; see the ``fast_batch``
  module docstring): grouping is by algorithm variant and the structural
  policy switches only, so a mixed-width diameter sweep runs as one
  stack.  ``stack_mixed_geometry=False`` opts out, restoring the old
  structurally-identical grouping,
* trials the stack cannot take (``vectorize=False``, ``stack=False``, or
  a residual incompatibility) fall back to the per-trial vectorized
  kernel of :class:`~repro.core.fast.FastSimulation`, with the reason
  recorded per trial in :attr:`BatchResult.fallback_reasons` (no more
  silent slow paths), and
* the per-trial results are stacked along a leading *trial axis* --
  ``times`` of shape ``(S, K, L_max, W_max)``, NaN-padded when grids
  differ -- so skew and correction statistics for the whole sweep reduce
  in array sweeps through the entry points of :mod:`repro.analysis.skew`
  (one sweep per distinct geometry; padding cells are NaN and therefore
  invisible to every reducer).

For fault-heavy sweeps whose cells mostly replay the scalar path,
``BatchRunner(executor="process", shards=N)`` splits the trial list into
``N`` shards and runs them in worker processes via
:mod:`concurrent.futures`; every trial is deterministic given its spec, so
the assembled :class:`BatchResult` is identical for every ``shards``
setting (the test suite pins this).  Trials must be picklable for the
process executor -- use module-level functions/classes, not lambdas, for
delay classifiers and rate providers.

:class:`BatchRunner` is the backend of the ``thm11_local_skew``,
``thm13_random_faults``, ``cor15_variation``, and ``table1`` experiment
drivers; new parameter studies should build on it rather than hand-rolled
seed loops.

Example
-------
>>> from repro.experiments.batch import BatchRunner, BatchTrial
>>> from repro.experiments.common import standard_config
>>> trials = [BatchTrial(config=standard_config(8, seed=s)) for s in range(16)]
>>> batch = BatchRunner(num_pulses=4).run(trials)
>>> batch.max_local_skews().shape
(16,)
"""

from __future__ import annotations

import enum
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import KERNEL_BACKENDS
from repro.core.correction import CorrectionPolicy, PAPER_POLICY
from repro.core.fast import (
    NEIGHBOR_BACKENDS,
    FastResult,
    FastSimulation,
    RateProvider,
)
from repro.core.fast_batch import TrialStack, stack_compatibility
from repro.core.layer0 import Layer0Schedule
from repro.delays.models import DelayModel
from repro.experiments.common import ExperimentConfig, standard_config
from repro.faults.campaign import ChaosCampaign
from repro.faults.injection import FaultPlan
from repro.analysis.skew import (
    global_skew_layers,
    inter_layer_skew_layers,
    local_skew_layers,
    masked_max,
    overall_skew_layers,
)
from repro.analysis.streaming import default_reducers, fold_correction_planes

__all__ = ["BatchTrial", "BatchResult", "BatchRunner", "CONFIG_RATES"]


class _ConfigRates(enum.Enum):
    """Pickle-stable sentinel type; see :data:`CONFIG_RATES`."""

    CONFIG_RATES = "CONFIG_RATES"


#: Sentinel: "use the trial config's sampled clock rates" (``None`` means
#: rate-1 clocks everywhere, matching :class:`FastSimulation`).  An enum
#: member rather than a bare ``object()`` so the ``is CONFIG_RATES``
#: identity test survives pickling: enum members unpickle by name to the
#: module-level singleton, which is what lets :class:`BatchTrial` specs
#: round-trip into ``executor="process"`` worker processes.
CONFIG_RATES = _ConfigRates.CONFIG_RATES


@dataclass
class BatchTrial:
    """One cell of a sweep: a config plus per-trial overrides.

    Every override defaults to "inherit from ``config``" (``delay_model``,
    ``clock_rates``) or to the :class:`FastSimulation` default
    (``fault_plan``, ``layer0``, ``policy``, ``algorithm``).
    ``campaign`` attaches a :class:`~repro.faults.campaign.ChaosCampaign`
    (declared churn over the trial's base graph); campaigns are plain
    frozen-dataclass schedules, so campaign trials pickle into
    ``executor="process"`` shards like any other, and their per-trial
    churn accounting lands in :attr:`BatchResult.campaign_stats`.
    """

    config: ExperimentConfig
    fault_plan: Optional[FaultPlan] = None
    layer0: Optional[Layer0Schedule] = None
    delay_model: Optional[DelayModel] = None
    clock_rates: RateProvider = field(default=CONFIG_RATES)  # type: ignore[assignment]
    policy: CorrectionPolicy = PAPER_POLICY
    algorithm: str = "full"
    campaign: Optional[ChaosCampaign] = None
    label: str = ""

    def simulation(
        self,
        vectorize: bool = True,
        neighbor_backend: str = "auto",
        kernel_backend: str = "auto",
    ) -> FastSimulation:
        """The :class:`FastSimulation` realizing this trial."""
        rates = (
            self.config.clock_rates
            if self.clock_rates is CONFIG_RATES
            else self.clock_rates
        )
        return FastSimulation(
            self.config.graph,
            self.config.params,
            delay_model=self.delay_model or self.config.delay_model,
            clock_rates=rates,
            fault_plan=self.fault_plan,
            layer0=self.layer0,
            policy=self.policy,
            algorithm=self.algorithm,
            vectorize=vectorize,
            campaign=self.campaign,
            neighbor_backend=neighbor_backend,
            kernel_backend=kernel_backend,
        )

    @property
    def num_faults(self) -> int:
        """Number of faulty nodes injected into this trial."""
        return 0 if self.fault_plan is None else len(self.fault_plan)


def _rows_max(values: np.ndarray, empty: float = 0.0) -> np.ndarray:
    """Last-axis max ignoring NaN padding; all-NaN/empty rows -> ``empty``."""
    return masked_max(values, axis=-1, empty=empty)


#: Progress hook: called with one dict per executor event (see
#: :meth:`BatchRunner.run`).
ShardCallback = Callable[[Dict], None]


def _emit(on_shard: Optional[ShardCallback], event: Dict) -> None:
    """Deliver one progress event to the optional shard callback."""
    if on_shard is not None:
        on_shard(dict(event))


def _shard_bounds(num_trials: int, shards: int) -> List[int]:
    """Balanced shard boundaries: ``shards + 1`` offsets into the trial list.

    ``np.array_split`` semantics -- the first ``num_trials % shards``
    shards take one extra trial, so shard sizes never differ by more
    than one.  (The previous ``np.linspace(...).astype(int)`` bounds
    *truncated* instead of rounding, which for some ``(trials, shards)``
    combinations produced maximally uneven chunks -- e.g. a first shard
    carrying twice its share while another ran nearly empty.)
    """
    base, extra = divmod(num_trials, shards)
    bounds = [0]
    for i in range(shards):
        bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    return bounds


class BatchResult:
    """Stacked outcome of a multi-trial sweep.

    Attributes
    ----------
    trials:
        The :class:`BatchTrial` specs, in run order.
    times, corrections, effective_corrections:
        Arrays of shape ``(S, K, L_max, W_max)`` -- the per-trial
        :class:`~repro.core.fast.FastResult` matrices stacked along the
        trial axis.  When trial grids differ, narrower/shallower trials
        are NaN-padded past their own ``(L_s, W_s)`` window; NaN is the
        simulator's "no pulse" marker, so padding is invisible to every
        masked reducer.
    faulty_masks:
        Boolean ``(S, L_max, W_max)`` (False-padded).
    results:
        The underlying per-trial :class:`FastResult` objects (for drill-in
        and for ``fault_sends``).
    stack_groups:
        Trial-index lists that advanced through one shared
        :class:`~repro.core.fast_batch.TrialStack` each (empty for trials
        that ran per-trial).
    compaction_stats:
        One dict per stack group (parallel to ``stack_groups``): the
        compaction accounting of that group's
        :class:`~repro.core.fast_batch.TrialStack` run along *both* axes
        -- padded vs executed row steps with min/max depth (depth axis),
        padded vs executed lane steps with min/max width (width axis),
        the ``axes`` list naming which compactions were live, the
        resolved ``neighbor_backend`` (``"dense"``/``"csr"``), the
        resolved ``kernel_backend`` (``"numpy"``/``"numba"``), and the
        batched-fallback accounting (``fallback_cells`` /
        ``fallback_batches``: kernel-rejected cells resolved by the
        masked replay of
        :meth:`~repro.core.fast.FastSimulation._run_fallback_batch`,
        never by per-cell Python loops) -- so "how much padding did
        compaction reclaim, and over which backends?" is on record next
        to "which trials stacked".
    fallback_reasons:
        ``{trial_index: reason}`` for every trial that did *not* run
        stacked -- the runner records why (``stack=False``,
        ``vectorize=False``, the :func:`stack_compatibility` verdict, or
        an explicit ``neighbor_backend="csr"`` request that a padded
        mixed-geometry group cannot honor stacked, in which case the
        trial runs per-trial *with* CSR) instead of silently dropping to
        the slow path.  Executor-level events land here too: when a
        process shard's worker dies (``BrokenProcessPool``) and the
        shard is re-run in-parent, every trial of that shard carries the
        retry note, appended to any stacking reason it already had --
        so a trial may be *both* in a stack group and annotated here.
    campaign_stats:
        ``{trial_index: churn_stats}`` for every trial that ran under a
        :class:`~repro.faults.campaign.ChaosCampaign` -- the compiled
        schedule's accounting (epoch count, boundary pulses, action
        count, last event pulse), parallel to ``fallback_reasons``.
        Propagated across process shards (it rides on each
        :class:`FastResult`); empty for campaign-free batches.

    Notes
    -----
    When the whole batch ran as **one** stack, the matrices above *are*
    the stack's shared block (no re-copy; ``np.shares_memory`` with every
    per-trial result) and are frozen read-only, as are the per-trial
    result windows -- so no consumer can corrupt another's view of the
    shared memory.  Multi-group and per-trial batches materialize fresh
    (writable) stacked copies as before.

    When the runner *streamed* (``store_times=False``), ``times``,
    ``corrections``, and ``effective_corrections`` are ``None`` and
    :attr:`streaming` is True: the ``(S, K, L, W)`` block was never
    allocated, and every skew/correction accessor serves from the
    per-result streamed accumulators instead -- bit-identical to the
    materialized reductions.  ``faulty_masks`` is always materialized
    (it is ``O(S, L, W)``, the streaming memory budget).
    """

    def __init__(
        self,
        trials: Sequence[BatchTrial],
        results: Sequence[FastResult],
        stack_groups: Optional[Sequence[Sequence[int]]] = None,
        fallback_reasons: Optional[Dict[int, str]] = None,
        compaction_stats: Optional[Sequence[Dict]] = None,
    ) -> None:
        self.trials = list(trials)
        self.results = list(results)
        self.graph = results[0].graph
        self.num_pulses = results[0].num_pulses
        if any(r.num_pulses != self.num_pulses for r in results):
            raise ValueError("trials of one batch must share num_pulses")
        self.stack_groups = [list(g) for g in (stack_groups or [])]
        self.compaction_stats = [dict(c) for c in (compaction_stats or [])]
        self.fallback_reasons = dict(fallback_reasons or {})
        self.campaign_stats = {
            s: dict(r.churn_stats)
            for s, r in enumerate(results)
            if getattr(r, "churn_stats", None) is not None
        }

        # Geometry (not array shape) decides whether skews must reduce per
        # group: a cycle-9 and a complete-9 trial share (K, L, 9) matrices
        # but not an edge set, so reducing both along trial 0's edges would
        # silently mis-measure.  Equal shapes still stack without padding.
        geometries = {
            (r.graph.num_layers, r.graph.base.adjacency) for r in results
        }
        self.heterogeneous = len(geometries) > 1
        self.streaming = any(r.times is None for r in results)
        if self.streaming:
            if not all(r.times is None for r in results):
                raise ValueError(
                    "cannot mix streamed (store_times=False) and "
                    "materialized results in one batch"
                )
            missing = [s for s, r in enumerate(results) if r.streamed is None]
            if missing:
                raise ValueError(
                    f"trials {missing} hold neither pulse-time matrices nor "
                    "streamed reducers; run them with reducers or "
                    "store_times=True"
                )
            num_layers = max(r.graph.num_layers for r in results)
            width = max(r.graph.width for r in results)
            self._stream_layers = num_layers
            self.times = None
            self.corrections = None
            self.effective_corrections = None
            self.faulty_masks = np.zeros(
                (len(results), num_layers, width), dtype=bool
            )
            for s, r in enumerate(results):
                depth, w = r.graph.num_layers, r.graph.width
                self.faulty_masks[s, :depth, :w] = r.faulty_mask
            return
        block = getattr(results[0], "stack_block", None)
        if (
            block is not None
            and block.times.shape[0] == len(results)
            and all(
                getattr(r, "stack_block", None) is block and r.stack_row == s
                for s, r in enumerate(results)
            )
        ):
            # Single-stack batch: the TrialStack already materialized the
            # padded (S, K, L_max, W_max) block these results window into;
            # adopt it instead of re-copying (the ROADMAP's known
            # double-materialization).  The block arrives frozen.
            self.times = block.times
            self.corrections = block.corrections
            self.effective_corrections = block.effective_corrections
            self.faulty_masks = block.faulty
        elif len({r.times.shape for r in results}) == 1:
            self.times = np.stack([r.times for r in results])
            self.corrections = np.stack([r.corrections for r in results])
            self.effective_corrections = np.stack(
                [r.effective_corrections for r in results]
            )
            self.faulty_masks = np.stack([r.faulty_mask for r in results])
        else:
            num_layers = max(r.graph.num_layers for r in results)
            width = max(r.graph.width for r in results)
            shape = (len(results), self.num_pulses, num_layers, width)
            self.times = np.full(shape, np.nan)
            self.corrections = np.full(shape, np.nan)
            self.effective_corrections = np.full(shape, np.nan)
            self.faulty_masks = np.zeros(
                (len(results), num_layers, width), dtype=bool
            )
            for s, r in enumerate(results):
                depth, w = r.graph.num_layers, r.graph.width
                self.times[s, :, :depth, :w] = r.times
                self.corrections[s, :, :depth, :w] = r.corrections
                self.effective_corrections[s, :, :depth, :w] = (
                    r.effective_corrections
                )
                self.faulty_masks[s, :depth, :w] = r.faulty_mask

    def __len__(self) -> int:
        return len(self.trials)

    # ------------------------------------------------------------------
    # Stacked skew statistics (one array sweep per distinct geometry)
    # ------------------------------------------------------------------
    def _geometry_groups(self) -> List[Tuple[object, List[int]]]:
        """Trial indices grouped by grid structure (graph, index list).

        The skew reducers gather along base-graph edges, so trials with
        different geometries reduce in separate sweeps; within a group
        one array sweep covers all its trials, as before.
        """
        groups: Dict[Tuple, List[int]] = {}
        graphs: Dict[Tuple, object] = {}
        for i, r in enumerate(self.results):
            key = (r.graph.num_layers, r.graph.base.adjacency)
            groups.setdefault(key, []).append(i)
            graphs.setdefault(key, r.graph)
        return [(graphs[key], indices) for key, indices in groups.items()]

    def _per_layer_stat(self, fn, columns: int, empty: float) -> np.ndarray:
        """Scatter a per-geometry ``(s, L-ish)`` reducer into ``(S, cols)``.

        Rows are NaN past a trial's own layer count -- those layers do not
        exist, which is distinct from ``empty`` ("layer exists but has no
        comparable pulse pair").
        """
        out = np.full((len(self), columns), np.nan)
        for graph, indices in self._geometry_groups():
            depth, width = graph.num_layers, graph.width
            sub = self.times[indices][:, :, :depth, :width]
            values = fn(sub, graph, empty)
            out[np.asarray(indices)[:, None], np.arange(values.shape[-1])] = values
        return out

    @staticmethod
    def _streamed_reducer(result: FastResult, name: str):
        """The named streaming reducer bound to ``result``, or raise."""
        streamed = result.streamed
        if streamed is None or name not in streamed:
            raise ValueError(
                f"streamed batch carries no {name!r} reducer; request it via "
                "BatchRunner (sketch_rank / potential_levels) or re-run with "
                "store_times=True"
            )
        return streamed[name]

    def _streamed_layer_stat(
        self, name: str, columns: int, empty: float
    ) -> np.ndarray:
        """Gather a streamed per-layer statistic into ``(S, cols)``.

        Same padding contract as :meth:`_per_layer_stat`: NaN past a
        trial's own layer count, ``empty`` where the layer exists but had
        nothing to fold.
        """
        out = np.full((len(self), columns), np.nan)
        for s, r in enumerate(self.results):
            values = self._streamed_reducer(r, name).trial_values(
                r.streamed_row, empty=empty
            )
            out[s, : values.shape[-1]] = values
        return out

    def local_skews(self, empty: float = 0.0) -> np.ndarray:
        """Per-trial, per-layer ``L_l``; shape ``(S, L_max)``.

        Mixed-geometry batches report NaN for layers a trial does not
        have.
        """
        if self.streaming:
            return self._streamed_layer_stat("local", self._stream_layers, empty)
        if not self.heterogeneous:
            return local_skew_layers(self.times, self.graph, empty=empty)
        return self._per_layer_stat(
            lambda sub, graph, e: local_skew_layers(sub, graph, empty=e),
            self.times.shape[-2],
            empty,
        )

    def max_local_skews(self) -> np.ndarray:
        """Per-trial ``sup_l L_l``; shape ``(S,)``."""
        return _rows_max(self.local_skews())

    def inter_layer_skews(self, empty: float = 0.0) -> np.ndarray:
        """Per-trial, per-boundary ``L_{l,l+1}``; shape ``(S, L_max - 1)``."""
        if self.streaming:
            return self._streamed_layer_stat(
                "inter_layer", max(self._stream_layers - 1, 0), empty
            )
        if not self.heterogeneous:
            return inter_layer_skew_layers(self.times, self.graph, empty=empty)
        return self._per_layer_stat(
            lambda sub, graph, e: inter_layer_skew_layers(sub, graph, empty=e),
            max(self.times.shape[-2] - 1, 0),
            empty,
        )

    def max_inter_layer_skews(self) -> np.ndarray:
        """Per-trial ``sup_l L_{l,l+1}``; shape ``(S,)``."""
        return _rows_max(self.inter_layer_skews())

    def overall_skews(self) -> np.ndarray:
        """Per-trial ``L = sup_l max(L_l, L_{l,l+1})``; shape ``(S,)``."""
        if self.streaming:
            # Composed from the two streamed folds; max is exact in FP, so
            # this matches overall_skew_layers on the materialized block
            # bitwise.  -inf keeps depth-1 trials (no boundaries at all)
            # on their local max alone, mirroring the zero-column
            # short-circuit of inter_layer_skew_layers.
            local_max = _rows_max(self.local_skews())
            inter = self.inter_layer_skews()
            if inter.shape[-1] == 0:
                return local_max
            return np.maximum(local_max, _rows_max(inter, empty=-np.inf))
        if not self.heterogeneous:
            return overall_skew_layers(self.times, self.graph)
        out = np.empty(len(self))
        for graph, indices in self._geometry_groups():
            depth, width = graph.num_layers, graph.width
            sub = self.times[indices][:, :, :depth, :width]
            out[indices] = overall_skew_layers(sub, graph)
        return out

    def global_skews(self) -> np.ndarray:
        """Per-trial global skew; shape ``(S,)``.

        Geometry-agnostic: padded cells are NaN and the per-layer spread
        masks them, so the one-sweep reduction covers mixed grids too.
        """
        if self.streaming:
            return _rows_max(
                self._streamed_layer_stat("global", self._stream_layers, np.nan)
            )
        return _rows_max(global_skew_layers(self.times, empty=np.nan))

    def potentials(self, s: int, empty: float = np.nan) -> np.ndarray:
        """Per-trial, per-layer potential ``Psi_s``; shape ``(S, L_max)``.

        Streamed batches serve the fold of a ``PotentialStream(s)``
        reducer (request it via ``BatchRunner(potential_levels=...)``);
        materialized batches reduce :func:`potential_layers` per trial
        with that trial's own ``kappa``.
        """
        if self.streaming:
            return self._streamed_layer_stat(
                f"potential_s{int(s)}", self._stream_layers, empty
            )
        from repro.analysis.potentials import potential_layers

        out = np.full((len(self), self.times.shape[-2]), np.nan)
        for graph, indices in self._geometry_groups():
            depth, width = graph.num_layers, graph.width
            for i in indices:
                coefficient = 4.0 * s * self.results[i].params.kappa
                out[i, :depth] = potential_layers(
                    self.times[i, :, :depth, :width],
                    graph,
                    coefficient,
                    empty=empty,
                )
        return out

    def sketches(self) -> List:
        """The distinct :class:`IncrementalSketch` reducers, in trial order.

        One entry per underlying stream (a stacked group shares one
        sketch; per-trial runs carry one each).  Raises when the batch
        was not run with ``sketch_rank``.
        """
        seen: List = []
        for r in self.results:
            sketch = self._streamed_reducer(r, "sketch")
            if not any(sketch is other for other in seen):
                seen.append(sketch)
        return seen

    # ------------------------------------------------------------------
    # Correction statistics
    # ------------------------------------------------------------------
    def correction_stats(self) -> Dict[str, np.ndarray]:
        """Per-trial correction summary: max/mean ``|C|`` and count.

        Reduces over the finite entries of the ``corrections`` matrices
        (layer 0 and via-``H_max`` iterations are NaN).  Both paths fold
        plane by plane in pulse-major order over each trial's *own*
        ``(L_s, W_s)`` window -- :func:`fold_correction_planes` on the
        materialized per-trial matrices, the ``CorrectionStatsStream``
        accumulators otherwise -- so streamed and materialized runs agree
        bitwise (folding the padded ``W_max`` block instead would change
        the pairwise-sum association of the mean).
        """
        if self.streaming:
            rows = [
                self._streamed_reducer(r, "corrections").trial_stats(
                    r.streamed_row
                )
                for r in self.results
            ]
            return {
                "max_abs": np.array([row["max_abs"] for row in rows]),
                "mean_abs": np.array([row["mean_abs"] for row in rows]),
                "num_corrections": np.array(
                    [row["num_corrections"] for row in rows], dtype=np.int64
                ),
            }
        if not self.results:
            return fold_correction_planes(self.corrections)
        folds = [
            fold_correction_planes(r.corrections[None]) for r in self.results
        ]
        return {
            key: np.concatenate([fold[key] for fold in folds])
            for key in ("max_abs", "mean_abs", "num_corrections")
        }

    def num_faults(self) -> np.ndarray:
        """Per-trial injected-fault counts; shape ``(S,)``."""
        return np.array([t.num_faults for t in self.trials], dtype=np.int64)


def _stack_key(trial: BatchTrial, mixed_geometry: bool = True) -> Tuple:
    """Hashable grouping key for trials that can share a :class:`TrialStack`.

    Groups by the requirements of
    :func:`repro.core.fast_batch.stack_compatibility`: algorithm (both
    ``"full"`` and ``"simplified"`` stack, but not together) and the
    structural policy switches.  Geometry, parameters, and ``jump_slack``
    ride along through the padded kernel -- a thm11-style mixed-width
    sweep is one group.  With ``mixed_geometry=False`` (the
    :class:`BatchRunner` opt-out) the key reverts to the strict PR-2
    grouping: identical parameters, policy, layer count, and base-graph
    adjacency (the tuple the graph caches at construction).
    """
    if mixed_geometry:
        return (
            trial.algorithm,
            trial.policy.discretize,
            trial.policy.stick_to_median,
        )
    graph = trial.config.graph
    return (
        trial.algorithm,
        trial.config.params,
        trial.policy,
        graph.num_layers,
        graph.base.adjacency,
    )


def _stack_is_uniform(sims: Sequence[FastSimulation]) -> bool:
    """Whether a stack group would run the uniform (non-padded) kernel.

    Mirrors the :class:`TrialStack` uniformity test -- one shared
    adjacency, one depth, no campaigns -- which is exactly the set of
    groups the stacked CSR kernel can take (its segment-reduce structure
    is per-graph).
    """
    adjacency0 = sims[0].graph.base.adjacency
    num_layers = sims[0].graph.num_layers
    return all(
        sim.campaign is None
        and sim.graph.num_layers == num_layers
        and sim.graph.base.adjacency == adjacency0
        for sim in sims
    )


def _run_shard(
    trials: List[BatchTrial],
    num_pulses: int,
    vectorize: bool,
    stack: bool,
    stack_mixed_geometry: bool,
    compact_depth: bool,
    compact_width: bool,
    neighbor_backend: str,
    kernel_backend: str,
    store_times: bool,
    sketch_rank: Optional[int],
    potential_levels: Tuple[int, ...],
) -> Tuple[List[FastResult], List[List[int]], List[Dict], Dict[int, str]]:
    """Process-executor worker: run one contiguous shard serially.

    Module-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it under every start method (fork, spawn, forkserver).
    Returns the shard's results plus its shard-local stack-group indices,
    compaction stats, and fallback reasons (re-offset by the parent).
    Streamed shards ship their accumulators back through the results'
    ``streamed`` attribute (``FastResult.__getstate__`` keeps it).
    """
    runner = BatchRunner(
        num_pulses=num_pulses,
        vectorize=vectorize,
        stack=stack,
        stack_mixed_geometry=stack_mixed_geometry,
        compact_depth=compact_depth,
        compact_width=compact_width,
        neighbor_backend=neighbor_backend,
        kernel_backend=kernel_backend,
        store_times=store_times,
        sketch_rank=sketch_rank,
        potential_levels=potential_levels,
    )
    return runner._run_serial(trials)


class BatchRunner:
    """Run many ``(seed, fault_plan, params)`` trials and stack the results.

    Trials may differ in geometry, parameters, faults, and campaigns;
    compatible ones advance through shared :class:`TrialStack` kernels
    (padding narrower/shallower trials with inert cells) and the rest
    fall back per-trial, recording why in
    :attr:`BatchResult.fallback_reasons`.  Results are bit-identical
    across every execution strategy.

    Example
    -------
    >>> from repro.experiments.batch import BatchRunner, BatchTrial
    >>> from repro.experiments.common import standard_config
    >>> trials = [BatchTrial(config=standard_config(4, seed=s)) for s in (0, 1)]
    >>> batch = BatchRunner(num_pulses=2).run(trials)
    >>> batch.max_local_skews().shape
    (2,)

    Parameters
    ----------
    num_pulses:
        Pulses simulated per trial.
    vectorize:
        Forwarded to every :class:`FastSimulation`; ``False`` forces the
        scalar reference path everywhere (used by the equivalence tests
        and the throughput benchmark) and disables trial stacking.
    stack:
        Run compatible trials through the trial-stacked ``(S, W)`` kernel
        (:class:`~repro.core.fast_batch.TrialStack`); the default.
        ``False`` keeps the per-trial loop of the vectorized kernel.
    stack_mixed_geometry:
        Let one stack take trials with *different* grids/parameters via
        the padded ``(S, W_max)`` kernel (the default -- a mixed-width
        diameter sweep runs as a single stack).  ``False`` opts out,
        grouping only structurally identical trials (the pre-padding
        behavior; with depth compaction on, the padded stack no longer
        loses to this grouping on depth-skewed batches).
    compact_depth:
        Drop finished trials out of the stacked layer loop
        (:class:`TrialStack` ``compact_depth``; the default) so
        mixed-depth groups pay for the layers each trial actually runs.
        Auto-degenerates to a no-op on uniform-depth fault-free groups;
        ``False`` opts out (every row rides the full padded loop).
        Results are bit-identical either way; per-group accounting lands
        in :attr:`BatchResult.compaction_stats`.
    compact_width:
        Drop unused width lanes out of the stacked layer loop
        (:class:`TrialStack` ``compact_width``; the default) so
        mixed-width groups pay for the columns still in use -- width
        padding of narrow trials, and lanes whose campaign vertex is
        absent through the end of the horizon.  Bit-identical either
        way; the lane accounting rides the same per-group
        ``compaction_stats`` dicts.
    neighbor_backend:
        Neighbor representation for the layer-step kernels: ``"auto"``
        (default; per stack group, CSR when the density heuristic says
        padding dominates), ``"dense"``, or ``"csr"``.  An explicit
        ``"csr"`` on a padded mixed-geometry group runs those trials
        per-trial with CSR instead (recorded in ``fallback_reasons``) --
        the stacked CSR kernel needs one shared adjacency.
    kernel_backend:
        Array-op implementation behind the layer-step kernels:
        ``"auto"`` (default; numba when the optional extra is installed,
        NumPy otherwise), ``"numpy"``, or ``"numba"`` (raises a clear
        error when numba is absent).  Backends are bitwise identical --
        purely a speed knob; the resolved name is recorded per stack
        group in ``compaction_stats["kernel_backend"]``.  See
        :mod:`repro.core.backend`.
    executor:
        ``"serial"`` (default) or ``"process"``.  The process executor
        shards the trial list across worker processes -- worthwhile for
        fault-heavy sweeps dominated by the scalar fallback.  Trials must
        be picklable.
    shards:
        Number of process shards; defaults to ``os.cpu_count()`` capped at
        the trial count.  Ignored by the serial executor.
    store_times:
        ``True`` (default) materializes the stacked ``(S, K, L, W)``
        pulse-time block as before.  ``False`` streams instead: skew and
        correction statistics fold online, one ``(S, W)`` layer plane at
        a time, and the result never allocates the block -- memory drops
        from ``O(S * K * L * W)`` to ``O(S * L * W)``.  The streamed
        statistics are bit-identical to the materialized reducers.
    sketch_rank:
        Optional rank for an :class:`IncrementalSketch` reducer riding
        the stream (``BatchResult.sketches()``); implies streaming
        reducers even when ``store_times=True``.
    potential_levels:
        Potential levels ``s`` to fold online as ``PotentialStream``
        reducers (served by ``BatchResult.potentials(s)`` on streamed
        batches).
    """

    def __init__(
        self,
        num_pulses: int = 4,
        vectorize: bool = True,
        stack: bool = True,
        stack_mixed_geometry: bool = True,
        compact_depth: bool = True,
        compact_width: bool = True,
        neighbor_backend: str = "auto",
        kernel_backend: str = "auto",
        executor: str = "serial",
        shards: Optional[int] = None,
        store_times: bool = True,
        sketch_rank: Optional[int] = None,
        potential_levels: Sequence[int] = (),
    ) -> None:
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        if executor not in ("serial", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; use 'serial' or 'process'"
            )
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if neighbor_backend not in NEIGHBOR_BACKENDS:
            raise ValueError(
                f"unknown neighbor_backend {neighbor_backend!r}; "
                f"use one of {NEIGHBOR_BACKENDS}"
            )
        if kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel_backend {kernel_backend!r}; "
                f"use one of {KERNEL_BACKENDS}"
            )
        self.num_pulses = num_pulses
        self.vectorize = vectorize
        self.stack = stack
        self.stack_mixed_geometry = stack_mixed_geometry
        self.compact_depth = compact_depth
        self.compact_width = compact_width
        self.neighbor_backend = neighbor_backend
        self.kernel_backend = kernel_backend
        self.executor = executor
        self.shards = shards
        self.store_times = store_times
        self.sketch_rank = sketch_rank
        self.potential_levels = tuple(potential_levels)

    def _reducers(self):
        """A fresh reducer list per run call, or None when nothing streams.

        Fresh each call because reducers bind to one stream layout; a
        stacked group and a fallback trial cannot share accumulators.
        """
        if (
            self.store_times
            and self.sketch_rank is None
            and not self.potential_levels
        ):
            return None
        return default_reducers(
            sketch_rank=self.sketch_rank,
            potential_levels=self.potential_levels,
        )

    def run(
        self,
        trials: Sequence[BatchTrial],
        on_shard: Optional[ShardCallback] = None,
    ) -> BatchResult:
        """Execute every trial and return the stacked :class:`BatchResult`.

        Mixed grid shapes are welcome: the result matrices NaN-pad past
        each trial's own window (see :class:`BatchResult`).

        ``on_shard`` is an optional progress hook (used by the
        :mod:`repro.service` job runner to stream per-shard progress):
        it receives one dict per executor event -- a ``plan`` event
        naming the shard count and sizes, then one ``shard`` event per
        shard with ``status`` ``"done"``, ``"lost"`` (its worker died;
        see :meth:`_run_process`), or ``"retried"`` (the in-parent
        re-run of a lost shard completed).  The serial executor emits
        the same shape with a single shard.
        """
        trials = list(trials)
        if not trials:
            raise ValueError("need at least one trial")
        if self.executor == "process":
            results, groups, compaction, reasons = self._run_process(
                trials, on_shard
            )
        else:
            results, groups, compaction, reasons = self._run_single(
                trials, on_shard
            )
        # Stamp each distinct streamed accumulator with the batch index
        # of its first trial so StreamedStats.merge orders shards by
        # batch position rather than argument order.
        seen_streams = set()
        for i, result in enumerate(results):
            streamed = getattr(result, "streamed", None)
            if streamed is not None and id(streamed) not in seen_streams:
                seen_streams.add(id(streamed))
                streamed.trial_offset = i
        return BatchResult(
            trials,
            results,
            stack_groups=groups,
            fallback_reasons=reasons,
            compaction_stats=compaction,
        )

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_serial(
        self, trials: List[BatchTrial]
    ) -> Tuple[List[FastResult], List[List[int]], List[Dict], Dict[int, str]]:
        """In-process execution: stacked groups, per-trial fallback.

        Returns ``(results, stack_groups, compaction_stats,
        fallback_reasons)`` -- every trial either belongs to exactly one
        stack group (whose compaction accounting is recorded) or carries
        a fallback reason, so "why didn't this stack?" is always on
        record.
        """
        if not (self.stack and self.vectorize):
            reason = (
                "stacking disabled (stack=False)"
                if self.stack is False
                else "vectorize=False forces the per-trial scalar path"
            )
            results = [
                trial.simulation(
                    vectorize=self.vectorize,
                    neighbor_backend=self.neighbor_backend,
                    kernel_backend=self.kernel_backend,
                ).run(
                    self.num_pulses,
                    reducers=self._reducers(),
                    store_times=self.store_times,
                )
                for trial in trials
            ]
            return results, [], [], {i: reason for i in range(len(trials))}
        results: List[Optional[FastResult]] = [None] * len(trials)
        stack_groups: List[List[int]] = []
        compaction: List[Dict] = []
        reasons: Dict[int, str] = {}
        groups: Dict[Tuple, List[int]] = {}
        for i, trial in enumerate(trials):
            key = _stack_key(trial, mixed_geometry=self.stack_mixed_geometry)
            groups.setdefault(key, []).append(i)
        for indices in groups.values():
            sims = [
                trials[i].simulation(
                    vectorize=True,
                    neighbor_backend=self.neighbor_backend,
                    kernel_backend=self.kernel_backend,
                )
                for i in indices
            ]
            reason = stack_compatibility(sims)
            if reason is None and self.neighbor_backend == "csr" and not (
                _stack_is_uniform(sims)
            ):
                # The stacked CSR kernel reduces over one shared segment
                # structure; a padded mixed-geometry (or campaign) group
                # has none.  Honor the explicit request per-trial rather
                # than silently running the dense padded kernel.
                reason = (
                    "neighbor_backend='csr' needs a uniform-adjacency "
                    "static stack; ran per-trial CSR instead"
                )
            if reason is not None:
                for i, sim in zip(indices, sims):
                    results[i] = sim.run(
                        self.num_pulses,
                        reducers=self._reducers(),
                        store_times=self.store_times,
                    )
                    reasons[i] = reason
                continue
            stack_groups.append(list(indices))
            stack = TrialStack(
                sims,
                compact_depth=self.compact_depth,
                compact_width=self.compact_width,
                neighbor_backend=self.neighbor_backend,
                kernel_backend=self.kernel_backend,
            )
            stacked = stack.run(
                self.num_pulses,
                reducers=self._reducers(),
                store_times=self.store_times,
            )
            for i, result in zip(indices, stacked):
                results[i] = result
            compaction.append(dict(stack.compaction_stats))
        return results, stack_groups, compaction, reasons  # type: ignore[return-value]

    def _run_single(
        self,
        trials: List[BatchTrial],
        on_shard: Optional[ShardCallback] = None,
    ) -> Tuple[List[FastResult], List[List[int]], List[Dict], Dict[int, str]]:
        """Serial execution wrapped in the one-shard progress protocol."""
        _emit(on_shard, {"event": "plan", "shards": 1, "sizes": [len(trials)]})
        out = self._run_serial(trials)
        _emit(
            on_shard,
            {
                "event": "shard",
                "shard": 0,
                "offset": 0,
                "trials": len(trials),
                "status": "done",
            },
        )
        return out

    def _shard_args(self) -> Tuple:
        """The :func:`_run_shard` knob tuple after the trial chunk."""
        return (
            self.num_pulses,
            self.vectorize,
            self.stack,
            self.stack_mixed_geometry,
            self.compact_depth,
            self.compact_width,
            self.neighbor_backend,
            self.kernel_backend,
            self.store_times,
            self.sketch_rank,
            self.potential_levels,
        )

    def _run_process(
        self,
        trials: List[BatchTrial],
        on_shard: Optional[ShardCallback] = None,
    ) -> Tuple[List[FastResult], List[List[int]], List[Dict], Dict[int, str]]:
        """Shard the trial list across worker processes, preserving order.

        Per-trial execution is deterministic given the trial spec, so the
        reassembled result list is independent of the shard count.  Stack
        groups, compaction stats, and fallback reasons come back
        shard-local and are re-offset to batch indices here.

        Failure isolation: a worker killed mid-shard (OOM, signal,
        ``os._exit``) used to raise ``BrokenProcessPool`` out of the bare
        ``future.result()`` loop and discard every *completed* shard
        with it.  Now each future is collected individually as it
        completes; shards whose future broke are re-run serially
        in-parent after the pool exits (deterministic trials make the
        re-run bitwise identical), and the event is recorded in
        :attr:`BatchResult.fallback_reasons` for every trial of the lost
        shard.  Exceptions *raised by a trial itself* still propagate
        unchanged -- only executor-level worker death is retried.
        """
        shards = self.shards or os.cpu_count() or 1
        shards = max(1, min(shards, len(trials)))
        if shards == 1:
            return self._run_single(trials, on_shard)
        bounds = _shard_bounds(len(trials), shards)
        chunks = [
            (bounds[i], trials[bounds[i]: bounds[i + 1]])
            for i in range(shards)
        ]
        _emit(
            on_shard,
            {
                "event": "plan",
                "shards": len(chunks),
                "sizes": [len(chunk) for _, chunk in chunks],
            },
        )
        shard_outputs: List[Optional[Tuple]] = [None] * len(chunks)
        lost: Dict[int, str] = {}
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            futures = {
                pool.submit(_run_shard, chunk, *self._shard_args()): j
                for j, (_, chunk) in enumerate(chunks)
            }
            for future in as_completed(futures):
                j = futures[future]
                offset, chunk = chunks[j]
                event = {
                    "event": "shard",
                    "shard": j,
                    "offset": offset,
                    "trials": len(chunk),
                }
                try:
                    shard_outputs[j] = future.result()
                except BrokenProcessPool as exc:
                    # One dead worker breaks the whole pool, so every
                    # still-pending shard lands here too; each is
                    # re-run below.  Completed shards keep their
                    # results -- nothing is discarded.
                    lost[j] = f"{type(exc).__name__}: {exc}" if str(exc) else (
                        type(exc).__name__
                    )
                    _emit(on_shard, {**event, "status": "lost"})
                else:
                    _emit(on_shard, {**event, "status": "done"})
        for j in sorted(lost):
            offset, chunk = chunks[j]
            shard_outputs[j] = _run_shard(chunk, *self._shard_args())
            _emit(
                on_shard,
                {
                    "event": "shard",
                    "shard": j,
                    "offset": offset,
                    "trials": len(chunk),
                    "status": "retried",
                },
            )
        results: List[FastResult] = []
        stack_groups: List[List[int]] = []
        compaction: List[Dict] = []
        reasons: Dict[int, str] = {}
        for j, ((offset, chunk), (
            shard_results, shard_groups, shard_compaction, shard_reasons
        )) in enumerate(zip(chunks, shard_outputs)):
            results.extend(shard_results)
            stack_groups.extend(
                [offset + i for i in group] for group in shard_groups
            )
            compaction.extend(shard_compaction)
            reasons.update(
                {offset + i: why for i, why in shard_reasons.items()}
            )
            if j in lost:
                note = (
                    "process shard re-run in-parent after a worker death "
                    f"({lost[j]})"
                )
                for i in range(len(chunk)):
                    prior = reasons.get(offset + i)
                    reasons[offset + i] = (
                        f"{prior}; {note}" if prior else note
                    )
        return results, stack_groups, compaction, reasons

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def seed_sweep(
        diameter: int,
        seeds: Sequence[int],
        num_pulses: int = 4,
        params=None,
        num_layers: Optional[int] = None,
        fault_plan_factory=None,
    ) -> List[BatchTrial]:
        """Standard-config trials over ``seeds`` at one diameter.

        ``fault_plan_factory`` (``config -> FaultPlan | None``) attaches a
        per-seed fault plan; the default is fault-free.
        """
        trials: List[BatchTrial] = []
        for seed in seeds:
            config = standard_config(
                diameter,
                seed=seed,
                num_layers=num_layers,
                num_pulses=num_pulses,
                params=params,
            )
            plan = fault_plan_factory(config) if fault_plan_factory else None
            trials.append(
                BatchTrial(config=config, fault_plan=plan, label=f"seed={seed}")
            )
        return trials
