"""AB1/AB2 -- ablations of the paper's design choices.

AB1 (*discretization*): the correction rule minimizes over the discrete
grid ``4*s*kappa`` [KO09] rather than using the continuous midpoint.  The
paper credits the discretization with making the delicate
catch-up/wait alternation sound; the ablation compares both rules under
noise.

AB2 (*stick to the median*): corrections outside ``[0, vartheta*kappa]``
exist solely to pin the pulse near the median of the three reception
times, which is what contains a faulty predecessor.  Disabling the rule
(classic clamping) and injecting one late Byzantine predecessor shows the
containment disappearing: the victim column inherits the fault's full
offset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.correction import CorrectionPolicy
from repro.faults.injection import FaultPlan
from repro.faults.model import AdversarialLateFault
from repro.experiments.batch import BatchRunner, BatchTrial
from repro.experiments.common import standard_config

__all__ = ["AblationResult", "run_discretization_ablation", "run_median_ablation"]


@dataclass
class AblationResult:
    """Skews measured with the design choice on versus off."""

    name: str
    diameter: int
    skew_with: float
    skew_without: float
    context: str

    @property
    def degradation(self) -> float:
        """Skew ratio off/on (>1 means the design choice helps)."""
        if self.skew_with == 0:
            return float("inf") if self.skew_without > 0 else 1.0
        return self.skew_without / self.skew_with

    def table(self) -> str:
        """ASCII rendering."""
        return format_table(
            ["quantity", "value"],
            [
                ("ablation", self.name),
                ("D", self.diameter),
                ("context", self.context),
                ("skew with design choice", self.skew_with),
                ("skew without", self.skew_without),
                ("degradation factor", self.degradation),
            ],
            title=f"Ablation: {self.name}",
        )


def run_discretization_ablation(
    diameter: int = 16, num_pulses: int = 4, seed: int = 0
) -> AblationResult:
    """AB1: discrete ``4*s*kappa`` grid versus continuous midpoint rule.

    Example
    -------
    >>> from repro.experiments.ablations import run_discretization_ablation
    >>> result = run_discretization_ablation(diameter=4, num_pulses=2)
    >>> result.skew_with > 0 and result.skew_without > 0
    True
    """
    config = standard_config(diameter, seed=seed, num_pulses=num_pulses)
    batch = BatchRunner(num_pulses=num_pulses).run(
        [
            BatchTrial(
                config=config,
                policy=CorrectionPolicy(discretize=True),
                label="discretized",
            ),
            BatchTrial(
                config=config,
                policy=CorrectionPolicy(discretize=False),
                label="continuous",
            ),
        ]
    )
    skew_with, skew_without = batch.max_local_skews()
    return AblationResult(
        name="discretization (4sk grid)",
        diameter=diameter,
        skew_with=float(skew_with),
        skew_without=float(skew_without),
        context="random delays + drift, fault-free",
    )


def run_median_ablation(
    diameter: int = 16,
    num_pulses: int = 4,
    seed: int = 0,
    lag_kappas: float = 50.0,
) -> AblationResult:
    """AB2: stick-to-the-median versus naive clamping, one late fault.

    Example
    -------
    >>> from repro.experiments.ablations import run_median_ablation
    >>> result = run_median_ablation(diameter=8, num_pulses=2)
    >>> result.degradation > 3.0
    True
    """
    config = standard_config(diameter, seed=seed, num_pulses=num_pulses)
    fault_node = (config.graph.width // 2, max(1, config.graph.num_layers // 2))
    plan = FaultPlan.from_nodes({fault_node: AdversarialLateFault(lag_kappas)})
    # Algorithm 1 semantics: the node waits for the late message, so the
    # correction rule alone must contain it (Algorithm 3's missing-message
    # fallback would otherwise mask the ablation for late own-copies).
    # Simplified trials run through the vectorized (and, per policy group,
    # trial-stacked) Algorithm 1 kernel; only the fault-adjacent column
    # replays the exact scalar path.
    batch = BatchRunner(num_pulses=num_pulses).run(
        [
            BatchTrial(
                config=config,
                fault_plan=plan,
                policy=CorrectionPolicy(stick_to_median=True),
                algorithm="simplified",
                label="stick-to-median",
            ),
            BatchTrial(
                config=config,
                fault_plan=plan,
                policy=CorrectionPolicy(stick_to_median=False),
                algorithm="simplified",
                label="naive-clamp",
            ),
        ]
    )
    skew_with, skew_without = batch.max_local_skews()
    return AblationResult(
        name="stick-to-the-median",
        diameter=diameter,
        skew_with=float(skew_with),
        skew_without=float(skew_without),
        context=f"one predecessor late by {lag_kappas:.0f} kappa (Alg. 1)",
    )
