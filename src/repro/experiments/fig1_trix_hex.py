"""F1 -- Figure 1 reproduction: why naive TRIX and HEX fall short.

Left panel: under the adversarial delay split (one flank of the grid at
maximum delay ``d``, the other at minimum ``d - u``), naive TRIX's
second-copy rule lets skew pile up by ``Theta(u)`` per layer -- local skew
``Theta(u * D)`` at depth ``D``.  Gradient TRIX run on the *same* delays
absorbs the gradient.

Right panel: in HEX, a single crashed node on layer ``l`` forces its
successors to fall back on same-layer links, adding an additive ``~d`` to
the local skew from layer ``l + 1`` on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import format_table
from repro.analysis.skew import local_skew_per_layer
from repro.baselines.hex import HexSimulation
from repro.baselines.trix import NaiveTrixSimulation
from repro.core.fast import FastSimulation
from repro.delays.models import AdversarialSplitDelays, StaticDelayModel
from repro.experiments.common import standard_config
from repro.params import Parameters

__all__ = ["Fig1Result", "run_fig1"]


@dataclass
class Fig1Result:
    """Per-layer skew series for both panels."""

    diameter: int
    params: Parameters
    trix_skew_by_layer: List[float]
    gradient_skew_by_layer: List[float]
    hex_skew_before_crash: float
    hex_skew_after_crash: float
    crash_layer: int

    @property
    def trix_final_skew(self) -> float:
        """Naive TRIX skew on the deepest layer."""
        return self.trix_skew_by_layer[-1]

    @property
    def hex_crash_penalty(self) -> float:
        """Additive skew cost of the single crash in HEX."""
        return self.hex_skew_after_crash - self.hex_skew_before_crash

    def table(self) -> str:
        """ASCII rendering of both panels."""
        step = max(1, len(self.trix_skew_by_layer) // 8)
        rows = [
            (
                layer,
                self.trix_skew_by_layer[layer],
                self.gradient_skew_by_layer[layer],
                self.params.u * layer,
            )
            for layer in range(0, len(self.trix_skew_by_layer), step)
        ]
        left = format_table(
            ["layer", "naive TRIX skew", "gradient TRIX skew", "u*layer"],
            rows,
            title=(
                f"Figure 1 left (D={self.diameter}): adversarial delay split"
            ),
        )
        right = format_table(
            ["quantity", "value"],
            [
                ("HEX local skew, no crash", self.hex_skew_before_crash),
                ("HEX local skew, one crash", self.hex_skew_after_crash),
                ("crash penalty", self.hex_crash_penalty),
                ("d (for comparison)", self.params.d),
            ],
            title="Figure 1 right: HEX crash cost",
        )
        return left + "\n\n" + right


def run_fig1(
    diameter: int = 32, num_pulses: int = 3, seed: int = 0
) -> Fig1Result:
    """Reproduce both Figure 1 phenomena.

    Left panel: naive TRIX forwarding piles up skew layer by layer while
    Gradient TRIX stays flat.  Right panel: HEX pays about ``d`` extra
    skew around a single crashed node.

    Example
    -------
    >>> from repro.experiments.fig1_trix_hex import run_fig1
    >>> result = run_fig1(diameter=8, num_pulses=2)
    >>> result.hex_crash_penalty > 0
    True
    """
    config = standard_config(diameter, seed=seed, num_pulses=num_pulses)
    params = config.params

    def slow_edge(edge) -> bool:
        (v1, _), (v2, _) = edge
        return v2 >= v1  # rightward/straight edges slow, leftward fast

    adversarial = AdversarialSplitDelays(params.d, params.u, slow_edge)
    trix = NaiveTrixSimulation(
        config.graph, params, delay_model=adversarial
    ).run(num_pulses)
    gradient = FastSimulation(
        config.graph, params, delay_model=adversarial
    ).run(num_pulses)

    width = config.graph.width
    layers = config.graph.num_layers
    crash_layer = max(1, layers // 2)
    hex_delays = StaticDelayModel(params.d, params.u, seed=seed + 17)
    hex_ok = HexSimulation(
        width, layers, params, delay_model=hex_delays
    ).run(num_pulses)
    hex_crash = HexSimulation(
        width,
        layers,
        params,
        delay_model=hex_delays,
        crashed={(width // 2, crash_layer)},
    ).run(num_pulses)

    return Fig1Result(
        diameter=diameter,
        params=params,
        trix_skew_by_layer=[float(x) for x in local_skew_per_layer(trix)],
        gradient_skew_by_layer=[
            float(x) for x in local_skew_per_layer(gradient)
        ],
        hex_skew_before_crash=hex_ok.max_local_skew(),
        hex_skew_after_crash=hex_crash.max_local_skew(),
        crash_layer=crash_layer,
    )
