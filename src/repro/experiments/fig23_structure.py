"""F2/F3 -- Figures 2-3 reproduction: base graph and layer structure.

Figure 2 shows the base graph ``H`` (a line with replicated endpoints);
Figure 3 shows the resulting layer connectivity, with the claim "most nodes
have in- and out-degree 3, some 4".  This driver builds both structures and
tabulates the degree distributions, verifying the claim quantitatively.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import format_table
from repro.topology.base_graph import replicated_line
from repro.topology.layered import LayeredGraph

__all__ = ["StructureResult", "run_structure"]


@dataclass
class StructureResult:
    """Degree statistics of ``H`` and ``G``."""

    length: int
    base_degrees: Dict[int, int]
    in_degrees: Dict[int, int]
    out_degrees: Dict[int, int]
    diameter: int
    min_base_degree: int

    @property
    def fraction_in_degree_3(self) -> float:
        """Fraction of interior-layer nodes with in-degree exactly 3."""
        total = sum(self.in_degrees.values())
        return self.in_degrees.get(3, 0) / total if total else 0.0

    def table(self) -> str:
        """ASCII rendering of both degree histograms."""
        base_rows = [(deg, count) for deg, count in sorted(self.base_degrees.items())]
        layered_rows = [
            (deg, self.in_degrees.get(deg, 0), self.out_degrees.get(deg, 0))
            for deg in sorted(set(self.in_degrees) | set(self.out_degrees))
        ]
        return (
            format_table(
                ["degree", "base nodes"],
                base_rows,
                title=(
                    f"Figure 2: replicated line (length={self.length}), "
                    f"D={self.diameter}, min degree={self.min_base_degree}"
                ),
            )
            + "\n\n"
            + format_table(
                ["degree", "in-degree count", "out-degree count"],
                layered_rows,
                title="Figure 3: layered graph degrees (interior layers)",
            )
        )


def run_structure(length: int = 16, num_layers: int = 8) -> StructureResult:
    """Build Figure 2's ``H`` and Figure 3's ``G`` and count degrees.

    Example
    -------
    >>> from repro.experiments.fig23_structure import run_structure
    >>> result = run_structure(length=8, num_layers=4)
    >>> result.min_base_degree
    2
    """
    base = replicated_line(length)
    graph = LayeredGraph(base, num_layers)
    base_degrees = Counter(base.degree(v) for v in base.nodes())
    in_degrees: Counter = Counter()
    out_degrees: Counter = Counter()
    for layer in range(1, num_layers):
        for v in base.nodes():
            in_degrees[graph.in_degree((v, layer))] += 1
    for layer in range(0, num_layers - 1):
        for v in base.nodes():
            out_degrees[graph.out_degree((v, layer))] += 1
    return StructureResult(
        length=length,
        base_degrees=dict(base_degrees),
        in_degrees=dict(in_degrees),
        out_degrees=dict(out_degrees),
        diameter=base.diameter,
        min_base_degree=base.min_degree(),
    )
