"""TH1 -- Theorem 1.1: fault-free local skew is at most ``4k(2 + log2 D)``.

Sweep the grid diameter, run fault-free with random static delays and
drifting clocks (multiple seeds), and compare the measured ``sup_l L_l``
against the bound.  The shape checks: measured skew stays under the bound
at every ``D``, and grows sub-linearly (log-like) with ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.analysis.stats import Fit, fit_log2, fit_power
from repro.experiments.batch import BatchRunner
from repro.experiments.common import standard_config

__all__ = ["Thm11Row", "Thm11Result", "run_thm11"]


@dataclass(frozen=True)
class Thm11Row:
    """Measured vs bound at one diameter."""

    diameter: int
    local_skew: float
    inter_layer_skew: float
    bound: float

    @property
    def margin(self) -> float:
        """Bound divided by measurement (>1 means the bound holds)."""
        if self.local_skew == 0:
            return float("inf")
        return self.bound / self.local_skew


@dataclass
class Thm11Result:
    """Sweep rows plus fitted growth models."""

    rows: List[Thm11Row]
    kappa: float
    log_fit: Optional[Fit] = field(default=None)
    power_fit: Optional[Fit] = field(default=None)

    @property
    def all_within_bound(self) -> bool:
        """Whether every diameter respected the Theorem 1.1 bound."""
        return all(r.local_skew <= r.bound for r in self.rows)

    def table(self) -> str:
        """ASCII rendering of the sweep."""
        body = [
            (r.diameter, r.local_skew, r.inter_layer_skew, r.bound, r.margin)
            for r in self.rows
        ]
        footer = ""
        if self.power_fit is not None:
            footer = (
                f"\npower fit: skew ~ D^{self.power_fit.slope:.2f}"
                f" (R^2={self.power_fit.r_squared:.3f});"
                f" log2 fit slope {self.log_fit.slope:.4g}"
                f" = {self.log_fit.slope / self.kappa:.2f} kappa per"
                " doubling of D"
            )
        return (
            format_table(
                ["D", "L_l (measured)", "L_l,l+1", "4k(2+log2 D)", "margin"],
                body,
                title="Theorem 1.1: fault-free local skew vs bound",
            )
            + footer
        )


def run_thm11(
    diameters: Sequence[int] = (4, 8, 16, 32, 64),
    seeds: Sequence[int] = (0, 1, 2),
    num_pulses: int = 4,
    executor: str = "serial",
    shards: Optional[int] = None,
    stack_mixed_geometry: bool = True,
    compact_depth: bool = True,
    compact_width: bool = True,
    neighbor_backend: str = "auto",
    kernel_backend: str = "auto",
    store_times: bool = False,
) -> Thm11Result:
    """Measure the fault-free local skew sweep.

    The *whole* sweep -- every diameter x every seed -- runs as one
    :class:`BatchRunner` batch: the widths differ per diameter, so the
    trials advance together through the padded heterogeneous
    ``(S, W_max)`` kernel (one stack instead of one width-``len(seeds)``
    stack per diameter; ``stack_mixed_geometry=False`` restores the
    per-geometry grouping).  The sweep's depths differ per diameter too
    (square grids), so depth compaction drops each diameter's trials out
    of the layer loop as they finish instead of padding everyone to the
    deepest grid (``compact_depth=False`` opts out).  The per-diameter
    maxima come out of the stacked skew statistics, sliced per diameter.
    ``executor``/``shards`` are forwarded to :class:`BatchRunner`
    (``executor="process"`` shards the batch across worker processes).
    The driver only needs the folded skew maxima, so it defaults to the
    streaming path (``store_times=False``): the ``(S, K, L, W)``
    pulse-time block is never materialized and the statistics are
    bit-identical; pass ``store_times=True`` to keep raw pulse times for
    drill-in.

    Example
    -------
    >>> from repro.experiments.thm11_local_skew import run_thm11
    >>> result = run_thm11(diameters=(4, 8), seeds=(0,), num_pulses=2)
    >>> result.all_within_bound
    True
    >>> len(result.rows)
    2
    """
    rows: List[Thm11Row] = []
    kappa = standard_config(4).params.kappa
    runner = BatchRunner(
        num_pulses=num_pulses,
        executor=executor,
        shards=shards,
        stack_mixed_geometry=stack_mixed_geometry,
        compact_depth=compact_depth,
        compact_width=compact_width,
        neighbor_backend=neighbor_backend,
        kernel_backend=kernel_backend,
        store_times=store_times,
    )
    trials = []
    for diameter in diameters:
        trials.extend(
            BatchRunner.seed_sweep(diameter, seeds, num_pulses=num_pulses)
        )
    batch = runner.run(trials)
    local = batch.max_local_skews()
    inter = batch.max_inter_layer_skews()
    for i, diameter in enumerate(diameters):
        cell = slice(i * len(seeds), (i + 1) * len(seeds))
        bound = standard_config(diameter).params.local_skew_bound(diameter)
        rows.append(
            Thm11Row(
                diameter,
                float(local[cell].max()),
                float(inter[cell].max()),
                bound,
            )
        )

    result = Thm11Result(rows=rows, kappa=kappa)
    xs = [r.diameter for r in rows]
    ys = [max(r.local_skew, 1e-12) for r in rows]
    if len(xs) >= 2:
        result.power_fit = fit_power(xs, ys)
        result.log_fit = fit_log2(xs, ys)
    return result
