"""Shared experiment scaffolding: configurations and factory helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.clocks.drift import uniform_random_rates
from repro.core.fast import FastSimulation
from repro.core.layer0 import Layer0Schedule
from repro.delays.models import DelayModel, StaticDelayModel
from repro.faults.injection import FaultPlan
from repro.params import Parameters
from repro.topology.base_graph import replicated_line
from repro.topology.layered import LayeredGraph, NodeId

__all__ = ["ExperimentConfig", "standard_config"]

#: Salts separating the config-derived RNG streams.  Both streams hang off
#: ``SeedSequence([seed, salt])`` (like :meth:`ExperimentConfig.rng`), so
#: configs with adjacent seeds never share a delay or clock stream -- the
#: old ``seed``/``seed + 1`` derivation made seed ``s``'s clock stream
#: collide with seed ``s + 1``'s delay stream.
_DELAY_SALT = 101
_CLOCK_SALT = 202


@dataclass
class ExperimentConfig:
    """A fully specified simulation setup for one experimental cell.

    The default geometry follows the paper: the base graph is the
    replicated line of Figure 2 sized to diameter ``D`` and the grid has
    on the order of ``D`` layers (a square chip).
    """

    diameter: int
    params: Parameters
    num_layers: int
    seed: int = 0
    num_pulses: int = 4

    graph: LayeredGraph = field(init=False)
    delay_model: DelayModel = field(init=False)
    clock_rates: Dict[NodeId, float] = field(init=False)

    def __post_init__(self) -> None:
        base = replicated_line(self.diameter + 1)
        if base.diameter != self.diameter:
            raise AssertionError(
                f"replicated_line sizing is off: got D={base.diameter}, "
                f"wanted {self.diameter}"
            )
        self.graph = LayeredGraph(base, self.num_layers)
        delay_seed = int(
            np.random.SeedSequence([self.seed, _DELAY_SALT]).generate_state(1)[0]
        )
        self.delay_model = StaticDelayModel(
            self.params.d, self.params.u, seed=delay_seed
        )
        clocks = uniform_random_rates(
            self.graph.nodes(),
            self.params.vartheta,
            rng_or_seed=np.random.default_rng(
                np.random.SeedSequence([self.seed, _CLOCK_SALT])
            ),
        )
        self.clock_rates = {node: clock.rate for node, clock in clocks.items()}

    @property
    def num_grid_nodes(self) -> int:
        """Total node count ``n`` of the simulated grid."""
        return self.graph.num_nodes

    def simulation(
        self,
        fault_plan: Optional[FaultPlan] = None,
        layer0: Optional[Layer0Schedule] = None,
        **kwargs,
    ) -> FastSimulation:
        """A :class:`FastSimulation` over this configuration."""
        return FastSimulation(
            self.graph,
            self.params,
            delay_model=self.delay_model,
            clock_rates=self.clock_rates,
            fault_plan=fault_plan,
            layer0=layer0,
            **kwargs,
        )

    def rng(self, salt: int = 0) -> np.random.Generator:
        """Deterministic generator derived from the config seed."""
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, salt])
        )


def standard_config(
    diameter: int,
    seed: int = 0,
    num_layers: Optional[int] = None,
    num_pulses: int = 4,
    params: Optional[Parameters] = None,
) -> ExperimentConfig:
    """The default experimental cell: VLSI-flavored parameters, square-ish
    grid (``num_layers = diameter`` unless overridden)."""
    if params is None:
        params = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
    if num_layers is None:
        num_layers = max(diameter, 2)
    return ExperimentConfig(
        diameter=diameter,
        params=params,
        num_layers=num_layers,
        seed=seed,
        num_pulses=num_pulses,
    )
