"""Experiment drivers: one module per table, figure, and theorem.

Each module exposes a ``run_*`` function returning a result object with a
``rows()``/``table()`` rendering, shared by the benchmark harness
(``benchmarks/``) and by ``EXPERIMENTS.md``.  All drivers are deterministic
given their seeds.

Index (see DESIGN.md for the full mapping):

========  =====================================================
T1        Table 1 -- method comparison and growth exponents
F1        Figure 1 -- TRIX ``Theta(u*D)`` pile-up; HEX crash cost
F2/F3     Figures 2-3 -- base-graph / layered-graph structure
F5        Figure 5 -- oscillation without the jump condition
TH1       Theorem 1.1 -- fault-free local skew ``<= 4k(2+log D)``
TH2       Theorem 1.2 -- worst-case stacked faults (``5^f`` growth)
TH3       Theorem 1.3 -- random sparse faults stay ``O(k log D)``
TH4       Theorem 1.4 -- static faults: overall ``L`` bounded
C15       Corollary 1.5 -- sustained delay/clock/fault variation
TH6       Theorem 1.6 -- self-stabilization within ``O(sqrt n)``
LA1       Lemma A.1 -- layer-0 chain skew ``<= kappa/2``
P1        Lemma 4.22 / Thm 4.26 -- potential decay and recovery
AB1/AB2   ablations -- discretization, stick-to-median
========  =====================================================
"""

from repro.experiments.batch import BatchResult, BatchRunner, BatchTrial
from repro.experiments.common import ExperimentConfig, standard_config

__all__ = [
    "BatchResult",
    "BatchRunner",
    "BatchTrial",
    "ExperimentConfig",
    "standard_config",
]
