"""TH4 -- Theorem 1.4: with static fault timing, the *overall* local skew
``L`` (including the inter-layer terms) stays ``O(k log D)``.

Static faults -- crashes and delay faults with a static timing profile --
repeat the same per-successor offset every pulse, so the whole execution is
periodic with period ``Lambda`` and the inter-layer alignment of
consecutive pulses survives the faults.

The driver injects static faults only (crash / fixed offset / silent-from,
per-successor offsets) and measures ``L = sup_l max(L_l, L_{l,l+1})``; it
also verifies the periodicity claim directly (consecutive-pulse gaps equal
``Lambda`` exactly once the schedule settles).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.analysis.report import format_table
from repro.analysis.skew import max_inter_layer_skew, max_local_skew, overall_skew
from repro.faults.injection import FaultPlan
from repro.faults.model import (
    CrashFault,
    FixedOffsetFault,
    PerSuccessorOffsetFault,
)
from repro.experiments.common import standard_config

__all__ = ["Thm14Result", "run_thm14"]


@dataclass
class Thm14Result:
    """Measured skews under static faults."""

    diameter: int
    num_faults: int
    intra_layer_skew: float
    inter_layer_skew: float
    overall: float
    envelope: float
    max_period_error: float

    @property
    def within_envelope(self) -> bool:
        """Whether ``L`` stayed within the envelope."""
        return self.overall <= self.envelope

    def table(self) -> str:
        """ASCII rendering."""
        return format_table(
            ["quantity", "value"],
            [
                ("D", self.diameter),
                ("static faults injected", self.num_faults),
                ("sup_l L_l", self.intra_layer_skew),
                ("sup_l L_l,l+1", self.inter_layer_skew),
                ("overall L", self.overall),
                ("envelope", self.envelope),
                ("max |gap - Lambda| (periodicity)", self.max_period_error),
            ],
            title="Theorem 1.4: static faults, overall local skew",
        )


def run_thm14(
    diameter: int = 16,
    num_pulses: int = 5,
    seed: int = 0,
    envelope_factor: float = 1.0,
) -> Thm14Result:
    """Inject a spread of static faults and measure ``L``.

    Static faults (Theorem 1.4's regime) keep the pulse schedule exactly
    periodic; the driver verifies periodicity alongside the skew
    envelope.  ``envelope_factor`` scales the theory envelope for
    sensitivity probes.

    Example
    -------
    >>> from repro.experiments.thm14_static_faults import run_thm14
    >>> result = run_thm14(diameter=12, num_pulses=2)
    >>> result.within_envelope and result.max_period_error < 1e-9
    True
    """
    config = standard_config(diameter, seed=seed, num_pulses=num_pulses)
    graph = config.graph
    params = config.params
    kappa = params.kappa
    width = graph.width
    layers = graph.num_layers

    behaviors = {
        (width // 4, max(1, layers // 4)): CrashFault(),
        (width // 2, max(2, layers // 2)): FixedOffsetFault(30.0 * kappa),
        (3 * width // 4, max(3, 3 * layers // 4)): FixedOffsetFault(
            -30.0 * kappa
        ),
    }
    edge_victim = (min(width - 1, width // 2 + 4), max(1, layers // 3))
    successors = graph.successors(edge_victim)
    if successors:
        behaviors[edge_victim] = PerSuccessorOffsetFault(
            {successors[0]: 10.0 * kappa, successors[-1]: None}
        )
    plan = FaultPlan.from_nodes(behaviors)
    if not plan.is_one_local(graph):
        raise AssertionError("static fault placement violates 1-locality")

    result = config.simulation(fault_plan=plan).run(num_pulses)

    # Periodicity check: steady-state consecutive-pulse gaps equal Lambda.
    gaps = np.diff(result.times, axis=0)
    finite = gaps[np.isfinite(gaps)]
    max_period_error = (
        float(np.max(np.abs(finite - params.Lambda))) if finite.size else 0.0
    )

    return Thm14Result(
        diameter=diameter,
        num_faults=len(plan),
        intra_layer_skew=max_local_skew(result),
        inter_layer_skew=max_inter_layer_skew(result),
        overall=overall_skew(result),
        envelope=envelope_factor * params.local_skew_bound(diameter),
        max_period_error=max_period_error,
    )
