"""Command-line experiment runner: ``python -m repro.experiments [ids...]``.

Regenerates the paper's artifacts outside of pytest.  Without arguments it
runs everything; with arguments it runs the named experiment ids (T1, F1,
F23, F5, TH1, TH2, TH3, TH4, C15, TH6, LA1, P1, AB1, AB2).

Service mode (see ``docs/service.md``):

* ``--serve [--host H --port P ...]`` boots the simulation service
  (delegates to ``python -m repro.service``).
* ``--submit SPEC --url URL [--pulses N]`` submits a trial grid to a
  running service and prints the returned statistics.  ``SPEC`` is a
  known grid id (``TH1``, ``TH3``, ``C15``, ``T1``) or an inline JSON
  grid spec such as ``'{"kind": "thm11", "diameters": [4, 8]}'``.
"""

from __future__ import annotations

import json
import sys
import time

from repro.experiments.ablations import (
    run_discretization_ablation,
    run_median_ablation,
)
from repro.experiments.cor15_variation import run_cor15
from repro.experiments.fig1_trix_hex import run_fig1
from repro.experiments.fig23_structure import run_structure
from repro.experiments.fig5_jump import run_fig5
from repro.experiments.lemA1_layer0 import run_lemA1
from repro.experiments.potential_decay import run_potential_decay
from repro.experiments.table1 import run_table1
from repro.experiments.thm11_local_skew import run_thm11
from repro.experiments.thm12_worstcase_faults import run_thm12
from repro.experiments.thm13_random_faults import run_thm13
from repro.experiments.thm14_static_faults import run_thm14
from repro.experiments.thm16_selfstab import run_thm16

#: Experiment id -> zero-argument driver at bench scale.
RUNNERS = {
    "T1": lambda: run_table1(diameters=(8, 16, 32), seeds=(0, 1), num_pulses=3),
    "F1": lambda: run_fig1(diameter=32, num_pulses=2),
    "F23": lambda: run_structure(length=32, num_layers=16),
    "F5": lambda: run_fig5(diameter=24),
    "TH1": lambda: run_thm11(
        diameters=(4, 8, 16, 32, 64), seeds=(0, 1, 2), num_pulses=3
    ),
    "TH2": lambda: run_thm12(diameter=16, fault_counts=(0, 1, 2, 3)),
    "TH3": lambda: run_thm13(diameter=16, num_trials=15, num_pulses=3),
    "TH4": lambda: run_thm14(diameter=16, num_pulses=5),
    "C15": lambda: run_cor15(diameter=16, num_pulses=6),
    "TH6": lambda: run_thm16(diameter=8),
    "LA1": lambda: run_lemA1(chain_lengths=(8, 16, 32, 64), num_pulses=5),
    "P1": lambda: run_potential_decay(diameter=16, amplitude_kappas=6.0),
    "AB1": lambda: run_discretization_ablation(diameter=16, num_pulses=4),
    "AB2": lambda: run_median_ablation(diameter=16, num_pulses=4),
}


#: Grid specs for ``--submit`` by experiment id, at bench scale --
#: the same grids the corresponding drivers batch.
SERVICE_GRIDS = {
    "TH1": {"kind": "thm11", "diameters": [4, 8, 16], "seeds": [0, 1]},
    "TH3": {"kind": "thm13", "diameter": 16, "num_trials": 10},
    "C15": {"kind": "cor15", "diameter": 16, "seed": 0},
    "T1": {"kind": "table1", "diameters": [8, 16], "seeds": [0, 1]},
}


def _submit(args: list[str]) -> int:
    """Handle ``--submit SPEC --url URL [--pulses N]``."""
    from repro.service.client import ServiceClient

    def option(name: str, default: str | None = None) -> str | None:
        if name not in args:
            return default
        return args[args.index(name) + 1]

    spec = option("--submit")
    url = option("--url", "http://127.0.0.1:8631")
    num_pulses = int(option("--pulses", "4"))
    if spec in SERVICE_GRIDS:
        grid = dict(SERVICE_GRIDS[spec])
    else:
        grid = json.loads(spec)
    client = ServiceClient(url)
    accepted = client.submit(grid, num_pulses=num_pulses)
    job_id = accepted["id"]
    print(f"submitted {job_id} (key={accepted['key']})")
    job = client.wait(job_id)
    if job["status"] != "done":
        print(f"job failed: {job['error']}", file=sys.stderr)
        return 1
    result = client.result(job_id)
    hit = "hit" if job["cache_hit"] else "miss"
    print(f"done (cache {hit}); max local skews per trial:")
    print(json.dumps(result["max_local_skews"]))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments; returns a process exit code."""
    args = sys.argv[1:] if argv is None else argv
    if any(a in ("-h", "--help") for a in args):
        print(__doc__)
        print("available ids:", " ".join(RUNNERS))
        return 0
    if "--serve" in args:
        from repro.service.__main__ import main as serve_main

        return serve_main([a for a in args if a != "--serve"])
    if "--submit" in args:
        return _submit(args)
    ids = [a.upper() for a in args] or list(RUNNERS)
    unknown = [i for i in ids if i not in RUNNERS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        print("available ids:", " ".join(RUNNERS), file=sys.stderr)
        return 2
    for exp_id in ids:
        started = time.perf_counter()
        result = RUNNERS[exp_id]()
        elapsed = time.perf_counter() - started
        print(f"\n[{exp_id}] ({elapsed:.1f}s)")
        print(result.table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
