"""F5 -- Figure 5 reproduction: oscillation without the jump condition.

The jump condition JC dampens corrections that leave the ``[0, vt*k]``
range: a node jumping toward its earliest/latest neighbor stops ``kappa``
short of it.  Without the dampening, adjacent nodes overshoot each other
("overswing"), flipping the sign of their offset every layer and letting
measurement error accumulate -- Figure 5's amplifying oscillation.

The driver feeds a zigzag layer 0 (adjacent nodes maximally and oppositely
offset) into two runs differing only in ``CorrectionPolicy.jump_slack``
(``+1`` = the paper's JC; ``-1`` = SC/FC-compliant full overshoot) and
tracks the oscillation amplitude (max adjacent offset) per layer.
Adversarial parity-keyed delays keep pumping energy into the oscillation,
as the worst case of the paper's Figure 5 requires.

Both runs use Algorithm 1 semantics, which the fast simulator executes
through the vectorized simplified layer-step kernel (every message is
awaited, so the fault-free sweep is a pure array op).  ``jump_slack`` is
a *numeric* policy knob, so the with-JC and without-JC runs advance
together through one :class:`~repro.core.fast_batch.TrialStack` (the
slack broadcasts as a per-trial column); ``vectorize=False`` forces the
per-trial scalar replay, which produces bit-identical amplitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import format_table
from repro.analysis.skew import local_skew_per_layer
from repro.core.correction import CorrectionPolicy
from repro.core.fast import FastSimulation
from repro.core.fast_batch import TrialStack
from repro.core.layer0 import AlternatingLayer0
from repro.delays.models import AdversarialSplitDelays
from repro.experiments.common import standard_config
from repro.params import Parameters
from repro.topology.base_graph import cycle_graph
from repro.topology.layered import LayeredGraph

__all__ = ["Fig5Result", "run_fig5"]


@dataclass
class Fig5Result:
    """Per-layer oscillation amplitude, with and without JC."""

    diameter: int
    params: Parameters
    amplitude_with_jc: List[float]
    amplitude_without_jc: List[float]

    @property
    def final_with_jc(self) -> float:
        """Amplitude on the deepest layer with the jump condition."""
        return self.amplitude_with_jc[-1]

    @property
    def final_without_jc(self) -> float:
        """Amplitude on the deepest layer without the jump condition."""
        return self.amplitude_without_jc[-1]

    def table(self) -> str:
        """ASCII rendering of both amplitude series."""
        step = max(1, len(self.amplitude_with_jc) // 10)
        rows = [
            (
                layer,
                self.amplitude_without_jc[layer],
                self.amplitude_with_jc[layer],
            )
            for layer in range(0, len(self.amplitude_with_jc), step)
        ]
        return format_table(
            ["layer", "amplitude without JC", "amplitude with JC"],
            rows,
            title=(
                f"Figure 5 (D={self.diameter}): oscillation amplitude, "
                f"kappa={self.params.kappa:.4g}"
            ),
        )


def run_fig5(
    diameter: int = 24,
    num_pulses: int = 2,
    amplitude_kappas: float = 4.0,
    vectorize: bool = True,
) -> Fig5Result:
    """Compare oscillation amplitudes with and without jump dampening.

    The setup mirrors the figure: a *cycle* base graph (no boundary to
    anchor the oscillation -- the paper calls the cycle the theoretically
    cleanest base graph) and Algorithm 1 semantics (every message awaited,
    so the correction rule, not the missing-message fallback, decides each
    pulse).

    Example
    -------
    >>> from repro.experiments.fig5_jump import run_fig5
    >>> result = run_fig5(diameter=8)
    >>> result.final_with_jc < result.final_without_jc
    True
    """
    if diameter % 2 != 0:
        raise ValueError("diameter must be even for an alternating cycle")
    params = standard_config(4, num_pulses=num_pulses).params
    base = cycle_graph(2 * diameter)  # cycle diameter = half its size
    graph = LayeredGraph(base, max(2 * diameter, 8))
    layer0 = AlternatingLayer0(
        params.Lambda, amplitude_kappas * params.kappa
    )

    def slow_edge(edge) -> bool:
        # Parity-keyed delays pump the oscillation: messages from even
        # (late) nodes travel slowly, so low-branch jumps toward them land
        # even later; messages from odd (early) nodes travel fast, so
        # high-branch jumps toward them land even earlier.  Per layer the
        # amplitude flips sign and grows by ~(u + kappa) when jumps
        # overshoot (jump_slack = -1), while JC's dampening absorbs it.
        (v1, _), (_, _) = edge
        return v1 % 2 == 0

    delays = AdversarialSplitDelays(params.d, params.u, slow_edge)

    # jump_slack = +1 is the paper's JC dampening; -1 is the
    # SC/FC-compliant full overshoot Figure 5 warns about.
    sims = [
        FastSimulation(
            graph,
            params,
            delay_model=delays,
            layer0=layer0,
            policy=CorrectionPolicy(jump_slack=jump_slack),
            algorithm="simplified",
            vectorize=vectorize,
        )
        for jump_slack in (1.0, -1.0)
    ]
    if vectorize:
        results = TrialStack(sims).run(num_pulses)
    else:
        results = [sim.run(num_pulses) for sim in sims]
    with_jc, without_jc = (
        [float(x) for x in local_skew_per_layer(result)] for result in results
    )
    return Fig5Result(
        diameter=diameter,
        params=params,
        amplitude_with_jc=with_jc,
        amplitude_without_jc=without_jc,
    )
