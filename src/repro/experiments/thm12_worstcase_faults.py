"""TH2 -- Theorem 1.2: worst-case stacked faults cost ``O(5^f k log D)``.

The exponential bound binds when faults cluster: each fault can shift its
successors by up to twice the local skew its neighborhood already suffers
(Lemma 4.30), so ``f`` faults stacked down one column within a few layers
of each other compound before self-stabilization absorbs the damage.

The driver stacks ``f`` adversarially-late faults in one column on
consecutive layers and reports the measured skew against ``B_f`` from the
paper's induction (``B_0 = 4k(2 + log2 D)``, ``B_{i+1} = 5 B_i + 4k``).
Shape checks: skew grows monotonically with ``f`` and stays below ``B_f``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.report import format_table
from repro.faults.injection import FaultPlan
from repro.faults.model import AdversarialLateFault
from repro.experiments.common import standard_config

__all__ = ["Thm12Row", "Thm12Result", "run_thm12"]


@dataclass(frozen=True)
class Thm12Row:
    """Measured skew with ``num_faults`` stacked faults."""

    num_faults: int
    local_skew: float
    bound: float


@dataclass
class Thm12Result:
    """Rows of the fault sweep."""

    diameter: int
    rows: List[Thm12Row]

    @property
    def monotone(self) -> bool:
        """Whether measured skew is non-decreasing in ``f``."""
        skews = [r.local_skew for r in self.rows]
        return all(b >= a - 1e-12 for a, b in zip(skews, skews[1:]))

    @property
    def all_within_bound(self) -> bool:
        """Whether every ``f`` respected ``B_f``."""
        return all(r.local_skew <= r.bound for r in self.rows)

    def table(self) -> str:
        """ASCII rendering."""
        body = [(r.num_faults, r.local_skew, r.bound) for r in self.rows]
        return format_table(
            ["f (stacked faults)", "L_l (measured)", "B_f = O(5^f k log D)"],
            body,
            title=f"Theorem 1.2: worst-case clustered faults (D={self.diameter})",
        )


def run_thm12(
    diameter: int = 16,
    fault_counts: Sequence[int] = (0, 1, 2, 3),
    num_pulses: int = 3,
    seed: int = 0,
    lag_kappas: float = 50.0,
    layer_spacing: int = 4,
) -> Thm12Result:
    """Measure skew versus the number of stacked worst-case faults.

    Faults are adversarially late by ``lag_kappas * kappa`` -- far beyond
    the stick-to-the-median containment radius, so every fault exerts the
    maximum pull the algorithm permits.  ``layer_spacing`` leaves a few
    layers between consecutive faults so each hit lands on the skew the
    previous one left behind (back-to-back faults in one column shadow
    each other).  Note the measured growth stays far below the ``5^f``
    envelope: the exponential is a worst-case bound requiring adversarial
    coordination beyond static late-faults, exactly as the paper remarks
    before Theorem 1.3.

    Example
    -------
    >>> from repro.experiments.thm12_worstcase_faults import run_thm12
    >>> result = run_thm12(diameter=8, fault_counts=(0, 1), num_pulses=2)
    >>> result.all_within_bound and result.monotone
    True
    """
    rows: List[Thm12Row] = []
    config0 = standard_config(diameter, seed=seed)
    column = config0.graph.width // 2
    for f in fault_counts:
        config = standard_config(
            diameter,
            seed=seed,
            num_layers=max(config0.graph.num_layers, f * layer_spacing + 4),
            num_pulses=num_pulses,
        )
        plan = FaultPlan.column_stack(
            config.graph,
            num_faults=f,
            base_vertex=column,
            first_layer=1,
            layer_spacing=layer_spacing,
            behavior_factory=lambda node: AdversarialLateFault(lag_kappas),
        )
        result = config.simulation(fault_plan=plan).run(num_pulses)
        rows.append(
            Thm12Row(
                num_faults=f,
                local_skew=result.max_local_skew(),
                bound=config.params.worst_case_fault_bound(diameter, f),
            )
        )
    return Thm12Result(diameter=diameter, rows=rows)
