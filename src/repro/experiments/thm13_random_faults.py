"""TH3 -- Theorem 1.3: with random sparse faults, ``L_l`` stays ``O(k log D)``.

Nodes fail independently with ``p in o(n^{-1/2})``.  Unlike the stacked
worst case of Theorem 1.2, random faults are spread out; the simulated GCS
algorithm's self-stabilization absorbs each hit before the next lands, so
the skew stays within a constant factor of the fault-free bound with high
probability.

The driver samples many fault plans at ``p = c * n^{-0.6}`` (inside the
``o(n^{-1/2})`` regime), mixing crash, early, late, and Byzantine-random
behaviours, and reports the skew distribution against the envelope
``envelope_factor * 4k(2 + log2 D)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.report import format_table
from repro.faults.injection import FaultPlan
from repro.faults.locality import max_k_faulty_over_layer
from repro.faults.model import (
    AdversarialEarlyFault,
    AdversarialLateFault,
    ByzantineRandomFault,
    CrashFault,
)
from repro.experiments.batch import BatchRunner, BatchTrial
from repro.experiments.common import standard_config

__all__ = [
    "Thm13Trial",
    "Thm13Result",
    "run_thm13",
    "thm13_trials",
    "mixed_behavior_factory",
]


def mixed_behavior_factory(node, rng: np.random.Generator):
    """Random mix of the fault behaviours the model admits."""
    roll = rng.random()
    if roll < 0.4:
        return CrashFault()
    if roll < 0.6:
        return AdversarialLateFault(float(rng.uniform(5.0, 40.0)))
    if roll < 0.8:
        return AdversarialEarlyFault(float(rng.uniform(5.0, 40.0)))
    return ByzantineRandomFault(
        span=float(rng.uniform(0.1, 1.0)), seed=int(rng.integers(1 << 30))
    )


@dataclass(frozen=True)
class Thm13Trial:
    """One sampled fault plan and its measured skew."""

    seed: int
    num_faults: int
    local_skew: float
    max_k_faulty: int


@dataclass
class Thm13Result:
    """All trials plus the probabilistic-envelope verdict."""

    diameter: int
    probability: float
    envelope: float
    fault_free_skew: float
    trials: List[Thm13Trial]

    @property
    def max_skew(self) -> float:
        """Worst skew over all sampled plans."""
        return max(t.local_skew for t in self.trials)

    @property
    def fraction_within_envelope(self) -> float:
        """Fraction of trials whose skew stayed within the envelope."""
        inside = sum(1 for t in self.trials if t.local_skew <= self.envelope)
        return inside / len(self.trials)

    def table(self) -> str:
        """ASCII rendering (summary plus worst trials)."""
        worst = sorted(self.trials, key=lambda t: -t.local_skew)[:5]
        body = [
            (t.seed, t.num_faults, t.local_skew, t.max_k_faulty) for t in worst
        ]
        summary = (
            f"D={self.diameter}, p={self.probability:.2e}, trials="
            f"{len(self.trials)}, fault-free skew={self.fault_free_skew:.4g}, "
            f"envelope={self.envelope:.4g}, within={self.fraction_within_envelope:.0%}"
        )
        return (
            format_table(
                ["seed", "#faults", "L_l", "max k-faulty"],
                body,
                title="Theorem 1.3: random sparse faults (worst 5 trials)",
            )
            + "\n"
            + summary
        )


def thm13_trials(
    diameter: int,
    seeds: Sequence[int],
    num_pulses: int = 3,
    probability_scale: float = 1.0,
) -> tuple[List[BatchTrial], List[int]]:
    """The Theorem 1.3 trial grid: fault-free reference + sampled plans.

    Returns ``(trials, k_faulties)``: trial 0 is the fault-free
    reference, trial ``i + 1`` runs the plan sampled for ``seeds[i]``
    at ``p = probability_scale * n^{-0.6}``, and ``k_faulties[i]`` is
    the plan's max-``k``-faulty locality statistic.  This is the grid
    :func:`run_thm13` batches, factored out so other callers -- the
    :mod:`repro.service` job runner in particular -- can submit the
    same sweep.
    """
    config0 = standard_config(diameter)
    n = config0.num_grid_nodes
    probability = probability_scale * n**-0.6
    batch_trials: List[BatchTrial] = [
        BatchTrial(config=config0, label="fault-free")
    ]
    k_faulties: List[int] = []
    for seed in seeds:
        config = standard_config(diameter, seed=seed, num_pulses=num_pulses)
        rng = config.rng(salt=13)
        plan = FaultPlan.random(
            config.graph,
            probability,
            rng_or_seed=rng,
            behavior_factory=mixed_behavior_factory,
            enforce_one_local=True,
        )
        delta = max(2, int(round(n ** (1.0 / 12.0))))
        k_faulties.append(
            max(
                max_k_faulty_over_layer(
                    config.graph, plan, config.graph.num_layers - 1, delta
                ),
                0,
            )
        )
        batch_trials.append(
            BatchTrial(config=config, fault_plan=plan, label=f"seed={seed}")
        )
    return batch_trials, k_faulties


def run_thm13(
    diameter: int = 16,
    num_trials: int = 20,
    probability_scale: float = 1.0,
    num_pulses: int = 3,
    envelope_factor: float = 1.0,
    seeds: Sequence[int] | None = None,
    executor: str = "serial",
    shards: Optional[int] = None,
    stack_mixed_geometry: bool = True,
    compact_depth: bool = True,
    compact_width: bool = True,
    neighbor_backend: str = "auto",
    kernel_backend: str = "auto",
    store_times: bool = False,
) -> Thm13Result:
    """Sample random fault plans and measure the skew distribution.

    All sampled plans (plus the fault-free reference as trial 0) run as a
    single :class:`BatchRunner` batch; the per-trial skew maxima reduce in
    one sweep over the stacked pulse-time stack.  Fault-heavy cells replay
    the scalar fallback, which is exactly the regime
    ``executor="process"`` shards across cores.  The reference trial's
    pulse budget differs from the fault trials', not its geometry, so the
    whole batch is one stack group either way; ``stack_mixed_geometry``
    and ``compact_depth`` (which also retires trials whose layers a
    fault plan has silenced outright) are forwarded for parity with the
    other drivers.  The driver reduces to per-trial skew maxima, so it
    streams by default (``store_times=False``, bit-identical statistics
    without the ``(S, K, L, W)`` block); ``store_times=True`` restores
    the materialized pulse times.

    Example
    -------
    >>> from repro.experiments.thm13_random_faults import run_thm13
    >>> result = run_thm13(diameter=6, num_trials=2, num_pulses=2)
    >>> result.fraction_within_envelope
    1.0
    """
    config0 = standard_config(diameter)
    n = config0.num_grid_nodes
    probability = probability_scale * n**-0.6
    envelope = envelope_factor * config0.params.local_skew_bound(diameter)

    if seeds is None:
        seeds = range(num_trials)
    seeds = list(seeds)
    batch_trials, k_faulties = thm13_trials(
        diameter,
        seeds,
        num_pulses=num_pulses,
        probability_scale=probability_scale,
    )

    batch = BatchRunner(
        num_pulses=num_pulses,
        executor=executor,
        shards=shards,
        stack_mixed_geometry=stack_mixed_geometry,
        compact_depth=compact_depth,
        compact_width=compact_width,
        neighbor_backend=neighbor_backend,
        kernel_backend=kernel_backend,
        store_times=store_times,
    ).run(batch_trials)
    skews = batch.max_local_skews()
    fault_free_skew = float(skews[0])
    num_faults = batch.num_faults()
    trials = [
        Thm13Trial(
            seed=seed,
            num_faults=int(num_faults[i + 1]),
            local_skew=float(skews[i + 1]),
            max_k_faulty=k_faulties[i],
        )
        for i, seed in enumerate(seeds)
    ]
    return Thm13Result(
        diameter=diameter,
        probability=probability,
        envelope=envelope,
        fault_free_skew=fault_free_skew,
        trials=trials,
    )
