"""T1 -- Table 1 reproduction: skew scaling of all grid methods.

The paper's Table 1 compares methods by asymptotic local/global skew.
This driver measures both for naive TRIX [LW20], HEX [DFL+16], and
Gradient TRIX over a diameter sweep, fits growth exponents (power-law fit
``skew ~ D**e``), and checks the qualitative claims:

* naive TRIX local skew grows ~linearly with ``D`` (exponent near 1);
* Gradient TRIX local skew grows sub-linearly (log-like; small exponent)
  and respects the Theorem 1.1 bound;
* HEX pays an additive ``d`` per crash, so with one crash its local skew
  dwarfs the others in the ``d >> u`` regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.stats import Fit, fit_power
from repro.baselines.hex import HexSimulation
from repro.baselines.trix import NaiveTrixSimulation
from repro.delays.models import AdversarialSplitDelays, StaticDelayModel
from repro.experiments.batch import BatchRunner, BatchTrial
from repro.experiments.common import standard_config
from repro.params import Parameters

__all__ = ["Table1Row", "Table1Result", "run_table1", "table1_trials"]


def _rightward_or_straight(edge) -> bool:
    """Figure 1 worst-case classifier: slow the non-leftward edges.

    Module-level (not a closure) so the adversarial trials stay picklable
    for ``BatchRunner(executor="process")``.
    """
    return edge[1][0] >= edge[0][0]


@dataclass(frozen=True)
class Table1Row:
    """One measured cell: method x diameter.

    ``local_skew`` is measured under random static delays and drift;
    ``worst_case_skew`` under the adversarial delay split of Figure 1 (the
    regime the asymptotic bounds of Table 1 describe).
    """

    method: str
    diameter: int
    local_skew: float
    worst_case_skew: float
    global_skew: float
    theory_bound: float


@dataclass
class Table1Result:
    """All rows plus per-method power-law fits of local skew vs diameter."""

    rows: List[Table1Row]
    fits: Dict[str, Fit] = field(default_factory=dict)

    def local_skews(self, method: str) -> List[Tuple[int, float]]:
        """(diameter, worst-case local skew) series of one method."""
        return [
            (r.diameter, r.worst_case_skew)
            for r in self.rows
            if r.method == method
        ]

    def table(self) -> str:
        """ASCII rendering in the layout of the paper's Table 1."""
        body = [
            (
                r.method,
                r.diameter,
                r.local_skew,
                r.worst_case_skew,
                r.global_skew,
                r.theory_bound,
            )
            for r in self.rows
        ]
        fit_lines = [
            f"  {method}: worst-case local skew ~ D^{fit.slope:.2f}"
            f" (R^2={fit.r_squared:.3f})"
            for method, fit in sorted(self.fits.items())
        ]
        return (
            format_table(
                [
                    "method",
                    "D",
                    "local skew",
                    "worst-case skew",
                    "global skew",
                    "theory bound",
                ],
                body,
                title="Table 1 (measured): local/global skew by method",
            )
            + "\nGrowth exponents (power fit on worst case):\n"
            + "\n".join(fit_lines)
        )


def _adversarial_delays(p: Parameters) -> AdversarialSplitDelays:
    """The Figure 1 worst case: rightward/straight edges slow, leftward fast."""
    return AdversarialSplitDelays(p.d, p.u, _rightward_or_straight)


def table1_trials(
    diameters: Sequence[int],
    seeds: Sequence[int],
    num_pulses: int = 4,
    configs: Optional[Dict[int, List]] = None,
) -> Tuple[List[BatchTrial], Dict[Tuple[int, str], List[int]]]:
    """The Gradient TRIX cells of the Table 1 sweep, as one trial grid.

    Random-delay (``"normal"``) and Figure-1 adversarial-delay
    (``"worst"``) trials for every diameter, interleaved into one
    mixed-geometry batch.  Returns ``(trials, cells)`` where ``cells``
    maps ``(diameter, kind)`` to the trial indices of that cell.
    ``configs`` optionally supplies pre-built per-diameter
    :class:`ExperimentConfig` lists (the driver reuses its own for the
    baselines); by default they are built from ``seeds``.  Factored out
    of :func:`run_table1` so other callers -- the :mod:`repro.service`
    job runner in particular -- can submit the same sweep.
    """
    if configs is None:
        configs = {
            diameter: [
                standard_config(diameter, seed=seed, num_pulses=num_pulses)
                for seed in seeds
            ]
            for diameter in diameters
        }
    trials: List[BatchTrial] = []
    cells: Dict[Tuple[int, str], List[int]] = {}
    for diameter in diameters:
        for kind, factory in (
            ("normal", lambda c: BatchTrial(config=c)),
            (
                "worst",
                lambda c: BatchTrial(
                    config=c, delay_model=_adversarial_delays(c.params)
                ),
            ),
        ):
            cell = cells.setdefault((diameter, kind), [])
            for config in configs[diameter]:
                cell.append(len(trials))
                trials.append(factory(config))
    return trials, cells


def run_table1(
    diameters: Sequence[int] = (8, 16, 32, 48),
    seeds: Sequence[int] = (0, 1),
    num_pulses: int = 4,
    params: Parameters | None = None,
    hex_crash: bool = True,
    executor: str = "serial",
    shards: Optional[int] = None,
    stack_mixed_geometry: bool = True,
    compact_depth: bool = True,
    compact_width: bool = True,
    neighbor_backend: str = "auto",
    kernel_backend: str = "auto",
    store_times: bool = False,
) -> Table1Result:
    """Measure the Table 1 comparison over a diameter sweep.

    Skews are maxima over ``seeds`` (worst case over sampled delay/drift
    assignments).  ``hex_crash`` additionally reports HEX with one crashed
    node, the regime in which its additive-``d`` weakness shows.  All
    Gradient TRIX cells -- every diameter, both the random and the
    Figure 1 adversarial delay regime -- run as *one* :class:`BatchRunner`
    batch through the padded mixed-geometry stack (delay models are
    per-trial inputs, so the two regimes share the stack; depth
    compaction retires each diameter's rows as its shallower grid
    finishes).  ``executor``/``shards``/``stack_mixed_geometry``/
    ``compact_depth`` are forwarded to :class:`BatchRunner` and the
    baseline simulations stay serial.  The Gradient TRIX batch consumes
    only folded skew maxima, so it streams by default
    (``store_times=False``, bit-identical); ``store_times=True``
    materializes the pulse-time block again.

    Example
    -------
    >>> from repro.experiments.table1 import run_table1
    >>> result = run_table1(diameters=(8,), seeds=(0,), num_pulses=2)
    >>> sorted({row.method for row in result.rows})
    ['gradient-trix', 'hex', 'hex+crash', 'naive-trix']
    """
    rows: List[Table1Row] = []
    runner = BatchRunner(
        num_pulses=num_pulses,
        executor=executor,
        shards=shards,
        stack_mixed_geometry=stack_mixed_geometry,
        compact_depth=compact_depth,
        compact_width=compact_width,
        neighbor_backend=neighbor_backend,
        kernel_backend=kernel_backend,
        store_times=store_times,
    )
    all_configs = {
        diameter: [
            standard_config(diameter, seed=seed, num_pulses=num_pulses)
            for seed in seeds
        ]
        for diameter in diameters
    }
    gt_trials, gt_cells = table1_trials(
        diameters, seeds, num_pulses=num_pulses, configs=all_configs
    )
    gt_batch = runner.run(gt_trials)
    gt_max_local = gt_batch.max_local_skews()
    gt_max_global = gt_batch.global_skews()

    for diameter in diameters:
        configs = all_configs[diameter]
        normal_cell = gt_cells[(diameter, "normal")]
        worst_cell = gt_cells[(diameter, "worst")]
        gt_local = float(gt_max_local[normal_cell].max())
        gt_global = float(gt_max_global[normal_cell].max())
        gt_worst = float(gt_max_local[worst_cell].max())

        trix_local, trix_global, trix_worst = 0.0, 0.0, 0.0
        hex_local, hex_crash_local = 0.0, 0.0
        for seed, config in zip(seeds, configs):
            p = config.params
            trix = NaiveTrixSimulation(
                config.graph,
                p,
                delay_model=config.delay_model,
                clock_rates=config.clock_rates,
            ).run(num_pulses)
            trix_local = max(trix_local, trix.max_local_skew())
            trix_global = max(trix_global, trix.global_skew())

            trix_w = NaiveTrixSimulation(
                config.graph,
                p,
                delay_model=_adversarial_delays(p),
                clock_rates=config.clock_rates,
            ).run(num_pulses)
            trix_worst = max(trix_worst, trix_w.max_local_skew())

            width = config.graph.width
            hex_delays = StaticDelayModel(p.d, p.u, seed=seed + 101)
            hexsim = HexSimulation(
                width, config.graph.num_layers, p, delay_model=hex_delays
            ).run(num_pulses)
            hex_local = max(hex_local, hexsim.max_local_skew())
            if hex_crash:
                crash_layer = max(1, config.graph.num_layers // 2)
                hexcrash = HexSimulation(
                    width,
                    config.graph.num_layers,
                    p,
                    delay_model=hex_delays,
                    crashed={(width // 2, crash_layer)},
                ).run(num_pulses)
                hex_crash_local = max(hex_crash_local, hexcrash.max_local_skew())

        p = standard_config(diameter).params
        kappa = p.kappa
        rows.append(
            Table1Row(
                "gradient-trix", diameter, gt_local, gt_worst, gt_global,
                p.local_skew_bound(diameter),
            )
        )
        rows.append(
            Table1Row(
                "naive-trix", diameter, trix_local, trix_worst, trix_global,
                p.u * diameter,
            )
        )
        rows.append(
            Table1Row(
                "hex", diameter, hex_local, float("nan"), float("nan"),
                p.d + p.u**2 * diameter / p.d,
            )
        )
        if hex_crash:
            rows.append(
                Table1Row(
                    "hex+crash", diameter, hex_crash_local, float("nan"),
                    float("nan"),
                    2.0 * p.d + p.u**2 * diameter / p.d + kappa,
                )
            )

    result = Table1Result(rows=rows)
    if len(diameters) >= 2:
        for method in ("gradient-trix", "naive-trix"):
            series = result.local_skews(method)
            xs = [x for x, _ in series]
            ys = [max(y, 1e-12) for _, y in series]
            result.fits[method] = fit_power(xs, ys)
    return result
