"""Algorithm 3 as an event-driven state machine.

:class:`GradientTrixNode` runs the full pulse-forwarding algorithm on the
discrete-event engine: it timestamps receptions with its hardware clock,
replays the do-until loop via arrival handlers and a re-armed exit timer,
and broadcasts its pulse at the computed local time.  Semantics match the
fast simulator (:mod:`repro.core.fast`), which the cross-validation tests
assert to float precision.

:class:`ScriptedPulser` emits messages at predetermined times -- used for
layer 0 and for replaying fault behaviours computed elsewhere.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.clocks.hardware import HardwareClock
from repro.core.correction import CorrectionPolicy, PAPER_POLICY, compute_correction
from repro.engine.network import Network
from repro.engine.process import Message, Process
from repro.engine.scheduler import Simulator
from repro.engine.trace import Trace
from repro.params import Parameters
from repro.topology.layered import NodeId

__all__ = ["GradientTrixNode", "ScriptedPulser", "PULSE"]

#: Payload tag of pulse messages.
PULSE = "pulse"


class GradientTrixNode(Process):
    """A correct node ``(v, l)``, ``l > 0``, running Algorithm 3.

    Parameters
    ----------
    sim, network, trace:
        Engine plumbing.
    address:
        The node id ``(v, l)``.
    clock:
        Hardware clock (rates in ``[1, vartheta]``).
    params, policy:
        Timing parameters and correction-rule knobs.
    own_pred:
        Address of ``(v, l - 1)``.
    neighbor_preds:
        Addresses of the ``(w, l - 1)`` for H-neighbors ``w``.
    successors:
        Addresses on layer ``l + 1`` (may be empty on the last layer).
    max_pulses:
        Stop broadcasting after this many pulses (None = unlimited).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: Trace,
        address: NodeId,
        clock: HardwareClock,
        params: Parameters,
        own_pred: NodeId,
        neighbor_preds: Sequence[NodeId],
        successors: Sequence[NodeId],
        policy: CorrectionPolicy = PAPER_POLICY,
        max_pulses: Optional[int] = None,
    ) -> None:
        super().__init__(sim, address, clock)
        self.network = network
        self.trace = trace
        self.params = params
        self.policy = policy
        self.own_pred = own_pred
        self.neighbor_preds = list(neighbor_preds)
        self.successors = list(successors)
        self.max_pulses = max_pulses
        self.pulse_index = 0
        self._buffered: List[Message] = []
        self._reset_iteration()

    # ------------------------------------------------------------------
    # Iteration state
    # ------------------------------------------------------------------
    def _reset_iteration(self) -> None:
        self.h_own: float = math.inf
        self.h_min: float = math.inf
        self.h_max: float = math.inf
        self._received: set = set()
        self.committed = False
        self.cancel_timer("exit")
        self.cancel_timer("pulse")

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        if not isinstance(message.payload, dict) or PULSE not in message.payload:
            return
        if self.committed:
            # The loop for this iteration has ended but the pulse is not out
            # yet.  A first message from a predecessor still belongs to this
            # iteration -- "C is already determined, regardless of how late
            # the message would arrive" (Section 3) -- so latch it without
            # recomputing.  Only duplicates (next pulse / Byzantine resend)
            # carry over to the next iteration.
            if self._is_fresh(message.sender):
                self._register_reception(message.sender)
            else:
                self._buffered.append(message)
            return
        self._register_reception(message.sender)
        self._rearm_exit_timer()

    def _is_fresh(self, sender: Hashable) -> bool:
        """Whether no message from ``sender`` was registered this iteration."""
        if sender == self.own_pred:
            return math.isinf(self.h_own)
        return sender in self.neighbor_preds and sender not in self._received

    def _register_reception(self, sender: Hashable) -> None:
        now_local = self.local_now()
        if sender == self.own_pred:
            if math.isinf(self.h_own):
                self.h_own = now_local
            return
        if sender in self.neighbor_preds and sender not in self._received:
            if not self._received:
                self.h_min = now_local
            self._received.add(sender)
            if len(self._received) == len(self.neighbor_preds):
                self.h_max = now_local

    # ------------------------------------------------------------------
    # Loop exit (do-until semantics, cf. repro.core.fast)
    # ------------------------------------------------------------------
    def _exit_requirement(self, now_local: float) -> Optional[float]:
        kappa = self.params.kappa
        vartheta = self.params.vartheta
        if math.isinf(self.h_min):
            return None
        required = now_local
        if math.isinf(self.h_own):
            if math.isinf(self.h_max):
                return None
            required = max(
                required, self.h_max + kappa / 2.0 + vartheta * kappa
            )
        if math.isinf(self.h_max):
            required = max(
                required, 2.0 * self.h_own - self.h_min + 2.0 * kappa
            )
        return required

    def _rearm_exit_timer(self) -> None:
        required = self._exit_requirement(self.local_now())
        if required is None:
            self.cancel_timer("exit")
            return
        if required <= self.local_now():
            self.cancel_timer("exit")
            self._commit()
        else:
            self.set_timer_local("exit", required)

    def on_timer(self, name: Hashable) -> None:
        if name == "exit":
            self._commit()
        elif name == "pulse":
            self._broadcast()

    # ------------------------------------------------------------------
    # Commit and broadcast
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        """The do-until loop exited; pick the pulse time (Algorithm 3)."""
        if self.committed:
            return
        self.committed = True
        params = self.params
        kappa = params.kappa
        if math.isinf(self.h_own):
            # Own copy missing/late: anchor on the last neighbor reception.
            target = self.h_max + 1.5 * kappa + params.Lambda - params.d
            self.last_correction = math.nan
        else:
            outcome = compute_correction(
                self.h_own,
                self.h_min,
                self.h_max,
                kappa,
                params.vartheta,
                self.policy,
            )
            target = self.h_own + params.Lambda - params.d - outcome.correction
            self.last_correction = outcome.correction
        self.set_timer_local("pulse", max(target, self.local_now()))

    def _broadcast(self) -> None:
        self.trace.record_pulse(self.address, self.pulse_index, self.sim.now)
        if self.max_pulses is None or self.pulse_index < self.max_pulses:
            for successor in self.successors:
                self.network.send(
                    self.address,
                    successor,
                    payload={PULSE: self.pulse_index},
                    pulse=self.pulse_index,
                )
        self.pulse_index += 1
        self._reset_iteration()
        buffered, self._buffered = self._buffered, []
        for message in buffered:
            self.on_message(message)


class ScriptedPulser(Process):
    """Emits predetermined messages; models layer 0 and scripted faults.

    ``schedule`` maps each successor to a list of ``(send_time, pulse)``
    pairs; each message is sent at its absolute real send time, then
    travels for the edge delay (or ``delay_override`` when given, which
    fault replay uses to keep the two simulators bit-identical).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: Trace,
        address: NodeId,
        clock: HardwareClock,
        schedule: Dict[NodeId, List[Tuple[float, int]]],
        record: bool = True,
    ) -> None:
        super().__init__(sim, address, clock)
        self.network = network
        self.trace = trace
        self.schedule = schedule
        self.record = record

    def start(self) -> None:
        for successor, sends in self.schedule.items():
            for send_time, pulse in sends:
                self.sim.schedule_at(
                    send_time,
                    self._make_send(successor, pulse),
                )
        if self.record:
            # Record the node's own pulse times once per pulse: the earliest
            # send of that pulse (a correct layer-0 node broadcasts, so all
            # sends of a pulse share one time).
            by_pulse: Dict[int, float] = {}
            for sends in self.schedule.values():
                for send_time, pulse in sends:
                    current = by_pulse.get(pulse)
                    if current is None or send_time < current:
                        by_pulse[pulse] = send_time
            for pulse, send_time in sorted(by_pulse.items()):
                self.sim.schedule_at(
                    send_time,
                    lambda p=pulse: self.trace.record_pulse(
                        self.address, p, self.sim.now
                    ),
                )

    def _make_send(self, successor: NodeId, pulse: int):
        def action() -> None:
            self.network.send(
                self.address,
                successor,
                payload={PULSE: pulse},
                pulse=pulse,
            )

        return action
