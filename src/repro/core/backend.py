"""Pluggable array-op backends behind the layer-step kernels.

The vectorized layer step of :mod:`repro.core.fast` decomposes into a
small array-API surface -- *gather* (padded neighbor lookup),
*segment-min/max-reduce* (the CSR neighbor reduction), *where/select*
(masked fills) and *scatter* (masked result writes).  This module defines
that surface once and registers interchangeable implementations:

* :class:`NumpyOps` -- the default.  Every method is exactly the NumPy
  expression the kernels inlined before the seam existed, so the default
  backend is bit-identical to the historical kernel.
* :class:`NumbaOps` -- a Numba-JIT twin.  The two neighbor reductions
  (the hot loops: dense padded gather-reduce and the CSR
  ``reduceat``-equivalent segment loop) are fused ``@njit`` kernels that
  make a single pass over the operands instead of materializing the
  ``(..., W, max_deg)`` / ``(..., nnz)`` temporaries.  Compilation is
  lazy (first kernel call), the ``numba`` import is deferred, and the
  backend is gracefully absent when numba is not installed:
  ``kernel_backend="auto"`` falls back to NumPy, an explicit
  ``"numba"`` raises a clear error.

Bit-exactness contract: both backends evaluate the same per-element
expression ``rate * (prev + delay)`` and reduce with exact comparisons
(min/max carry no rounding), propagating NaN exactly like the masked
NumPy reductions -- so eligible cells are **bitwise identical** across
backends, which ``tests/test_differential.py`` pins on hypothesis-drawn
scenarios.

Example
-------
>>> from repro.core.backend import resolve_kernel_ops
>>> resolve_kernel_ops("numpy").name
'numpy'
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "KERNEL_BACKENDS",
    "NumpyOps",
    "NumbaOps",
    "NUMPY_OPS",
    "numba_available",
    "resolve_kernel_ops",
]

#: Valid values for the ``kernel_backend`` knob (mirrors
#: ``NEIGHBOR_BACKENDS`` for the neighbor-representation knob).
KERNEL_BACKENDS = ("auto", "numpy", "numba")


class NumpyOps:
    """NumPy implementation of the kernel array surface (the default).

    Stateless; one module-level instance (:data:`NUMPY_OPS`) is shared by
    every simulation.  Each method is the exact expression the kernels
    used before the backend seam existed, so routing through this object
    changes nothing bitwise.
    """

    name = "numpy"

    @staticmethod
    def gather(prev: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Padded neighbor gather: ``prev[..., idx]``.

        A 3-D ``idx`` carries a leading trial axis (``(S, W, max_deg)``)
        and row ``s`` indexes only into trial ``s``'s plane of ``prev``.
        """
        if idx.ndim == 3:
            flat = np.take_along_axis(
                prev, idx.reshape(idx.shape[0], -1), axis=-1
            )
            return flat.reshape(idx.shape)
        return prev[..., idx]

    @staticmethod
    def where(cond: np.ndarray, a, b) -> np.ndarray:
        """Elementwise select (``np.where``)."""
        return np.where(cond, a, b)

    @staticmethod
    def scatter(dest: np.ndarray, index, src) -> np.ndarray:
        """Masked/indexed write ``dest[index] = src``; returns ``dest``."""
        dest[index] = src
        return dest

    @staticmethod
    def masked_min(vals: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Min over the last axis with invalid lanes filled ``+inf``."""
        return np.where(valid, vals, np.inf).min(axis=-1)

    @staticmethod
    def masked_max(vals: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Max over the last axis with invalid lanes filled ``-inf``."""
        return np.where(valid, vals, -np.inf).max(axis=-1)

    @classmethod
    def neighbor_min_max(
        cls,
        prev: np.ndarray,
        nb_idx: np.ndarray,
        nb_valid: np.ndarray,
        nb_delay: np.ndarray,
        rate: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense padded neighbor reduction: ``(H_min, H_max)``.

        Gather + delay + rate product + masked min/max over the padded
        lane axis, composed from the primitives above.
        """
        nb_arrival = cls.gather(prev, nb_idx) + nb_delay
        h_nb = rate[..., None] * nb_arrival
        return cls.masked_min(h_nb, nb_valid), cls.masked_max(h_nb, nb_valid)

    @staticmethod
    def segment_min_max(
        prev: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        nb_delay: np.ndarray,
        rate: np.ndarray,
        owner: np.ndarray,
        has_neighbors: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """CSR neighbor reduction: per-vertex segment min/max.

        ``np.minimum.reduceat`` / ``np.maximum.reduceat`` at the segment
        starts; empty segments (degree-0 vertices, campaign epochs only)
        get the dense identities ``+inf`` / ``-inf`` explicitly since
        ``reduceat`` has no empty reduction.  Callers guarantee
        ``nnz > 0``.
        """
        nnz = indices.shape[0]
        nb_arrival = prev[..., indices] + nb_delay
        h_nb = rate[..., owner] * nb_arrival
        starts = np.minimum(indptr[:-1], nnz - 1)
        h_min = np.minimum.reduceat(h_nb, starts, axis=-1)
        h_max = np.maximum.reduceat(h_nb, starts, axis=-1)
        if not has_neighbors.all():
            h_min[..., ~has_neighbors] = np.inf
            h_max[..., ~has_neighbors] = -np.inf
        return h_min, h_max


#: The shared default backend instance.
NUMPY_OPS = NumpyOps()


def _compile_numba_kernels():
    """Import numba and compile the two fused reductions (lazy)."""
    from numba import njit

    @njit(cache=False)
    def dense_min_max(prev, idx, valid, delay, rate, out_min, out_max):
        num_trials, width, max_deg = idx.shape
        for s in range(num_trials):
            for v in range(width):
                r = rate[s, v]
                lo = np.inf
                hi = -np.inf
                bad = False
                for j in range(max_deg):
                    if not valid[s, v, j]:
                        continue
                    t = r * (prev[s, idx[s, v, j]] + delay[s, v, j])
                    if np.isnan(t):
                        bad = True
                        break
                    if t < lo:
                        lo = t
                    if t > hi:
                        hi = t
                if bad:
                    out_min[s, v] = np.nan
                    out_max[s, v] = np.nan
                else:
                    out_min[s, v] = lo
                    out_max[s, v] = hi

    @njit(cache=False)
    def csr_min_max(prev, indices, indptr, delay, rate, out_min, out_max):
        num_trials = prev.shape[0]
        width = indptr.shape[0] - 1
        for s in range(num_trials):
            for v in range(width):
                start = indptr[v]
                stop = indptr[v + 1]
                if stop == start:
                    out_min[s, v] = np.inf
                    out_max[s, v] = -np.inf
                    continue
                r = rate[s, v]
                lo = np.inf
                hi = -np.inf
                bad = False
                for e in range(start, stop):
                    t = r * (prev[s, indices[e]] + delay[s, e])
                    if np.isnan(t):
                        bad = True
                        break
                    if t < lo:
                        lo = t
                    if t > hi:
                        hi = t
                if bad:
                    out_min[s, v] = np.nan
                    out_max[s, v] = np.nan
                else:
                    out_min[s, v] = lo
                    out_max[s, v] = hi

    return dense_min_max, csr_min_max


class NumbaOps(NumpyOps):
    """Numba-JIT backend: fused single-pass neighbor reductions.

    Inherits the memory-bound primitives (``gather``/``where``/
    ``scatter`` are plain array movement, where NumPy is already
    optimal) and overrides the two reductions with ``@njit`` kernels
    that skip the intermediate ``(..., W, max_deg)`` / ``(..., nnz)``
    temporaries.  NaN propagation and comparison order match the masked
    NumPy reductions exactly, so results are bitwise identical.

    Compilation is deferred to the first kernel call; constructing the
    object (or resolving ``kernel_backend="numba"``) only checks that
    numba imports.
    """

    name = "numba"

    def __init__(self) -> None:
        self._kernels = None

    def _ensure(self):
        if self._kernels is None:
            self._kernels = _compile_numba_kernels()
        return self._kernels

    @staticmethod
    def _as_2d(arr: np.ndarray) -> np.ndarray:
        return arr if arr.ndim == 2 else arr[None, :]

    def neighbor_min_max(self, prev, nb_idx, nb_valid, nb_delay, rate):
        """Fused dense gather + delay + rate + masked min/max."""
        dense_min_max, _ = self._ensure()
        squeeze = prev.ndim == 1
        prev2 = self._as_2d(np.ascontiguousarray(prev, dtype=np.float64))
        rate2 = self._as_2d(np.ascontiguousarray(rate, dtype=np.float64))
        num_trials, width = prev2.shape
        max_deg = nb_idx.shape[-1]
        shape3 = (num_trials, width, max_deg)
        idx3 = np.ascontiguousarray(
            np.broadcast_to(nb_idx, shape3), dtype=np.int64
        )
        valid3 = np.ascontiguousarray(np.broadcast_to(nb_valid, shape3))
        delay3 = np.ascontiguousarray(
            np.broadcast_to(nb_delay, shape3), dtype=np.float64
        )
        out_min = np.empty((num_trials, width))
        out_max = np.empty((num_trials, width))
        dense_min_max(prev2, idx3, valid3, delay3, rate2, out_min, out_max)
        if squeeze:
            return out_min[0], out_max[0]
        return out_min, out_max

    def segment_min_max(
        self, prev, indices, indptr, nb_delay, rate, owner, has_neighbors
    ):
        """Fused CSR segment reduction (``reduceat`` equivalent)."""
        _, csr_min_max = self._ensure()
        squeeze = prev.ndim == 1
        prev2 = self._as_2d(np.ascontiguousarray(prev, dtype=np.float64))
        rate2 = self._as_2d(np.ascontiguousarray(rate, dtype=np.float64))
        num_trials = prev2.shape[0]
        nnz = indices.shape[0]
        delay2 = np.ascontiguousarray(
            np.broadcast_to(nb_delay, (num_trials, nnz)), dtype=np.float64
        )
        width = indptr.shape[0] - 1
        out_min = np.empty((num_trials, width))
        out_max = np.empty((num_trials, width))
        csr_min_max(
            prev2,
            np.ascontiguousarray(indices, dtype=np.int64),
            np.ascontiguousarray(indptr, dtype=np.int64),
            delay2,
            rate2,
            out_min,
            out_max,
        )
        if squeeze:
            return out_min[0], out_max[0]
        return out_min, out_max


_NUMBA_AVAILABLE: Optional[bool] = None
_NUMBA_OPS: Optional[NumbaOps] = None


def _probe_numba() -> bool:
    """Import ``numba``; the patch point for the probe tests.

    Raises whatever the import raises -- :func:`numba_available` decides
    which failures mean "absent" (``ImportError``) and which deserve a
    warning (anything else: a broken install, an incompatible NumPy,
    a real numba bug surfacing at import time).
    """
    import numba  # noqa: F401

    return True


def numba_available(refresh: bool = False) -> bool:
    """Whether the optional ``numba`` dependency imports (cached probe).

    Only ``ImportError`` means "not installed".  Any *other* exception
    from the import is unexpected -- the old behavior swallowed it and
    cached ``False`` for the life of the process, silently downgrading
    ``kernel_backend="auto"`` to NumPy; now it emits a
    ``RuntimeWarning`` naming the failure (once, at probe time) before
    recording the backend as unavailable.  ``refresh=True`` drops the
    cached verdict and re-probes -- the hook the backend tests use, and
    the escape hatch after fixing a transient import failure.
    """
    global _NUMBA_AVAILABLE
    if refresh:
        _NUMBA_AVAILABLE = None
    if _NUMBA_AVAILABLE is None:
        try:
            _NUMBA_AVAILABLE = bool(_probe_numba())
        except ImportError:
            _NUMBA_AVAILABLE = False
        except Exception as exc:
            warnings.warn(
                "numba probe failed with an unexpected error "
                f"({type(exc).__name__}: {exc}); treating numba as "
                "unavailable for this process -- fix the install and call "
                "numba_available(refresh=True) to re-probe",
                RuntimeWarning,
                stacklevel=2,
            )
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def resolve_kernel_ops(requested: str):
    """Resolve a ``kernel_backend`` request to a backend instance.

    ``"numpy"`` and ``"numba"`` are explicit; ``"auto"`` picks numba when
    it is installed (the JIT kernels are bitwise-identical, so the choice
    is purely a speed knob) and NumPy otherwise.  An explicit
    ``"numba"`` without the package installed raises immediately with
    the install hint instead of failing deep inside a run.
    """
    if requested not in KERNEL_BACKENDS:
        raise ValueError(
            f"kernel_backend must be one of {KERNEL_BACKENDS}, "
            f"got {requested!r}"
        )
    global _NUMBA_OPS
    if requested == "numpy":
        return NUMPY_OPS
    if requested == "numba" and not numba_available():
        raise RuntimeError(
            "kernel_backend='numba' requested but numba is not installed; "
            "install the optional extra (pip install "
            "'gradient-trix-repro[numba]') or use kernel_backend='numpy' "
            "or 'auto'"
        )
    if not numba_available():
        return NUMPY_OPS
    if _NUMBA_OPS is None:
        _NUMBA_OPS = NumbaOps()
    return _NUMBA_OPS
