"""Checkers for the slow, fast, and jump conditions (Definitions 4.3-4.5).

The analysis rests on three conditions the algorithm must implement
(Lemmas D.4-D.6 prove it does).  For a correct node ``(v, l)`` with correct
predecessors, writing ``C = C_{v,l}``, ``t = t_{v,l-1}``, ``t_max / t_min``
the extreme neighbor pulse times on layer ``l-1``:

Slow condition  ``SC(s) = SC-1(s) or SC-2(s) or SC-3``::

    SC-1(s): C / vt <= t - t_max + 4*s*k
    SC-2(s): C / vt <= t - t_min - 4*s*k
    SC-3:    C <= 0

Fast condition  ``FC(s) = FC-1(s) or FC-2(s) or FC-3`` (``s >= 1``)::

    FC-1(s): C >= t - t_max + (4*s - 2)*k + k
    FC-2(s): C >= t - t_min - (4*s - 2)*k + k
    FC-3:    C >= k

Jump condition  ``JC = JC-1 or JC-2 or JC-3``::

    JC-1: k < C / vt <= t - t_max - k
    JC-2: 0 > C >= t - t_min + k
    JC-3: 0 <= C / vt <= k

These checkers run over a :class:`~repro.core.fast.FastResult` and report
every violation; the test suite asserts there are none, which is the
empirical counterpart of Lemmas D.4-D.6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.fast import FastResult
from repro.topology.layered import NodeId

__all__ = [
    "ConditionViolation",
    "check_slow_condition",
    "check_fast_condition",
    "check_jump_condition",
    "check_all_conditions",
]

#: Absolute tolerance for floating-point comparisons in the checkers.
_TOL = 1e-9


@dataclass(frozen=True)
class ConditionViolation:
    """A condition that failed at a node/pulse, with diagnostic context."""

    condition: str
    node: NodeId
    pulse: int
    s: Optional[int]
    correction: float
    own_time: float
    min_time: float
    max_time: float

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{self.condition} violated at node={self.node} pulse={self.pulse}"
            f" s={self.s}: C={self.correction:.6g},"
            f" t_own={self.own_time:.6g},"
            f" t_min={self.min_time:.6g}, t_max={self.max_time:.6g}"
        )


def _checkable_nodes(result: FastResult, pulse: int):
    """Yield (node, C, t_own, t_min, t_max) where the conditions apply.

    The conditions are stated for correct nodes on correct layers (all
    predecessors correct); nodes whose effective correction is undefined
    (own message never arrived) are skipped.
    """
    graph = result.graph
    plan = result.fault_plan
    for layer in range(1, graph.num_layers):
        for v in graph.base.nodes():
            node = (v, layer)
            if plan.is_faulty(node):
                continue
            preds = graph.predecessors(node)
            if any(plan.is_faulty(p) for p in preds):
                continue
            correction = result.effective_corrections[pulse, layer, v]
            if math.isnan(correction):
                continue
            t_own = result.times[pulse, layer - 1, v]
            neighbor_times = [
                result.times[pulse, layer - 1, w]
                for w in graph.base.neighbors(v)
            ]
            if math.isnan(t_own) or any(math.isnan(t) for t in neighbor_times):
                continue
            yield node, float(correction), float(t_own), float(
                min(neighbor_times)
            ), float(max(neighbor_times))


def check_slow_condition(
    result: FastResult, s_max: Optional[int] = None
) -> List[ConditionViolation]:
    """All SC(s) violations for ``s in 0..s_max`` over the whole run."""
    kappa = result.params.kappa
    vartheta = result.params.vartheta
    if s_max is None:
        s_max = 2 + math.ceil(math.log2(max(result.graph.diameter, 2)))
    violations: List[ConditionViolation] = []
    for pulse in range(result.num_pulses):
        for node, c, t_own, t_min, t_max in _checkable_nodes(result, pulse):
            if c <= _TOL:  # SC-3
                continue
            for s in range(s_max + 1):
                sc1 = c / vartheta <= t_own - t_max + 4 * s * kappa + _TOL
                sc2 = c / vartheta <= t_own - t_min - 4 * s * kappa + _TOL
                if not (sc1 or sc2):
                    violations.append(
                        ConditionViolation(
                            f"SC({s})", node, pulse, s, c, t_own, t_min, t_max
                        )
                    )
    return violations


def check_fast_condition(
    result: FastResult, s_max: Optional[int] = None
) -> List[ConditionViolation]:
    """All FC(s) violations for ``s in 1..s_max`` over the whole run."""
    kappa = result.params.kappa
    if s_max is None:
        s_max = 2 + math.ceil(math.log2(max(result.graph.diameter, 2)))
    violations: List[ConditionViolation] = []
    for pulse in range(result.num_pulses):
        for node, c, t_own, t_min, t_max in _checkable_nodes(result, pulse):
            if c >= kappa - _TOL:  # FC-3
                continue
            for s in range(1, s_max + 1):
                fc1 = c >= t_own - t_max + (4 * s - 2) * kappa + kappa - _TOL
                fc2 = c >= t_own - t_min - (4 * s - 2) * kappa + kappa - _TOL
                if not (fc1 or fc2):
                    violations.append(
                        ConditionViolation(
                            f"FC({s})", node, pulse, s, c, t_own, t_min, t_max
                        )
                    )
    return violations


def check_jump_condition(result: FastResult) -> List[ConditionViolation]:
    """All JC violations over the whole run."""
    kappa = result.params.kappa
    vartheta = result.params.vartheta
    violations: List[ConditionViolation] = []
    for pulse in range(result.num_pulses):
        for node, c, t_own, t_min, t_max in _checkable_nodes(result, pulse):
            jc3 = -_TOL <= c / vartheta <= kappa + _TOL
            jc1 = (
                kappa - _TOL < c / vartheta
                and c / vartheta <= t_own - t_max - kappa + _TOL
            )
            jc2 = _TOL > c and c >= t_own - t_min + kappa - _TOL
            if not (jc1 or jc2 or jc3):
                violations.append(
                    ConditionViolation(
                        "JC", node, pulse, None, c, t_own, t_min, t_max
                    )
                )
    return violations


def check_all_conditions(
    result: FastResult, s_max: Optional[int] = None
) -> List[ConditionViolation]:
    """Concatenated SC/FC/JC violations (empty list = all conditions hold)."""
    return (
        check_slow_condition(result, s_max)
        + check_fast_condition(result, s_max)
        + check_jump_condition(result)
    )
