"""Layer-0 pulse generation (Appendix A).

Layer 0 must provide well-synchronized input pulses: local skew
``L_0 <= kappa`` suffices for the grid analysis (the chain scheme achieves
``kappa / 2``, Lemma A.1).  Three schedules are provided:

* :class:`PerfectLayer0` -- ideal source, pulse ``k`` at ``k * Lambda``
  everywhere (control runs);
* :class:`JitteredLayer0` -- per-node static jitter within a budget
  (models an imperfect but bounded source);
* :class:`ChainLayer0` -- Algorithm 2: the clock source feeds a simple
  path through layer 0; each node forwards ``Lambda - d`` local time after
  reception.  Pipelining shifts pulse indices along the chain (node at
  chain position ``i`` emits its ``k``-th chain pulse around
  ``(k + i - 1) * Lambda``), so grid pulse ``k`` of position ``i`` is chain
  pulse ``k + P - i`` (``P`` = chain length); this makes all grid-``k``
  pulses land around ``(k + P - 1) * Lambda`` with adjacent skew
  ``<= kappa/2`` per hop, exactly Lemma A.1's guarantee.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.clocks.hardware import HardwareClock
from repro.delays.models import DelayModel, UniformDelayModel
from repro.params import Parameters
from repro.topology.base_graph import BaseGraph

__all__ = [
    "Layer0Schedule",
    "PerfectLayer0",
    "JitteredLayer0",
    "AlternatingLayer0",
    "ChainLayer0",
    "stacked_pulse_times",
    "stacked_pulse_row",
]


def stacked_pulse_times(
    schedules: Sequence["Layer0Schedule"],
    bases: Sequence[BaseGraph],
    pulses: int,
) -> np.ndarray:
    """All trials' layer-0 schedules as one ``(S, pulses, W_max)`` block.

    The stacked-trial kernel's layer-0 fill: trial ``s``'s schedule over
    its base graph occupies ``out[s, :, :W_s]``; cells past a trial's
    width are NaN (inert padding -- the same marker the simulator uses
    for "never pulsed", so padded cells are masked out everywhere NaN
    is).  Schedules are grouped by concrete class and delegated to
    ``_stack_pulse_times``, which Perfect/Jittered/Alternating override
    with one whole-group array fill; the generic fallback loops
    :meth:`Layer0Schedule.pulse_times_array` per trial.
    :class:`ChainLayer0` fills are inherently per-chain (each trial has
    its own edge delays), but each chain's fill is itself vectorized
    over the pulse axis for pulse-invariant delay models -- one array op
    per chain hop instead of a per-entry Python loop, which on
    5000-node chains is the difference between milliseconds and
    seconds.  Every entry is bit-identical to the per-trial array -- the
    vectorized fills evaluate the same elementwise expressions in the
    same association.
    """
    if len(schedules) != len(bases):
        raise ValueError(
            f"{len(schedules)} schedules for {len(bases)} base graphs"
        )
    if pulses < 0:
        raise ValueError(f"pulses must be >= 0, got {pulses}")
    if not schedules:
        return np.empty((0, pulses, 0))
    width = max(base.num_nodes for base in bases)
    out = np.full((len(schedules), pulses, width), np.nan)
    groups: Dict[type, List[int]] = {}
    for s, schedule in enumerate(schedules):
        groups.setdefault(type(schedule), []).append(s)
    for cls, rows in groups.items():
        cls._stack_pulse_times(
            [schedules[s] for s in rows], [bases[s] for s in rows], pulses,
            out, rows,
        )
    return out


def stacked_pulse_row(
    schedules: Sequence["Layer0Schedule"],
    bases: Sequence[BaseGraph],
    pulse: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One grid pulse of every trial's schedule as an ``(S, W_max)`` row.

    The streaming (``store_times=False``) counterpart of
    :func:`stacked_pulse_times`: instead of materializing the whole
    ``(S, pulses, W_max)`` layer-0 block up front, the stacked kernel
    asks for one pulse's row at a time and reuses the same ``out``
    buffer, keeping layer-0 memory at O(S, W).  Entries are bit-identical
    to the corresponding ``stacked_pulse_times`` plane -- the per-class
    overrides evaluate the same expressions in the same association, and
    :class:`ChainLayer0` gathers from the same front-to-back cache --
    so streamed and materialized runs see the same floats.
    """
    if len(schedules) != len(bases):
        raise ValueError(
            f"{len(schedules)} schedules for {len(bases)} base graphs"
        )
    if pulse < 0:
        raise ValueError(f"pulse must be >= 0, got {pulse}")
    if out is None:
        width = max((base.num_nodes for base in bases), default=0)
        out = np.full((len(schedules), width), np.nan)
    else:
        if out.shape[0] != len(schedules):
            raise ValueError(
                f"row buffer has {out.shape[0]} rows for "
                f"{len(schedules)} schedules"
            )
        out[:] = np.nan
    groups: Dict[type, List[int]] = {}
    for s, schedule in enumerate(schedules):
        groups.setdefault(type(schedule), []).append(s)
    for cls, rows in groups.items():
        cls._stack_pulse_row(
            [schedules[s] for s in rows], [bases[s] for s in rows], pulse,
            out, rows,
        )
    return out


def _width_mask(bases: Sequence[BaseGraph], width: int) -> np.ndarray:
    """Boolean ``(len(bases), width)``: True on each trial's real vertices."""
    counts = np.array([base.num_nodes for base in bases], dtype=np.int64)
    return np.arange(width)[None, :] < counts[:, None]


class Layer0Schedule(ABC):
    """Pulse times of layer-0 nodes, indexed by grid pulse number ``k >= 0``."""

    @abstractmethod
    def pulse_time(self, base_vertex: int, pulse: int) -> float:
        """Real time of grid pulse ``pulse`` at ``(base_vertex, 0)``."""

    def pulse_times_array(self, base: BaseGraph, pulses: int) -> np.ndarray:
        """All pulse times as a ``(pulses, W)`` array; ``W = |V(H)|``.

        The array entry point the fast-simulator kernels consume: one
        gather per run instead of a per-node/per-pulse ``pulse_time``
        loop.  Entries are bit-identical to :meth:`pulse_time` -- the
        vectorized overrides replicate its arithmetic association
        elementwise, and this generic fallback simply loops it -- so the
        scalar and vectorized simulator paths see the same floats.
        """
        if pulses < 0:
            raise ValueError(f"pulses must be >= 0, got {pulses}")
        times = np.empty((pulses, base.num_nodes))
        for k in range(pulses):
            for v in base.nodes():
                times[k, v] = self.pulse_time(v, k)
        return times

    @classmethod
    def _stack_pulse_times(
        cls,
        schedules: Sequence["Layer0Schedule"],
        bases: Sequence[BaseGraph],
        pulses: int,
        out: np.ndarray,
        rows: Sequence[int],
    ) -> None:
        """Fill ``out[rows]`` of a :func:`stacked_pulse_times` block.

        The generic fallback gathers one trial at a time; subclasses
        whose schedule is a closed-form function of ``(pulse, vertex)``
        override it with a single vectorized fill of the whole group.
        """
        for row, schedule, base in zip(rows, schedules, bases):
            out[row, :, : base.num_nodes] = schedule.pulse_times_array(
                base, pulses
            )

    @classmethod
    def _stack_pulse_row(
        cls,
        schedules: Sequence["Layer0Schedule"],
        bases: Sequence[BaseGraph],
        pulse: int,
        out: np.ndarray,
        rows: Sequence[int],
    ) -> None:
        """Fill ``out[rows]`` of a :func:`stacked_pulse_row` buffer.

        Generic fallback: per-node :meth:`pulse_time` queries (exact by
        definition).  Closed-form schedules override with one vectorized
        group fill mirroring their ``_stack_pulse_times`` association.
        """
        for row, schedule, base in zip(rows, schedules, bases):
            for v in base.nodes():
                out[row, v] = schedule.pulse_time(v, pulse)

    def layer_times(self, base: BaseGraph, pulse: int) -> List[float]:
        """Pulse times across the whole layer."""
        return [self.pulse_time(v, pulse) for v in base.nodes()]

    def local_skew(self, base: BaseGraph, pulses: int) -> float:
        """Measured ``L_0``: max adjacent same-pulse offset over ``pulses``.

        One array sweep over :meth:`pulse_times_array` (the old
        O(pulses x edges) Python double loop regressed badly on wide
        layer-0 audits); equivalent to ``max(|t_v - t_w|)`` over every
        pulse and base edge, ``0.0`` when there is nothing to compare.
        """
        if pulses <= 0 or not base.edges:
            return 0.0
        times = self.pulse_times_array(base, pulses)  # (P, W)
        left, right = base.edge_index_arrays()
        return float(np.abs(times[:, left] - times[:, right]).max(initial=0.0))


class PerfectLayer0(Layer0Schedule):
    """Ideal layer 0: pulse ``k`` at ``k * Lambda`` at every node."""

    def __init__(self, Lambda: float) -> None:
        if Lambda <= 0:
            raise ValueError(f"Lambda must be positive, got {Lambda}")
        self.Lambda = Lambda

    def pulse_time(self, base_vertex: int, pulse: int) -> float:
        if pulse < 0:
            raise ValueError(f"pulse must be >= 0, got {pulse}")
        return pulse * self.Lambda

    def pulse_times_array(self, base: BaseGraph, pulses: int) -> np.ndarray:
        if pulses < 0:
            raise ValueError(f"pulses must be >= 0, got {pulses}")
        column = np.arange(pulses, dtype=float) * self.Lambda
        return np.tile(column[:, None], (1, base.num_nodes))

    @classmethod
    def _stack_pulse_times(cls, schedules, bases, pulses, out, rows):
        # k * Lambda per trial, broadcast over each trial's real vertices.
        lambdas = np.array([s.Lambda for s in schedules])[:, None]
        columns = np.arange(pulses, dtype=float)[None, :] * lambdas  # (n, P)
        mask = _width_mask(bases, out.shape[-1])
        out[rows] = np.where(mask[:, None, :], columns[:, :, None], np.nan)

    @classmethod
    def _stack_pulse_row(cls, schedules, bases, pulse, out, rows):
        # k * Lambda per trial, broadcast over each trial's real vertices.
        lambdas = np.array([s.Lambda for s in schedules])[:, None]
        mask = _width_mask(bases, out.shape[-1])
        out[rows] = np.where(mask, float(pulse) * lambdas, np.nan)


class JitteredLayer0(Layer0Schedule):
    """Per-node static jitter: pulse ``k`` at ``k * Lambda + jitter_v``.

    Jitter is drawn uniformly from ``[-jitter_bound, jitter_bound]`` once per
    node and reused for every pulse, so the schedule's frequency is exact and
    only phases differ (the paper's model for imperfect input, with the
    frequency error folded into ``vartheta``).
    """

    def __init__(
        self,
        Lambda: float,
        num_vertices: int,
        jitter_bound: float,
        seed: int = 0,
    ) -> None:
        if Lambda <= 0:
            raise ValueError(f"Lambda must be positive, got {Lambda}")
        if jitter_bound < 0:
            raise ValueError(f"jitter_bound must be >= 0, got {jitter_bound}")
        self.Lambda = Lambda
        rng = np.random.default_rng(seed)
        self._jitter = rng.uniform(-jitter_bound, jitter_bound, size=num_vertices)
        # Keep every pulse time nonnegative.
        self._base_offset = jitter_bound

    def pulse_time(self, base_vertex: int, pulse: int) -> float:
        if pulse < 0:
            raise ValueError(f"pulse must be >= 0, got {pulse}")
        return (
            pulse * self.Lambda
            + self._base_offset
            + float(self._jitter[base_vertex])
        )

    def pulse_times_array(self, base: BaseGraph, pulses: int) -> np.ndarray:
        if pulses < 0:
            raise ValueError(f"pulses must be >= 0, got {pulses}")
        # Same association as the scalar path: (k * Lambda + offset) + jitter.
        column = np.arange(pulses, dtype=float) * self.Lambda + self._base_offset
        jitter = self._jitter[np.asarray(base.nodes(), dtype=np.int64)]
        return column[:, None] + jitter[None, :]

    @classmethod
    def _stack_pulse_times(cls, schedules, bases, pulses, out, rows):
        # (k * Lambda + offset) per trial, plus NaN-padded jitter rows --
        # the padding NaN propagates through the add, masking dead cells.
        lambdas = np.array([s.Lambda for s in schedules])[:, None]
        offsets = np.array([s._base_offset for s in schedules])[:, None]
        columns = np.arange(pulses, dtype=float)[None, :] * lambdas + offsets
        jitter = np.full((len(schedules), out.shape[-1]), np.nan)
        for i, (schedule, base) in enumerate(zip(schedules, bases)):
            jitter[i, : base.num_nodes] = schedule._jitter[: base.num_nodes]
        out[rows] = columns[:, :, None] + jitter[:, None, :]

    @classmethod
    def _stack_pulse_row(cls, schedules, bases, pulse, out, rows):
        # (k * Lambda + offset) + jitter, NaN-padded past each trial.
        lambdas = np.array([s.Lambda for s in schedules])[:, None]
        offsets = np.array([s._base_offset for s in schedules])[:, None]
        columns = float(pulse) * lambdas + offsets  # (n, 1)
        jitter = np.full((len(schedules), out.shape[-1]), np.nan)
        for i, (schedule, base) in enumerate(zip(schedules, bases)):
            jitter[i, : base.num_nodes] = schedule._jitter[: base.num_nodes]
        out[rows] = columns + jitter


class AlternatingLayer0(Layer0Schedule):
    """Zigzag input: pulse ``k`` at ``k * Lambda + (-1)**v * amplitude``.

    The worst-case input for oscillation experiments (Figure 5): adjacent
    layer-0 nodes are maximally and oppositely offset, so downstream nodes
    are pushed to jump in opposite directions every layer.
    """

    def __init__(self, Lambda: float, amplitude: float) -> None:
        if Lambda <= 0:
            raise ValueError(f"Lambda must be positive, got {Lambda}")
        if amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {amplitude}")
        self.Lambda = Lambda
        self.amplitude = amplitude

    def pulse_time(self, base_vertex: int, pulse: int) -> float:
        if pulse < 0:
            raise ValueError(f"pulse must be >= 0, got {pulse}")
        sign = 1.0 if base_vertex % 2 == 0 else -1.0
        return pulse * self.Lambda + self.amplitude + sign * self.amplitude

    def pulse_times_array(self, base: BaseGraph, pulses: int) -> np.ndarray:
        if pulses < 0:
            raise ValueError(f"pulses must be >= 0, got {pulses}")
        # Same association as the scalar path:
        # (k * Lambda + amplitude) + sign * amplitude.
        column = np.arange(pulses, dtype=float) * self.Lambda + self.amplitude
        signs = np.where(np.arange(base.num_nodes) % 2 == 0, 1.0, -1.0)
        return column[:, None] + (signs * self.amplitude)[None, :]

    @classmethod
    def _stack_pulse_times(cls, schedules, bases, pulses, out, rows):
        # (k * Lambda + amplitude) + sign * amplitude, per trial at once.
        lambdas = np.array([s.Lambda for s in schedules])[:, None]
        amplitudes = np.array([s.amplitude for s in schedules])[:, None]
        columns = np.arange(pulses, dtype=float)[None, :] * lambdas + amplitudes
        signs = np.where(np.arange(out.shape[-1]) % 2 == 0, 1.0, -1.0)
        offsets = signs[None, :] * amplitudes  # (n, W_max)
        mask = _width_mask(bases, out.shape[-1])
        block = columns[:, :, None] + offsets[:, None, :]
        out[rows] = np.where(mask[:, None, :], block, np.nan)

    @classmethod
    def _stack_pulse_row(cls, schedules, bases, pulse, out, rows):
        # (k * Lambda + amplitude) + sign * amplitude, per trial at once.
        lambdas = np.array([s.Lambda for s in schedules])[:, None]
        amplitudes = np.array([s.amplitude for s in schedules])[:, None]
        columns = float(pulse) * lambdas + amplitudes  # (n, 1)
        signs = np.where(np.arange(out.shape[-1]) % 2 == 0, 1.0, -1.0)
        mask = _width_mask(bases, out.shape[-1])
        out[rows] = np.where(
            mask, columns + signs[None, :] * amplitudes, np.nan
        )


class ChainLayer0(Layer0Schedule):
    """Algorithm 2: source-fed chain forwarding through layer 0.

    Parameters
    ----------
    params:
        Timing parameters (``Lambda``, ``d``).
    chain_order:
        The base vertices in chain order; position 0 is fed directly by the
        clock source.
    delay_model:
        Delays of chain edges ``((prev, 0), (next, 0))``; defaults to the
        uniform midpoint.
    clocks:
        Optional per-base-vertex hardware clocks (only rates matter here);
        defaults to rate-1 clocks.
    source_period:
        Period of the clock source; defaults to ``params.Lambda`` (the paper
        matches the input frequency to the nominal layer latency).
    """

    def __init__(
        self,
        params: Parameters,
        chain_order: Sequence[int],
        delay_model: Optional[DelayModel] = None,
        clocks: Optional[Dict[int, HardwareClock]] = None,
        source_period: Optional[float] = None,
    ) -> None:
        if not chain_order:
            raise ValueError("chain_order must be non-empty")
        if len(set(chain_order)) != len(chain_order):
            raise ValueError("chain_order must not repeat vertices")
        self.params = params
        self.chain_order = list(chain_order)
        self.delay_model = delay_model or UniformDelayModel(params.d, params.u)
        self.clocks = clocks or {}
        self.source_period = source_period or params.Lambda
        self._position = {v: i for i, v in enumerate(self.chain_order)}
        # _chain_times[i][j] = time of *chain* pulse j at chain position i.
        self._chain_times: List[List[float]] = [[] for _ in self.chain_order]

    def _rate(self, vertex: int) -> float:
        clock = self.clocks.get(vertex)
        if clock is None:
            return 1.0
        low, high = clock.rate_bounds()
        if low != high:
            raise ValueError(
                "ChainLayer0 requires constant-rate clocks; "
                f"vertex {vertex} has rates in [{low}, {high}]"
            )
        return low

    def _extend_position(self, pos: int, chain_pulse: int) -> None:
        """Extend one position's cached times through ``chain_pulse``.

        Requires position ``pos - 1`` to already be filled at least that
        deep (callers sweep front to back).
        """
        times = self._chain_times[pos]
        if len(times) > chain_pulse:
            return
        vertex = self.chain_order[pos]
        # Wait Lambda - d of *local* time after reception (Algorithm 2).
        wait = (self.params.Lambda - self.params.d) / self._rate(vertex)
        if pos == 0:
            while len(times) <= chain_pulse:
                j = len(times)
                received = j * self.source_period + self.delay_model.delay(
                    (("source", -1), (vertex, 0)), j
                )
                times.append(received + wait)
        else:
            prev_times = self._chain_times[pos - 1]
            prev_vertex = self.chain_order[pos - 1]
            while len(times) <= chain_pulse:
                j = len(times)
                received = prev_times[j] + self.delay_model.delay(
                    ((prev_vertex, 0), (vertex, 0)), j
                )
                times.append(received + wait)

    def _fill_chain(self, position: int, chain_pulse: int) -> None:
        """Fill the cached chain times front-to-back up to ``chain_pulse``.

        Iterative on purpose: the old implementation recursed through
        ``position - 1``, so one cold query at the far end of a long chain
        (P >~ 1000 -- production-scale grids) blew the interpreter's
        recursion limit.  Each position only needs its predecessor's
        already-extended list, so a front-to-back sweep computes the exact
        same floats without growing the Python stack.
        """
        for pos in range(position + 1):
            self._extend_position(pos, chain_pulse)

    def chain_pulse_time(self, position: int, chain_pulse: int) -> float:
        """Time of *chain* pulse ``chain_pulse`` (0-based) at chain position.

        Position 0 receives source pulse ``j`` at ``j * source_period`` and
        runs the same forwarding rule as everyone else.
        """
        if not 0 <= position < len(self.chain_order):
            raise ValueError(f"position {position} out of range")
        if chain_pulse < 0:
            raise ValueError(f"chain_pulse must be >= 0, got {chain_pulse}")
        self._fill_chain(position, chain_pulse)
        return self._chain_times[position][chain_pulse]

    def pulse_time(self, base_vertex: int, pulse: int) -> float:
        """Grid pulse ``pulse``: chain pulse ``pulse + P - 1 - position``.

        The re-indexing aligns pulses across the chain (see module
        docstring); grid pulse ``k`` lands near ``(k + P) * Lambda``.
        """
        position = self._position.get(base_vertex)
        if position is None:
            raise ValueError(f"vertex {base_vertex} not on the chain")
        if pulse < 0:
            raise ValueError(f"pulse must be >= 0, got {pulse}")
        chain_pulse = pulse + (len(self.chain_order) - 1 - position)
        return self.chain_pulse_time(position, chain_pulse)

    def pulse_times_array(self, base: BaseGraph, pulses: int) -> np.ndarray:
        """Grid pulse times ``(pulses, W)`` from one front-to-back fill.

        Pulse-invariant delay models (the common static/uniform case) go
        through :meth:`_pulse_rows_invariant`: every chain hop advances
        the *whole* pulse axis as one array op, so a cold 5000-node
        chain fills in milliseconds where the per-entry Python loop took
        seconds (the regression the fast kernels hit on every cold
        ``ChainLayer0`` run).  Pulse-varying models keep the cached
        per-entry fill (:meth:`_pulse_rows_cached`).  Both paths slice
        out the pipelined re-indexing ``chain_pulse = k + P - 1 -
        position`` and produce bit-identical entries to per-node
        :meth:`pulse_time` queries -- the vectorized sweep evaluates the
        same expressions in the same association.
        """
        if pulses < 0:
            raise ValueError(f"pulses must be >= 0, got {pulses}")
        positions = []
        for v in base.nodes():
            position = self._position.get(v)
            if position is None:
                raise ValueError(f"vertex {v} not on the chain")
            positions.append(position)
        if pulses == 0:
            return np.empty((0, base.num_nodes))
        if getattr(self.delay_model, "pulse_invariant", False):
            rows = self._pulse_rows_invariant(positions, pulses)
        else:
            rows = self._pulse_rows_cached(positions, pulses)
        return np.ascontiguousarray(rows.T)

    def _pulse_rows_cached(
        self, positions: Sequence[int], pulses: int
    ) -> np.ndarray:
        """Per-entry reference fill: grid rows ``(W, pulses)``.

        Extends the cached chain times with a *triangular* front-to-back
        fill -- position ``pos`` only needs chain pulses through
        ``pulses - 1 + (P - 1 - pos)``, and the required depth shrinks
        by one per hop, so each position is exactly deep enough for its
        successor (O(P * pulses + P^2) entries, no rectangular
        ``(P, P + pulses)`` intermediate).
        """
        length = len(self.chain_order)
        for pos in range(length):
            self._extend_position(pos, pulses - 1 + (length - 1 - pos))
        return np.array(
            [
                self._chain_times[pos][
                    length - 1 - pos: length - 1 - pos + pulses
                ]
                for pos in positions
            ]
        )

    def _pulse_rows_invariant(
        self, positions: Sequence[int], pulses: int
    ) -> np.ndarray:
        """Pulse-axis-vectorized fill: grid rows ``(W, pulses)``.

        Valid only for pulse-invariant delay models (one ``delay`` query
        per chain edge stands in for all pulses).  The sweep carries one
        chain-pulse row forward hop by hop, evaluating exactly the
        per-entry fill's expressions -- ``(prev + delay) + wait``
        elementwise, in that association -- so entries are bit-identical
        to :meth:`_pulse_rows_cached`; the row shrinks by one pulse per
        hop, mirroring the triangular depth requirement.
        """
        length = len(self.chain_order)
        params = self.params
        vertex = self.chain_order[0]
        wait = (params.Lambda - params.d) / self._rate(vertex)
        delay = self.delay_model.delay((("source", -1), (vertex, 0)), 0)
        row = (
            np.arange(pulses + length - 1, dtype=float) * self.source_period
            + delay
        ) + wait
        start = length - 1
        windows = {}
        needed = set(positions)
        if 0 in needed:
            windows[0] = row[start:]
        for pos in range(1, max(needed) + 1):
            prev_vertex = self.chain_order[pos - 1]
            vertex = self.chain_order[pos]
            delay = self.delay_model.delay(
                ((prev_vertex, 0), (vertex, 0)), 0
            )
            wait = (params.Lambda - params.d) / self._rate(vertex)
            row = (row[:-1] + delay) + wait
            start -= 1
            if pos in needed:
                windows[pos] = row[start:]
        return np.array([windows[pos] for pos in positions])

    @classmethod
    def _stack_pulse_row(cls, schedules, bases, pulse, out, rows):
        # One triangular cache extension per chain (position ``pos`` only
        # needs chain pulse ``pulse + P - 1 - pos``), then a gather from
        # the same front-to-back cache the per-entry fills use -- so the
        # streamed row is bit-identical to the materialized block plane
        # without the O(P^2) re-walk per-vertex ``pulse_time`` would do.
        for row, schedule, base in zip(rows, schedules, bases):
            length = len(schedule.chain_order)
            for pos in range(length):
                schedule._extend_position(pos, pulse + (length - 1 - pos))
            for v in base.nodes():
                position = schedule._position.get(v)
                if position is None:
                    raise ValueError(f"vertex {v} not on the chain")
                out[row, v] = schedule._chain_times[position][
                    pulse + (length - 1 - position)
                ]

    def lemma_a1_envelope(self, position: int, chain_pulse: int) -> tuple:
        """Lemma A.1's envelope for chain pulse times.

        Returns ``(lower, upper)`` where the lemma asserts
        ``t in [(k + i - 1) * Lambda - i * kappa / 2, (k + i - 1) * Lambda]``
        for 1-based pulse ``k`` and chain index ``i``.  Our indices are
        0-based in both, so ``k + i - 1 = chain_pulse + position + 1``;
        the source-to-position-0 hop adds one ``Lambda``-ish hop, hence the
        ``position + 1`` hop count in the drift budget.
        """
        hops = position + 1
        nominal = (chain_pulse + hops) * self.params.Lambda
        return (nominal - hops * self.params.kappa / 2.0, nominal)
