"""Trial-stacked ``(S, W)`` kernel for the fast simulator.

:class:`~repro.core.fast.FastSimulation` vectorizes one pulse of one layer
across the ``W`` base vertices, but a parameter sweep still walks the
pulse/layer recurrence (Lemma B.1) once per trial in Python.  Because the
recurrence has no cross-trial coupling -- trial ``s``'s pulse ``k`` of
layer ``l`` depends only on trial ``s``'s pulse ``k`` of layer ``l - 1`` --
``S`` structurally identical trials can advance through the recurrence in
lock-step, with every per-layer array op widened from shape ``(W,)`` to
``(S, W)``.  That is what :class:`TrialStack` does: reception times,
do-until exit test, correction, and pulse time are computed for the whole
``(S, W)`` plane at once, so the Python-loop overhead per layer step is
paid once per *batch* instead of once per *trial*.

Stacking requirements (checked by :func:`stack_compatibility`)
--------------------------------------------------------------
All stacked simulations must share

* the algorithm semantics -- either all ``"full"`` (Algorithm 3) or all
  ``"simplified"`` (Algorithm 1) -- with the vectorized kernel enabled
  (the two algorithms differ only in the eligibility mask of the shared
  :func:`~repro.core.fast._layer_step_kernel`, so both stack),
* the timing :class:`~repro.params.Parameters` (``kappa``/``vartheta``
  enter the eligibility thresholds and the correction grid),
* the :class:`~repro.core.correction.CorrectionPolicy`, and
* the grid structure: number of layers plus the base-graph adjacency
  (the neighbor gather indices are built once and shared).

Everything else -- delay models, clock rates, layer-0 schedules, fault
plans -- may differ per trial; those inputs become the leading-axis
``(S, ...)`` arrays the kernel consumes.

Exactness
---------
The stacked kernel evaluates *the same* NumPy expressions as
:meth:`FastSimulation._run_layer_vectorized` -- both call the
shape-generic :func:`~repro.core.fast._layer_step_kernel`, here with an
extra leading axis -- so eligible cells produce bit-identical floats.
The exact per-trial eligibility test of the per-trial kernel is applied
cell by cell: fault-adjacent, via-``H_max``, and missing-message cells
drop out of the array path and are replayed through the scalar
:meth:`FastSimulation._run_node_and_record` of their own simulation, same
as in a per-trial run.  The test suite asserts equality against both the
per-trial vectorized and the scalar reference paths, for both algorithms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fast import (
    BRANCH_CODES,
    FastResult,
    FastSimulation,
    _VectorSweep,
    _layer_step_kernel,
)

__all__ = ["TrialStack", "stack_compatibility"]


def _adjacency_signature(sim: FastSimulation) -> Tuple[Tuple[int, ...], ...]:
    return sim.graph.base.adjacency


def stack_compatibility(sims: Sequence[FastSimulation]) -> Optional[str]:
    """Why ``sims`` cannot run stacked, or None when they can.

    The returned string names the first violated requirement; callers that
    want an exception can raise on it (``TrialStack`` does).
    """
    if not sims:
        return "need at least one simulation"
    first = sims[0]
    if not first.vectorize:
        return "vectorize=False forces the per-trial scalar path"
    signature = _adjacency_signature(first)
    for i, sim in enumerate(sims[1:], start=1):
        if sim.algorithm != first.algorithm:
            return (
                f"trial {i}: algorithm {sim.algorithm!r} differs from "
                f"trial 0's {first.algorithm!r}"
            )
        if not sim.vectorize:
            return f"trial {i}: vectorize=False forces the per-trial path"
        if sim.params != first.params:
            return f"trial {i}: parameters differ from trial 0"
        if sim.policy != first.policy:
            return f"trial {i}: correction policy differs from trial 0"
        if sim.graph.num_layers != first.graph.num_layers:
            return f"trial {i}: layer count differs from trial 0"
        if _adjacency_signature(sim) != signature:
            return f"trial {i}: base-graph adjacency differs from trial 0"
    return None


class TrialStack:
    """Advance ``S`` compatible simulations through the recurrence together.

    Parameters
    ----------
    sims:
        The per-trial :class:`FastSimulation` objects.  They must satisfy
        :func:`stack_compatibility`; a :class:`ValueError` names the first
        violation otherwise.

    Notes
    -----
    :meth:`run` returns ordinary per-trial :class:`FastResult` objects
    whose matrices are views into one shared ``(S, K, L, W)`` block, so
    downstream code (skew reducers, ``fault_sends`` drill-in, the scalar
    fallback itself) sees exactly the per-trial layout while the kernel
    reads and writes whole ``(S, W)`` planes without gathering.
    """

    def __init__(self, sims: Sequence[FastSimulation]) -> None:
        reason = stack_compatibility(sims)
        if reason is not None:
            raise ValueError(f"trials cannot be stacked: {reason}")
        self.sims: List[FastSimulation] = list(sims)

    # ------------------------------------------------------------------
    # Stacked per-layer inputs
    # ------------------------------------------------------------------
    def _delay_stack(
        self,
        sweeps: Sequence[_VectorSweep],
        cache: Dict[object, Tuple[np.ndarray, np.ndarray]],
        layer: int,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Own ``(S, W)`` and neighbor ``(S, W, max_deg)`` delay arrays.

        Each sweep's per-trial arrays come from (and fill) its simulation's
        own delay cache; the stacked copies are cached here per layer when
        every model is pulse-invariant, else per ``(layer, k)``.
        """
        key: object = layer if self._all_pulse_invariant else (layer, k)
        cached = cache.get(key)
        if cached is None:
            per_trial = [sweep.delay_arrays(layer, k) for sweep in sweeps]
            cached = (
                np.stack([own for own, _ in per_trial]),
                np.stack([nb for _, nb in per_trial]),
            )
            cache[key] = cached
        return cached

    def _rate_stack(
        self,
        sweeps: Sequence[_VectorSweep],
        cache: Dict[int, np.ndarray],
        layer: int,
        k: int,
    ) -> np.ndarray:
        """Clock rates ``(S, W)`` of the layer's nodes during pulse ``k``."""
        if self._rates_static:
            cached = cache.get(layer)
            if cached is None:
                cached = np.stack(
                    [sweep.rate_array(layer, k) for sweep in sweeps]
                )
                cache[layer] = cached
            return cached
        # Callable rate providers may depend on the pulse; query per step
        # exactly as the per-trial kernel does.
        return np.stack([sweep.rate_array(layer, k) for sweep in sweeps])

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, num_pulses: int) -> List[FastResult]:
        """Simulate ``num_pulses`` pulses for every trial; per-trial results."""
        sims = self.sims
        results = [sim._begin_run(num_pulses) for sim in sims]
        graph = sims[0].graph
        num_layers = graph.num_layers
        width = graph.width
        shape = (len(sims), num_pulses, num_layers, width)

        # One shared block per matrix; each FastResult holds the trial-s
        # view, so scalar fallbacks and analysis code read/write through it.
        times = np.full(shape, np.nan)
        protocol_times = np.full(shape, np.nan)
        corrections = np.full(shape, np.nan)
        effective = np.full(shape, np.nan)
        branches = np.full(shape, BRANCH_CODES["none"], dtype=np.int8)
        for s, result in enumerate(results):
            result.times = times[s]
            result.protocol_times = protocol_times[s]
            result.corrections = corrections[s]
            result.effective_corrections = effective[s]
            result.branches = branches[s]

        sweeps = [_VectorSweep(sim) for sim in sims]
        self._all_pulse_invariant = all(
            getattr(sim.delay_model, "pulse_invariant", False) for sim in sims
        )
        self._rates_static = all(not callable(sim._rates) for sim in sims)
        delay_cache: Dict[object, Tuple[np.ndarray, np.ndarray]] = {}
        rate_cache: Dict[int, np.ndarray] = {}

        # (S, L-1, W): per-trial static part of the eligibility test, and
        # (S, L, W)/(L,) fault structure for the write masks below.
        static_eligible = np.stack([sweep.static_eligible for sweep in sweeps])
        faulty = np.stack([sweep.faulty for sweep in sweeps])
        layer_has_fault = faulty.any(axis=(0, 2))

        for k in range(num_pulses):
            for s, sim in enumerate(sims):
                sim._run_layer0(results[s], k)
            for layer in range(1, num_layers):
                self._run_layer_stacked(
                    results,
                    sweeps,
                    times,
                    protocol_times,
                    corrections,
                    effective,
                    branches,
                    static_eligible,
                    faulty,
                    bool(layer_has_fault[layer]),
                    self._delay_stack(sweeps, delay_cache, layer, k),
                    self._rate_stack(sweeps, rate_cache, layer, k),
                    k,
                    layer,
                )
        return results

    def _run_layer_stacked(
        self,
        results: List[FastResult],
        sweeps: List[_VectorSweep],
        times: np.ndarray,
        protocol_times: np.ndarray,
        corrections: np.ndarray,
        effective: np.ndarray,
        branches_out: np.ndarray,
        static_eligible: np.ndarray,
        faulty: np.ndarray,
        layer_faulty: bool,
        delays: Tuple[np.ndarray, np.ndarray],
        rate: np.ndarray,
        k: int,
        layer: int,
    ) -> None:
        """Advance pulse ``k`` of ``layer`` for all ``S x W`` cells at once.

        Mirrors :meth:`FastSimulation._run_layer_vectorized` with a leading
        trial axis -- both delegate to the shape-generic
        :func:`~repro.core.fast._layer_step_kernel`; see the module
        docstring for the exactness argument.
        """
        sims = self.sims
        prev = times[:, k, layer - 1, :]  # (S, W) send times, NaN = missing
        own_delay, nb_delay = delays

        eligible, correction, branches, pulse_time, eff = _layer_step_kernel(
            prev,
            own_delay,
            nb_delay,
            rate,
            sweeps[0].nb_idx,
            sweeps[0].nb_valid,
            static_eligible[:, layer - 1, :],
            sims[0].params,
            sims[0].policy,
            sims[0].algorithm == "simplified",
        )

        if not layer_faulty and eligible.all():
            # Common case (no trial has a fault on this layer, every cell on
            # the fast path): whole-plane assignments, no boolean gathers.
            corrections[:, k, layer] = correction
            branches_out[:, k, layer] = branches
            effective[:, k, layer] = eff
            protocol_times[:, k, layer] = pulse_time
            times[:, k, layer] = pulse_time
            return

        corrections[:, k, layer][eligible] = correction[eligible]
        branches_out[:, k, layer][eligible] = branches[eligible]
        effective[:, k, layer][eligible] = eff[eligible]
        protocol_times[:, k, layer][eligible] = pulse_time[eligible]
        faulty_here = faulty[:, layer, :]
        correct = eligible & ~faulty_here
        times[:, k, layer][correct] = pulse_time[correct]
        if layer_faulty:
            for s, v in zip(*np.nonzero(eligible & faulty_here)):
                sims[s]._record_fault_sends(
                    results[s], (int(v), layer), k, float(pulse_time[s, v])
                )
        if not eligible.all():
            for s, v in zip(*np.nonzero(~eligible)):
                sims[s]._run_node_and_record(results[s], (int(v), layer), k)
