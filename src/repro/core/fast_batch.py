"""Trial-stacked ``(S, W)`` kernel for the fast simulator.

:class:`~repro.core.fast.FastSimulation` vectorizes one pulse of one layer
across the ``W`` base vertices, but a parameter sweep still walks the
pulse/layer recurrence (Lemma B.1) once per trial in Python.  Because the
recurrence has no cross-trial coupling -- trial ``s``'s pulse ``k`` of
layer ``l`` depends only on trial ``s``'s pulse ``k`` of layer ``l - 1`` --
``S`` compatible trials can advance through the recurrence in lock-step,
with every per-layer array op widened from shape ``(W,)`` to ``(S, W)``.
That is what :class:`TrialStack` does: reception times, do-until exit
test, correction, and pulse time are computed for the whole ``(S, W)``
plane at once, so the Python-loop overhead per layer step is paid once per
*batch* instead of once per *trial*.

Heterogeneous geometries (padded stacking)
------------------------------------------
Trials do **not** need the same node count, adjacency structure, layer
count, timing parameters, or correction strength to stack.  The stack
pads every per-trial plane to ``(S, W_max)`` (``W_max`` = widest trial)
and marks cells past a trial's width or depth *inert*: their state is
NaN, their gather lanes are masked invalid, their eligibility is
statically False, and the scalar fallback skips them -- so an inert cell
can never influence a real one, and NaN (the simulator's own marker for
"never pulsed") keeps them out of every downstream reducer.  Per-trial
neighbor gathers run through padded ``(S, W_max, max_deg)`` index/valid
tensors built from each base graph's cached
:meth:`~repro.topology.base_graph.BaseGraph.neighbor_index_arrays`;
numeric parameters (``kappa``/``vartheta``/``Lambda``/``d``) and the
policy's ``jump_slack`` broadcast as per-trial ``(S, 1)`` columns.  The
layer-0 schedules of the whole stack are gathered as one
``(S, P, W_max)`` block by :func:`~repro.core.layer0.stacked_pulse_times`
and written plane by plane, instead of ``S`` per-trial ``(P, W)``
gathers and row loops.

Stacking requirements (checked by :func:`stack_compatibility`)
--------------------------------------------------------------
All stacked simulations must share

* the algorithm semantics -- either all ``"full"`` (Algorithm 3) or all
  ``"simplified"`` (Algorithm 1) -- with the vectorized kernel enabled
  (the two algorithms differ only in the eligibility mask of the shared
  :func:`~repro.core.fast._layer_step_kernel`, so both stack), and
* the *structural* correction-policy switches ``discretize`` and
  ``stick_to_median``, which select Python-level branches of the kernel
  (``jump_slack``, a numeric knob, may differ per trial).

Everything else -- geometry, timing parameters, delay models, clock
rates, layer-0 schedules, fault plans -- may differ per trial; those
inputs become the padded leading-axis ``(S, ...)`` arrays the kernel
consumes.

Exactness
---------
The stacked kernel evaluates *the same* NumPy expressions as
:meth:`FastSimulation._run_layer_vectorized` -- both call the
shape-generic :func:`~repro.core.fast._layer_step_kernel`, here with an
extra leading axis -- so eligible cells produce bit-identical floats
(per-trial parameter columns broadcast elementwise and change no
operation).  The exact per-trial eligibility test of the per-trial kernel
is applied cell by cell: fault-adjacent, via-``H_max``, and
missing-message cells drop out of the array path and are replayed through
the scalar :meth:`FastSimulation._run_node_and_record` of their own
simulation, same as in a per-trial run.  The test suite asserts equality
against both the per-trial vectorized and the scalar reference paths, for
both algorithms, over randomized mixed-geometry stacks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fast import (
    BRANCH_CODES,
    FastResult,
    FastSimulation,
    _VectorSweep,
    _layer_step_kernel,
)
from repro.core.layer0 import stacked_pulse_times

__all__ = ["TrialStack", "stack_compatibility"]


def stack_compatibility(sims: Sequence[FastSimulation]) -> Optional[str]:
    """Why ``sims`` cannot run stacked, or None when they can.

    The returned string names the first violated requirement; callers that
    want an exception can raise on it (``TrialStack`` does).  Geometry,
    parameters, delay models, clock rates, layer-0 schedules, fault plans,
    and the numeric ``jump_slack`` policy knob never disqualify a stack --
    mixed-geometry trials run through the padded kernel (see the module
    docstring).
    """
    if not sims:
        return "need at least one simulation"
    first = sims[0]
    if not first.vectorize:
        return "vectorize=False forces the per-trial scalar path"
    structure = (first.policy.discretize, first.policy.stick_to_median)
    for i, sim in enumerate(sims[1:], start=1):
        if sim.algorithm != first.algorithm:
            return (
                f"trial {i}: algorithm {sim.algorithm!r} differs from "
                f"trial 0's {first.algorithm!r}"
            )
        if not sim.vectorize:
            return f"trial {i}: vectorize=False forces the per-trial path"
        if (sim.policy.discretize, sim.policy.stick_to_median) != structure:
            return (
                f"trial {i}: correction-policy structure "
                "(discretize/stick_to_median) differs from trial 0"
            )
    return None


class _StackedParams:
    """Per-trial ``(S, 1)`` numeric parameter columns for the kernel.

    Stands in for a shared :class:`~repro.params.Parameters` when the
    stacked trials' parameters differ: every kernel use of ``kappa``/
    ``vartheta``/``Lambda``/``d`` is elementwise, so broadcasting a
    column of per-trial values computes bit-identical floats to a scalar
    call with each trial's own value.
    """

    __slots__ = ("kappa", "vartheta", "Lambda", "d")

    def __init__(self, sims: Sequence[FastSimulation]) -> None:
        for name in self.__slots__:
            column = np.array([getattr(sim.params, name) for sim in sims])
            setattr(self, name, column[:, None])


class _StackedPolicy:
    """Per-trial policy for the kernel: structural bools + numeric column."""

    __slots__ = ("discretize", "stick_to_median", "jump_slack")

    def __init__(self, sims: Sequence[FastSimulation]) -> None:
        self.discretize = sims[0].policy.discretize
        self.stick_to_median = sims[0].policy.stick_to_median
        self.jump_slack = np.array(
            [sim.policy.jump_slack for sim in sims]
        )[:, None]


class TrialStack:
    """Advance ``S`` compatible simulations through the recurrence together.

    Parameters
    ----------
    sims:
        The per-trial :class:`FastSimulation` objects.  They must satisfy
        :func:`stack_compatibility` (same algorithm, vectorized, same
        structural policy switches); a :class:`ValueError` names the first
        violation otherwise.  Geometries may differ -- narrower/shallower
        trials are padded with inert cells.

    Notes
    -----
    :meth:`run` returns ordinary per-trial :class:`FastResult` objects
    whose matrices are views into one shared ``(S, K, L_max, W_max)``
    block (each trial seeing its own ``(K, L_s, W_s)`` window), so
    downstream code (skew reducers, ``fault_sends`` drill-in, the scalar
    fallback itself) sees exactly the per-trial layout while the kernel
    reads and writes whole ``(S, W_max)`` planes without gathering.
    """

    def __init__(self, sims: Sequence[FastSimulation]) -> None:
        reason = stack_compatibility(sims)
        if reason is not None:
            raise ValueError(f"trials cannot be stacked: {reason}")
        self.sims: List[FastSimulation] = list(sims)

    # ------------------------------------------------------------------
    # Stacked per-layer inputs
    # ------------------------------------------------------------------
    def _delay_stack(
        self,
        sweeps: Sequence[_VectorSweep],
        cache: Dict[object, Tuple[np.ndarray, np.ndarray]],
        layer: int,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Own ``(S, W)`` and neighbor ``(S, W, max_deg)`` delay arrays.

        Each sweep's per-trial arrays come from (and fill) its simulation's
        own delay cache; the stacked copies are cached here per layer when
        every model is pulse-invariant, else per ``(layer, k)``.  Trials
        without this layer (padded depth) contribute inert NaN/zero rows
        and are never queried, so delay models only ever see edges that
        exist in their own graph.
        """
        key: object = layer if self._all_pulse_invariant else (layer, k)
        cached = cache.get(key)
        if cached is None:
            if self._uniform:
                per_trial = [sweep.delay_arrays(layer, k) for sweep in sweeps]
                cached = (
                    np.stack([own for own, _ in per_trial]),
                    np.stack([nb for _, nb in per_trial]),
                )
            else:
                own = np.full((len(sweeps), self._width), np.nan)
                nb = np.zeros((len(sweeps), self._width, self._max_deg))
                for s, sweep in enumerate(sweeps):
                    if layer >= self._depths[s]:
                        continue
                    own_s, nb_s = sweep.delay_arrays(layer, k)
                    own[s, : own_s.shape[0]] = own_s
                    nb[s, : nb_s.shape[0], : nb_s.shape[1]] = nb_s
                cached = (own, nb)
            cache[key] = cached
        return cached

    def _rate_stack(
        self,
        sweeps: Sequence[_VectorSweep],
        cache: Dict[int, np.ndarray],
        layer: int,
        k: int,
    ) -> np.ndarray:
        """Clock rates ``(S, W)`` of the layer's nodes during pulse ``k``.

        Inert cells get rate 1 (never read through an eligible lane, but
        a finite value keeps the whole-plane arithmetic NaN-clean).
        """
        if self._rates_static:
            cached = cache.get(layer)
            if cached is not None:
                return cached
        # Callable rate providers may depend on the pulse; query per step
        # exactly as the per-trial kernel does.
        if self._uniform:
            stacked = np.stack([sweep.rate_array(layer, k) for sweep in sweeps])
        else:
            stacked = np.ones((len(sweeps), self._width))
            for s, sweep in enumerate(sweeps):
                if layer >= self._depths[s]:
                    continue
                row = sweep.rate_array(layer, k)
                stacked[s, : row.shape[0]] = row
        if self._rates_static:
            cache[layer] = stacked
        return stacked

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, num_pulses: int) -> List[FastResult]:
        """Simulate ``num_pulses`` pulses for every trial; per-trial results."""
        sims = self.sims
        num_trials = len(sims)
        widths = [sim.graph.width for sim in sims]
        depths = [sim.graph.num_layers for sim in sims]
        width = max(widths)
        num_layers = max(depths)
        self._width = width
        self._depths = depths
        adjacency0 = sims[0].graph.base.adjacency
        self._uniform = all(
            depth == num_layers and sim.graph.base.adjacency == adjacency0
            for depth, sim in zip(depths, sims)
        )

        # One (S, P, W_max) layer-0 gather for the whole stack; each trial's
        # _begin_run receives its own (P, W_s) window as a view.
        layer0_block = stacked_pulse_times(
            [sim.layer0 for sim in sims],
            [sim.graph.base for sim in sims],
            num_pulses,
        )
        results = [
            sim._begin_run(num_pulses, layer0_times=layer0_block[s, :, : widths[s]])
            for s, sim in enumerate(sims)
        ]
        shape = (num_trials, num_pulses, num_layers, width)

        # One shared block per matrix; each FastResult holds the trial-s
        # window view, so scalar fallbacks and analysis code read/write
        # through it.  Cells outside a trial's window stay NaN (padding
        # never turns eligible; the whole-plane fast path only runs on
        # uniform stacks).
        times = np.full(shape, np.nan)
        protocol_times = np.full(shape, np.nan)
        corrections = np.full(shape, np.nan)
        effective = np.full(shape, np.nan)
        branches = np.full(shape, BRANCH_CODES["none"], dtype=np.int8)
        for s, result in enumerate(results):
            result.times = times[s, :, : depths[s], : widths[s]]
            result.protocol_times = protocol_times[s, :, : depths[s], : widths[s]]
            result.corrections = corrections[s, :, : depths[s], : widths[s]]
            result.effective_corrections = effective[s, :, : depths[s], : widths[s]]
            result.branches = branches[s, :, : depths[s], : widths[s]]

        sweeps = [_VectorSweep(sim) for sim in sims]
        self._all_pulse_invariant = all(
            getattr(sim.delay_model, "pulse_invariant", False) for sim in sims
        )
        self._rates_static = all(not callable(sim._rates) for sim in sims)
        delay_cache: Dict[object, Tuple[np.ndarray, np.ndarray]] = {}
        rate_cache: Dict[int, np.ndarray] = {}

        # Padded (S, ...) fault/eligibility structure.  ``active`` marks the
        # real (non-padding) cells; None on uniform stacks (all real).
        if self._uniform:
            nb_idx = sweeps[0].nb_idx
            nb_valid = sweeps[0].nb_valid
            self._max_deg = nb_idx.shape[1]
            static_eligible = np.stack([sweep.static_eligible for sweep in sweeps])
            faulty = np.stack([sweep.faulty for sweep in sweeps])
            active = None
        else:
            self._max_deg = max(sweep.nb_idx.shape[1] for sweep in sweeps)
            nb_idx = np.zeros((num_trials, width, self._max_deg), dtype=np.int64)
            nb_valid = np.zeros((num_trials, width, self._max_deg), dtype=bool)
            static_eligible = np.zeros(
                (num_trials, num_layers - 1, width), dtype=bool
            )
            faulty = np.zeros((num_trials, num_layers, width), dtype=bool)
            for s, sweep in enumerate(sweeps):
                w, cols = sweep.nb_idx.shape
                nb_idx[s, :w, :cols] = sweep.nb_idx
                nb_valid[s, :w, :cols] = sweep.nb_valid
                static_eligible[s, : depths[s] - 1, :w] = sweep.static_eligible
                faulty[s, : depths[s], :w] = sweep.faulty
            layer_index = np.arange(num_layers)
            active = (
                (layer_index[None, :, None] < np.array(depths)[:, None, None])
                & (np.arange(width)[None, None, :] < np.array(widths)[:, None, None])
            )
        layer_has_fault = faulty.any(axis=(0, 2))

        # Per-trial parameter/policy columns when trials disagree; the
        # shared objects otherwise (scalar broadcasting, old fast path).
        params0, policy0 = sims[0].params, sims[0].policy
        self._params = (
            params0
            if all(sim.params == params0 for sim in sims)
            else _StackedParams(sims)
        )
        self._policy = (
            policy0
            if all(sim.policy == policy0 for sim in sims)
            else _StackedPolicy(sims)
        )

        # Stacked layer-0 plane writes (see _run_layer0_stacked).
        self._layer0_block = layer0_block
        self._l0_faulty = faulty[:, 0, :]
        self._l0_fault_trials = [
            s for s in range(num_trials) if bool(self._l0_faulty[s].any())
        ]
        width_mask = (
            np.ones((num_trials, width), dtype=bool)
            if self._uniform
            else np.arange(width)[None, :] < np.array(widths)[:, None]
        )
        self._l0_branch_row = np.where(
            width_mask, BRANCH_CODES["layer0"], BRANCH_CODES["none"]
        ).astype(np.int8)

        for k in range(num_pulses):
            self._run_layer0_stacked(
                results, times, protocol_times, branches, k
            )
            for layer in range(1, num_layers):
                self._run_layer_stacked(
                    results,
                    times,
                    protocol_times,
                    corrections,
                    effective,
                    branches,
                    nb_idx,
                    nb_valid,
                    static_eligible,
                    faulty,
                    active,
                    bool(layer_has_fault[layer]),
                    self._delay_stack(sweeps, delay_cache, layer, k),
                    self._rate_stack(sweeps, rate_cache, layer, k),
                    k,
                    layer,
                )
        return results

    def _run_layer0_stacked(
        self,
        results: List[FastResult],
        times: np.ndarray,
        protocol_times: np.ndarray,
        branches: np.ndarray,
        k: int,
    ) -> None:
        """Write layer 0's pulse-``k`` plane for every trial at once.

        Mirrors :meth:`FastSimulation._run_layer0` with a leading trial
        axis over the stacked ``(S, P, W_max)`` schedule block; only
        trials with layer-0 faults drop to a per-vertex loop (their
        ``fault_sends`` bookkeeping is inherently per-edge).
        """
        row = self._layer0_block[:, k, :]  # (S, W), NaN on padding
        protocol_times[:, k, 0, :] = row
        branches[:, k, 0, :] = self._l0_branch_row
        times[:, k, 0, :] = np.where(self._l0_faulty, np.nan, row)
        for s in self._l0_fault_trials:
            for v in np.nonzero(self._l0_faulty[s])[0]:
                self.sims[s]._record_fault_sends(
                    results[s], (int(v), 0), k, float(row[s, v])
                )

    def _run_layer_stacked(
        self,
        results: List[FastResult],
        times: np.ndarray,
        protocol_times: np.ndarray,
        corrections: np.ndarray,
        effective: np.ndarray,
        branches_out: np.ndarray,
        nb_idx: np.ndarray,
        nb_valid: np.ndarray,
        static_eligible: np.ndarray,
        faulty: np.ndarray,
        active: Optional[np.ndarray],
        layer_faulty: bool,
        delays: Tuple[np.ndarray, np.ndarray],
        rate: np.ndarray,
        k: int,
        layer: int,
    ) -> None:
        """Advance pulse ``k`` of ``layer`` for all ``S x W`` cells at once.

        Mirrors :meth:`FastSimulation._run_layer_vectorized` with a leading
        trial axis -- both delegate to the shape-generic
        :func:`~repro.core.fast._layer_step_kernel`; see the module
        docstring for the exactness argument.  ``active`` (None on uniform
        stacks) masks the padding: inert cells are never eligible, never
        written, and never replayed by the scalar fallback.
        """
        sims = self.sims
        prev = times[:, k, layer - 1, :]  # (S, W) send times, NaN = missing
        own_delay, nb_delay = delays

        eligible, correction, branches, pulse_time, eff = _layer_step_kernel(
            prev,
            own_delay,
            nb_delay,
            rate,
            nb_idx,
            nb_valid,
            static_eligible[:, layer - 1, :],
            self._params,
            self._policy,
            sims[0].algorithm == "simplified",
        )

        if active is None:
            fallback = ~eligible
            if not layer_faulty and eligible.all():
                # Common case (uniform stack, no trial has a fault on this
                # layer, every cell on the fast path): whole-plane
                # assignments, no boolean gathers.
                corrections[:, k, layer] = correction
                branches_out[:, k, layer] = branches
                effective[:, k, layer] = eff
                protocol_times[:, k, layer] = pulse_time
                times[:, k, layer] = pulse_time
                return
        else:
            fallback = active[:, layer, :] & ~eligible
            if not layer_faulty and not fallback.any():
                # Padded analogue of the fast path: every *real* cell is
                # eligible, so one masked whole-plane select per matrix
                # (inert cells keep their NaN/"none" padding).
                corrections[:, k, layer] = np.where(eligible, correction, np.nan)
                branches_out[:, k, layer] = np.where(
                    eligible, branches, BRANCH_CODES["none"]
                )
                effective[:, k, layer] = np.where(eligible, eff, np.nan)
                protocol_times[:, k, layer] = np.where(
                    eligible, pulse_time, np.nan
                )
                times[:, k, layer] = np.where(eligible, pulse_time, np.nan)
                return

        corrections[:, k, layer][eligible] = correction[eligible]
        branches_out[:, k, layer][eligible] = branches[eligible]
        effective[:, k, layer][eligible] = eff[eligible]
        protocol_times[:, k, layer][eligible] = pulse_time[eligible]
        faulty_here = faulty[:, layer, :]
        correct = eligible & ~faulty_here
        times[:, k, layer][correct] = pulse_time[correct]
        if layer_faulty:
            for s, v in zip(*np.nonzero(eligible & faulty_here)):
                sims[s]._record_fault_sends(
                    results[s], (int(v), layer), k, float(pulse_time[s, v])
                )
        if fallback.any():
            for s, v in zip(*np.nonzero(fallback)):
                sims[s]._run_node_and_record(results[s], (int(v), layer), k)
