"""Trial-stacked ``(S, W)`` kernel for the fast simulator.

:class:`~repro.core.fast.FastSimulation` vectorizes one pulse of one layer
across the ``W`` base vertices, but a parameter sweep still walks the
pulse/layer recurrence (Lemma B.1) once per trial in Python.  Because the
recurrence has no cross-trial coupling -- trial ``s``'s pulse ``k`` of
layer ``l`` depends only on trial ``s``'s pulse ``k`` of layer ``l - 1`` --
``S`` compatible trials can advance through the recurrence in lock-step,
with every per-layer array op widened from shape ``(W,)`` to ``(S, W)``.
That is what :class:`TrialStack` does: reception times, do-until exit
test, correction, and pulse time are computed for the whole ``(S, W)``
plane at once, so the Python-loop overhead per layer step is paid once per
*batch* instead of once per *trial*.

Heterogeneous geometries (padded stacking)
------------------------------------------
Trials do **not** need the same node count, adjacency structure, layer
count, timing parameters, or correction strength to stack.  The stack
pads every per-trial plane to ``(S, W_max)`` (``W_max`` = widest trial)
and marks cells past a trial's width or depth *inert*: their state is
NaN, their gather lanes are masked invalid, their eligibility is
statically False, and the scalar fallback skips them -- so an inert cell
can never influence a real one, and NaN (the simulator's own marker for
"never pulsed") keeps them out of every downstream reducer.  Per-trial
neighbor gathers run through padded ``(S, W_max, max_deg)`` index/valid
tensors built from each base graph's cached
:meth:`~repro.topology.base_graph.BaseGraph.neighbor_index_arrays`;
numeric parameters (``kappa``/``vartheta``/``Lambda``/``d``) and the
policy's ``jump_slack`` broadcast as per-trial ``(S, 1)`` columns.  The
layer-0 schedules of the whole stack are gathered as one
``(S, P, W_max)`` block by :func:`~repro.core.layer0.stacked_pulse_times`
and written plane by plane, instead of ``S`` per-trial ``(P, W)``
gathers and row loops.

Depth-aware compaction (dropping finished rows)
-----------------------------------------------
Depth padding makes mixed-depth stacks *correct*, but without further
care a shallow trial keeps riding the layer loop as a dead NaN row until
the deepest trial finishes -- on a strongly depth-skewed batch most of
the ``(S, W_max)`` plane is then inert ballast.  With ``compact_depth``
(the default) the stack instead *drops* a trial's row from the working
plane as soon as the trial has nothing left to compute:

* **depth exhausted** -- ``layer >= num_layers_s``: the trial's window
  simply has no such layer, or
* **gone dead** -- no node of the trial's previous layer produced a
  pulse for the current iteration (possible only with faults, e.g. a
  fully crashed layer), so no message will ever reach this or any deeper
  layer of this pulse; today's code would replay every such cell through
  the scalar fallback just to record "no pulse".

The surviving trials are re-gathered through an ``active_rows`` index
into compact ``(S_active, W_max)`` state/parameter/neighbor arrays
(cached per distinct row set -- the depth-driven sets are nested, so
there are at most as many as distinct depths), the kernel runs on the
compact plane, and the results scatter back to the original trial slots
-- bit-identical to the uncompacted stack, which in turn is bit-identical
to per-trial runs.  A depth-skewed batch therefore pays for the layer
steps its trials actually run (``sum_s L_s``) instead of ``S * L_max``.
:attr:`TrialStack.compaction_stats` records the padded vs executed
row-step counts after each :meth:`TrialStack.run`.

Width-aware compaction (dropping unused lanes)
----------------------------------------------
The width axis has the mirror problem: one wide trial pads every other
trial's plane to ``W_max``, and the padding keeps riding the kernel even
after the wide trial drops out of the layer loop.  With ``compact_width``
(the default) each step additionally gathers only the ``active_lanes``
-- the union, over the *active rows*, of lanes some trial still needs.
A lane is needed by trial ``s`` when it is inside the trial's real width
and, under a chaos campaign, the vertex is present in at least one epoch
of the remaining horizon: a vertex absent from the current epoch through
the end of the run can never pulse, receive, or send again, so its lane
is freed at the epoch boundary (epoch re-gathers re-derive the free-lane
set).  Neighbor tables are re-indexed into the compact column space
(``lane_pos``), the kernel runs on the ``(S_active, C)`` plane, and
results scatter back through ``rows x lanes`` -- dropped lanes keep
their initial padding, which is exactly what the uncompacted path writes
there (padding is never eligible, and a horizon-absent vertex's scalar
replay records NaN/"none", the padding values, and no fault sends).
Output is bit-identical with the knob on or off.

CSR neighbor backend (sparse/skewed graphs)
-------------------------------------------
Uniform-adjacency stacks may run the neighbor reduction over the base
graph's CSR arrays (:meth:`~repro.topology.base_graph.BaseGraph.neighbor_csr`)
instead of the padded ``(W, max_deg)`` tensors: per-step cost becomes
``O(S * nnz)`` rather than ``O(S * W * max_deg)``, which is what lets a
hub-skewed or million-node sparse layer through the fast path -- see
:func:`repro.core.fast._layer_step_kernel_csr`.  The backend is chosen
per stack by the density heuristic (``neighbor_backend="auto"``) or
forced (``"dense"``/``"csr"``); mixed-adjacency stacks fall back to the
dense padded path (recorded in ``compaction_stats["backend_fallback"]``).

Stacking requirements (checked by :func:`stack_compatibility`)
--------------------------------------------------------------
All stacked simulations must share

* the algorithm semantics -- either all ``"full"`` (Algorithm 3) or all
  ``"simplified"`` (Algorithm 1) -- with the vectorized kernel enabled
  (the two algorithms differ only in the eligibility mask of the shared
  :func:`~repro.core.fast._layer_step_kernel`, so both stack), and
* the *structural* correction-policy switches ``discretize`` and
  ``stick_to_median``, which select Python-level branches of the kernel
  (``jump_slack``, a numeric knob, may differ per trial).

Everything else -- geometry, timing parameters, delay models, clock
rates, layer-0 schedules, fault plans -- may differ per trial; those
inputs become the padded leading-axis ``(S, ...)`` arrays the kernel
consumes.

Exactness
---------
The stacked kernel evaluates *the same* NumPy expressions as
:meth:`FastSimulation._run_layer_vectorized` -- both call the
shape-generic :func:`~repro.core.fast._layer_step_kernel`, here with an
extra leading axis -- so eligible cells produce bit-identical floats
(per-trial parameter columns broadcast elementwise and change no
operation).  The exact per-trial eligibility test of the per-trial kernel
is applied cell by cell: fault-adjacent, via-``H_max``, and
missing-message cells drop out of the array path and are replayed through
the scalar :meth:`FastSimulation._run_node_and_record` of their own
simulation, same as in a per-trial run.  The test suite asserts equality
against both the per-trial vectorized and the scalar reference paths, for
both algorithms, over randomized mixed-geometry stacks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import resolve_kernel_ops
from repro.core.fast import (
    BRANCH_CODES,
    NEIGHBOR_BACKENDS,
    FastResult,
    FastSimulation,
    _VectorSweep,
    _layer_step_kernel,
    _layer_step_kernel_csr,
    _resolve_backend,
)
from repro.core.layer0 import stacked_pulse_row, stacked_pulse_times

__all__ = ["TrialStack", "stack_compatibility"]

#: Rows hint for layer steps the compacted loop skipped outright: the
#: streaming reducers still need the update (the inter-layer reducer
#: retires its previous-pulse plane), just with no active trial.
_NO_ROWS = np.zeros(0, dtype=np.int64)


class _StackBlock:
    """The shared padded matrices one :meth:`TrialStack.run` writes.

    Handed to every returned :class:`FastResult` (``stack_block`` /
    ``stack_row``) so :class:`~repro.experiments.batch.BatchResult` can
    adopt the block directly instead of re-stacking ``S`` window copies
    -- the single-stack no-copy construction.  All arrays are frozen
    (``writeable=False``) before the results are returned, so neither a
    per-trial result nor a batch adopting the block can corrupt the
    other's view of the shared memory.
    """

    __slots__ = ("times", "corrections", "effective_corrections", "faulty")

    def __init__(
        self,
        times: np.ndarray,
        corrections: np.ndarray,
        effective_corrections: np.ndarray,
        faulty: np.ndarray,
    ) -> None:
        self.times = times
        self.corrections = corrections
        self.effective_corrections = effective_corrections
        self.faulty = faulty


def stack_compatibility(sims: Sequence[FastSimulation]) -> Optional[str]:
    """Why ``sims`` cannot run stacked, or None when they can.

    The returned string names the first violated requirement; callers that
    want an exception can raise on it (``TrialStack`` does).  Geometry,
    parameters, delay models, clock rates, layer-0 schedules, fault plans,
    and the numeric ``jump_slack`` policy knob never disqualify a stack --
    mixed-geometry trials run through the padded kernel (see the module
    docstring).
    """
    if not sims:
        return "need at least one simulation"
    first = sims[0]
    if not first.vectorize:
        return "vectorize=False forces the per-trial scalar path"
    structure = (first.policy.discretize, first.policy.stick_to_median)
    for i, sim in enumerate(sims[1:], start=1):
        if sim.algorithm != first.algorithm:
            return (
                f"trial {i}: algorithm {sim.algorithm!r} differs from "
                f"trial 0's {first.algorithm!r}"
            )
        if not sim.vectorize:
            return f"trial {i}: vectorize=False forces the per-trial path"
        if (sim.policy.discretize, sim.policy.stick_to_median) != structure:
            return (
                f"trial {i}: correction-policy structure "
                "(discretize/stick_to_median) differs from trial 0"
            )
    return None


class _StackedParams:
    """Per-trial ``(S, 1)`` numeric parameter columns for the kernel.

    Stands in for a shared :class:`~repro.params.Parameters` when the
    stacked trials' parameters differ: every kernel use of ``kappa``/
    ``vartheta``/``Lambda``/``d`` is elementwise, so broadcasting a
    column of per-trial values computes bit-identical floats to a scalar
    call with each trial's own value.
    """

    __slots__ = ("kappa", "vartheta", "Lambda", "d")

    def __init__(self, sims: Sequence[FastSimulation]) -> None:
        for name in self.__slots__:
            column = np.array([getattr(sim.params, name) for sim in sims])
            setattr(self, name, column[:, None])

    def take(self, rows: np.ndarray) -> "_StackedParams":
        """The columns of the compacted row subset (same broadcast shape)."""
        taken = object.__new__(type(self))
        for name in self.__slots__:
            setattr(taken, name, getattr(self, name)[rows])
        return taken


class _StackedPolicy:
    """Per-trial policy for the kernel: structural bools + numeric column."""

    __slots__ = ("discretize", "stick_to_median", "jump_slack")

    def __init__(self, sims: Sequence[FastSimulation]) -> None:
        self.discretize = sims[0].policy.discretize
        self.stick_to_median = sims[0].policy.stick_to_median
        self.jump_slack = np.array(
            [sim.policy.jump_slack for sim in sims]
        )[:, None]

    def take(self, rows: np.ndarray) -> "_StackedPolicy":
        """The policy restricted to the compacted row subset."""
        taken = object.__new__(type(self))
        taken.discretize = self.discretize
        taken.stick_to_median = self.stick_to_median
        taken.jump_slack = self.jump_slack[rows]
        return taken


class TrialStack:
    """Advance ``S`` compatible simulations through the recurrence together.

    Parameters
    ----------
    sims:
        The per-trial :class:`FastSimulation` objects.  They must satisfy
        :func:`stack_compatibility` (same algorithm, vectorized, same
        structural policy switches); a :class:`ValueError` names the first
        violation otherwise.  Geometries may differ -- narrower/shallower
        trials are padded with inert cells.
    compact_depth:
        Drop finished trials out of the layer loop (depth exhausted, or
        provably silent for the rest of the iteration) and run the kernel
        on the compacted ``(S_active, W_max)`` plane; see the module
        docstring.  The default.  ``False`` keeps every row riding the
        full ``L_max`` loop (the pre-compaction behavior); output is
        bit-identical either way.
    compact_width:
        Additionally drop lanes no active trial needs (width padding, and
        vertices absent for the whole remaining campaign horizon) and run
        the kernel on the ``(S_active, C)`` column-compacted plane; see
        the module docstring.  The default.  Only engages on mixed-width
        (padded) stacks; output is bit-identical either way.
    neighbor_backend:
        ``"auto"`` (default), ``"dense"``, or ``"csr"``: the neighbor
        representation of the stacked kernel.  ``"auto"`` picks CSR for
        uniform stacks over large sparse/skewed base graphs (see
        :func:`repro.core.fast._prefer_csr`) and the dense padded
        tensors otherwise; mixed-adjacency stacks always run dense
        (``compaction_stats["backend_fallback"]`` says why).
    kernel_backend:
        ``"auto"`` (default), ``"numpy"``, or ``"numba"``: the array-op
        implementation behind the stacked layer-step kernels (see
        :mod:`repro.core.backend`).  ``"auto"`` picks numba when the
        optional extra is installed and NumPy otherwise; backends are
        bitwise identical, so the knob is purely a speed choice.  The
        resolved name lands in ``compaction_stats["kernel_backend"]``.

    Notes
    -----
    :meth:`run` returns ordinary per-trial :class:`FastResult` objects
    whose matrices are views into one shared ``(S, K, L_max, W_max)``
    block (each trial seeing its own ``(K, L_s, W_s)`` window), so
    downstream code (skew reducers, ``fault_sends`` drill-in, the scalar
    fallback itself) sees exactly the per-trial layout while the kernel
    reads and writes whole ``(S, W_max)`` planes without gathering.  The
    block is attached to each result (``stack_block``/``stack_row``) and
    frozen once the run completes: stacked results are immutable
    snapshots, so no caller can corrupt the memory every trial of the
    stack shares (``BatchResult`` adopts the block without copying).

    After :meth:`run`, :attr:`compaction_stats` holds the padded vs
    executed row-step accounting of the last run.

    Example
    -------
    >>> from repro.core.fast import FastSimulation
    >>> from repro.core.fast_batch import TrialStack
    >>> from repro.params import Parameters
    >>> from repro.topology.base_graph import cycle_graph
    >>> from repro.topology.layered import LayeredGraph
    >>> params = Parameters(d=1.0, u=0.01, vartheta=1.001, Lambda=2.0)
    >>> sims = [
    ...     FastSimulation(LayeredGraph(cycle_graph(4 + i), 3), params)
    ...     for i in range(2)
    ... ]
    >>> results = TrialStack(sims).run(num_pulses=2)
    >>> [r.times.shape for r in results]
    [(2, 3, 4), (2, 3, 5)]
    """

    def __init__(
        self,
        sims: Sequence[FastSimulation],
        compact_depth: bool = True,
        compact_width: bool = True,
        neighbor_backend: str = "auto",
        kernel_backend: str = "auto",
    ) -> None:
        reason = stack_compatibility(sims)
        if reason is not None:
            raise ValueError(f"trials cannot be stacked: {reason}")
        if neighbor_backend not in NEIGHBOR_BACKENDS:
            raise ValueError(
                f"neighbor_backend must be one of {NEIGHBOR_BACKENDS}, "
                f"got {neighbor_backend!r}"
            )
        self.sims: List[FastSimulation] = list(sims)
        self.compact_depth = bool(compact_depth)
        self.compact_width = bool(compact_width)
        self.neighbor_backend = neighbor_backend
        # Eager resolution, mirroring FastSimulation: validates the name
        # and raises the install hint for an explicit "numba" without
        # the package before any trial starts.
        self.kernel_backend = kernel_backend
        self._kernel_ops = resolve_kernel_ops(kernel_backend)
        #: Row/lane-step accounting of the last :meth:`run`; see the
        #: module docstring.  ``None`` until the first run completes.
        self.compaction_stats: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Stacked per-layer inputs
    # ------------------------------------------------------------------
    def _delay_stack(
        self,
        sweeps: Sequence[_VectorSweep],
        cache: Dict[object, Tuple[np.ndarray, np.ndarray]],
        layer: int,
        k: int,
        rows: Optional[np.ndarray] = None,
        lanes: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Own ``(S, W)`` and neighbor ``(S, W, max_deg)`` delay arrays.

        Each sweep's per-trial arrays come from (and fill) its simulation's
        own delay cache; the stacked copies are cached here per layer when
        every model is pulse-invariant, else per ``(layer, k)``.  With
        compaction, ``rows`` selects the active trials and only their
        arrays are gathered (the cache key then carries the row set --
        depth-driven sets are nested, so at most one entry per distinct
        depth survives), and ``lanes`` slices the active columns out of
        the row-compacted arrays (cached under the extended key).  On a
        CSR stack the neighbor array is the flat ``(S, nnz)`` segment
        vector instead (lane compaction never coexists with CSR: CSR
        requires a uniform stack, lanes a padded one).  Trials without
        this layer (padded depth) contribute inert NaN/zero rows and are
        never queried, so delay models only ever see edges that exist in
        their own graph.
        """
        key: object = layer if self._all_pulse_invariant else (layer, k)
        if rows is not None:
            key = (key, rows.tobytes())
        if lanes is not None:
            full_own, full_nb = self._delay_stack(sweeps, cache, layer, k, rows)
            key = (key, "lanes", lanes.tobytes())
            cached = cache.get(key)
            if cached is None:
                cached = (full_own[:, lanes], full_nb[:, lanes, :])
                cache[key] = cached
            return cached
        cached = cache.get(key)
        if cached is None:
            if self._uniform:
                selected = (
                    sweeps if rows is None else [sweeps[s] for s in rows]
                )
                per_trial = [sw.delay_arrays(layer, k) for sw in selected]
                cached = (
                    np.stack([own for own, _ in per_trial]),
                    np.stack([nb for _, nb in per_trial]),
                )
            else:
                indices = np.arange(len(sweeps)) if rows is None else rows
                own = np.full((len(indices), self._width), np.nan)
                nb = np.zeros((len(indices), self._width, self._max_deg))
                for i, s in enumerate(indices):
                    if layer >= self._depths[s]:
                        continue
                    own_s, nb_s = sweeps[s].delay_arrays(layer, k)
                    own[i, : own_s.shape[0]] = own_s
                    nb[i, : nb_s.shape[0], : nb_s.shape[1]] = nb_s
                cached = (own, nb)
            cache[key] = cached
        return cached

    def _rate_stack(
        self,
        sweeps: Sequence[_VectorSweep],
        cache: Dict[object, np.ndarray],
        layer: int,
        k: int,
        rows: Optional[np.ndarray] = None,
        lanes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Clock rates of the (active) trials' nodes during pulse ``k``.

        Inert cells get rate 1 (never read through an eligible lane, but
        a finite value keeps the whole-plane arithmetic NaN-clean).
        ``lanes`` slices the active columns out of the row-compacted
        array, mirroring :meth:`_delay_stack`.
        """
        if lanes is not None:
            full = self._rate_stack(sweeps, cache, layer, k, rows)
            key = (layer, None if rows is None else rows.tobytes(),
                   "lanes", lanes.tobytes())
            if self._rates_static:
                cached = cache.get(key)
                if cached is not None:
                    return cached
            sliced = full[:, lanes]
            if self._rates_static:
                cache[key] = sliced
            return sliced
        key: object = (
            layer if rows is None else (layer, rows.tobytes())
        )
        if self._rates_static:
            cached = cache.get(key)
            if cached is not None:
                return cached
        # Callable rate providers may depend on the pulse; query per step
        # exactly as the per-trial kernel does.
        if self._uniform:
            selected = sweeps if rows is None else [sweeps[s] for s in rows]
            stacked = np.stack([sw.rate_array(layer, k) for sw in selected])
        else:
            indices = np.arange(len(sweeps)) if rows is None else rows
            stacked = np.ones((len(indices), self._width))
            for i, s in enumerate(indices):
                if layer >= self._depths[s]:
                    continue
                row = sweeps[s].rate_array(layer, k)
                stacked[i, : row.shape[0]] = row
        if self._rates_static:
            cache[key] = stacked
        return stacked

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        num_pulses: int,
        reducers: Optional[list] = None,
        store_times: bool = True,
    ) -> List[FastResult]:
        """Simulate ``num_pulses`` pulses for every trial; per-trial results.

        ``reducers`` (a list of
        :class:`~repro.analysis.streaming.StreamingReducer`) folds
        statistics online as the kernel writes each ``(S, W)`` plane.
        With ``store_times=False`` the shared matrices shrink to a
        rolling *one-pulse* window -- memory O(S, L, W) instead of
        O(S, K, L, W), and the layer-0 schedule is gathered one
        ``(S, W)`` row per pulse instead of the whole ``(S, K, W)``
        block -- and the returned results carry only the streamed
        accumulators (``result.streamed`` / ``streamed_row``; the
        matrices are ``None``).  Streamed statistics are bitwise
        identical to the materialized reducers (see
        :mod:`repro.analysis.streaming`).
        """
        sims = self.sims
        num_trials = len(sims)
        widths = [sim.graph.width for sim in sims]
        depths = [sim.graph.num_layers for sim in sims]
        width = max(widths)
        num_layers = max(depths)
        self._width = width
        self._depths = depths
        # Chaos campaigns compile to per-epoch adjacency + fault state up
        # front; trials under a campaign swap their rows of the stacked
        # tensors at epoch boundaries (see _enter_stack_epochs), which
        # needs the per-trial 3-D gather tables of the padded path.
        schedules = [
            None
            if sim.campaign is None
            else sim.campaign.compile(num_pulses, base_plan=sim.fault_plan)
            for sim in sims
        ]
        has_campaign = any(s is not None for s in schedules)
        adjacency0 = sims[0].graph.base.adjacency
        self._uniform = not has_campaign and all(
            depth == num_layers and sim.graph.base.adjacency == adjacency0
            for depth, sim in zip(depths, sims)
        )

        stream = None
        if reducers is not None or not store_times:
            from repro.analysis.streaming import (
                StreamLayout,
                StreamedStats,
                default_reducers,
            )

            if reducers is None:
                reducers = default_reducers()
            stream = StreamedStats(
                StreamLayout.from_sims(sims, num_pulses), reducers
            )

        if store_times:
            # One (S, P, W_max) layer-0 gather for the whole stack; each
            # trial's _begin_run receives its own (P, W_s) window as a view.
            layer0_block = stacked_pulse_times(
                [sim.layer0 for sim in sims],
                [sim.graph.base for sim in sims],
                num_pulses,
            )
            results = [
                sim._begin_run(
                    num_pulses,
                    layer0_times=layer0_block[s, :, : widths[s]],
                    allocate=False,
                )
                for s, sim in enumerate(sims)
            ]
            self._layer0_block = layer0_block
            self._l0_row_buffer = None
        else:
            # Streaming: no (S, P, W_max) block -- one reusable (S, W_max)
            # row refilled per pulse by stacked_pulse_row (bit-identical
            # entries; see layer0.py).
            results = [
                sim._begin_run(
                    num_pulses, allocate=False, gather_layer0=False
                )
                for sim in sims
            ]
            self._layer0_block = None
            self._l0_row_buffer = np.full((num_trials, width), np.nan)
            self._l0_schedules = [sim.layer0 for sim in sims]
            self._l0_bases = [sim.graph.base for sim in sims]
        store_pulses = num_pulses if store_times else 1
        shape = (num_trials, store_pulses, num_layers, width)

        # One shared block per matrix; each FastResult holds the trial-s
        # window view, so scalar fallbacks and analysis code read/write
        # through it.  Cells outside a trial's window stay NaN (padding
        # never turns eligible; the whole-plane fast path only runs on
        # uniform stacks).
        times = np.full(shape, np.nan)
        protocol_times = np.full(shape, np.nan)
        corrections = np.full(shape, np.nan)
        effective = np.full(shape, np.nan)
        branches = np.full(shape, BRANCH_CODES["none"], dtype=np.int8)
        for s, result in enumerate(results):
            result.times = times[s, :, : depths[s], : widths[s]]
            result.protocol_times = protocol_times[s, :, : depths[s], : widths[s]]
            result.corrections = corrections[s, :, : depths[s], : widths[s]]
            result.effective_corrections = effective[s, :, : depths[s], : widths[s]]
            result.branches = branches[s, :, : depths[s], : widths[s]]

        # Resolve the neighbor backend for the whole stack.  CSR needs one
        # shared adjacency (the segment structure is per-graph), so only
        # uniform stacks qualify; an explicit "csr" request on a padded
        # stack falls back to dense and says so in compaction_stats.
        backend_fallback: Optional[str] = None
        if self._uniform:
            backend = _resolve_backend(
                sims[0].graph.base, self.neighbor_backend
            )
        else:
            backend = "dense"
            if self.neighbor_backend == "csr":
                backend_fallback = (
                    "csr requires a uniform-adjacency static stack; "
                    "ran dense padded instead"
                )
        sweeps = [_VectorSweep(sim, backend=backend) for sim in sims]
        self._all_pulse_invariant = all(
            getattr(sim.delay_model, "pulse_invariant", False) for sim in sims
        )
        self._rates_static = all(not callable(sim._rates) for sim in sims)
        delay_cache: Dict[object, Tuple[np.ndarray, np.ndarray]] = {}
        rate_cache: Dict[int, np.ndarray] = {}

        # Padded (S, ...) fault/eligibility structure.  ``active`` marks the
        # real (non-padding) cells; None on uniform stacks (all real).
        if self._uniform:
            nb_idx = sweeps[0].nb_idx
            nb_valid = sweeps[0].nb_valid
            if backend == "csr":
                sweep0 = sweeps[0]
                self._csr = (
                    sweep0.indptr,
                    sweep0.indices,
                    sweep0.owner,
                    sweep0.has_neighbors,
                )
                self._max_deg = sweep0.max_deg
            else:
                self._csr = None
                self._max_deg = nb_idx.shape[1]
            static_eligible = np.stack([sweep.static_eligible for sweep in sweeps])
            faulty = np.stack([sweep.faulty for sweep in sweeps])
            active = None
        else:
            self._csr = None
            self._max_deg = max(sweep.nb_idx.shape[1] for sweep in sweeps)
            nb_idx = np.zeros((num_trials, width, self._max_deg), dtype=np.int64)
            nb_valid = np.zeros((num_trials, width, self._max_deg), dtype=bool)
            static_eligible = np.zeros(
                (num_trials, num_layers - 1, width), dtype=bool
            )
            faulty = np.zeros((num_trials, num_layers, width), dtype=bool)
            for s, sweep in enumerate(sweeps):
                w, cols = sweep.nb_idx.shape
                nb_idx[s, :w, :cols] = sweep.nb_idx
                nb_valid[s, :w, :cols] = sweep.nb_valid
                static_eligible[s, : depths[s] - 1, :w] = sweep.static_eligible
                faulty[s, : depths[s], :w] = sweep.faulty
            layer_index = np.arange(num_layers)
            active = (
                (layer_index[None, :, None] < np.array(depths)[:, None, None])
                & (np.arange(width)[None, None, :] < np.array(widths)[:, None, None])
            )
        layer_has_fault = faulty.any(axis=(0, 2))

        # Per-trial parameter/policy columns when trials disagree; the
        # shared objects otherwise (scalar broadcasting, old fast path).
        params0, policy0 = sims[0].params, sims[0].policy
        self._params = (
            params0
            if all(sim.params == params0 for sim in sims)
            else _StackedParams(sims)
        )
        self._policy = (
            policy0
            if all(sim.policy == policy0 for sim in sims)
            else _StackedPolicy(sims)
        )

        # Stacked layer-0 plane writes (see _run_layer0_stacked);
        # self._layer0_block / self._l0_row_buffer were set above.
        self._l0_faulty = faulty[:, 0, :]
        self._l0_fault_trials = [
            s for s in range(num_trials) if bool(self._l0_faulty[s].any())
        ]
        width_mask = (
            np.ones((num_trials, width), dtype=bool)
            if self._uniform
            else np.arange(width)[None, :] < np.array(widths)[:, None]
        )
        self._l0_branch_row = np.where(
            width_mask, BRANCH_CODES["layer0"], BRANCH_CODES["none"]
        ).astype(np.int8)

        # Width-aware compaction bookkeeping: lane_needed[s, v] is True
        # while trial s can still use lane v.  Statically that is the
        # trial's width mask; campaign epoch entries clear lanes whose
        # vertex is absent for the whole remaining horizon (see
        # _enter_stack_epochs).  Uniform stacks have no width padding, so
        # the lane pass is skipped there outright.
        self._widths = widths
        self._lane_needed = width_mask.copy()
        compact_w = self.compact_width and active is not None

        # Depth-aware compaction bookkeeping (see the module docstring):
        # at layer ``l`` only trials with ``depth > l`` that have not gone
        # dead this iteration keep a row in the working plane.  ``dead``
        # can only ever trigger with faults -- a fault-free trial's layers
        # always pulse -- so the all-NaN probe is skipped entirely on
        # fault-free stacks.
        compact = self.compact_depth
        depths_arr = np.array(depths)
        any_fault = bool(faulty.any())
        dead = np.zeros(num_trials, dtype=bool)
        self._row_cache: Dict[bytes, Dict[str, object]] = {}
        padded_row_steps = num_pulses * max(num_layers - 1, 0) * num_trials
        active_row_steps = 0
        # Lane-step (cell) accounting: padded cost is every row step times
        # the full padded width; the active count sums rows x lanes over
        # the steps actually executed.
        padded_lane_steps = padded_row_steps * width
        active_lane_steps = 0

        # Campaign bookkeeping: per-trial epoch cursor and per-trial sweep
        # cache keyed by epoch state (a topology that returns to an earlier
        # state reuses its gather tensors).  Seed graph/plan are restored
        # after the run even on error.
        epoch_cursor = [-1] * num_trials
        sweep_caches: List[Dict[Tuple, _VectorSweep]] = [{} for _ in sims]
        seed_states = [
            (sim.graph, sim.fault_plan, sim._layer0_has_fault) for sim in sims
        ]

        try:
            for k in range(num_pulses):
                if has_campaign and self._enter_stack_epochs(
                    k, schedules, epoch_cursor, sweep_caches, sweeps,
                    nb_idx, nb_valid, static_eligible, faulty,
                ):
                    # Rows of the stacked tensors changed in place: refresh
                    # every structure derived from them.  The stack-level
                    # delay cache and the compacted row gathers hold stale
                    # copies; the rate caches survive (rates are keyed by
                    # node id and the vertex set never changes).
                    layer_has_fault = faulty.any(axis=(0, 2))
                    any_fault = bool(faulty.any())
                    dead[:] = False
                    delay_cache.clear()
                    self._row_cache = {}
                    self._l0_fault_trials = [
                        s
                        for s in range(num_trials)
                        if bool(self._l0_faulty[s].any())
                    ]
                rk = k if store_times else 0
                if not store_times and k > 0:
                    # Recycle the rolling one-pulse window for this iteration.
                    times[:, 0] = np.nan
                    protocol_times[:, 0] = np.nan
                    corrections[:, 0] = np.nan
                    effective[:, 0] = np.nan
                    branches[:, 0] = BRANCH_CODES["none"]
                self._run_layer0_stacked(
                    results, times, protocol_times, branches, k, rk
                )
                if stream is not None:
                    stream.update(
                        k, 0, times[:, rk, 0, :], corrections[:, rk, 0, :]
                    )
                if compact and any_fault:
                    dead[:] = False
                for layer in range(1, num_layers):
                    rows: Optional[np.ndarray] = None
                    lanes: Optional[np.ndarray] = None
                    skipped = False
                    if compact:
                        mask = depths_arr > layer
                        if any_fault:
                            # A trial goes dead for the rest of this iteration
                            # when *no* node of its previous layer produced a
                            # pulse (protocol row all-NaN): correct nodes sent
                            # nothing and faulty nodes recorded no sends, so
                            # no message can reach this or any deeper layer.
                            candidates = np.flatnonzero(mask & ~dead)
                            if candidates.size:
                                silent = np.isnan(
                                    protocol_times[candidates, rk, layer - 1, :]
                                ).all(axis=1)
                                if silent.any():
                                    dead[candidates[silent]] = True
                            mask &= ~dead
                        if not mask.all():
                            if not mask.any():
                                skipped = True
                            else:
                                rows = np.flatnonzero(mask)
                    if not skipped and compact_w:
                        # Union of lanes still needed by the active rows:
                        # drop the columns nobody will read or write.
                        need = (
                            self._lane_needed
                            if rows is None
                            else self._lane_needed[rows]
                        )
                        used = need.any(axis=0)
                        if not used.all():
                            if not used.any():
                                skipped = True
                            else:
                                lanes = np.flatnonzero(used)
                                if rows is None:
                                    rows = np.arange(
                                        num_trials, dtype=np.int64
                                    )
                    if not skipped:
                        row_count = (
                            num_trials if rows is None else int(rows.size)
                        )
                        active_row_steps += row_count
                        active_lane_steps += row_count * (
                            width if lanes is None else int(lanes.size)
                        )
                        self._run_layer_stacked(
                            results,
                            times,
                            protocol_times,
                            corrections,
                            effective,
                            branches,
                            nb_idx,
                            nb_valid,
                            static_eligible,
                            faulty,
                            active,
                            bool(layer_has_fault[layer]),
                            self._delay_stack(
                                sweeps, delay_cache, layer, k, rows, lanes
                            ),
                            self._rate_stack(
                                sweeps, rate_cache, layer, k, rows, lanes
                            ),
                            k,
                            layer,
                            rows,
                            rk,
                            lanes,
                        )
                    if stream is not None:
                        # Skipped steps still update with an empty rows hint so
                        # the inter-layer reducer retires its buffer plane.
                        stream.update(
                            k,
                            layer,
                            times[:, rk, layer, :],
                            corrections[:, rk, layer, :],
                            _NO_ROWS if skipped else rows,
                        )
        finally:
            if has_campaign:
                for sim, state in zip(sims, seed_states):
                    sim.graph, sim.fault_plan, sim._layer0_has_fault = state

        for s, schedule in enumerate(schedules):
            if schedule is not None:
                results[s].campaign = sims[s].campaign
                results[s].churn_stats = schedule.summary()

        self.compaction_stats = {
            "enabled": compact,
            "trials": num_trials,
            "num_layers": num_layers,
            "min_depth": int(min(depths)),
            "max_depth": int(max(depths)),
            "padded_row_steps": padded_row_steps,
            "active_row_steps": active_row_steps,
            "dropped_fraction": (
                1.0 - active_row_steps / padded_row_steps
                if padded_row_steps
                else 0.0
            ),
            # Which axes this run compacted along -- process-shard merges
            # of BatchResult.compaction_stats stay unambiguous about what
            # each dict's numbers mean.
            "axes": [
                axis
                for axis, on in (("depth", compact), ("width", compact_w))
                if on
            ],
            "min_width": int(min(widths)),
            "max_width": int(max(widths)),
            "padded_lane_steps": padded_lane_steps,
            "active_lane_steps": active_lane_steps,
            "lane_dropped_fraction": (
                1.0 - active_lane_steps / padded_lane_steps
                if padded_lane_steps
                else 0.0
            ),
            "neighbor_backend": backend,
            "backend_fallback": backend_fallback,
            "kernel_backend": self._kernel_ops.name,
            # Batched-fallback accounting: total kernel-rejected cells
            # resolved by the masked replay, and in how many batched
            # passes.  Zero on fault-free stacks.
            "fallback_cells": sum(r.fallback_cells for r in results),
            "fallback_batches": sum(r.fallback_batches for r in results),
        }

        if stream is not None:
            stream.finalize()
            for s, result in enumerate(results):
                result.streamed = stream
                result.streamed_row = s
        if not store_times:
            # The rolling window holds only the last pulse -- meaningless
            # as a result matrix.  Drop every matrix reference so the
            # memory goes with it; the statistics live in ``streamed``.
            for result in results:
                result.times = None
                result.protocol_times = None
                result.corrections = None
                result.effective_corrections = None
                result.branches = None
            self._l0_row_buffer = None
            return results

        # Freeze the shared block and hand it to every result: stacked
        # results are immutable snapshots (a write through any window
        # would silently corrupt its siblings and any adopting
        # BatchResult), and the attached block is what lets a single-stack
        # BatchResult skip re-materializing (S, K, L_max, W_max) copies.
        block = _StackBlock(times, corrections, effective, faulty)
        for array in (times, protocol_times, corrections, effective,
                      branches, faulty):
            array.flags.writeable = False
        for s, result in enumerate(results):
            for attr in ("times", "protocol_times", "corrections",
                         "effective_corrections", "branches"):
                getattr(result, attr).flags.writeable = False
            result.stack_block = block
            result.stack_row = s
        return results

    def _enter_stack_epochs(
        self,
        k: int,
        schedules: Sequence[Optional[object]],
        epoch_cursor: List[int],
        sweep_caches: List[Dict[Tuple, _VectorSweep]],
        sweeps: List[_VectorSweep],
        nb_idx: np.ndarray,
        nb_valid: np.ndarray,
        static_eligible: np.ndarray,
        faulty: np.ndarray,
    ) -> bool:
        """Advance campaign trials into pulse ``k``'s epoch; True if any moved.

        For each trial whose compiled schedule crosses an epoch boundary at
        ``k``, swaps the simulation's graph/plan
        (:meth:`FastSimulation._enter_epoch`), replaces its sweep (cached
        per epoch state, so revisited topologies rebuild nothing), and
        rewrites the trial's *rows* of the stacked gather/eligibility/fault
        tensors in place -- zeroing stale lanes first, since an epoch
        graph's max degree can shrink.  Unchanged trials (and unchanged
        pulses) cost one integer comparison each, which is what makes
        quiet epochs free.  The caller refreshes the derived aggregates
        (``layer_has_fault``, the delay/row caches) when this returns True.
        """
        changed = False
        for s, schedule in enumerate(schedules):
            if schedule is None:
                continue
            index = schedule.epoch_index(k)
            if index == epoch_cursor[s]:
                continue
            epoch_cursor[s] = index
            epoch = schedule.epochs[index]
            sim = self.sims[s]
            sim._enter_epoch(epoch)
            sweep = sweep_caches[s].get(epoch.state_key)
            if sweep is None:
                # Campaign stacks are padded (never uniform), so epoch
                # sweeps must carry the dense gather tables the stacked
                # 3-D tensors are rebuilt from.
                sweep = _VectorSweep(sim, backend="dense")
                sweep_caches[s][epoch.state_key] = sweep
            sweeps[s] = sweep
            # A vertex absent from this epoch through the end of the
            # horizon can never act again: free its lane.  Absence only
            # accumulates toward the horizon tail, so freed lanes stay
            # freed at later boundaries.
            lane_row = np.arange(self._lane_needed.shape[1]) < self._widths[s]
            gone = frozenset.intersection(
                *(ep.absent for ep in schedule.epochs[index:])
            )
            if gone:
                lane_row[np.fromiter(gone, dtype=np.int64)] = False
            self._lane_needed[s] = lane_row
            w, cols = sweep.nb_idx.shape
            depth = self._depths[s]
            nb_idx[s] = 0
            nb_valid[s] = False
            nb_idx[s, :w, :cols] = sweep.nb_idx
            nb_valid[s, :w, :cols] = sweep.nb_valid
            static_eligible[s] = False
            static_eligible[s, : depth - 1, :w] = sweep.static_eligible
            faulty[s] = False
            faulty[s, :depth, :w] = sweep.faulty
            changed = True
        return changed

    def _run_layer0_stacked(
        self,
        results: List[FastResult],
        times: np.ndarray,
        protocol_times: np.ndarray,
        branches: np.ndarray,
        k: int,
        rk: int,
    ) -> None:
        """Write layer 0's pulse-``k`` plane for every trial at once.

        Mirrors :meth:`FastSimulation._run_layer0` with a leading trial
        axis over the stacked ``(S, P, W_max)`` schedule block -- or, on
        streamed runs, over one reusable ``(S, W_max)`` row refilled per
        pulse by :func:`~repro.core.layer0.stacked_pulse_row`
        (bit-identical entries).  ``rk`` is the block's storage row for
        pulse ``k`` (``k`` itself, or 0 on the rolling window).  Only
        trials with layer-0 faults drop to a per-vertex loop (their
        ``fault_sends`` bookkeeping is inherently per-edge).
        """
        if self._layer0_block is not None:
            row = self._layer0_block[:, k, :]  # (S, W), NaN on padding
        else:
            row = stacked_pulse_row(
                self._l0_schedules,
                self._l0_bases,
                k,
                out=self._l0_row_buffer,
            )
        protocol_times[:, rk, 0, :] = row
        branches[:, rk, 0, :] = self._l0_branch_row
        times[:, rk, 0, :] = np.where(self._l0_faulty, np.nan, row)
        for s in self._l0_fault_trials:
            for v in np.nonzero(self._l0_faulty[s])[0]:
                self.sims[s]._record_fault_sends(
                    results[s], (int(v), 0), k, float(row[s, v])
                )

    def _row_structs(
        self,
        rows: np.ndarray,
        nb_idx: Optional[np.ndarray],
        nb_valid: Optional[np.ndarray],
        static_eligible: np.ndarray,
        faulty: np.ndarray,
        active: Optional[np.ndarray],
        lanes: Optional[np.ndarray] = None,
    ) -> Dict[str, object]:
        """Compacted per-row/lane-set kernel inputs, cached by both sets.

        Depth-driven active sets are nested (they only shrink as the
        layer index grows), so at most one entry per distinct depth is
        ever built; dead-trial sets add at most a handful more, and lane
        sets one entry per distinct (row set, lane set) pair.  Shared
        2-D gather tables (uniform stacks) are row-independent and pass
        through untouched; CSR stacks carry no padded tables at all
        (``nb_idx``/``nb_valid`` are None and the kernel reads the
        stack's shared CSR arrays).  With ``lanes``, the padded tables
        are additionally re-indexed into the compact column space:
        ``lane_pos`` maps original vertex ids to compacted columns, and
        entries pointing at dropped lanes (only ever behind an invalid
        mask -- no valid entry of an active trial references a dropped
        lane) collapse to column 0 harmlessly.
        """
        key = (
            rows.tobytes()
            if lanes is None
            else rows.tobytes() + b"|" + lanes.tobytes()
        )
        cached = self._row_cache.get(key)
        if cached is None:
            if nb_idx is None:
                sub_idx = None
                sub_valid = None
            elif nb_idx.ndim == 3:
                sub_idx = nb_idx[rows]
                sub_valid = nb_valid[rows]
            else:
                sub_idx = nb_idx
                sub_valid = nb_valid
            sub_eligible = static_eligible[rows]
            sub_faulty = faulty[rows]
            sub_active = None if active is None else active[rows]
            if lanes is not None:
                lane_pos = np.zeros(self._width, dtype=np.int64)
                lane_pos[lanes] = np.arange(lanes.size, dtype=np.int64)
                sub_idx = lane_pos[sub_idx[:, lanes, :]]
                sub_valid = sub_valid[:, lanes, :]
                sub_eligible = sub_eligible[:, :, lanes]
                sub_faulty = sub_faulty[:, :, lanes]
                sub_active = sub_active[:, :, lanes]
            cached = {
                "nb_idx": sub_idx,
                "nb_valid": sub_valid,
                "static_eligible": sub_eligible,
                "faulty": sub_faulty,
                "active": sub_active,
                "lanes": lanes,
                "params": (
                    self._params.take(rows)
                    if isinstance(self._params, _StackedParams)
                    else self._params
                ),
                "policy": (
                    self._policy.take(rows)
                    if isinstance(self._policy, _StackedPolicy)
                    else self._policy
                ),
            }
            self._row_cache[key] = cached
        return cached

    def _run_layer_compacted(
        self,
        results: List[FastResult],
        times: np.ndarray,
        protocol_times: np.ndarray,
        corrections: np.ndarray,
        effective: np.ndarray,
        branches_out: np.ndarray,
        structs: Dict[str, object],
        delays: Tuple[np.ndarray, np.ndarray],
        rate: np.ndarray,
        k: int,
        layer: int,
        rows: np.ndarray,
        rk: int,
    ) -> None:
        """Pulse ``k`` of ``layer`` on the compacted ``(S_active, W)`` plane.

        The same kernel expressions as the uncompacted path, evaluated on
        the active rows only and scattered back through ``rows``.  Cells
        the uncompacted path would have left at their initial padding
        values (``NaN``/``"none"``) are re-written with exactly those
        values by the masked scatter, so the output is bit-identical; the
        dropped rows are untouched and keep their initial padding, which
        is also what the uncompacted path produces for them (inert or
        silent rows are never eligible and their scalar replays record
        nothing).  With a lane set (``structs["lanes"]``) the plane
        shrinks along the width axis as well, to ``(A, C)``: results
        scatter back through the ``rows x lanes`` cross product, and the
        dropped lanes keep their initial padding -- which is exact for
        the same reason dropped rows are, because a lane is only dropped
        when no surviving row still needs it (its cells are width
        padding, or belong to horizon-absent vertices whose scalar
        replay writes exactly the padding values and records nothing).
        ``rk`` is the block's storage row for pulse ``k``.
        """
        sims = self.sims
        lanes = structs["lanes"]
        if lanes is None:
            prev = times[rows, rk, layer - 1, :]  # (A, W), NaN = missing
        else:
            prev = times[rows[:, None], rk, layer - 1, lanes[None, :]]
        own_delay, nb_delay = delays

        simplified = sims[0].algorithm == "simplified"
        if self._csr is not None:
            indptr, indices, owner, has_neighbors = self._csr
            eligible, correction, branches, pulse_time, eff = (
                _layer_step_kernel_csr(
                    prev,
                    own_delay,
                    nb_delay,
                    rate,
                    indptr,
                    indices,
                    owner,
                    has_neighbors,
                    structs["static_eligible"][:, layer - 1, :],
                    structs["params"],
                    structs["policy"],
                    simplified,
                    ops=self._kernel_ops,
                )
            )
        else:
            eligible, correction, branches, pulse_time, eff = (
                _layer_step_kernel(
                    prev,
                    own_delay,
                    nb_delay,
                    rate,
                    structs["nb_idx"],
                    structs["nb_valid"],
                    structs["static_eligible"][:, layer - 1, :],
                    structs["params"],
                    structs["policy"],
                    simplified,
                    ops=self._kernel_ops,
                )
            )

        faulty_here = structs["faulty"][:, layer, :]
        if lanes is None:
            ri, ci = rows, slice(None)
        else:
            ri, ci = rows[:, None], lanes[None, :]
        corrections[ri, rk, layer, ci] = np.where(eligible, correction, np.nan)
        branches_out[ri, rk, layer, ci] = np.where(
            eligible, branches, BRANCH_CODES["none"]
        )
        effective[ri, rk, layer, ci] = np.where(eligible, eff, np.nan)
        protocol_times[ri, rk, layer, ci] = np.where(
            eligible, pulse_time, np.nan
        )
        times[ri, rk, layer, ci] = np.where(
            eligible & ~faulty_here, pulse_time, np.nan
        )
        if faulty_here.any():
            for si, vi in zip(*np.nonzero(eligible & faulty_here)):
                s = int(rows[si])
                v = int(vi) if lanes is None else int(lanes[vi])
                sims[s]._record_fault_sends(
                    results[s], (v, layer), k, float(pulse_time[si, vi])
                )
        active = structs["active"]
        fallback = (
            ~eligible if active is None else active[:, layer, :] & ~eligible
        )
        if fallback.any():
            # One batched resolver call per trial row with rejected
            # cells (vertex ids mapped back through the lane set).
            for si in np.nonzero(fallback.any(axis=1))[0]:
                s = int(rows[si])
                vi = np.nonzero(fallback[si])[0]
                sims[s]._run_fallback_batch(
                    results[s], k, layer,
                    vi if lanes is None else lanes[vi], rk,
                )

    def _run_layer_stacked(
        self,
        results: List[FastResult],
        times: np.ndarray,
        protocol_times: np.ndarray,
        corrections: np.ndarray,
        effective: np.ndarray,
        branches_out: np.ndarray,
        nb_idx: np.ndarray,
        nb_valid: np.ndarray,
        static_eligible: np.ndarray,
        faulty: np.ndarray,
        active: Optional[np.ndarray],
        layer_faulty: bool,
        delays: Tuple[np.ndarray, np.ndarray],
        rate: np.ndarray,
        k: int,
        layer: int,
        rows: Optional[np.ndarray] = None,
        rk: Optional[int] = None,
        lanes: Optional[np.ndarray] = None,
    ) -> None:
        """Advance pulse ``k`` of ``layer`` for all ``S x W`` cells at once.

        Mirrors :meth:`FastSimulation._run_layer_vectorized` with a leading
        trial axis -- both delegate to the shape-generic
        :func:`~repro.core.fast._layer_step_kernel` (or its CSR twin on
        ``csr``-backend stacks); see the module docstring for the
        exactness argument.  ``active`` (None on uniform stacks) masks
        the padding: inert cells are never eligible, never written, and
        never replayed by the scalar fallback.  ``rows``
        (depth compaction) routes the step through the gathered
        ``(S_active, W)`` plane of :meth:`_run_layer_compacted`, and
        ``lanes`` (width compaction, always with ``rows``) narrows that
        plane to ``(S_active, C)``; the ``delays``/``rate`` arrays are
        then already row- and lane-compacted.  ``rk`` is the storage row
        of pulse ``k`` in the shared block (``k`` itself on materialized
        runs, 0 on the rolling window).
        """
        if rk is None:
            rk = k
        if rows is not None:
            self._run_layer_compacted(
                results,
                times,
                protocol_times,
                corrections,
                effective,
                branches_out,
                self._row_structs(
                    rows,
                    nb_idx,
                    nb_valid,
                    static_eligible,
                    faulty,
                    active,
                    lanes,
                ),
                delays,
                rate,
                k,
                layer,
                rows,
                rk,
            )
            return
        sims = self.sims
        prev = times[:, rk, layer - 1, :]  # (S, W) send times, NaN = missing
        own_delay, nb_delay = delays

        if self._csr is not None:
            indptr, indices, owner, has_neighbors = self._csr
            eligible, correction, branches, pulse_time, eff = (
                _layer_step_kernel_csr(
                    prev,
                    own_delay,
                    nb_delay,
                    rate,
                    indptr,
                    indices,
                    owner,
                    has_neighbors,
                    static_eligible[:, layer - 1, :],
                    self._params,
                    self._policy,
                    sims[0].algorithm == "simplified",
                    ops=self._kernel_ops,
                )
            )
        else:
            eligible, correction, branches, pulse_time, eff = (
                _layer_step_kernel(
                    prev,
                    own_delay,
                    nb_delay,
                    rate,
                    nb_idx,
                    nb_valid,
                    static_eligible[:, layer - 1, :],
                    self._params,
                    self._policy,
                    sims[0].algorithm == "simplified",
                    ops=self._kernel_ops,
                )
            )

        if active is None:
            fallback = ~eligible
            if not layer_faulty and eligible.all():
                # Common case (uniform stack, no trial has a fault on this
                # layer, every cell on the fast path): whole-plane
                # assignments, no boolean gathers.
                corrections[:, rk, layer] = correction
                branches_out[:, rk, layer] = branches
                effective[:, rk, layer] = eff
                protocol_times[:, rk, layer] = pulse_time
                times[:, rk, layer] = pulse_time
                return
        else:
            fallback = active[:, layer, :] & ~eligible
            if not layer_faulty and not fallback.any():
                # Padded analogue of the fast path: every *real* cell is
                # eligible, so one masked whole-plane select per matrix
                # (inert cells keep their NaN/"none" padding).
                corrections[:, rk, layer] = np.where(eligible, correction, np.nan)
                branches_out[:, rk, layer] = np.where(
                    eligible, branches, BRANCH_CODES["none"]
                )
                effective[:, rk, layer] = np.where(eligible, eff, np.nan)
                protocol_times[:, rk, layer] = np.where(
                    eligible, pulse_time, np.nan
                )
                times[:, rk, layer] = np.where(eligible, pulse_time, np.nan)
                return

        corrections[:, rk, layer][eligible] = correction[eligible]
        branches_out[:, rk, layer][eligible] = branches[eligible]
        effective[:, rk, layer][eligible] = eff[eligible]
        protocol_times[:, rk, layer][eligible] = pulse_time[eligible]
        faulty_here = faulty[:, layer, :]
        correct = eligible & ~faulty_here
        times[:, rk, layer][correct] = pulse_time[correct]
        if layer_faulty:
            for s, v in zip(*np.nonzero(eligible & faulty_here)):
                sims[s]._record_fault_sends(
                    results[s], (int(v), layer), k, float(pulse_time[s, v])
                )
        if fallback.any():
            for s in np.nonzero(fallback.any(axis=1))[0]:
                s = int(s)
                sims[s]._run_fallback_batch(
                    results[s], k, layer, np.nonzero(fallback[s])[0], rk
                )
