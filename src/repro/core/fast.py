"""Fast layer-recurrence simulator.

Delays and hardware clock rates are static within a pulse (the paper's
model), so the ``k``-th pulse of layer ``l`` is a deterministic function of
the ``k``-th pulses of layer ``l - 1`` (Lemma B.1).  This module evaluates
that recurrence directly -- pulse by pulse, layer by layer -- implementing
the *full* Algorithm 3 semantics (missing messages, early exits, the
via-``H_max`` branch) without an event queue.  The event-driven simulator
(:mod:`repro.core.network_sim`) is cross-validated against this one in the
test suite.

The per-node, per-pulse logic mirrors Algorithm 3:

1. Compute the reception time of each predecessor's pulse (send time plus
   edge delay); faulty predecessors' send times come from their
   :class:`~repro.faults.model.FaultBehavior` (``None`` = silent).
2. Replay the do-until loop.  It exits at the first local time ``tau``
   such that ``H_min`` is set and each still-missing reception has timed
   out: a missing own-copy message times out at ``H_max + k/2 + vt*k``
   (possible only once ``H_max`` is set), a missing last-neighbor message
   at ``2*H_own - H_min + 2k``.  When everything has been received the
   loop exits immediately at the final arrival.  This is the reading of
   Algorithm 3's ``until`` clause under which Lemma B.2's equivalence
   proof goes through: its case "terminated because ``H(t) = H_max + k/2
   + vt*k``" is exactly "own message still missing at exit" (so Algorithm
   1 would see ``H_own >= H_max + k/2 + vt*k``), and its other case is
   "last neighbor still missing".
3. If the own-copy message was missing at exit, pulse at local time
   ``H_max + 3k/2 + Lambda - d`` (the "own copy is missing/late" branch);
   otherwise compute the correction ``C`` (with ``H_max = +inf`` if the
   last neighbor never showed) and pulse at ``H_own + Lambda - d - C``.

Faulty nodes also run the protocol (their "correct time" anchors the fault
behaviours, as in Lemma 4.30's coupled executions) but broadcast whatever
their behaviour dictates, per successor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.correction import CorrectionPolicy, PAPER_POLICY, compute_correction
from repro.core.layer0 import Layer0Schedule, PerfectLayer0
from repro.delays.models import DelayModel, UniformDelayModel
from repro.faults.injection import FaultPlan
from repro.faults.model import FaultContext
from repro.params import Parameters
from repro.topology.layered import LayeredGraph, NodeId

__all__ = ["FastSimulation", "FastResult", "NodeOutcome", "BRANCH_CODES"]

#: Encoding of the branch that produced each pulse (see :class:`FastResult`).
BRANCH_CODES = {
    "mid": 0,
    "low": 1,
    "high": 2,
    "via_max": 3,
    "none": 4,
    "layer0": 5,
}

RateProvider = Union[None, Dict[NodeId, float], Callable[[NodeId, int], float]]


@dataclass
class NodeOutcome:
    """Outcome of one node's loop iteration (used internally and by tests)."""

    pulse_time: Optional[float]
    correction: float
    branch: str
    exit_local: Optional[float]
    h_own: float
    h_min: float
    h_max: float


class FastResult:
    """Pulse-time matrices produced by :class:`FastSimulation`.

    Attributes
    ----------
    times:
        Array of shape ``(K, L, W)``: actual broadcast time of pulse ``k``
        at node ``(v, l)``.  ``NaN`` for faulty nodes (their messages are
        per-successor; see ``fault_sends``) and for nodes that never pulse.
    protocol_times:
        Same shape: the time each node pulses *when following the protocol
        on its actual inputs* -- equal to ``times`` for correct nodes, and
        the Lemma 4.30 reference point for faulty ones.
    corrections:
        Correction ``C_{v,l}`` chosen at each iteration (``NaN`` on layer 0,
        where no pulse happened, and in the via-``H_max`` branch, which does
        not compute a correction).
    effective_corrections:
        ``H_own + Lambda - d - H(pulse)``: the correction *effectively*
        applied relative to the own-copy reception, defined whenever the own
        message eventually arrived.  Equals ``corrections`` on the normal
        branch; in the via-``H_max`` branch it reconstructs the correction
        Lemma B.2 attributes to Algorithm 1.  This is the quantity the
        SC/FC/JC condition checkers consume.
    branches:
        ``int8`` codes per :data:`BRANCH_CODES`.
    fault_sends:
        ``{(faulty_node, successor): {pulse: send_time_or_None}}``.
    """

    def __init__(
        self,
        graph: LayeredGraph,
        params: Parameters,
        fault_plan: FaultPlan,
        num_pulses: int,
    ) -> None:
        shape = (num_pulses, graph.num_layers, graph.width)
        self.graph = graph
        self.params = params
        self.fault_plan = fault_plan
        self.num_pulses = num_pulses
        self.times = np.full(shape, np.nan)
        self.protocol_times = np.full(shape, np.nan)
        self.corrections = np.full(shape, np.nan)
        self.effective_corrections = np.full(shape, np.nan)
        self.branches = np.full(shape, BRANCH_CODES["none"], dtype=np.int8)
        self.fault_sends: Dict[Tuple[NodeId, NodeId], Dict[int, Optional[float]]] = {}

    @property
    def faulty_mask(self) -> np.ndarray:
        """Boolean array ``(L, W)``: True where the node is faulty."""
        mask = np.zeros((self.graph.num_layers, self.graph.width), dtype=bool)
        for v, layer in self.fault_plan.faulty_nodes():
            mask[layer, v] = True
        return mask

    def pulse_time(self, node: NodeId, pulse: int) -> float:
        """Broadcast time (NaN if none); convenience accessor."""
        v, layer = node
        return float(self.times[pulse, layer, v])

    # Convenience delegates into the analysis package (lazy import to keep
    # the dependency direction core <- analysis).
    def local_skew(self, layer: int) -> float:
        """Measured ``L_layer`` over all recorded pulses."""
        from repro.analysis.skew import local_skew_per_layer

        return local_skew_per_layer(self)[layer]

    def max_local_skew(self) -> float:
        """Measured ``sup_l L_l``."""
        from repro.analysis.skew import max_local_skew

        return max_local_skew(self)

    def global_skew(self) -> float:
        """Measured global skew ``max_l Psi^0``-style same-layer spread."""
        from repro.analysis.skew import global_skew

        return global_skew(self)


class FastSimulation:
    """Closed-form grid simulation (see module docstring).

    Parameters
    ----------
    graph:
        The layered graph ``G``.
    params:
        Timing parameters.
    delay_model:
        Edge delays; default uniform midpoint ``d - u/2``.
    clock_rates:
        Per-node hardware clock rates in ``[1, vartheta]``: a dict keyed by
        node, a callable ``(node, pulse) -> rate`` (rates may change between
        pulses for Corollary 1.5 runs), or None for rate 1 everywhere.
    fault_plan:
        The faulty set and behaviours.
    layer0:
        Layer-0 pulse schedule; default :class:`PerfectLayer0`.
    policy:
        Correction-rule ablation knobs.
    algorithm:
        ``"full"`` (Algorithm 3) or ``"simplified"`` (Algorithm 1: waits for
        all predecessors; deadlocks on crashed predecessors exactly as the
        paper warns).
    """

    def __init__(
        self,
        graph: LayeredGraph,
        params: Parameters,
        delay_model: Optional[DelayModel] = None,
        clock_rates: RateProvider = None,
        fault_plan: Optional[FaultPlan] = None,
        layer0: Optional[Layer0Schedule] = None,
        policy: CorrectionPolicy = PAPER_POLICY,
        algorithm: str = "full",
    ) -> None:
        if algorithm not in ("full", "simplified"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.graph = graph
        self.params = params
        self.delay_model = delay_model or UniformDelayModel(params.d, params.u)
        self.fault_plan = fault_plan or FaultPlan.none()
        self.layer0 = layer0 or PerfectLayer0(params.Lambda)
        self.policy = policy
        self.algorithm = algorithm
        self._rates = clock_rates

    # ------------------------------------------------------------------
    # Clock rates
    # ------------------------------------------------------------------
    def rate(self, node: NodeId, pulse: int) -> float:
        """Hardware clock rate of ``node`` during iteration ``pulse``."""
        if self._rates is None:
            return 1.0
        if callable(self._rates):
            return float(self._rates(node, pulse))
        return float(self._rates.get(node, 1.0))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, num_pulses: int) -> FastResult:
        """Simulate ``num_pulses`` pulses through all layers."""
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        result = FastResult(self.graph, self.params, self.fault_plan, num_pulses)
        for k in range(num_pulses):
            self._run_layer0(result, k)
            for layer in range(1, self.graph.num_layers):
                self._run_layer(result, k, layer)
        return result

    def _run_layer0(self, result: FastResult, k: int) -> None:
        for v in self.graph.base.nodes():
            node = (v, 0)
            t = self.layer0.pulse_time(v, k)
            result.protocol_times[k, 0, v] = t
            result.branches[k, 0, v] = BRANCH_CODES["layer0"]
            if self.fault_plan.is_faulty(node):
                self._record_fault_sends(result, node, k, t)
            else:
                result.times[k, 0, v] = t

    def _run_layer(self, result: FastResult, k: int, layer: int) -> None:
        for v in self.graph.base.nodes():
            node = (v, layer)
            outcome = self._run_node(result, node, k)
            result.corrections[k, layer, v] = outcome.correction
            result.branches[k, layer, v] = BRANCH_CODES[outcome.branch]
            if outcome.pulse_time is None:
                continue
            if math.isfinite(outcome.h_own):
                rate = self.rate(node, k)
                result.effective_corrections[k, layer, v] = (
                    outcome.h_own
                    + self.params.Lambda
                    - self.params.d
                    - rate * outcome.pulse_time
                )
            result.protocol_times[k, layer, v] = outcome.pulse_time
            if self.fault_plan.is_faulty(node):
                self._record_fault_sends(result, node, k, outcome.pulse_time)
            else:
                result.times[k, layer, v] = outcome.pulse_time

    def _record_fault_sends(
        self, result: FastResult, node: NodeId, k: int, correct_time: float
    ) -> None:
        behavior = self.fault_plan.behavior(node)
        assert behavior is not None
        context = FaultContext(
            node=node, pulse=k, correct_time=correct_time, kappa=self.params.kappa
        )
        for successor in self.graph.successors(node):
            send = behavior.send_time(context, successor)
            result.fault_sends.setdefault((node, successor), {})[k] = send

    # ------------------------------------------------------------------
    # Reception times
    # ------------------------------------------------------------------
    def _send_time(
        self, result: FastResult, pred: NodeId, node: NodeId, k: int
    ) -> Optional[float]:
        """Time ``pred``'s pulse-``k`` message toward ``node`` leaves."""
        pv, pl = pred
        if self.fault_plan.is_faulty(pred):
            return result.fault_sends.get((pred, node), {}).get(k)
        t = result.times[k, pl, pv]
        if math.isnan(t):
            return None
        return float(t)

    def _arrivals(
        self, result: FastResult, node: NodeId, k: int
    ) -> Tuple[Optional[float], List[float]]:
        """Real reception times: (own arrival, sorted neighbor arrivals)."""
        own_pred = (node[0], node[1] - 1)
        own_send = self._send_time(result, own_pred, node, k)
        own_arrival = None
        if own_send is not None:
            own_arrival = own_send + self.delay_model.delay((own_pred, node), k)
        neighbor_arrivals = []
        for pred in self.graph.neighbor_predecessors(node):
            send = self._send_time(result, pred, node, k)
            if send is None:
                continue
            neighbor_arrivals.append(
                send + self.delay_model.delay((pred, node), k)
            )
        neighbor_arrivals.sort()
        return own_arrival, neighbor_arrivals

    # ------------------------------------------------------------------
    # Algorithm 3 loop replay
    # ------------------------------------------------------------------
    def _run_node(self, result: FastResult, node: NodeId, k: int) -> NodeOutcome:
        own_arrival, neighbor_arrivals = self._arrivals(result, node, k)
        rate = self.rate(node, k)
        num_neighbors = len(self.graph.neighbor_predecessors(node))
        if self.algorithm == "simplified":
            return self._run_node_simplified(
                own_arrival, neighbor_arrivals, num_neighbors, rate
            )
        return self._run_node_full(
            own_arrival, neighbor_arrivals, num_neighbors, rate
        )

    def _run_node_simplified(
        self,
        own_arrival: Optional[float],
        neighbor_arrivals: List[float],
        num_neighbors: int,
        rate: float,
    ) -> NodeOutcome:
        """Algorithm 1: wait for own + first + last neighbor, then correct."""
        if own_arrival is None or len(neighbor_arrivals) < num_neighbors:
            return NodeOutcome(None, math.nan, "none", None, math.inf, math.inf, math.inf)
        h_own = rate * own_arrival
        h_min = rate * neighbor_arrivals[0]
        h_max = rate * neighbor_arrivals[-1]
        outcome = compute_correction(
            h_own,
            h_min,
            h_max,
            self.params.kappa,
            self.params.vartheta,
            self.policy,
        )
        target = h_own + self.params.Lambda - self.params.d - outcome.correction
        ready = max(h_own, h_max)
        pulse_local = max(target, ready)
        return NodeOutcome(
            pulse_time=pulse_local / rate,
            correction=outcome.correction,
            branch=outcome.branch,
            exit_local=ready,
            h_own=h_own,
            h_min=h_min,
            h_max=h_max,
        )

    @staticmethod
    def _exit_requirement(
        h_own: float,
        h_min: float,
        h_max: float,
        now: float,
        kappa: float,
        vartheta: float,
    ) -> Optional[float]:
        """Earliest local exit time given the receptions known at ``now``.

        None when the loop cannot exit yet by waiting (no neighbor message,
        or both the own copy and the last neighbor are missing).
        """
        if math.isinf(h_min):
            return None
        required = now
        if math.isinf(h_own):
            if math.isinf(h_max):
                return None
            required = max(required, h_max + kappa / 2.0 + vartheta * kappa)
        if math.isinf(h_max):
            required = max(required, 2.0 * h_own - h_min + 2.0 * kappa)
        return required

    def _run_node_full(
        self,
        own_arrival: Optional[float],
        neighbor_arrivals: List[float],
        num_neighbors: int,
        rate: float,
    ) -> NodeOutcome:
        """Algorithm 3: replay the do-until loop and branch on exit cause."""
        params = self.params
        kappa = params.kappa
        vartheta = params.vartheta

        # Build the chronological arrival event list in *local* time.
        events: List[Tuple[float, str]] = []
        if own_arrival is not None:
            events.append((rate * own_arrival, "own"))
        for arrival in neighbor_arrivals:
            events.append((rate * arrival, "neighbor"))
        events.sort(key=lambda e: (e[0], e[1] != "neighbor"))
        # Ties: neighbors before own, matching the pseudocode's statement
        # order being irrelevant (any deterministic rule works; tests pin it).

        h_own = math.inf
        h_min = math.inf
        h_max = math.inf
        received = 0
        exit_tau: Optional[float] = None
        own_missing_at_exit = False

        for i, (h_arrival, kind) in enumerate(events):
            if kind == "own":
                h_own = min(h_own, h_arrival)
            else:
                received += 1
                if received == 1:
                    h_min = h_arrival
                if received == num_neighbors:
                    h_max = h_arrival
            required = self._exit_requirement(
                h_own, h_min, h_max, h_arrival, kappa, vartheta
            )
            if required is None:
                continue
            next_arrival = events[i + 1][0] if i + 1 < len(events) else math.inf
            if required < next_arrival:
                exit_tau = required
                own_missing_at_exit = math.isinf(h_own)
                break

        if exit_tau is None:
            # No neighbor message, or own copy and last neighbor both
            # missing: the loop never exits.  Only possible with >= 2
            # silent predecessors (outside the fault model).
            return NodeOutcome(
                None, math.nan, "none", None, h_own, h_min, h_max
            )

        if own_missing_at_exit:
            # Algorithm 3's "H(t) = H_max + k/2 + vt*k" branch: the own
            # copy's message did not arrive in time; anchor on H_max.
            pulse_local = h_max + 1.5 * kappa + params.Lambda - params.d
            pulse_local = max(pulse_local, exit_tau)
            return NodeOutcome(
                pulse_time=pulse_local / rate,
                correction=math.nan,
                branch="via_max",
                exit_local=exit_tau,
                h_own=h_own,
                h_min=h_min,
                h_max=h_max,
            )

        # Else branch: H_own and H_min are finite here; H_max may be +inf
        # (last neighbor missing), which drives the correction negative.
        outcome = compute_correction(
            h_own, h_min, h_max, kappa, vartheta, self.policy
        )
        target = h_own + params.Lambda - params.d - outcome.correction
        pulse_local = max(target, exit_tau)
        return NodeOutcome(
            pulse_time=pulse_local / rate,
            correction=outcome.correction,
            branch=outcome.branch,
            exit_local=exit_tau,
            h_own=h_own,
            h_min=h_min,
            h_max=h_max,
        )
