"""Fast layer-recurrence simulator.

Delays and hardware clock rates are static within a pulse (the paper's
model), so the ``k``-th pulse of layer ``l`` is a deterministic function of
the ``k``-th pulses of layer ``l - 1`` (Lemma B.1).  This module evaluates
that recurrence directly -- pulse by pulse, layer by layer -- implementing
the *full* Algorithm 3 semantics (missing messages, early exits, the
via-``H_max`` branch) without an event queue.  The event-driven simulator
(:mod:`repro.core.network_sim`) is cross-validated against this one in the
test suite.

The per-node, per-pulse logic mirrors Algorithm 3:

1. Compute the reception time of each predecessor's pulse (send time plus
   edge delay); faulty predecessors' send times come from their
   :class:`~repro.faults.model.FaultBehavior` (``None`` = silent).
2. Replay the do-until loop.  It exits at the first local time ``tau``
   such that ``H_min`` is set and each still-missing reception has timed
   out: a missing own-copy message times out at ``H_max + k/2 + vt*k``
   (possible only once ``H_max`` is set), a missing last-neighbor message
   at ``2*H_own - H_min + 2k``.  When everything has been received the
   loop exits immediately at the final arrival.  This is the reading of
   Algorithm 3's ``until`` clause under which Lemma B.2's equivalence
   proof goes through: its case "terminated because ``H(t) = H_max + k/2
   + vt*k``" is exactly "own message still missing at exit" (so Algorithm
   1 would see ``H_own >= H_max + k/2 + vt*k``), and its other case is
   "last neighbor still missing".
3. If the own-copy message was missing at exit, pulse at local time
   ``H_max + 3k/2 + Lambda - d`` (the "own copy is missing/late" branch);
   otherwise compute the correction ``C`` (with ``H_max = +inf`` if the
   last neighbor never showed) and pulse at ``H_own + Lambda - d - C``.

Faulty nodes also run the protocol (their "correct time" anchors the fault
behaviours, as in Lemma 4.30's coupled executions) but broadcast whatever
their behaviour dictates, per successor.

Vectorized/scalar split
-----------------------
``FastSimulation`` advances one pulse of one layer for **all** ``W`` base
vertices at once with NumPy array operations (reception times, do-until
exit, correction, pulse time), which is what makes large parameter sweeps
tractable.  The arithmetic lives in the shape-generic
:func:`_layer_step_kernel`, shared with the trial-stacked ``(S, W)``
kernel of :mod:`repro.core.fast_batch`; both algorithms run through it:

* Under the **full** Algorithm 3 semantics the kernel covers exactly the
  executions in which the do-until loop exits at the *final* arrival with
  every register filled -- the fault-free/normal-branch path.  A node is
  handled by the scalar per-node replay
  (:meth:`FastSimulation._run_node`) instead when any of its predecessors
  is faulty (reception times then come from ``fault_sends``), a
  predecessor never pulsed (missing-message regime), or the loop would
  exit *early* -- the own-copy timeout (via-``H_max`` branch,
  ``H_own > H_max + k/2 + vt*k``) or the last-neighbor timeout
  (``H_max > 2*H_own - H_min + 2k``) fires before the last arrival.
* Under the **simplified** Algorithm 1 semantics there is no do-until
  exit to predict -- the node waits for its own, first, and last neighbor
  arrival unconditionally, so those arrivals are a fixed gather and the
  fault-free case is a pure array op.  Only fault-adjacent and
  missing-message cells (where Algorithm 1 deadlocks) fall back to the
  scalar :meth:`FastSimulation._run_node_simplified` replay.

The eligibility tests are exact (ties fall back conservatively), so the
vectorized and scalar paths produce bit-identical results; the test suite
cross-validates them over random rates, delays, and fault plans.  Pass
``vectorize=False`` to force the scalar path everywhere.

For multi-trial sweeps, :mod:`repro.core.fast_batch` widens this kernel by
a leading trial axis, advancing ``S`` structurally identical simulations
through the recurrence in lock-step with ``(S, W)`` array ops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.backend import KERNEL_BACKENDS, NUMPY_OPS, resolve_kernel_ops
from repro.core.correction import CorrectionPolicy, PAPER_POLICY, compute_correction
from repro.core.layer0 import Layer0Schedule, PerfectLayer0
from repro.delays.models import DelayModel, UniformDelayModel
from repro.faults.campaign import CampaignEpoch, ChaosCampaign
from repro.faults.injection import FaultPlan
from repro.faults.model import FaultContext
from repro.params import Parameters
from repro.topology.layered import LayeredGraph, NodeId

__all__ = ["FastSimulation", "FastResult", "NodeOutcome", "BRANCH_CODES"]

#: Encoding of the branch that produced each pulse (see :class:`FastResult`).
BRANCH_CODES = {
    "mid": 0,
    "low": 1,
    "high": 2,
    "via_max": 3,
    "none": 4,
    "layer0": 5,
}

RateProvider = Union[None, Dict[NodeId, float], Callable[[NodeId, int], float]]

#: Valid values for the ``neighbor_backend`` knob.
NEIGHBOR_BACKENDS = ("auto", "dense", "csr")


def _prefer_csr(base) -> bool:
    """Density heuristic: should this base graph default to the CSR kernel?

    The dense padded tensors cost ``O(W * max_deg)`` per layer step while
    CSR costs ``O(nnz)`` (``nnz = 2m``).  CSR wins when the padding waste
    is at least 2x *and* the graph is big enough for the segment-reduce
    overhead to amortize; regular small graphs (cycles, completes, tori --
    padding ratio 1.0) stay dense.
    """
    width = base.num_nodes
    if width == 0:
        return False
    padded = width * max(base.max_degree(), 1)
    nnz = 2 * len(base.edges)
    return padded >= 4096 and 2 * nnz <= padded


def _resolve_backend(base, requested: str) -> str:
    """Resolve a ``neighbor_backend`` request against the density heuristic."""
    if requested not in NEIGHBOR_BACKENDS:
        raise ValueError(
            f"neighbor_backend must be one of {NEIGHBOR_BACKENDS}, "
            f"got {requested!r}"
        )
    if requested == "auto":
        return "csr" if _prefer_csr(base) else "dense"
    return requested


def _correction_step(
    h_own: np.ndarray,
    h_min: np.ndarray,
    h_max: np.ndarray,
    params: Parameters,
    policy: CorrectionPolicy,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized correction rule: ``compute_correction`` over a plane.

    Mirrors :func:`repro.core.correction.compute_correction`
    operation-for-operation on finite registers, so eligible kernel
    lanes and batched-fallback cells compute bit-identical floats to the
    scalar rule.  Lanes with ``H_max = +inf`` (last neighbor missing --
    reachable only through the batched fallback) reproduce the scalar
    ``raw_delta`` convention: their delta is ``-inf``, forcing the low
    branch; the formulae below would produce NaN via ``inf - inf``
    instead, so the convention is pinned explicitly.  Returns
    ``(correction, branches)``.
    """
    kappa = params.kappa
    vartheta = params.vartheta
    kappa_stacked = np.ndim(kappa) > 0

    with np.errstate(invalid="ignore", divide="ignore"):
        a = h_own - h_max
        b = h_own - h_min
        if policy.discretize:
            if not kappa_stacked and kappa == 0.0:
                delta = b
            else:
                # s_star >= 0 on every eligible lane (h_max >= h_min),
                # so the scalar path's max(0, .) clamps are no-ops.
                s_star = (h_max - h_min) / (8.0 * kappa)
                s_floor = np.floor(s_star)
                s_ceil = np.ceil(s_star)
                delta = (
                    np.minimum(
                        np.maximum(
                            a + 4.0 * s_floor * kappa,
                            b - 4.0 * s_floor * kappa,
                        ),
                        np.maximum(
                            a + 4.0 * s_ceil * kappa,
                            b - 4.0 * s_ceil * kappa,
                        ),
                    )
                    - kappa / 2.0
                )
                if kappa_stacked:
                    # kappa == 0 lanes divided by zero above; give them the
                    # scalar path's kappa == 0 answer instead.
                    delta = np.where(kappa == 0.0, b, delta)
        else:
            delta = h_own - (h_max + h_min) / 2.0 - kappa / 2.0
        delta = np.where(np.isinf(h_max), -np.inf, delta)

        upper = vartheta * kappa
        damp = policy.jump_slack * kappa
        low = delta < 0.0
        high = delta > upper
        if policy.stick_to_median:
            corr_low = np.minimum(h_own - h_min + kappa / 2.0 + damp, 0.0)
            corr_high = np.maximum(h_own - h_max - kappa / 2.0 - damp, upper)
        else:
            corr_low = np.zeros_like(delta)
            corr_high = np.broadcast_to(
                np.asarray(upper, dtype=float), delta.shape
            )
        correction = np.where(low, corr_low, np.where(high, corr_high, delta))
        branches = np.where(
            low,
            BRANCH_CODES["low"],
            np.where(high, BRANCH_CODES["high"], BRANCH_CODES["mid"]),
        ).astype(np.int8)
    return correction, branches


def _registers_step(
    h_own: np.ndarray,
    h_min: np.ndarray,
    h_max: np.ndarray,
    rate: np.ndarray,
    static_eligible: np.ndarray,
    params: Parameters,
    policy: CorrectionPolicy,
    simplified: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Eligibility, correction, and pulse time from the filled registers.

    The back half of the layer step, shared verbatim by the dense padded
    kernel (:func:`_layer_step_kernel`) and the CSR segment-reduce kernel
    (:func:`_layer_step_kernel_csr`): once ``H_own``/``H_min``/``H_max``
    are gathered, the two representations are indistinguishable -- every
    operation here is elementwise over the ``(..., W)`` plane, so equal
    registers produce bit-identical outputs regardless of how the
    neighbor reduction was evaluated.
    """
    kappa = params.kappa
    vartheta = params.vartheta

    with np.errstate(invalid="ignore", divide="ignore"):
        eligible = static_eligible & np.isfinite(h_own + h_min + h_max)
        if not simplified:
            eligible = (
                eligible
                & (h_own <= h_max + kappa / 2.0 + vartheta * kappa)
                & (h_max <= 2.0 * h_own - h_min + 2.0 * kappa)
            )

        correction, branches = _correction_step(
            h_own, h_min, h_max, params, policy
        )

        exit_tau = np.maximum(h_own, h_max)
        target = h_own + params.Lambda - params.d - correction
        pulse_local = np.maximum(target, exit_tau)
        pulse_time = pulse_local / rate
        effective = h_own + params.Lambda - params.d - rate * pulse_time

    return eligible, correction, branches, pulse_time, effective


def _layer_step_kernel(
    prev: np.ndarray,
    own_delay: np.ndarray,
    nb_delay: np.ndarray,
    rate: np.ndarray,
    nb_idx: np.ndarray,
    nb_valid: np.ndarray,
    static_eligible: np.ndarray,
    params: Parameters,
    policy: CorrectionPolicy,
    simplified: bool,
    ops=NUMPY_OPS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One pulse of one layer for every cell of a ``(..., W)`` plane.

    The shape-generic arithmetic behind both the per-trial ``(W,)`` sweep
    (:meth:`FastSimulation._run_layer_vectorized`) and the trial-stacked
    ``(S, W)`` kernel (:class:`repro.core.fast_batch.TrialStack`): every
    operation broadcasts over the leading axes, so both callers evaluate
    *the same* NumPy expressions elementwise and eligible cells produce
    bit-identical floats.  Formulae mirror the scalar replay
    operation-for-operation.

    ``prev`` holds the previous layer's send times (NaN = missing);
    ``static_eligible`` is the precomputed fault-structure part of the
    eligibility mask for this layer.  Returns ``(eligible, correction,
    branches, pulse_time, effective_correction)``; only entries where
    ``eligible`` is True are meaningful -- the rest are replayed by the
    caller through the exact scalar fallback.

    Two generalizations serve the heterogeneous trial stack of
    :mod:`repro.core.fast_batch`:

    * ``nb_idx``/``nb_valid`` may carry a leading trial axis (shape
      ``(S, W, max_deg)``): each trial then gathers through its *own*
      padded index rows (``prev[s, nb_idx[s, v, j]]``) instead of one
      shared index table.  Padded lanes are masked by ``nb_valid`` and
      padded cells stay NaN end-to-end, so they can never turn eligible.
    * the numeric fields of ``params`` (``kappa``, ``vartheta``,
      ``Lambda``, ``d``) and ``policy`` (``jump_slack``) may be
      per-trial ``(S, 1)`` columns instead of scalars; every use is
      elementwise, so lanes compute bit-identical floats to a scalar
      call with their own value.  The *structural* policy switches
      (``discretize``, ``stick_to_median``) select Python-level branches
      and must be plain bools (uniform across the stack).

    Eligibility: all predecessors correct (static part) and received (a
    missing reception turns the summed registers NaN or infinite), and --
    under the full Algorithm 3 semantics -- the loop provably exits at the
    last arrival: no own-copy timeout, no last-neighbor timeout;
    non-strict bounds are exit-free ties.  The two comparisons mirror the
    scalar ``_exit_requirement`` thresholds operation-for-operation.
    Algorithm 1 (``simplified=True``) has no timeouts -- the node waits
    for every arrival unconditionally -- so the two comparisons drop out
    and every received cell is eligible.
    """
    own_arrival = prev + own_delay
    h_own = rate * own_arrival
    # Padded gather + delay + rate product + masked min/max, delegated to
    # the selected backend (NumPy composition or a fused numba kernel;
    # bitwise identical either way -- see :mod:`repro.core.backend`).
    h_min, h_max = ops.neighbor_min_max(prev, nb_idx, nb_valid, nb_delay, rate)

    return _registers_step(
        h_own, h_min, h_max, rate, static_eligible, params, policy, simplified
    )


def _layer_step_kernel_csr(
    prev: np.ndarray,
    own_delay: np.ndarray,
    nb_delay: np.ndarray,
    rate: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    owner: np.ndarray,
    has_neighbors: np.ndarray,
    static_eligible: np.ndarray,
    params: Parameters,
    policy: CorrectionPolicy,
    simplified: bool,
    ops=NUMPY_OPS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """CSR variant of :func:`_layer_step_kernel`: reduce over edge segments.

    Instead of gathering through padded ``(..., W, max_deg)`` tensors,
    the neighbor reduction walks the base graph's
    :meth:`~repro.topology.base_graph.BaseGraph.neighbor_csr` arrays:
    per-entry arrivals are gathered along the flat ``(..., nnz)`` edge
    axis (``owner[j]`` maps entry ``j`` back to its destination vertex
    for the rate product) and ``H_min``/``H_max`` come from
    ``np.minimum.reduceat`` / ``np.maximum.reduceat`` at the segment
    starts.  Per-step memory is ``O(nnz)`` instead of ``O(W * max_deg)``,
    so a single hub vertex no longer pads every row.

    Bit-exactness: min/max over the *same value set* (each vertex's
    segment holds exactly its valid padded lane values, in the same
    sorted-neighbor order) are exact regardless of evaluation order, and
    NaN (a missing predecessor) propagates through ``reduceat`` exactly
    as through the masked dense reduction, so eligible cells match the
    dense kernel bitwise.  Empty segments (degree-0 vertices; only in
    campaign epoch graphs) get the dense path's identity values --
    ``+inf`` / ``-inf`` -- explicitly, since ``reduceat`` has no empty
    reduction: their start index is clamped into range and the garbage
    overwritten.  Such cells are statically ineligible anyway.
    """
    own_arrival = prev + own_delay
    h_own = rate * own_arrival
    nnz = indices.shape[0]
    lead = prev.shape[:-1]
    if nnz == 0:
        h_min = np.full(lead + (indptr.shape[0] - 1,), np.inf)
        h_max = np.full(lead + (indptr.shape[0] - 1,), -np.inf)
    else:
        h_min, h_max = ops.segment_min_max(
            prev, indices, indptr, nb_delay, rate, owner, has_neighbors
        )

    return _registers_step(
        h_own, h_min, h_max, rate, static_eligible, params, policy, simplified
    )


@dataclass
class NodeOutcome:
    """Outcome of one node's loop iteration (used internally and by tests)."""

    pulse_time: Optional[float]
    correction: float
    branch: str
    exit_local: Optional[float]
    h_own: float
    h_min: float
    h_max: float


class FastResult:
    """Pulse-time matrices produced by :class:`FastSimulation`.

    Attributes
    ----------
    times:
        Array of shape ``(K, L, W)``: actual broadcast time of pulse ``k``
        at node ``(v, l)``.  ``NaN`` for faulty nodes (their messages are
        per-successor; see ``fault_sends``) and for nodes that never pulse.
    protocol_times:
        Same shape: the time each node pulses *when following the protocol
        on its actual inputs* -- equal to ``times`` for correct nodes, and
        the Lemma 4.30 reference point for faulty ones.
    corrections:
        Correction ``C_{v,l}`` chosen at each iteration (``NaN`` on layer 0,
        where no pulse happened, and in the via-``H_max`` branch, which does
        not compute a correction).
    effective_corrections:
        ``H_own + Lambda - d - H(pulse)``: the correction *effectively*
        applied relative to the own-copy reception, defined whenever the own
        message eventually arrived.  Equals ``corrections`` on the normal
        branch; in the via-``H_max`` branch it reconstructs the correction
        Lemma B.2 attributes to Algorithm 1.  This is the quantity the
        SC/FC/JC condition checkers consume.
    branches:
        ``int8`` codes per :data:`BRANCH_CODES`.
    fault_sends:
        ``{(faulty_node, successor): {pulse: send_time_or_None}}``.

    Streamed runs (``store_times=False``) keep only a rolling one-pulse
    window of these matrices while running and release even that at the
    end: the matrices are then ``None`` and the statistics live in
    ``streamed`` (a :class:`~repro.analysis.streaming.StreamedStats`,
    shared across a stack) with this trial's row in ``streamed_row``.
    The skew accessors below transparently serve from it.
    """

    def __init__(
        self,
        graph: LayeredGraph,
        params: Parameters,
        fault_plan: FaultPlan,
        num_pulses: int,
        allocate: bool = True,
        storage_pulses: Optional[int] = None,
    ) -> None:
        if storage_pulses is None:
            storage_pulses = num_pulses
        shape = (storage_pulses, graph.num_layers, graph.width)
        self.graph = graph
        self.params = params
        self.fault_plan = fault_plan
        self.num_pulses = num_pulses
        if allocate:
            self.times = np.full(shape, np.nan)
            self.protocol_times = np.full(shape, np.nan)
            self.corrections = np.full(shape, np.nan)
            self.effective_corrections = np.full(shape, np.nan)
            self.branches = np.full(
                shape, BRANCH_CODES["none"], dtype=np.int8
            )
        else:
            # The caller (the trial stack, or a streaming run) attaches
            # its own windows/rolling planes before the first layer step.
            self.times = None
            self.protocol_times = None
            self.corrections = None
            self.effective_corrections = None
            self.branches = None
        self.fault_sends: Dict[Tuple[NodeId, NodeId], Dict[int, Optional[float]]] = {}
        # Batched-fallback accounting: how many kernel-rejected cells were
        # resolved by :meth:`FastSimulation._run_fallback_batch`, and in
        # how many batched passes (one per (pulse, layer) with any
        # rejected cell).  Zero on fault-free runs.
        self.fallback_cells = 0
        self.fallback_batches = 0
        # Set by campaign runs (:class:`~repro.faults.campaign.ChaosCampaign`):
        # the campaign the run executed under and its compiled accounting
        # (``CampaignSchedule.summary()``) -- epoch count, boundary pulses,
        # action count, last event pulse.  None for static runs.
        self.campaign = None
        self.churn_stats: Optional[dict] = None
        # Set by the trial-stacked runner: the shared (S, K, L_max, W_max)
        # block this result's matrices are windows of, plus this trial's
        # row.  BatchResult uses them to adopt the block without re-copying
        # (single-stack batches); everyone else can ignore them.
        self.stack_block = None
        self.stack_row: Optional[int] = None
        # Set by streamed runs: the folded statistics of the run (shared
        # across a stack) and this trial's row in their accumulators.
        self.streamed = None
        self.streamed_row: Optional[int] = None

    def __getstate__(self) -> dict:
        """Drop the shared-block backref when pickling.

        The per-trial matrices pickle as their own (window-sized) arrays;
        carrying ``stack_block`` too would serialize the whole ``S``-trial
        block once *per result* -- an ``S``-fold blowup on the process
        executor's return path.  ``streamed`` is *kept*: its accumulators
        are the entire payload of a streamed run, and pickle's memo
        serializes the shared object once per shard payload, not once per
        result.
        """
        state = self.__dict__.copy()
        state["stack_block"] = None
        state["stack_row"] = None
        return state

    @cached_property
    def faulty_mask(self) -> np.ndarray:
        """Boolean array ``(L, W)``: True where the node is faulty.

        Computed once and cached -- analysis code reads it inside loops.
        """
        return self.fault_plan.faulty_mask(self.graph)

    def pulse_time(self, node: NodeId, pulse: int) -> float:
        """Broadcast time (NaN if none); convenience accessor."""
        v, layer = node
        return float(self.times[pulse, layer, v])

    def _streamed_reducer(self, name: str):
        """The named streamed reducer, or raise when it is unavailable."""
        if self.streamed is None or name not in self.streamed:
            raise ValueError(
                "result holds no pulse-time matrices and no streamed "
                f"{name!r} reducer; run with store_times=True or include "
                "the reducer"
            )
        return self.streamed[name]

    # Convenience delegates into the analysis package (lazy import to keep
    # the dependency direction core <- analysis).  Streamed results (no
    # materialized ``times``) serve the same numbers -- bitwise, see
    # :mod:`repro.analysis.streaming` -- from their accumulators.
    def local_skew(self, layer: int) -> float:
        """Measured ``L_layer`` over all recorded pulses."""
        if self.times is None:
            values = self._streamed_reducer("local").trial_values(
                self.streamed_row
            )
            return float(values[layer])
        from repro.analysis.skew import local_skew_per_layer

        return local_skew_per_layer(self)[layer]

    def max_local_skew(self) -> float:
        """Measured ``sup_l L_l``."""
        if self.times is None:
            values = self._streamed_reducer("local").trial_values(
                self.streamed_row
            )
            return float(np.max(values))
        from repro.analysis.skew import max_local_skew

        return max_local_skew(self)

    def global_skew(self) -> float:
        """Measured global skew ``max_l Psi^0``-style same-layer spread."""
        if self.times is None:
            values = self._streamed_reducer("global").trial_values(
                self.streamed_row
            )
            return float(np.max(values))
        from repro.analysis.skew import global_skew

        return global_skew(self)


class FastSimulation:
    """Closed-form grid simulation (see module docstring).

    Parameters
    ----------
    graph:
        The layered graph ``G``.
    params:
        Timing parameters.
    delay_model:
        Edge delays; default uniform midpoint ``d - u/2``.
    clock_rates:
        Per-node hardware clock rates in ``[1, vartheta]``: a dict keyed by
        node, a callable ``(node, pulse) -> rate`` (rates may change between
        pulses for Corollary 1.5 runs), or None for rate 1 everywhere.
    fault_plan:
        The faulty set and behaviours.
    layer0:
        Layer-0 pulse schedule; default :class:`PerfectLayer0`.
    policy:
        Correction-rule ablation knobs.
    algorithm:
        ``"full"`` (Algorithm 3) or ``"simplified"`` (Algorithm 1: waits for
        all predecessors; deadlocks on crashed predecessors exactly as the
        paper warns).
    vectorize:
        Use the whole-layer array kernel where eligible (default).  The
        scalar per-node replay remains the fallback for nodes adjacent to
        faults or taking the via-``H_max``/missing-message branches; see
        the module docstring.  ``False`` forces the scalar path everywhere.
    campaign:
        Optional :class:`~repro.faults.campaign.ChaosCampaign` over the
        same base graph: the run compiles it into per-epoch adjacency +
        fault state and swaps graph/plan (re-gathering the vectorized
        sweep's neighbor tensors) at epoch boundaries only.  ``fault_plan``
        stays the *static* plan every epoch merges over.  The layer-0
        schedule is gathered once from the seed topology; membership
        changes silence a vertex's column via per-epoch crash masks rather
        than rewriting history.
    neighbor_backend:
        Neighbor representation for the vectorized sweep: ``"dense"``
        (padded ``(W, max_deg)`` gather tensors), ``"csr"``
        (segment-reduce over the base graph's
        :meth:`~repro.topology.base_graph.BaseGraph.neighbor_csr`
        arrays, ``O(nnz)`` per step), or ``"auto"`` (default: CSR for
        large graphs whose padding wastes >= 2x, dense otherwise).
        Both backends are bit-identical on eligible cells; campaign
        runs re-resolve ``"auto"`` per epoch topology.
    kernel_backend:
        Array-op implementation behind the layer-step kernels:
        ``"numpy"`` (default resolution), ``"numba"`` (fused JIT
        reductions; requires the optional ``numba`` extra) or
        ``"auto"`` (numba when installed, NumPy otherwise).  Backends
        are bitwise identical on eligible cells -- the knob is purely a
        speed choice; see :mod:`repro.core.backend`.  Resolution happens
        eagerly, so an explicit ``"numba"`` without the package raises
        here rather than mid-run.
    """

    def __init__(
        self,
        graph: LayeredGraph,
        params: Parameters,
        delay_model: Optional[DelayModel] = None,
        clock_rates: RateProvider = None,
        fault_plan: Optional[FaultPlan] = None,
        layer0: Optional[Layer0Schedule] = None,
        policy: CorrectionPolicy = PAPER_POLICY,
        algorithm: str = "full",
        vectorize: bool = True,
        campaign: Optional["ChaosCampaign"] = None,
        neighbor_backend: str = "auto",
        kernel_backend: str = "auto",
    ) -> None:
        if algorithm not in ("full", "simplified"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        if neighbor_backend not in NEIGHBOR_BACKENDS:
            raise ValueError(
                f"neighbor_backend must be one of {NEIGHBOR_BACKENDS}, "
                f"got {neighbor_backend!r}"
            )
        if campaign is not None:
            if campaign.base.num_nodes != graph.base.num_nodes or (
                campaign.base.adjacency != graph.base.adjacency
            ):
                raise ValueError(
                    "campaign's seed base graph does not match the "
                    "simulation's base graph"
                )
            if campaign.num_layers != graph.num_layers:
                raise ValueError(
                    f"campaign compiled for {campaign.num_layers} layers, "
                    f"simulation has {graph.num_layers}"
                )
        self.graph = graph
        self.params = params
        self.delay_model = delay_model or UniformDelayModel(params.d, params.u)
        self.fault_plan = fault_plan or FaultPlan.none()
        self.layer0 = layer0 or PerfectLayer0(params.Lambda)
        self.policy = policy
        self.algorithm = algorithm
        self.vectorize = vectorize
        self.campaign = campaign
        self.neighbor_backend = neighbor_backend
        # Eager resolution: validates the name, raises the install hint
        # for an explicit "numba" without the package, and picks the
        # concrete ops object every kernel call will route through.
        self.kernel_backend = kernel_backend
        self._kernel_ops = resolve_kernel_ops(kernel_backend)
        self._rates = clock_rates
        # Per-layer rate arrays for the vectorized sweep, rebuilt every run
        # so in-place edits of a rates dict between runs are honored.  The
        # per-layer *delay* arrays are cached on the delay model itself
        # (see :class:`~repro.delays.models.DelayModel`), so they survive
        # simulation reconstruction -- a batch sweep rebuilding one
        # FastSimulation per trial per run pays the per-edge Python gather
        # only once per model.
        self._rate_cache: Dict[object, np.ndarray] = {}
        # (num_pulses, W) layer-0 schedule, gathered once per run in
        # :meth:`_begin_run`; consumed row by row in :meth:`_run_layer0`.
        self._layer0_times: Optional[np.ndarray] = None
        self._layer0_has_fault = False

    # ------------------------------------------------------------------
    # Clock rates
    # ------------------------------------------------------------------
    def rate(self, node: NodeId, pulse: int) -> float:
        """Hardware clock rate of ``node`` during iteration ``pulse``."""
        if self._rates is None:
            return 1.0
        if callable(self._rates):
            return float(self._rates(node, pulse))
        return float(self._rates.get(node, 1.0))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        num_pulses: int,
        reducers: Optional[list] = None,
        store_times: bool = True,
    ) -> FastResult:
        """Simulate ``num_pulses`` pulses through all layers.

        ``reducers`` (a list of
        :class:`~repro.analysis.streaming.StreamingReducer`) folds
        statistics online, one layer plane at a time.  With
        ``store_times=False`` the run keeps only a rolling *one-pulse*
        window of the result matrices -- memory O(L, W) instead of
        O(K, L, W) -- and releases even that at the end: the returned
        result serves its skew accessors from ``result.streamed``
        (bitwise identical to the materialized reducers; ``reducers``
        defaults to :func:`~repro.analysis.streaming.default_reducers`).
        """
        stream = None
        if reducers is not None or not store_times:
            from repro.analysis.streaming import (
                StreamLayout,
                StreamedStats,
                default_reducers,
            )

            if reducers is None:
                reducers = default_reducers()
            stream = StreamedStats(
                StreamLayout.from_sims([self], num_pulses), reducers
            )
        schedule = (
            None
            if self.campaign is None
            else self.campaign.compile(num_pulses, base_plan=self.fault_plan)
        )
        result = self._begin_run(
            num_pulses, storage_pulses=num_pulses if store_times else 1
        )
        # The sweep structures depend on the fault plan, so they are built
        # per run (tests mutate ``fault_plan`` between construction and run).
        sweep = _VectorSweep(self) if self.vectorize else None
        num_layers = self.graph.num_layers
        # Campaign state: graph/plan swap at epoch boundaries; sweeps are
        # cached by epoch state so a revisited topology (an edge flapping
        # back up) reuses its gather tensors instead of rebuilding them.
        seed_state = (self.graph, self.fault_plan, self._layer0_has_fault)
        sweep_cache: Dict[Tuple, "_VectorSweep"] = {}
        epoch_index = -1
        try:
            for k in range(num_pulses):
                if schedule is not None:
                    index = schedule.epoch_index(k)
                    if index != epoch_index:
                        epoch_index = index
                        epoch = schedule.epochs[index]
                        self._enter_epoch(epoch)
                        if self.vectorize:
                            sweep = sweep_cache.get(epoch.state_key)
                            if sweep is None:
                                sweep = _VectorSweep(self)
                                sweep_cache[epoch.state_key] = sweep
                rk = k if store_times else 0
                if not store_times and k > 0:
                    # Recycle the rolling one-pulse window for this iteration.
                    result.times[0] = np.nan
                    result.protocol_times[0] = np.nan
                    result.corrections[0] = np.nan
                    result.effective_corrections[0] = np.nan
                    result.branches[0] = BRANCH_CODES["none"]
                self._run_layer0(result, k, rk)
                if stream is not None:
                    stream.update(
                        k, 0, result.times[rk, 0][None],
                        result.corrections[rk, 0][None],
                    )
                for layer in range(1, num_layers):
                    if sweep is not None:
                        self._run_layer_vectorized(result, k, layer, sweep, rk)
                    else:
                        self._run_layer(result, k, layer, rk)
                    if stream is not None:
                        stream.update(
                            k, layer, result.times[rk, layer][None],
                            result.corrections[rk, layer][None],
                        )
        finally:
            if schedule is not None:
                # Restore the seed state so the simulation can be rerun
                # (and so callers inspecting ``sim.graph`` after the run
                # see the topology they constructed it with).
                self.graph, self.fault_plan, self._layer0_has_fault = seed_state
        if schedule is not None:
            result.campaign = self.campaign
            result.churn_stats = schedule.summary()
        if stream is not None:
            stream.finalize()
            result.streamed = stream
            result.streamed_row = 0
        if not store_times:
            result.times = None
            result.protocol_times = None
            result.corrections = None
            result.effective_corrections = None
            result.branches = None
        return result

    def _begin_run(
        self,
        num_pulses: int,
        layer0_times: Optional[np.ndarray] = None,
        storage_pulses: Optional[int] = None,
        allocate: bool = True,
        gather_layer0: bool = True,
    ) -> FastResult:
        """Validate, reset the per-run caches, and allocate the result.

        Shared by :meth:`run` and the trial-stacked runner
        (:class:`repro.core.fast_batch.TrialStack`), which drives many
        simulations through the same pulse/layer recurrence in lock-step.
        Also gathers the whole ``(num_pulses, W)`` layer-0 schedule once
        (:meth:`Layer0Schedule.pulse_times_array`), replacing the old
        per-node/per-pulse ``pulse_time`` loop on every path -- including
        the scalar one, where the array rows hold bit-identical values.
        ``layer0_times`` injects a pre-gathered ``(num_pulses, W)`` block
        instead -- the trial stack slices each trial's rows out of one
        stacked :func:`~repro.core.layer0.stacked_pulse_times` fill --
        and ``gather_layer0=False`` skips the gather entirely (streamed
        stacks refill one ``(S, W)`` row per pulse instead).
        ``storage_pulses``/``allocate`` shape the result matrices:
        streamed runs keep a one-pulse rolling window, and the trial
        stack attaches window views of its own shared block
        (``allocate=False`` avoids allocating per-trial matrices that
        would be thrown away immediately).
        """
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        result = FastResult(
            self.graph,
            self.params,
            self.fault_plan,
            num_pulses,
            allocate=allocate,
            storage_pulses=storage_pulses,
        )
        self._rate_cache = {}
        if layer0_times is None and gather_layer0:
            layer0_times = self.layer0.pulse_times_array(
                self.graph.base, num_pulses
            )
        self._layer0_times = layer0_times
        self._layer0_has_fault = any(
            layer == 0 for _, layer in self.fault_plan
        )
        return result

    def _enter_epoch(self, epoch: CampaignEpoch) -> None:
        """Swap in a campaign epoch's graph and fault state.

        Called at epoch boundaries only; between boundaries every pulse
        runs exactly the static machinery on the swapped state.  The
        layer-0 *schedule* (gathered once from the seed base in
        :meth:`_begin_run`) is left alone -- an absent vertex's column is
        silenced by the epoch plan's crash mask, not by rewriting the
        schedule.  Rate caches survive (rates are keyed by node id, and
        the vertex set never changes); delay-array caches live on the
        delay model keyed by edge structure, so each distinct epoch
        topology gathers its arrays once and revisited topologies hit
        the cache.
        """
        self.graph = epoch.graph
        self.fault_plan = epoch.fault_plan
        self._layer0_has_fault = any(
            layer == 0 for _, layer in self.fault_plan
        )

    def _run_layer0(
        self, result: FastResult, k: int, row_index: Optional[int] = None
    ) -> None:
        rk = k if row_index is None else row_index
        row = self._layer0_times[k]
        result.protocol_times[rk, 0, :] = row
        result.branches[rk, 0, :] = BRANCH_CODES["layer0"]
        if not self._layer0_has_fault:
            result.times[rk, 0, :] = row
            return
        for v in self.graph.base.nodes():
            node = (v, 0)
            t = float(row[v])
            if self.fault_plan.is_faulty(node):
                self._record_fault_sends(result, node, k, t)
            else:
                result.times[rk, 0, v] = t

    def _run_layer(
        self,
        result: FastResult,
        k: int,
        layer: int,
        row_index: Optional[int] = None,
    ) -> None:
        for v in self.graph.base.nodes():
            self._run_node_and_record(result, (v, layer), k, row_index)

    def _run_node_and_record(
        self,
        result: FastResult,
        node: NodeId,
        k: int,
        row_index: Optional[int] = None,
    ) -> None:
        """Scalar path: replay one node's loop and record the outcome.

        ``row_index`` is the storage row the result matrices keep pulse
        ``k`` in -- ``k`` itself for fully materialized runs (the
        default), ``0`` for streamed runs whose matrices are a rolling
        one-pulse window.  The *logical* pulse ``k`` still keys every
        rate/delay/fault-behavior query.
        """
        rk = k if row_index is None else row_index
        v, layer = node
        outcome = self._run_node(result, node, k, row_index)
        result.corrections[rk, layer, v] = outcome.correction
        result.branches[rk, layer, v] = BRANCH_CODES[outcome.branch]
        if outcome.pulse_time is None:
            return
        if math.isfinite(outcome.h_own):
            rate = self.rate(node, k)
            result.effective_corrections[rk, layer, v] = (
                outcome.h_own
                + self.params.Lambda
                - self.params.d
                - rate * outcome.pulse_time
            )
        result.protocol_times[rk, layer, v] = outcome.pulse_time
        if self.fault_plan.is_faulty(node):
            self._record_fault_sends(result, node, k, outcome.pulse_time)
        else:
            result.times[rk, layer, v] = outcome.pulse_time

    # ------------------------------------------------------------------
    # Vectorized layer sweep
    # ------------------------------------------------------------------
    def _run_layer_vectorized(
        self,
        result: FastResult,
        k: int,
        layer: int,
        sweep: "_VectorSweep",
        row_index: Optional[int] = None,
    ) -> None:
        """Advance pulse ``k`` of ``layer`` for all ``W`` nodes at once.

        Covers the executions whose loop (the do-until replay under the
        full semantics, the wait-for-everything gather under Algorithm 1)
        completes with all registers filled; every other node falls back
        to :meth:`_run_node_and_record`.  The arithmetic lives in the
        shape-generic :func:`_layer_step_kernel`, which mirrors the scalar
        path operation-for-operation so both produce bit-identical floats.
        ``row_index`` maps pulse ``k`` to its storage row (rolling-window
        streamed runs store every pulse in row 0).
        """
        rk = k if row_index is None else row_index
        prev = result.times[rk, layer - 1, :]  # (W,) send times, NaN = missing
        own_delay, nb_delay = sweep.delay_arrays(layer, k)
        rate = sweep.rate_array(layer, k)

        if sweep.backend == "csr":
            eligible, correction, branches, pulse_time, effective = (
                _layer_step_kernel_csr(
                    prev,
                    own_delay,
                    nb_delay,
                    rate,
                    sweep.indptr,
                    sweep.indices,
                    sweep.owner,
                    sweep.has_neighbors,
                    sweep.static_eligible[layer - 1],
                    self.params,
                    self.policy,
                    self.algorithm == "simplified",
                    ops=self._kernel_ops,
                )
            )
        else:
            eligible, correction, branches, pulse_time, effective = (
                _layer_step_kernel(
                    prev,
                    own_delay,
                    nb_delay,
                    rate,
                    sweep.nb_idx,
                    sweep.nb_valid,
                    sweep.static_eligible[layer - 1],
                    self.params,
                    self.policy,
                    self.algorithm == "simplified",
                    ops=self._kernel_ops,
                )
            )

        layer_faulty = sweep.layer_has_fault[layer]
        if not layer_faulty and eligible.all():
            # Common case (fault-free layer, every node on the fast path):
            # whole-row assignments, no boolean gathers.
            result.corrections[rk, layer] = correction
            result.branches[rk, layer] = branches
            result.effective_corrections[rk, layer] = effective
            result.protocol_times[rk, layer] = pulse_time
            result.times[rk, layer] = pulse_time
            return

        result.corrections[rk, layer, eligible] = correction[eligible]
        result.branches[rk, layer, eligible] = branches[eligible]
        result.effective_corrections[rk, layer, eligible] = effective[eligible]
        result.protocol_times[rk, layer, eligible] = pulse_time[eligible]
        faulty_here = sweep.faulty[layer]
        correct = eligible & ~faulty_here
        result.times[rk, layer, correct] = pulse_time[correct]
        if layer_faulty:
            for v in np.nonzero(eligible & faulty_here)[0]:
                self._record_fault_sends(
                    result, (int(v), layer), k, float(pulse_time[v])
                )
        if not eligible.all():
            self._run_fallback_batch(
                result, k, layer, np.nonzero(~eligible)[0], row_index
            )

    def _record_fault_sends(
        self, result: FastResult, node: NodeId, k: int, correct_time: float
    ) -> None:
        behavior = self.fault_plan.behavior(node)
        assert behavior is not None
        context = FaultContext(
            node=node, pulse=k, correct_time=correct_time, kappa=self.params.kappa
        )
        for successor in self.graph.successors(node):
            send = behavior.send_time(context, successor)
            result.fault_sends.setdefault((node, successor), {})[k] = send

    # ------------------------------------------------------------------
    # Batched fallback
    # ------------------------------------------------------------------
    def _run_fallback_batch(
        self,
        result: FastResult,
        k: int,
        layer: int,
        cells: np.ndarray,
        row_index: Optional[int] = None,
    ) -> None:
        """Resolve all of one layer's kernel-rejected cells in one pass.

        ``cells`` holds the vertex ids the vectorized kernel declared
        ineligible -- fault-adjacent, missing-message, or early-exit
        (via-``H_max`` / last-neighbor timeout) candidates.  Instead of
        replaying each node's do-until loop in Python
        (:meth:`_run_node_and_record`), the arrival events of *all* cells
        are packed into one ``(n_cells, max_deg + 1)`` matrix (``+inf`` =
        missing) sorted along the event axis, and the replay advances
        event **positions**: at most ``max_deg + 1`` vectorized steps
        regardless of how many cells fell back.  Register updates, the
        exit test (:meth:`_exit_requirement`), and the correction
        (:func:`_correction_step`) mirror the scalar replay
        operation-for-operation, so outcomes are bit-identical to it --
        the differential suite pins both against the event engine.

        Only the event *gather* stays per-edge Python: send times may
        come from the ``fault_sends`` dict and delays from arbitrary
        delay models, exactly as in :meth:`_arrivals`.
        """
        rk = k if row_index is None else row_index
        cells = np.asarray(cells, dtype=np.int64)
        n = int(cells.size)
        if n == 0:
            return
        result.fallback_batches += 1
        result.fallback_cells += n
        params = self.params
        graph = self.graph
        delay = self.delay_model.delay
        prev_layer = layer - 1

        # --- Gather: one +inf-padded event row per cell (col 0 = own
        # copy, cols 1.. = neighbor copies; order is irrelevant after the
        # sort below).  Mirrors :meth:`_arrivals` per edge.
        preds = [graph.neighbor_predecessors((int(v), layer)) for v in cells]
        num_nb = np.array([len(p) for p in preds], dtype=np.int64)
        n_ev = int(num_nb.max()) + 1 if n else 1
        ev_time = np.full((n, n_ev), np.inf)
        ev_own = np.zeros((n, n_ev), dtype=bool)
        rates = np.empty(n)
        for i in range(n):
            v = int(cells[i])
            node = (v, layer)
            rates[i] = self.rate(node, k)
            own_pred = (v, prev_layer)
            own_send = self._send_time(result, own_pred, node, k, row_index)
            if own_send is not None:
                ev_time[i, 0] = own_send + delay((own_pred, node), k)
                ev_own[i, 0] = True
            for j, pred in enumerate(preds[i], start=1):
                send = self._send_time(result, pred, node, k, row_index)
                if send is not None:
                    ev_time[i, j] = send + delay((pred, node), k)

        # Chronological event order in local time.  Rates are positive,
        # so sorting real arrivals sorts local times; the secondary key
        # puts own-copy events after neighbor events on ties, matching
        # the scalar sort key ``(time, kind != "neighbor")``.
        order = np.lexsort((ev_own, ev_time))
        local = rates[:, None] * np.take_along_axis(ev_time, order, axis=1)
        own_sorted = np.take_along_axis(ev_own, order, axis=1)
        is_event = np.isfinite(local)

        via_max = np.zeros(n, dtype=bool)
        if self.algorithm == "simplified":
            # Algorithm 1: wait for own + first + last neighbor
            # unconditionally; no do-until exit to replay.
            nb_event = is_event & ~own_sorted
            own_ok = (ev_own & np.isfinite(ev_time)).any(axis=1)
            complete = (
                own_ok & (nb_event.sum(axis=1) >= num_nb) & (num_nb > 0)
            )
            with np.errstate(invalid="ignore"):
                h_own = np.where(own_ok, rates * ev_time[:, 0], np.inf)
                h_min = np.where(nb_event, local, np.inf).min(axis=1)
                h_max = np.where(nb_event, local, -np.inf).max(axis=1)
                exit_tau = np.maximum(h_own, h_max)
            pulses = complete
        else:
            # Algorithm 3: replay the do-until loop for every cell at
            # once, one event *position* per step.
            kappa = params.kappa
            vartheta = params.vartheta
            h_own = np.full(n, np.inf)
            h_min = np.full(n, np.inf)
            h_max = np.full(n, np.inf)
            received = np.zeros(n, dtype=np.int64)
            exit_tau = np.zeros(n)
            done = np.zeros(n, dtype=bool)
            with np.errstate(invalid="ignore"):
                for j in range(n_ev):
                    live = is_event[:, j] & ~done
                    if not live.any():
                        # Events are sorted, +inf-padded to the right:
                        # nothing live here means nothing live later.
                        break
                    t = local[:, j]
                    upd_own = live & own_sorted[:, j]
                    upd_nb = live & ~own_sorted[:, j]
                    h_own = np.where(upd_own, np.minimum(h_own, t), h_own)
                    received = received + upd_nb
                    h_min = np.where(upd_nb & (received == 1), t, h_min)
                    h_max = np.where(upd_nb & (received == num_nb), t, h_max)
                    # _exit_requirement, vectorized: the earliest local
                    # exit time given the registers known after event j.
                    own_inf = np.isinf(h_own)
                    max_inf = np.isinf(h_max)
                    req_own = np.where(
                        own_inf,
                        h_max + kappa / 2.0 + vartheta * kappa,
                        -np.inf,
                    )
                    req_nb = np.where(
                        max_inf,
                        2.0 * h_own - h_min + 2.0 * kappa,
                        -np.inf,
                    )
                    required = np.maximum(t, np.maximum(req_own, req_nb))
                    can_exit = (
                        live & np.isfinite(h_min) & ~(own_inf & max_inf)
                    )
                    next_t = (
                        local[:, j + 1]
                        if j + 1 < n_ev
                        else np.full(n, np.inf)
                    )
                    exits = can_exit & (required < next_t)
                    exit_tau = np.where(exits, required, exit_tau)
                    via_max = via_max | (exits & own_inf)
                    done = done | exits
            pulses = done

        # --- Outcomes.  Cells that never exit stay "none" (NaN
        # correction, no pulse); via-H_max cells anchor on H_max; the
        # rest run the correction rule on their frozen registers.
        correction = np.full(n, np.nan)
        branch_codes = np.full(n, BRANCH_CODES["none"], dtype=np.int8)
        normal = pulses & ~via_max
        if normal.any():
            corr, br = _correction_step(
                h_own, h_min, h_max, params, self.policy
            )
            correction = np.where(normal, corr, correction)
            branch_codes = np.where(normal, br, branch_codes)
        with np.errstate(invalid="ignore"):
            target = h_own + params.Lambda - params.d - correction
            pulse_local = np.maximum(target, exit_tau)
            if via_max.any():
                vm_local = np.maximum(
                    h_max + 1.5 * params.kappa + params.Lambda - params.d,
                    exit_tau,
                )
                pulse_local = np.where(via_max, vm_local, pulse_local)
                branch_codes = np.where(
                    via_max, np.int8(BRANCH_CODES["via_max"]), branch_codes
                )
            pulse_time = np.where(pulses, pulse_local / rates, np.nan)
            effective = (
                h_own + params.Lambda - params.d - rates * pulse_time
            )

        result.corrections[rk, layer, cells] = correction
        result.branches[rk, layer, cells] = branch_codes
        eff_ok = pulses & np.isfinite(h_own)
        result.effective_corrections[rk, layer, cells[eff_ok]] = effective[
            eff_ok
        ]
        result.protocol_times[rk, layer, cells[pulses]] = pulse_time[pulses]
        faulty = np.array(
            [self.fault_plan.is_faulty((int(v), layer)) for v in cells]
        )
        ok = pulses & ~faulty
        result.times[rk, layer, cells[ok]] = pulse_time[ok]
        for i in np.nonzero(pulses & faulty)[0]:
            self._record_fault_sends(
                result, (int(cells[i]), layer), k, float(pulse_time[i])
            )

    # ------------------------------------------------------------------
    # Reception times
    # ------------------------------------------------------------------
    def _send_time(
        self,
        result: FastResult,
        pred: NodeId,
        node: NodeId,
        k: int,
        row_index: Optional[int] = None,
    ) -> Optional[float]:
        """Time ``pred``'s pulse-``k`` message toward ``node`` leaves."""
        pv, pl = pred
        if self.fault_plan.is_faulty(pred):
            return result.fault_sends.get((pred, node), {}).get(k)
        t = result.times[k if row_index is None else row_index, pl, pv]
        if math.isnan(t):
            return None
        return float(t)

    def _arrivals(
        self,
        result: FastResult,
        node: NodeId,
        k: int,
        row_index: Optional[int] = None,
    ) -> Tuple[Optional[float], List[float]]:
        """Real reception times: (own arrival, sorted neighbor arrivals)."""
        own_pred = (node[0], node[1] - 1)
        own_send = self._send_time(result, own_pred, node, k, row_index)
        own_arrival = None
        if own_send is not None:
            own_arrival = own_send + self.delay_model.delay((own_pred, node), k)
        neighbor_arrivals = []
        for pred in self.graph.neighbor_predecessors(node):
            send = self._send_time(result, pred, node, k, row_index)
            if send is None:
                continue
            neighbor_arrivals.append(
                send + self.delay_model.delay((pred, node), k)
            )
        neighbor_arrivals.sort()
        return own_arrival, neighbor_arrivals

    # ------------------------------------------------------------------
    # Algorithm 3 loop replay
    # ------------------------------------------------------------------
    def _run_node(
        self,
        result: FastResult,
        node: NodeId,
        k: int,
        row_index: Optional[int] = None,
    ) -> NodeOutcome:
        own_arrival, neighbor_arrivals = self._arrivals(
            result, node, k, row_index
        )
        rate = self.rate(node, k)
        num_neighbors = len(self.graph.neighbor_predecessors(node))
        if self.algorithm == "simplified":
            return self._run_node_simplified(
                own_arrival, neighbor_arrivals, num_neighbors, rate
            )
        return self._run_node_full(
            own_arrival, neighbor_arrivals, num_neighbors, rate
        )

    def _run_node_simplified(
        self,
        own_arrival: Optional[float],
        neighbor_arrivals: List[float],
        num_neighbors: int,
        rate: float,
    ) -> NodeOutcome:
        """Algorithm 1: wait for own + first + last neighbor, then correct."""
        if own_arrival is None or len(neighbor_arrivals) < num_neighbors:
            return NodeOutcome(None, math.nan, "none", None, math.inf, math.inf, math.inf)
        h_own = rate * own_arrival
        h_min = rate * neighbor_arrivals[0]
        h_max = rate * neighbor_arrivals[-1]
        outcome = compute_correction(
            h_own,
            h_min,
            h_max,
            self.params.kappa,
            self.params.vartheta,
            self.policy,
        )
        target = h_own + self.params.Lambda - self.params.d - outcome.correction
        ready = max(h_own, h_max)
        pulse_local = max(target, ready)
        return NodeOutcome(
            pulse_time=pulse_local / rate,
            correction=outcome.correction,
            branch=outcome.branch,
            exit_local=ready,
            h_own=h_own,
            h_min=h_min,
            h_max=h_max,
        )

    @staticmethod
    def _exit_requirement(
        h_own: float,
        h_min: float,
        h_max: float,
        now: float,
        kappa: float,
        vartheta: float,
    ) -> Optional[float]:
        """Earliest local exit time given the receptions known at ``now``.

        None when the loop cannot exit yet by waiting (no neighbor message,
        or both the own copy and the last neighbor are missing).
        """
        if math.isinf(h_min):
            return None
        required = now
        if math.isinf(h_own):
            if math.isinf(h_max):
                return None
            required = max(required, h_max + kappa / 2.0 + vartheta * kappa)
        if math.isinf(h_max):
            required = max(required, 2.0 * h_own - h_min + 2.0 * kappa)
        return required

    def _run_node_full(
        self,
        own_arrival: Optional[float],
        neighbor_arrivals: List[float],
        num_neighbors: int,
        rate: float,
    ) -> NodeOutcome:
        """Algorithm 3: replay the do-until loop and branch on exit cause."""
        params = self.params
        kappa = params.kappa
        vartheta = params.vartheta

        # Build the chronological arrival event list in *local* time.
        events: List[Tuple[float, str]] = []
        if own_arrival is not None:
            events.append((rate * own_arrival, "own"))
        for arrival in neighbor_arrivals:
            events.append((rate * arrival, "neighbor"))
        events.sort(key=lambda e: (e[0], e[1] != "neighbor"))
        # Ties: neighbors before own, matching the pseudocode's statement
        # order being irrelevant (any deterministic rule works; tests pin it).

        h_own = math.inf
        h_min = math.inf
        h_max = math.inf
        received = 0
        exit_tau: Optional[float] = None
        own_missing_at_exit = False

        for i, (h_arrival, kind) in enumerate(events):
            if kind == "own":
                h_own = min(h_own, h_arrival)
            else:
                received += 1
                if received == 1:
                    h_min = h_arrival
                if received == num_neighbors:
                    h_max = h_arrival
            required = self._exit_requirement(
                h_own, h_min, h_max, h_arrival, kappa, vartheta
            )
            if required is None:
                continue
            next_arrival = events[i + 1][0] if i + 1 < len(events) else math.inf
            if required < next_arrival:
                exit_tau = required
                own_missing_at_exit = math.isinf(h_own)
                break

        if exit_tau is None:
            # No neighbor message, or own copy and last neighbor both
            # missing: the loop never exits.  Only possible with >= 2
            # silent predecessors (outside the fault model).
            return NodeOutcome(
                None, math.nan, "none", None, h_own, h_min, h_max
            )

        if own_missing_at_exit:
            # Algorithm 3's "H(t) = H_max + k/2 + vt*k" branch: the own
            # copy's message did not arrive in time; anchor on H_max.
            pulse_local = h_max + 1.5 * kappa + params.Lambda - params.d
            pulse_local = max(pulse_local, exit_tau)
            return NodeOutcome(
                pulse_time=pulse_local / rate,
                correction=math.nan,
                branch="via_max",
                exit_local=exit_tau,
                h_own=h_own,
                h_min=h_min,
                h_max=h_max,
            )

        # Else branch: H_own and H_min are finite here; H_max may be +inf
        # (last neighbor missing), which drives the correction negative.
        outcome = compute_correction(
            h_own, h_min, h_max, kappa, vartheta, self.policy
        )
        target = h_own + params.Lambda - params.d - outcome.correction
        pulse_local = max(target, exit_tau)
        return NodeOutcome(
            pulse_time=pulse_local / rate,
            correction=outcome.correction,
            branch=outcome.branch,
            exit_local=exit_tau,
            h_own=h_own,
            h_min=h_min,
            h_max=h_max,
        )


class _VectorSweep:
    """Index/mask structures backing the vectorized layer sweep.

    Built once per :meth:`FastSimulation.run` (the fault plan may change
    between runs).  Rate arrays are cached on the simulation per run;
    delay arrays are cached on the *delay model* (keyed by edge structure
    and layer/pulse), so they survive simulation reconstruction and are
    never re-gathered edge by edge for the same model.  Edge tuples are
    built from plain ``int`` vertices so delay models keyed or seeded by
    edge identity see exactly the scalar path's edges.
    """

    def __init__(
        self, sim: FastSimulation, backend: Optional[str] = None
    ) -> None:
        self.sim = sim
        graph = sim.graph
        base = graph.base
        width = base.num_nodes
        self.width = width
        self.backend = _resolve_backend(
            base, sim.neighbor_backend if backend is None else backend
        )
        self.nb_lists = [tuple(base.neighbors(v)) for v in base.nodes()]
        # Identifies the edge set the delay gathers cover: two graphs with
        # equal width and adjacency query exactly the same edge tuples, so
        # they may share a delay model's array cache.
        self.edge_signature = (width, tuple(self.nb_lists))
        self.max_deg = base.max_degree() if width else 0
        if self.backend == "csr":
            # CSR mode never materializes the O(W * max_deg) padded
            # tensors -- that allocation is exactly what it exists to
            # avoid on hub-skewed graphs.
            indptr, indices, _ = base.neighbor_csr()
            self.indptr = indptr
            self.indices = indices
            degrees = np.diff(indptr)
            self.owner = np.repeat(
                np.arange(width, dtype=np.int64), degrees
            )
            self.nb_idx = None
            self.nb_valid = None
            self.has_neighbors = degrees > 0
        else:
            self.indptr = None
            self.indices = None
            self.owner = None
            # Padded gather indices come from the graph's own cache
            # (adjacency is immutable), shared across trials, runs, and
            # stacks.
            self.nb_idx, self.nb_valid = base.neighbor_index_arrays()
            self.has_neighbors = self.nb_valid.any(axis=1)
        faulty = sim.fault_plan.faulty_mask(graph)
        self.faulty = faulty
        # has_faulty_pred[l - 1] flags nodes of layer ``l`` with a faulty
        # own-copy or neighbor-copy predecessor on layer ``l - 1``.
        prev = faulty[:-1]
        if not faulty.any():
            nb_faulty = np.zeros_like(prev)
        elif self.backend == "csr":
            nnz = self.indices.shape[0]
            if nnz == 0:
                nb_faulty = np.zeros_like(prev)
            else:
                vals = prev[:, self.indices].astype(np.uint8)
                starts = np.minimum(indptr[:-1], nnz - 1)
                seg = np.maximum.reduceat(vals, starts, axis=-1)
                seg[:, ~self.has_neighbors] = 0
                nb_faulty = seg.astype(bool)
        else:
            nb_faulty = (
                prev[:, self.nb_idx] & self.nb_valid[None, :, :]
            ).any(axis=2)
        self.has_faulty_pred = prev | nb_faulty
        self.static_eligible = self.has_neighbors[None, :] & ~self.has_faulty_pred
        self.layer_has_fault = [bool(row.any()) for row in faulty]

    def delay_arrays(self, layer: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Own-copy ``(W,)`` and neighbor-copy delays for one layer.

        Neighbor delays are ``(W, max_deg)`` padded in dense mode and a
        flat ``(nnz,)`` vector in CSR segment order in ``csr`` mode.
        Cached on the delay model keyed by the edge structure and layer
        (plus pulse unless the model is pulse-invariant), so rebuilt
        simulations over the same model skip the per-edge Python gather;
        models not subclassing :class:`~repro.delays.models.DelayModel`
        are gathered uncached.
        """
        model = self.sim.delay_model
        csr = self.backend == "csr"
        key = layer if getattr(model, "pulse_invariant", False) else (layer, k)
        if csr:
            # CSR delays are a flat (nnz,) vector in segment order; keep
            # them on a distinct cache key so dense and CSR consumers of
            # the same model never hand each other the wrong shape.
            key = ("csr", key)
        model_cache = getattr(model, "_edge_array_cache", None)
        cache = (
            None
            if model_cache is None
            else model_cache.setdefault(self.edge_signature, {})
        )
        cached = None if cache is None else cache.get(key)
        if cached is None:
            own = np.empty(self.width)
            if csr:
                nnz = self.indices.shape[0]
                if type(model) is UniformDelayModel:
                    # A uniform model returns the same constant for every
                    # edge; the bulk fill is bitwise-identical to the
                    # per-edge queries and makes million-edge layers
                    # gather in O(1) Python calls.
                    own.fill(model.value)
                    nb = np.full(nnz, model.value)
                else:
                    nb = np.empty(nnz)
                    pos = 0
                    for v, nbs in enumerate(self.nb_lists):
                        own[v] = model.delay(((v, layer - 1), (v, layer)), k)
                        for w in nbs:
                            nb[pos] = model.delay(
                                ((w, layer - 1), (v, layer)), k
                            )
                            pos += 1
            else:
                nb = np.zeros((self.width, max(self.max_deg, 1)))
                for v, nbs in enumerate(self.nb_lists):
                    own[v] = model.delay(((v, layer - 1), (v, layer)), k)
                    for j, w in enumerate(nbs):
                        nb[v, j] = model.delay(((w, layer - 1), (v, layer)), k)
            cached = (own, nb)
            if cache is not None:
                cache[key] = cached
        return cached

    def rate_array(self, layer: int, k: int) -> np.ndarray:
        """Hardware clock rates of the layer's nodes during pulse ``k``."""
        rates = self.sim._rates
        if rates is None:
            cached = self.sim._rate_cache.get("ones")
            if cached is None:
                cached = np.ones(self.width)
                self.sim._rate_cache["ones"] = cached
            return cached
        if callable(rates):
            return np.array(
                [float(rates((v, layer), k)) for v in range(self.width)]
            )
        cached = self.sim._rate_cache.get(layer)
        if cached is None:
            cached = np.array(
                [float(rates.get((v, layer), 1.0)) for v in range(self.width)]
            )
            self.sim._rate_cache[layer] = cached
        return cached
