"""The correction value ``C_{v,l}`` of Algorithms 1 and 3.

Both algorithms timestamp three receptions with the local hardware clock --

* ``h_own``: the pulse from the node's own copy ``(v, l-1)``,
* ``h_min``: the *first* pulse from a neighbor copy ``(w, l-1)``,
* ``h_max``: the *last*  pulse from a neighbor copy,

-- and derive the correction

    delta = min_{s in N} max(h_own - h_max + 4*s*kappa,
                             h_own - h_min - 4*s*kappa) - kappa/2,

clamped by the stick-to-the-median rule:

* ``delta`` in ``[0, vartheta*kappa]``  ->  ``C = delta``,
* ``delta < 0``                 ->  ``C = min(h_own - h_min + 3*kappa/2, 0)``,
* ``delta > vartheta*kappa``    ->  ``C = max(h_own - h_max - 3*kappa/2,
  vartheta*kappa)``.

The node then pulses at local time ``h_own + Lambda - d - C``.

The discrete minimization over ``s`` has a closed form used here: the
expression is convex piecewise-linear in ``s`` with minimizer
``s* = (h_max - h_min) / (8*kappa)``, so only ``floor(s*)`` and ``ceil(s*)``
(clipped to ``N``) need evaluating.

A missing last-neighbor reception is modelled by ``h_max = +inf``; the
``max`` then always selects the ``h_min`` branch and ``delta = -inf``,
matching the paper's "allow an infinity to cancel out in subtraction"
reading (Section 3, "Complete Algorithm").

:class:`CorrectionPolicy` exposes the three design choices the paper calls
out, as ablation knobs:

* ``discretize`` -- minimize over ``s in N`` (the [KO09] ingredient) versus
  the continuous midpoint rule;
* ``jump_slack`` -- how far (in units of ``kappa``) an out-of-range jump
  stops *short* of the earliest/latest neighbor.  ``+1`` is the paper's
  jump condition JC (dampened oscillation); ``0`` removes the dampening;
  ``-1`` overshoots past the neighbor by the full measurement slack, the
  adversarial-but-SC/FC-compliant behaviour whose amplifying oscillation
  Figure 5 depicts;
* ``stick_to_median`` -- allow corrections outside ``[0, vartheta*kappa]``
  at all; disabling reverts to the naive clamp of classic GCS and forfeits
  fault containment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "CorrectionPolicy",
    "CorrectionResult",
    "compute_correction",
    "raw_delta",
]


@dataclass(frozen=True)
class CorrectionPolicy:
    """Design-choice knobs for the correction rule (defaults = the paper)."""

    discretize: bool = True
    jump_slack: float = 1.0
    stick_to_median: bool = True


#: The policy used by the paper's algorithm.
PAPER_POLICY = CorrectionPolicy()


@dataclass(frozen=True)
class CorrectionResult:
    """Correction outcome.

    Attributes
    ----------
    delta:
        The pre-clamp value ``Delta`` (possibly ``-inf`` when ``h_max`` is
        missing).
    correction:
        The final ``C_{v,l}``.
    branch:
        Which rule produced ``correction``: ``"mid"`` (``delta`` in range),
        ``"low"`` (``delta < 0``) or ``"high"`` (``delta > vartheta*kappa``).
    """

    delta: float
    correction: float
    branch: str


def raw_delta(h_own: float, h_min: float, h_max: float, kappa: float) -> float:
    """``min_{s in N} max(h_own - h_max + 4sk, h_own - h_min - 4sk) - k/2``.

    ``h_max`` may be ``+inf`` (missing last neighbor), yielding ``-inf``.
    Requires ``h_min <= h_max`` and finite ``h_own``, ``h_min``.
    """
    if not (math.isfinite(h_own) and math.isfinite(h_min)):
        raise ValueError("h_own and h_min must be finite")
    if h_max < h_min:
        raise ValueError(f"h_max={h_max} < h_min={h_min}")
    if kappa < 0:
        raise ValueError(f"kappa must be >= 0, got {kappa}")
    if math.isinf(h_max):
        return -math.inf
    a = h_own - h_max
    b = h_own - h_min
    if kappa == 0.0:
        return b  # max(a + 0, b - 0) for every s; b >= a
    s_star = (h_max - h_min) / (8.0 * kappa)
    candidates = {max(0, math.floor(s_star)), max(0, math.ceil(s_star))}
    best = min(
        max(a + 4.0 * s * kappa, b - 4.0 * s * kappa) for s in candidates
    )
    return best - kappa / 2.0


def _continuous_delta(h_own: float, h_min: float, h_max: float, kappa: float) -> float:
    """Ablation AB1: the continuous midpoint rule (no 4sk grid)."""
    if math.isinf(h_max):
        return -math.inf
    return h_own - (h_max + h_min) / 2.0 - kappa / 2.0


def compute_correction(
    h_own: float,
    h_min: float,
    h_max: float,
    kappa: float,
    vartheta: float,
    policy: CorrectionPolicy = PAPER_POLICY,
) -> CorrectionResult:
    """Full correction rule of Algorithms 1 and 3 (with ablation knobs)."""
    if policy.discretize:
        delta = raw_delta(h_own, h_min, h_max, kappa)
    else:
        delta = _continuous_delta(h_own, h_min, h_max, kappa)

    upper = vartheta * kappa
    damp = policy.jump_slack * kappa

    if delta < 0.0:
        if policy.stick_to_median:
            # Algorithm 3: C := min(h_own - h_min + 3k/2, 0); the +3k/2 is
            # -k/2 (measurement slack) + 2k, of which k is the JC dampening
            # (jump_slack = 1 reproduces it).
            jump_target = h_own - h_min + kappa / 2.0 + damp
            correction = min(jump_target, 0.0)
        else:
            correction = 0.0
        return CorrectionResult(delta=delta, correction=correction, branch="low")

    if delta > upper:
        if policy.stick_to_median:
            if math.isinf(h_max):
                raise ValueError("high branch requires a finite h_max")
            # Algorithm 3: C := max(h_own - h_max - 3k/2, vartheta*k).
            jump_target = h_own - h_max - kappa / 2.0 - damp
            correction = max(jump_target, upper)
        else:
            correction = upper
        return CorrectionResult(delta=delta, correction=correction, branch="high")

    return CorrectionResult(delta=delta, correction=delta, branch="mid")
