"""Gradient TRIX: the paper's core algorithms.

* :mod:`repro.core.correction` -- the correction value ``C_{v,l}``
  (the heart of Algorithms 1 and 3) with ablation knobs.
* :mod:`repro.core.layer0` -- Algorithm 2 and scripted layer-0 sources.
* :mod:`repro.core.fast` -- fast layer-recurrence simulator (Lemma B.1
  closed form; delays/clock rates static per pulse).
* :mod:`repro.core.fast_batch` -- trial-stacked ``(S, W)`` kernel driving
  many structurally identical simulations in lock-step.
* :mod:`repro.core.algorithm` -- Algorithm 3 as an event-driven process.
* :mod:`repro.core.selfstab` -- Algorithm 4 (self-stabilizing variant).
* :mod:`repro.core.network_sim` -- event-driven grid simulation builder.
* :mod:`repro.core.conditions` -- SC/FC/JC checkers (Definitions 4.3-4.5).
"""

from repro.core.correction import (
    CorrectionPolicy,
    CorrectionResult,
    compute_correction,
    raw_delta,
)
from repro.core.fast import FastResult, FastSimulation
from repro.core.fast_batch import TrialStack, stack_compatibility
from repro.core.layer0 import ChainLayer0, JitteredLayer0, Layer0Schedule, PerfectLayer0

__all__ = [
    "ChainLayer0",
    "CorrectionPolicy",
    "CorrectionResult",
    "FastResult",
    "FastSimulation",
    "JitteredLayer0",
    "Layer0Schedule",
    "PerfectLayer0",
    "TrialStack",
    "compute_correction",
    "raw_delta",
    "stack_compatibility",
]
