"""Event-driven grid simulation builder.

:class:`GridSimulation` wires up the discrete-event engine for a layered
graph: scripted layer-0 pulsers, :class:`~repro.core.algorithm.
GradientTrixNode` (or the self-stabilizing variant) on layers ``>= 1``, and
scripted replay of fault behaviours.  Fault send times are precomputed with
the fast simulator so that both execution modes observe byte-identical
message timing -- the cross-validation tests rely on this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.clocks.hardware import AffineClock, HardwareClock
from repro.core.algorithm import GradientTrixNode, ScriptedPulser
from repro.core.correction import CorrectionPolicy, PAPER_POLICY
from repro.core.fast import FastResult, FastSimulation
from repro.core.layer0 import Layer0Schedule, PerfectLayer0
from repro.delays.models import DelayModel, UniformDelayModel
from repro.engine.network import Network
from repro.engine.scheduler import Simulator
from repro.engine.trace import Trace
from repro.faults.injection import FaultPlan
from repro.params import Parameters
from repro.topology.layered import LayeredGraph, NodeId

__all__ = ["GridSimulation"]


class GridSimulation:
    """Builds and runs the event-driven counterpart of a fast simulation.

    Parameters mirror :class:`~repro.core.fast.FastSimulation`; ``clocks``
    maps nodes to :class:`HardwareClock` objects (default: rate-1 affine).
    ``node_class`` selects the state machine for layers ``>= 1``.
    """

    def __init__(
        self,
        graph: LayeredGraph,
        params: Parameters,
        delay_model: Optional[DelayModel] = None,
        clocks: Optional[Dict[NodeId, HardwareClock]] = None,
        fault_plan: Optional[FaultPlan] = None,
        layer0: Optional[Layer0Schedule] = None,
        policy: CorrectionPolicy = PAPER_POLICY,
        node_class: Type[GradientTrixNode] = GradientTrixNode,
        node_kwargs: Optional[dict] = None,
    ) -> None:
        self.graph = graph
        self.params = params
        self.delay_model = delay_model or UniformDelayModel(params.d, params.u)
        self.clocks = clocks or {}
        self.fault_plan = fault_plan or FaultPlan.none()
        self.layer0 = layer0 or PerfectLayer0(params.Lambda)
        self.policy = policy
        self.node_class = node_class
        self.node_kwargs = node_kwargs or {}

        self.sim = Simulator()
        self.network = Network(self.sim, self.delay_model)
        self.trace = Trace()
        self.nodes: Dict[NodeId, GradientTrixNode] = {}
        self._built = False

    def clock_for(self, node: NodeId) -> HardwareClock:
        """The node's hardware clock (rate-1 affine if unspecified)."""
        clock = self.clocks.get(node)
        if clock is None:
            clock = AffineClock()
            self.clocks[node] = clock
        return clock

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _fault_reference(self, num_pulses: int) -> FastResult:
        """Fast-mode run used to script fault behaviours and layer 0."""
        fast = FastSimulation(
            self.graph,
            self.params,
            delay_model=self.delay_model,
            clock_rates=self._fast_rates(),
            fault_plan=self.fault_plan,
            layer0=self.layer0,
            policy=self.policy,
        )
        return fast.run(num_pulses)

    def _fast_rates(self):
        rates: Dict[NodeId, float] = {}
        for node, clock in self.clocks.items():
            low, high = clock.rate_bounds()
            if low != high:
                raise ValueError(
                    "event/fast coupling requires constant-rate clocks; "
                    f"{node} has rates in [{low}, {high}]"
                )
            rates[node] = low
        return rates

    def build(self, num_pulses: int) -> None:
        """Instantiate all processes for a ``num_pulses``-pulse run."""
        if self._built:
            raise RuntimeError("GridSimulation.build may only be called once")
        self._built = True
        reference = (
            self._fault_reference(num_pulses) if len(self.fault_plan) else None
        )

        for v in self.graph.base.nodes():
            node = (v, 0)
            self._build_layer0_node(node, num_pulses, reference)

        for layer in range(1, self.graph.num_layers):
            for v in self.graph.base.nodes():
                node = (v, layer)
                if self.fault_plan.is_faulty(node):
                    self._build_faulty_node(node, num_pulses, reference)
                else:
                    self._build_correct_node(node, num_pulses)

        for process in self.network._processes.values():
            process.start()

    def _build_layer0_node(
        self, node: NodeId, num_pulses: int, reference: Optional[FastResult]
    ) -> None:
        v, _ = node
        successors = self.graph.successors(node)
        if self.fault_plan.is_faulty(node):
            assert reference is not None
            schedule = self._fault_schedule(node, num_pulses, reference)
            record = False
        else:
            sends = [
                (self.layer0.pulse_time(v, k), k) for k in range(num_pulses)
            ]
            schedule = {succ: list(sends) for succ in successors}
            record = True
        pulser = ScriptedPulser(
            self.sim,
            self.network,
            self.trace,
            node,
            self.clock_for(node),
            schedule,
            record=record,
        )
        self.network.register(pulser)
        self.nodes[node] = pulser  # type: ignore[assignment]

    def _build_correct_node(self, node: NodeId, num_pulses: int) -> None:
        v, layer = node
        kwargs = dict(policy=self.policy, max_pulses=num_pulses)
        kwargs.update(self.node_kwargs)
        process = self.node_class(
            self.sim,
            self.network,
            self.trace,
            node,
            self.clock_for(node),
            self.params,
            own_pred=(v, layer - 1),
            neighbor_preds=self.graph.neighbor_predecessors(node),
            successors=self.graph.successors(node),
            **kwargs,
        )
        self.network.register(process)
        self.nodes[node] = process

    def _fault_schedule(
        self, node: NodeId, num_pulses: int, reference: FastResult
    ) -> Dict[NodeId, List[Tuple[float, int]]]:
        schedule: Dict[NodeId, List[Tuple[float, int]]] = {}
        for successor in self.graph.successors(node):
            sends = reference.fault_sends.get((node, successor), {})
            entries = [
                (send_time, pulse)
                for pulse, send_time in sorted(sends.items())
                if send_time is not None and pulse < num_pulses
            ]
            if entries:
                schedule[successor] = entries
        return schedule

    def _build_faulty_node(
        self, node: NodeId, num_pulses: int, reference: FastResult
    ) -> None:
        schedule = self._fault_schedule(node, num_pulses, reference)
        pulser = ScriptedPulser(
            self.sim,
            self.network,
            self.trace,
            node,
            self.clock_for(node),
            schedule,
            record=False,
        )
        self.network.register(pulser)
        self.nodes[node] = pulser  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, num_pulses: int, slack_periods: float = 5.0) -> Trace:
        """Build (if needed) and run until all pulses propagated.

        The horizon is ``(num_pulses + num_layers + slack_periods) * Lambda``
        plus the layer-0 offset -- ample for every pulse to cross the grid.
        """
        if not self._built:
            self.build(num_pulses)
        first = min(
            self.layer0.pulse_time(v, 0) for v in self.graph.base.nodes()
        )
        horizon = first + (
            num_pulses + self.graph.num_layers + slack_periods
        ) * self.params.Lambda
        self.sim.run_until(horizon)
        return self.trace
