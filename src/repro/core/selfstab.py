"""Algorithm 4: the self-stabilizing pulse forwarding variant (Appendix C).

Two additions turn Algorithm 3 into Algorithm 4:

* **Reception watchdog** (the ``Wait()`` thread): once the first neighbor
  pulse of an iteration is registered, correct neighbors' pulses all arrive
  within ``vartheta * (2*L + u)`` local time.  If after that grace period
  *both* the own-copy and the last-neighbor receptions are still missing,
  the registered receptions cannot all belong to one pulse -- the node
  forgets them and waits for the next pulse, cleanly re-aligning iterations.
* **Wait escapes**: state corrupted by transient faults can place stored
  reception timestamps in the local future or produce wait targets that
  already passed; the waits then end immediately instead of stalling.

:class:`ChainForwardNode` is the event-driven Algorithm 2 (layer-0 chain),
self-stabilizing by design because its only state is overwritten on every
reception.

:func:`corrupt_node` scrambles a node's volatile state -- the transient
faults of Theorem 1.6.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.clocks.hardware import HardwareClock
from repro.core.algorithm import PULSE, GradientTrixNode
from repro.core.correction import compute_correction
from repro.engine.network import Network
from repro.engine.process import Message, Process
from repro.engine.scheduler import Simulator
from repro.engine.trace import Trace
from repro.params import Parameters
from repro.topology.layered import NodeId

__all__ = ["SelfStabilizingNode", "ChainForwardNode", "corrupt_node"]


class SelfStabilizingNode(GradientTrixNode):
    """Algorithm 4: Algorithm 3 plus watchdog and wait escapes.

    ``skew_estimate`` is the bound ``L`` used in the watchdog grace period
    ``vartheta * (2*L + u)``; any upper bound on the stabilized local skew
    works (larger values only slow stabilization down).
    """

    def __init__(self, *args, skew_estimate: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if skew_estimate <= 0.0:
            skew_estimate = self.params.local_skew_bound(
                max(2, 2 ** max(1, len(self.neighbor_preds)))
            )
        self.skew_estimate = skew_estimate

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def _grace(self) -> float:
        params = self.params
        return params.vartheta * (2.0 * self.skew_estimate + params.u)

    def _register_reception(self, sender: Hashable) -> None:
        had_min = not math.isinf(self.h_min)
        super()._register_reception(sender)
        if not had_min and not math.isinf(self.h_min) and not self.committed:
            self.set_timer_local("watchdog", self.h_min + self._grace())

    def on_timer(self, name: Hashable) -> None:
        if name == "watchdog":
            self._watchdog_fired()
        else:
            super().on_timer(name)

    def _watchdog_fired(self) -> None:
        if self.committed:
            return
        if math.isinf(self.h_own) and math.isinf(self.h_max):
            # The registered receptions cannot complete a pulse; forget them
            # (Algorithm 4's Wait() clears H_min, the flags and H_w).
            self.h_min = math.inf
            self._received.clear()
            self.cancel_timer("exit")

    def _reset_iteration(self) -> None:
        super()._reset_iteration()
        self.cancel_timer("watchdog")

    # ------------------------------------------------------------------
    # Wait escapes
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        if self.committed:
            return
        self.committed = True
        self.cancel_timer("watchdog")
        params = self.params
        kappa = params.kappa
        now_local = self.local_now()
        if math.isinf(self.h_own):
            target = self.h_max + 1.5 * kappa + params.Lambda - params.d
            self.last_correction = math.nan
            # Escape: a corrupt H_max lying in the local future.
            if now_local < self.h_max:
                self._broadcast()
                return
        else:
            # Corrupt registers may be mutually inconsistent (H_max below
            # H_min); compute with the sorted pair -- any deterministic
            # choice is fine, directional propagation cleans it up.
            h_lo = min(self.h_min, self.h_max)
            h_hi = max(self.h_min, self.h_max)
            outcome = compute_correction(
                self.h_own,
                h_lo,
                h_hi,
                kappa,
                params.vartheta,
                self.policy,
            )
            correction = outcome.correction
            self.last_correction = correction
            target = self.h_own + params.Lambda - params.d - correction
            # Escapes: corrupt H_own / H_min lying in the local future.
            if now_local < self.h_own or (
                correction < 0.0 and now_local < self.h_min
            ):
                self._broadcast()
                return
        self.set_timer_local("pulse", max(target, now_local))


class ChainForwardNode(Process):
    """Algorithm 2: layer-0 chain forwarding, event-driven.

    On each pulse from its chain predecessor the node stores the local
    reception time and re-arms a single timer ``Lambda - d`` local time
    later; the timer broadcasts to the chain successor and the node's
    layer-1 successors.  Spurious state is overwritten by the next
    reception, which is the whole self-stabilization argument of Lemma A.1.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: Trace,
        address: NodeId,
        clock: HardwareClock,
        params: Parameters,
        chain_pred: Optional[NodeId],
        chain_succ: Optional[NodeId],
        layer1_successors: Sequence[NodeId],
        record: bool = True,
    ) -> None:
        super().__init__(sim, address, clock)
        self.network = network
        self.trace = trace
        self.params = params
        self.chain_pred = chain_pred
        self.chain_succ = chain_succ
        self.layer1_successors = list(layer1_successors)
        self.record = record
        self.pulse_index = 0

    def on_message(self, message: Message) -> None:
        if not isinstance(message.payload, dict) or PULSE not in message.payload:
            return
        if self.chain_pred is not None and message.sender != self.chain_pred:
            return
        # H := H(t); overwrite any previous pending forward (self-stab).
        wait_target = self.local_now() + self.params.Lambda - self.params.d
        self._pending_pulse = message.payload[PULSE]
        self.set_timer_local("forward", wait_target)

    def on_timer(self, name: Hashable) -> None:
        if name != "forward":
            return
        pulse = getattr(self, "_pending_pulse", self.pulse_index)
        if self.record:
            self.trace.record_pulse(self.address, self.pulse_index, self.sim.now)
        targets: List[NodeId] = list(self.layer1_successors)
        if self.chain_succ is not None:
            targets.append(self.chain_succ)
        for target in targets:
            self.network.send(
                self.address, target, payload={PULSE: pulse}, pulse=pulse
            )
        self.pulse_index += 1


def corrupt_node(
    node: GradientTrixNode,
    rng: np.random.Generator,
    time_scale: float,
) -> None:
    """Scramble a node's volatile state (a transient fault of Theorem 1.6).

    Randomizes the reception registers (possibly placing timestamps in the
    local *future*, the worst case for the wait escapes), the received-flag
    set, the committed flag, the pulse counter, and any pending timers.
    ``time_scale`` sets the magnitude of the garbage timestamps relative to
    the current local time.
    """
    now_local = node.local_now()

    def garbage() -> float:
        return now_local + float(rng.uniform(-time_scale, time_scale))

    node.cancel_timer("exit")
    node.cancel_timer("pulse")
    node.cancel_timer("watchdog")
    node.h_own = garbage() if rng.random() < 0.7 else math.inf
    flags = [p for p in node.neighbor_preds if rng.random() < 0.6]
    node._received = set(flags)
    if flags:
        node.h_min = garbage()
        if len(flags) == len(node.neighbor_preds):
            node.h_max = node.h_min + abs(float(rng.uniform(0, time_scale)))
        else:
            node.h_max = math.inf
    else:
        node.h_min = math.inf
        node.h_max = math.inf
    node.committed = bool(rng.random() < 0.3)
    node.pulse_index = int(rng.integers(0, 5))
    if node.committed:
        # A bogus pending pulse somewhere within the next period.
        node.set_timer_local(
            "pulse", now_local + float(rng.uniform(0, node.params.Lambda))
        )
    node._buffered.clear()
