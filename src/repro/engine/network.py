"""Message channels with per-edge delays.

The :class:`Network` routes messages between registered processes, looking
delays up in a :class:`~repro.delays.models.DelayModel`.  It also supports
injecting spurious in-flight messages, which the self-stabilization
experiments use to model arbitrary transient corruption (Appendix C: "any
spurious messages are delivered and processed within at most d time").
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.delays.models import DelayModel
from repro.engine.process import Message, Process
from repro.engine.scheduler import Simulator

__all__ = ["Network"]


class Network:
    """Delivers messages between processes via delayed events."""

    def __init__(self, sim: Simulator, delay_model: DelayModel) -> None:
        self.sim = sim
        self.delay_model = delay_model
        self._processes: Dict[Hashable, Process] = {}
        self.messages_sent = 0

    def register(self, process: Process) -> None:
        """Register a process under its address."""
        if process.address in self._processes:
            raise ValueError(f"address {process.address} already registered")
        self._processes[process.address] = process

    def process_at(self, address: Hashable) -> Process:
        """Look up the process registered at ``address``."""
        return self._processes[address]

    def has_process(self, address: Hashable) -> bool:
        """Whether a process is registered at ``address``."""
        return address in self._processes

    def send(
        self,
        sender: Hashable,
        receiver: Hashable,
        payload: Any = None,
        pulse: int = 0,
        delay_override: Optional[float] = None,
    ) -> None:
        """Send a message; delivery is scheduled after the edge delay.

        ``delay_override`` bypasses the delay model (used by fault
        behaviours, which control *when the message arrives* arbitrarily --
        the model's faulty nodes may time their pulses at will).
        """
        target = self._processes.get(receiver)
        if target is None:
            return  # edge into a non-simulated region (e.g. beyond last layer)
        if delay_override is not None:
            delay = delay_override
        else:
            delay = self.delay_model.delay((sender, receiver), pulse)
        message = Message(sender=sender, payload=payload)
        self.messages_sent += 1
        self.sim.schedule_after(delay, lambda: target.deliver(message))

    def inject_at(
        self, receiver: Hashable, payload: Any, sender: Hashable, time: float
    ) -> None:
        """Inject a spurious message delivered at absolute ``time``.

        Used to corrupt initial states in self-stabilization experiments.
        """
        target = self._processes.get(receiver)
        if target is None:
            raise ValueError(f"no process at {receiver}")
        message = Message(sender=sender, payload=payload)
        self.sim.schedule_at(time, lambda: target.deliver(message))
