"""Event heap and simulation loop.

Events are ordered by ``(time, sequence_number)``; the sequence number makes
tie-breaking deterministic, so two runs with identical inputs produce
identical executions -- a property the cross-validation tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("time", "action", "cancelled")

    def __init__(self, time: float, action: Callable[[], None]) -> None:
        self.time = time
        self.action: Optional[Callable[[], None]] = action
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired."""
        self.cancelled = True
        self.action = None


class Simulator:
    """Discrete-event simulator with a monotone clock.

    Typical use::

        sim = Simulator()
        sim.schedule_at(1.0, lambda: ...)
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._counter = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled stubs)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute ``time`` (must not be in the past)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}: simulation time is {self._now}"
            )
        handle = EventHandle(time, action)
        heapq.heappush(self._heap, (time, next(self._counter), handle))
        return handle

    def schedule_after(
        self, delay: float, action: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, action)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._heap:
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            action = handle.action
            handle.action = None
            self._events_processed += 1
            assert action is not None
            action()
            return True
        return False

    def run_until(self, t_max: float, max_events: int | None = None) -> None:
        """Run events with time ``<= t_max`` (stops *before* later events).

        ``max_events`` guards against runaway executions (e.g. a buggy state
        machine rescheduling itself forever).
        """
        executed = 0
        while self._heap:
            time, _, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if time > t_max:
                break
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"run_until executed {executed} events without reaching "
                    f"t_max={t_max}; runaway execution?"
                )
        self._now = max(self._now, t_max)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains; bounded by ``max_events``."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise RuntimeError(
                    f"run_until_idle executed {executed} events; "
                    "runaway execution?"
                )
