"""Deterministic discrete-event simulation engine.

A minimal but complete event-driven substrate: an event heap with
deterministic tie-breaking, message channels with caller-supplied delays,
cancellable timers, and execution traces.  The Gradient TRIX node state
machines (:mod:`repro.core.algorithm`) run on top of it; so do the baselines.
"""

from repro.engine.scheduler import EventHandle, Simulator
from repro.engine.process import Message, Process
from repro.engine.trace import PulseRecord, Trace

__all__ = [
    "EventHandle",
    "Message",
    "Process",
    "PulseRecord",
    "Simulator",
    "Trace",
]
