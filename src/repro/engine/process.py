"""Process abstraction: message- and timer-driven state machines.

A :class:`Process` owns a hardware clock and reacts to message deliveries
and local-time timers.  Timers are specified in *local* clock time -- the
only notion of time the algorithms may use -- and converted to real time via
the clock's inverse map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable

from repro.clocks.hardware import HardwareClock
from repro.engine.scheduler import EventHandle, Simulator

__all__ = ["Message", "Process"]


@dataclass(frozen=True)
class Message:
    """A message in flight.

    Attributes
    ----------
    sender:
        Address of the sending process (a ``NodeId`` for grid nodes).
    payload:
        Arbitrary content; pulse messages carry the pulse index (which
        real hardware would not transmit -- the algorithms never read it,
        only traces and assertions do).
    """

    sender: Hashable
    payload: Any = None


class Process:
    """Base class for event-driven nodes.

    Subclasses implement :meth:`on_message` and :meth:`on_timer`.  The
    helpers :meth:`set_timer_local` / :meth:`cancel_timer` manage named,
    cancellable timers in local clock time.
    """

    def __init__(
        self, sim: Simulator, address: Hashable, clock: HardwareClock
    ) -> None:
        self.sim = sim
        self.address = address
        self.clock = clock
        self._timers: Dict[Hashable, EventHandle] = {}

    # ------------------------------------------------------------------
    # Clock helpers
    # ------------------------------------------------------------------
    def local_now(self) -> float:
        """Current hardware clock reading."""
        return self.clock.local_time(self.sim.now)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer_local(self, name: Hashable, local_time: float) -> None:
        """(Re)arm timer ``name`` to fire when the local clock reads
        ``local_time``; firing in the past fires immediately (next event).
        """
        self.cancel_timer(name)
        real = self.clock.real_time(local_time)
        real = max(real, self.sim.now)
        handle = self.sim.schedule_at(real, lambda: self._fire_timer(name))
        self._timers[name] = handle

    def cancel_timer(self, name: Hashable) -> None:
        """Cancel timer ``name`` if armed."""
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def has_timer(self, name: Hashable) -> bool:
        """Whether timer ``name`` is currently armed."""
        return name in self._timers

    def _fire_timer(self, name: Hashable) -> None:
        self._timers.pop(name, None)
        self.on_timer(name)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        """Entry point used by channels to hand a message to this process."""
        self.on_message(message)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:  # pragma: no cover
        """React to a message delivery; default ignores it."""

    def on_timer(self, name: Hashable) -> None:  # pragma: no cover
        """React to a timer firing; default ignores it."""

    def start(self) -> None:  # pragma: no cover
        """Called once before the simulation starts; default does nothing."""
