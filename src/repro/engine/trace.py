"""Execution traces: who pulsed when.

A :class:`Trace` records every pulse broadcast by every node and converts
the record into the pulse-time arrays the analysis package consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.topology.layered import NodeId

__all__ = ["PulseRecord", "Trace"]


@dataclass(frozen=True)
class PulseRecord:
    """A single pulse broadcast: node, pulse index, real time."""

    node: NodeId
    pulse: int
    time: float


class Trace:
    """Append-only record of pulse broadcasts."""

    def __init__(self) -> None:
        self._records: List[PulseRecord] = []
        self._by_node: Dict[NodeId, Dict[int, float]] = {}

    def record_pulse(self, node: NodeId, pulse: int, time: float) -> None:
        """Record that ``node`` broadcast pulse ``pulse`` at ``time``."""
        self._records.append(PulseRecord(node, pulse, time))
        self._by_node.setdefault(node, {})[pulse] = time

    @property
    def records(self) -> List[PulseRecord]:
        """All records in broadcast order."""
        return list(self._records)

    def pulse_time(self, node: NodeId, pulse: int) -> Optional[float]:
        """Time of pulse ``pulse`` at ``node`` or None if never broadcast."""
        return self._by_node.get(node, {}).get(pulse)

    def pulses_of(self, node: NodeId) -> Dict[int, float]:
        """All pulses of a node as ``{pulse: time}``."""
        return dict(self._by_node.get(node, {}))

    def num_pulses(self, node: NodeId) -> int:
        """Number of pulses recorded for ``node``."""
        return len(self._by_node.get(node, {}))

    def pulse_count_range(self) -> Tuple[int, int]:
        """(min, max) pulse count over nodes that pulsed at all."""
        counts = [len(p) for p in self._by_node.values()]
        if not counts:
            return (0, 0)
        return (min(counts), max(counts))

    def layer_pulse_times(
        self, layer: int, pulse: int, width: int
    ) -> List[Optional[float]]:
        """Pulse times of all base vertices of ``layer``; None where missing."""
        return [self.pulse_time((v, layer), pulse) for v in range(width)]

    def nodes(self) -> List[NodeId]:
        """All nodes that broadcast at least one pulse."""
        return sorted(self._by_node, key=lambda n: (n[1], n[0]))

    def __len__(self) -> int:
        return len(self._records)
