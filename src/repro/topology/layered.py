"""The layered synchronization DAG ``G`` built from a base graph ``H``.

Section 2 of the paper: for each layer ``l`` there is a copy ``(v, l)`` of
every ``v`` of ``H``, and edges ``((v, l), (w, l+1))`` whenever ``v == w`` or
``{v, w}`` is an edge of ``H``.  Pulses propagate along the DAG from layer 0.

The number of layers is bounded by ``Theta(sqrt(n))`` in the paper (square
chip); here it is a free constructor argument.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from repro.topology.base_graph import BaseGraph

__all__ = ["NodeId", "LayeredGraph"]

#: A node of ``G``: ``(base_vertex, layer)``.
NodeId = Tuple[int, int]


class LayeredGraph:
    """The DAG ``G = (V_G, E_G)`` of the paper.

    Parameters
    ----------
    base:
        The base graph ``H``.
    num_layers:
        Number of layers (``>= 1``).  Layer 0 holds the synchronized input
        pulses; layers ``1 .. num_layers - 1`` run the forwarding algorithm.
    """

    def __init__(self, base: BaseGraph, num_layers: int) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.base = base
        self.num_layers = num_layers

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Nodes per layer, ``|V(H)|``."""
        return self.base.num_nodes

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``n = |V(H)| * num_layers``."""
        return self.base.num_nodes * self.num_layers

    @property
    def diameter(self) -> int:
        """Diameter ``D`` of the base graph (the ``D`` of all skew bounds)."""
        return self.base.diameter

    def index(self, node: NodeId) -> int:
        """Dense array index of ``node``; row-major by layer."""
        v, layer = node
        self._check(v, layer)
        return layer * self.base.num_nodes + v

    def node_at(self, index: int) -> NodeId:
        """Inverse of :meth:`index`."""
        if not 0 <= index < self.num_nodes:
            raise ValueError(f"index {index} out of range")
        layer, v = divmod(index, self.base.num_nodes)
        return (v, layer)

    def _check(self, v: int, layer: int) -> None:
        if not 0 <= v < self.base.num_nodes:
            raise ValueError(f"base vertex {v} out of range")
        if not 0 <= layer < self.num_layers:
            raise ValueError(f"layer {layer} out of range")

    # ------------------------------------------------------------------
    # DAG structure
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[NodeId]:
        """All nodes, layer by layer."""
        for layer in range(self.num_layers):
            for v in self.base.nodes():
                yield (v, layer)

    def layer_nodes(self, layer: int) -> List[NodeId]:
        """Nodes of a given layer."""
        self._check(0, layer)
        return [(v, layer) for v in self.base.nodes()]

    def predecessors(self, node: NodeId) -> List[NodeId]:
        """In-neighbors of ``node``: its own copy plus copies of H-neighbors
        on the preceding layer.  Layer-0 nodes have none.

        The own-copy predecessor ``(v, l-1)`` is always listed first.
        """
        v, layer = node
        self._check(v, layer)
        if layer == 0:
            return []
        return [(v, layer - 1)] + [(w, layer - 1) for w in self.base.neighbors(v)]

    def neighbor_predecessors(self, node: NodeId) -> List[NodeId]:
        """Predecessors other than the node's own copy."""
        v, layer = node
        self._check(v, layer)
        if layer == 0:
            return []
        return [(w, layer - 1) for w in self.base.neighbors(v)]

    def successors(self, node: NodeId) -> List[NodeId]:
        """Out-neighbors of ``node`` on the next layer (empty on last layer)."""
        v, layer = node
        self._check(v, layer)
        if layer == self.num_layers - 1:
            return []
        return [(v, layer + 1)] + [(w, layer + 1) for w in self.base.neighbors(v)]

    def in_degree(self, node: NodeId) -> int:
        """In-degree: 0 on layer 0, else ``deg_H(v) + 1``."""
        v, layer = node
        self._check(v, layer)
        if layer == 0:
            return 0
        return self.base.degree(v) + 1

    def out_degree(self, node: NodeId) -> int:
        """Out-degree: 0 on the last layer, else ``deg_H(v) + 1``."""
        v, layer = node
        self._check(v, layer)
        if layer == self.num_layers - 1:
            return 0
        return self.base.degree(v) + 1

    def edges_between(self, layer: int) -> Iterator[Tuple[NodeId, NodeId]]:
        """All edges of ``E_layer`` (from ``layer`` to ``layer + 1``)."""
        if not 0 <= layer < self.num_layers - 1:
            return
        for v in self.base.nodes():
            for succ in self.successors((v, layer)):
                yield ((v, layer), succ)

    def intra_layer_pairs(self, layer: int) -> Iterator[Tuple[NodeId, NodeId]]:
        """Pairs of adjacent nodes within a layer (for local skew ``L_l``)."""
        self._check(0, layer)
        for v, w in self.base.edges:
            yield ((v, layer), (w, layer))

    # ------------------------------------------------------------------
    # Ancestors (Definition 4.32)
    # ------------------------------------------------------------------
    def ancestors_within(self, node: NodeId, distance: int) -> Set[NodeId]:
        """Distance-``distance`` ancestors of ``node`` (Definition 4.32).

        In ``G`` every directed path advances exactly one layer per hop, so a
        path of length ``j`` from ``(w, l-j)`` to ``(v, l)`` exists iff
        ``d_H(w, v) <= j``.
        """
        v, layer = node
        self._check(v, layer)
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        dist = self.base.distances_from(v)
        result: Set[NodeId] = set()
        max_back = min(distance, layer)
        for j in range(1, max_back + 1):
            for w in self.base.nodes():
                if dist[w] <= j:
                    result.add((w, layer - j))
        return result

    def count_ancestors_within(self, node: NodeId, distance: int) -> int:
        """Cheap count of distance-``distance`` ancestors (no set building)."""
        v, layer = node
        self._check(v, layer)
        dist = self.base.distances_from(v)
        max_back = min(distance, layer)
        total = 0
        for j in range(1, max_back + 1):
            total += sum(1 for w in self.base.nodes() if dist[w] <= j)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LayeredGraph(base={self.base.name}, layers={self.num_layers}, "
            f"n={self.num_nodes})"
        )
