"""Base graphs ``H`` for the synchronization network.

The paper requires ``H`` to be simple, connected, and of minimum degree 2
(Section 2).  The graph it actually deploys on a square chip is a line with
replicated endpoints (Figure 2), built here by :func:`replicated_line`.
Alternative base graphs (cycle, complete, torus) are provided because the
analysis is stated for arbitrary minimum-degree-2 base graphs.

Nodes are integers ``0 .. n-1``; the adjacency structure is immutable after
construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "BaseGraph",
    "replicated_line",
    "cycle_graph",
    "complete_graph",
    "path_graph",
    "star_graph",
    "torus_graph",
]


class BaseGraph:
    """An undirected simple graph with precomputed BFS distances on demand.

    Parameters
    ----------
    num_nodes:
        Number of vertices; vertices are ``0 .. num_nodes - 1``.
    edges:
        Iterable of undirected edges ``(v, w)``.  Self-loops and duplicate
        edges are rejected.
    require_min_degree_2:
        When true (default), enforce the paper's minimum-degree-2 model
        assumption.  Tests may disable it to study degenerate graphs.
    require_connected:
        When true (default), reject disconnected graphs.  Chaos-campaign
        epoch graphs (:mod:`repro.faults.campaign`) disable it: a vertex
        that has *left* the network keeps its slot (so array shapes stay
        fixed across epochs) but drops all of its edges, which makes the
        instantaneous topology formally disconnected.
    name:
        Optional human-readable label used in reports.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        require_min_degree_2: bool = True,
        require_connected: bool = True,
        name: str = "custom",
    ) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
        seen = set()
        for v, w in edges:
            if not (0 <= v < num_nodes and 0 <= w < num_nodes):
                raise ValueError(f"edge ({v}, {w}) out of range for n={num_nodes}")
            if v == w:
                raise ValueError(f"self-loop at node {v} is not allowed")
            key = (min(v, w), max(v, w))
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            adjacency[v].append(w)
            adjacency[w].append(v)
        self._num_nodes = num_nodes
        self._adjacency: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(nbrs)) for nbrs in adjacency
        )
        self._edges: Tuple[Tuple[int, int], ...] = tuple(sorted(seen))
        self.name = name
        self._distances: Dict[int, np.ndarray] = {}
        self._diameter: int | None = None
        self._edge_index_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._neighbor_index_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._neighbor_csr: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        if require_connected and not self._is_connected():
            raise ValueError("base graph must be connected")
        if require_min_degree_2 and num_nodes > 1:
            bad = [v for v in range(num_nodes) if len(self._adjacency[v]) < 2]
            if bad:
                raise ValueError(
                    f"base graph must have minimum degree 2; nodes {bad} do not"
                )

    def _is_connected(self) -> bool:
        # The vectorized BFS doubles as the connectivity probe and warms
        # the distance cache for vertex 0.
        return bool((self.distances_from(0) >= 0).all())

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of vertices of ``H``."""
        return self._num_nodes

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted tuple of undirected edges ``(v, w)`` with ``v < w``."""
        return self._edges

    @property
    def adjacency(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-vertex sorted neighbor tuples -- the graph's structural key.

        Built once at construction; hot callers (the trial-stack grouping
        key, :func:`repro.core.fast_batch.stack_compatibility`) compare it
        by identity-stable tuple instead of regathering ``neighbors(v)``
        per vertex per trial.
        """
        return self._adjacency

    def edge_index_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(left, right)`` int64 endpoint arrays over :attr:`edges`.

        Cached on the graph (adjacency is immutable), following the same
        pattern as ``DelayModel._edge_array_cache``: array consumers (skew
        reducers, layer-0 schedules) gather the Python edge tuples once
        per graph instead of once per call.
        """
        if self._edge_index_arrays is None:
            left = np.array([e[0] for e in self._edges], dtype=np.int64)
            right = np.array([e[1] for e in self._edges], dtype=np.int64)
            for arr in (left, right):
                arr.setflags(write=False)
            self._edge_index_arrays = (left, right)
        return self._edge_index_arrays

    def neighbor_index_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Padded ``(W, max_deg)`` neighbor gather indices and validity mask.

        ``idx[v, j]`` is the ``j``-th (sorted) neighbor of ``v`` where
        ``valid[v, j]`` is True, and 0 (an inert placeholder never read
        through an unmasked lane) elsewhere.  ``max_deg`` is at least 1 so
        downstream gathers always have a last axis.  Cached on the graph
        (adjacency is immutable): the vectorized simulator kernels used to
        rebuild these per run per trial with a Python double loop.
        """
        if self._neighbor_index_arrays is None:
            cols = max(self.max_degree(), 1)
            idx = np.zeros((self._num_nodes, cols), dtype=np.int64)
            valid = np.zeros((self._num_nodes, cols), dtype=bool)
            for v, nbs in enumerate(self._adjacency):
                idx[v, : len(nbs)] = nbs
                valid[v, : len(nbs)] = True
            for arr in (idx, valid):
                arr.setflags(write=False)
            self._neighbor_index_arrays = (idx, valid)
        return self._neighbor_index_arrays

    def neighbor_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, edge_slot)`` CSR neighbor arrays (cached).

        The compressed-sparse-row mirror of :meth:`neighbor_index_arrays`:
        the (sorted) neighbors of vertex ``v`` are
        ``indices[indptr[v]:indptr[v + 1]]``, and ``edge_slot[j]`` maps the
        ``j``-th directed entry back to its undirected slot in
        :attr:`edges` (so per-edge state -- delays, flap schedules -- can
        be gathered without a Python dict lookup per entry).  Memory is
        ``O(n + m)`` instead of the padded ``O(n * max_deg)``, which is
        what makes hub-skewed sparse graphs viable: a single high-degree
        vertex no longer widens every row of the dense tensors.
        """
        if self._neighbor_csr is None:
            degrees = np.fromiter(
                (len(nbs) for nbs in self._adjacency),
                dtype=np.int64,
                count=self._num_nodes,
            )
            indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            flat = [w for nbs in self._adjacency for w in nbs]
            indices = np.array(flat, dtype=np.int64)
            edge_id = {edge: i for i, edge in enumerate(self._edges)}
            edge_slot = np.array(
                [
                    edge_id[(v, w) if v < w else (w, v)]
                    for v, nbs in enumerate(self._adjacency)
                    for w in nbs
                ],
                dtype=np.int64,
            )
            for arr in (indptr, indices, edge_slot):
                arr.setflags(write=False)
            self._neighbor_csr = (indptr, indices, edge_slot)
        return self._neighbor_csr

    def nodes(self) -> range:
        """Iterable over vertices."""
        return range(self._num_nodes)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return len(self._adjacency[v])

    def min_degree(self) -> int:
        """Minimum degree over all vertices."""
        return min(len(nbrs) for nbrs in self._adjacency)

    def max_degree(self) -> int:
        """Maximum degree over all vertices."""
        return max(len(nbrs) for nbrs in self._adjacency)

    def has_edge(self, v: int, w: int) -> bool:
        """Whether ``{v, w}`` is an edge of ``H``."""
        return w in self._adjacency[v]

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def distances_from(self, source: int) -> np.ndarray:
        """BFS distances from ``source`` as an int64 array (cached).

        Runs a frontier-at-a-time BFS over the :meth:`neighbor_csr`
        arrays: each level expands every frontier vertex's CSR segment in
        one vectorized gather instead of a Python loop per edge, so
        regional-outage compilation (which calls :meth:`ball` per event)
        stays cheap on 10^5+-node graphs.  Unreached vertices hold ``-1``.
        """
        cached = self._distances.get(source)
        if cached is not None:
            return cached
        indptr, indices, _ = self.neighbor_csr()
        dist = np.full(self._num_nodes, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
            gather = np.repeat(starts - shift, counts) + np.arange(total)
            nbrs = indices[gather]
            fresh = np.unique(nbrs[dist[nbrs] < 0])
            if fresh.size == 0:
                break
            depth += 1
            dist[fresh] = depth
            frontier = fresh
        dist.setflags(write=False)
        self._distances[source] = dist
        return dist

    def distance(self, v: int, w: int) -> int:
        """Hop distance ``d(v, w)`` in ``H``."""
        return int(self.distances_from(v)[w])

    @property
    def diameter(self) -> int:
        """Diameter ``D`` of ``H`` (1 for the single-node graph)."""
        if self._diameter is None:
            worst = max(
                int(self.distances_from(v).max())
                for v in range(self._num_nodes)
            )
            self._diameter = max(worst, 1)
        return self._diameter

    def ball(self, center: int, radius: int) -> List[int]:
        """Vertices within hop distance ``radius`` of ``center``.

        Returned as plain Python ints: campaign epoch state keys hash
        these values, and they must compare equal across processes
        regardless of NumPy scalar types.
        """
        dist = self.distances_from(center)
        inside = np.flatnonzero((dist >= 0) & (dist <= radius))
        return [int(v) for v in inside]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BaseGraph(name={self.name!r}, n={self._num_nodes}, "
            f"m={len(self._edges)}, D={self.diameter})"
        )


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def replicated_line(length: int) -> BaseGraph:
    """The paper's base graph (Figure 2): a line with replicated endpoints.

    ``length`` is the number of interior path nodes (``>= 2``).  Nodes
    ``0 .. length-1`` form the path; node ``length`` replicates node ``0``
    (adjacent to ``0`` and ``1``) and node ``length + 1`` replicates node
    ``length - 1`` (adjacent to ``length - 1`` and ``length - 2``).

    Every node has degree at least 2, nodes ``1`` and ``length - 2`` have
    degree 3 (hence in-degree 4 in the layered graph -- the "some 4" of
    Figure 3).
    """
    if length < 2:
        raise ValueError(f"length must be >= 2, got {length}")
    edges = [(i, i + 1) for i in range(length - 1)]
    left_twin = length
    right_twin = length + 1
    edges.append((left_twin, 0))
    edges.append((left_twin, 1))
    edges.append((right_twin, length - 1))
    if length >= 3:
        edges.append((right_twin, length - 2))
    else:
        # For length == 2 the twins attach to both path nodes; avoid the
        # duplicate (right_twin, 0) that the generic rule would create.
        edges.append((right_twin, 0))
    return BaseGraph(length + 2, edges, name=f"replicated_line({length})")


def cycle_graph(num_nodes: int) -> BaseGraph:
    """Cycle on ``num_nodes >= 3`` vertices (the theoretically cleanest H)."""
    if num_nodes < 3:
        raise ValueError(f"cycle needs >= 3 nodes, got {num_nodes}")
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return BaseGraph(num_nodes, edges, name=f"cycle({num_nodes})")


def complete_graph(num_nodes: int) -> BaseGraph:
    """Complete graph (diameter 1); the degenerate ``D = 1`` regime."""
    if num_nodes < 3:
        raise ValueError(f"complete graph needs >= 3 nodes, got {num_nodes}")
    edges = [
        (v, w) for v in range(num_nodes) for w in range(v + 1, num_nodes)
    ]
    return BaseGraph(num_nodes, edges, name=f"complete({num_nodes})")


def path_graph(num_nodes: int) -> BaseGraph:
    """Plain path; violates minimum degree 2 and is only for degenerate tests."""
    if num_nodes < 2:
        raise ValueError(f"path needs >= 2 nodes, got {num_nodes}")
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return BaseGraph(
        num_nodes, edges, require_min_degree_2=False, name=f"path({num_nodes})"
    )


def star_graph(num_leaves: int) -> BaseGraph:
    """Star graph; violates minimum degree 2 and is only for degenerate tests."""
    if num_leaves < 2:
        raise ValueError(f"star needs >= 2 leaves, got {num_leaves}")
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    return BaseGraph(
        num_leaves + 1,
        edges,
        require_min_degree_2=False,
        name=f"star({num_leaves})",
    )


def torus_graph(rows: int, cols: int) -> BaseGraph:
    """2D torus grid; an alternative minimum-degree-4 base graph."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows >= 3 and cols >= 3")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.add((min(v, right), max(v, right)))
            edges.add((min(v, down), max(v, down)))
    return BaseGraph(rows * cols, sorted(edges), name=f"torus({rows}x{cols})")
