"""Low-degree, diameter-optimized base graphs for large-``n`` sweeps.

The skew bounds of the paper are most interesting on graphs where the
diameter grows much slower than the node count while the degree stays
tiny -- the regime of Octopus-style sparse CXL pod topologies and
supernode P2P overlays (see PAPERS.md).  The workhorse here is the
circulant ring ``C_n(1, s)``: a cycle plus stride-``s`` chords.  With
``s ~ sqrt(n)`` the diameter is ``O(sqrt(n))`` at constant degree 4, so
a million-node layered graph stays within reach of the CSR fast path
while the dense padded ``(W, max_deg)`` tensors would still be tame --
until hubs enter.  Optional *hub* vertices attach to evenly spaced ring
vertices, which both shrinks the diameter and skews the degree
distribution: one hub of degree ``d`` forces every row of the dense
padded neighbor tensors to width ``d``, which is exactly the pathology
the ``csr`` neighbor backend exists to avoid.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.topology.base_graph import BaseGraph
from repro.topology.layered import LayeredGraph

__all__ = ["sparse_base_graph", "sparse_layered"]


def sparse_base_graph(
    num_nodes: int,
    chord_stride: Optional[int] = None,
    num_hubs: int = 0,
    hub_degree: Optional[int] = None,
) -> BaseGraph:
    """Circulant ring ``C_n(1, s)`` with optional high-degree hubs.

    Parameters
    ----------
    num_nodes:
        Total vertex count, hubs included.  Ring vertices are
        ``0 .. num_nodes - num_hubs - 1``; hubs take the trailing ids.
    chord_stride:
        Chord stride ``s`` (``2 <= s <= ring - 2``).  Defaults to
        ``max(2, isqrt(ring))``, which makes the ring diameter
        ``O(sqrt(ring))`` at degree 4.
    num_hubs:
        Number of hub vertices appended after the ring.
    hub_degree:
        Ring attachments per hub (``>= 2`` so the minimum-degree-2 model
        assumption holds).  Defaults to ``max(4, isqrt(ring))``.  Each
        hub connects to every ``ring // hub_degree``-th ring vertex,
        rotated by the hub index so distinct hubs cover distinct spokes.

    Example
    -------
    >>> g = sparse_base_graph(64)
    >>> g.max_degree()
    4
    >>> skewed = sparse_base_graph(65, num_hubs=1, hub_degree=16)
    >>> skewed.max_degree()
    16
    """
    if num_hubs < 0:
        raise ValueError(f"num_hubs must be >= 0, got {num_hubs}")
    ring = num_nodes - num_hubs
    if ring < 5:
        raise ValueError(
            f"need at least 5 ring vertices, got {ring} "
            f"(num_nodes={num_nodes}, num_hubs={num_hubs})"
        )
    if chord_stride is None:
        chord_stride = max(2, math.isqrt(ring))
    if not 2 <= chord_stride <= ring - 2:
        raise ValueError(
            f"chord_stride must be in [2, {ring - 2}], got {chord_stride}"
        )
    edges = set()
    for i in range(ring):
        ring_next = (i + 1) % ring
        chord = (i + chord_stride) % ring
        edges.add((min(i, ring_next), max(i, ring_next)))
        edges.add((min(i, chord), max(i, chord)))
    if num_hubs:
        if hub_degree is None:
            hub_degree = max(4, math.isqrt(ring))
        if not 2 <= hub_degree <= ring:
            raise ValueError(
                f"hub_degree must be in [2, {ring}], got {hub_degree}"
            )
        spoke_stride = max(1, ring // hub_degree)
        for h in range(num_hubs):
            hub = ring + h
            for j in range(hub_degree):
                target = (h + j * spoke_stride) % ring
                edges.add((target, hub))
    return BaseGraph(
        num_nodes,
        sorted(edges),
        name=(
            f"sparse_ring({num_nodes},s={chord_stride},hubs={num_hubs})"
        ),
    )


def sparse_layered(
    width: int,
    num_layers: int,
    chord_stride: Optional[int] = None,
    num_hubs: int = 0,
    hub_degree: Optional[int] = None,
) -> LayeredGraph:
    """Layered DAG over :func:`sparse_base_graph` -- the mega-sweep substrate.

    ``width * num_layers`` total nodes; with the default stride the base
    diameter is ``O(sqrt(width))``, so skew bounds stay informative at
    widths where a dense neighbor representation cannot allocate.

    Example
    -------
    >>> g = sparse_layered(64, 3)
    >>> (g.width, g.num_layers)
    (64, 3)
    """
    base = sparse_base_graph(
        width,
        chord_stride=chord_stride,
        num_hubs=num_hubs,
        hub_degree=hub_degree,
    )
    return LayeredGraph(base, num_layers)
