"""Graph substrates: base graphs ``H`` and the layered DAG ``G``.

The paper synchronizes a layered directed graph ``G`` built from copies of a
connected base graph ``H`` of minimum degree 2 (Section 2, Figures 2-3).
:class:`~repro.topology.base_graph.BaseGraph` models ``H`` and
:class:`~repro.topology.layered.LayeredGraph` models ``G``.
"""

from repro.topology.base_graph import (
    BaseGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    replicated_line,
    star_graph,
    torus_graph,
)
from repro.topology.layered import LayeredGraph, NodeId
from repro.topology.sparse import sparse_base_graph, sparse_layered

__all__ = [
    "BaseGraph",
    "LayeredGraph",
    "NodeId",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "replicated_line",
    "sparse_base_graph",
    "sparse_layered",
    "star_graph",
    "torus_graph",
]
