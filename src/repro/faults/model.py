"""Fault behaviour implementations.

A :class:`FaultBehavior` decides, per pulse and per successor edge, when (or
whether) a faulty node's pulse message is sent.  Behaviours receive a
:class:`FaultContext` carrying the time at which the node *would* have pulsed
had it been correct -- the same reference point Lemma 4.30 uses when it
compares the faulty execution to the corresponding correct one.

``None`` means "no message" (a crash/omission on that edge for that pulse).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.topology.layered import NodeId

__all__ = [
    "FaultContext",
    "FaultBehavior",
    "CrashFault",
    "SilentFromFault",
    "FixedOffsetFault",
    "PerSuccessorOffsetFault",
    "ByzantineRandomFault",
    "AdversarialEarlyFault",
    "AdversarialLateFault",
    "MutableFault",
]


@dataclass(frozen=True)
class FaultContext:
    """Inputs available to a fault behaviour when it picks a send time.

    Attributes
    ----------
    node:
        The faulty node ``(v, l)``.
    pulse:
        Pulse index ``k`` (0-based).
    correct_time:
        The time at which this node broadcasts pulse ``k`` in the execution
        where it follows the protocol on its actual inputs.
    kappa:
        The discretization unit, handy for scaling adversarial offsets.
    """

    node: NodeId
    pulse: int
    correct_time: float
    kappa: float


class FaultBehavior(ABC):
    """Per-(pulse, successor) send-time policy of a faulty node."""

    @abstractmethod
    def send_time(
        self, context: FaultContext, successor: NodeId
    ) -> Optional[float]:
        """Time the pulse message leaves toward ``successor``; None = silent."""

    def is_static(self) -> bool:
        """Whether the timing profile is identical across pulses.

        Static behaviours (Theorem 1.4's model: static faults and delay
        faults with a static timing profile) shift every pulse by the same
        per-successor offset relative to the correct schedule.
        """
        return False


class CrashFault(FaultBehavior):
    """Never sends anything."""

    def send_time(self, context: FaultContext, successor: NodeId) -> None:
        return None

    def is_static(self) -> bool:
        return True


class SilentFromFault(FaultBehavior):
    """Behaves correctly before pulse ``start_pulse``, then crashes.

    Models the common "worked correctly, then a benign fault occurred"
    scenario discussed below Theorem 1.4.
    """

    def __init__(self, start_pulse: int) -> None:
        if start_pulse < 0:
            raise ValueError(f"start_pulse must be >= 0, got {start_pulse}")
        self.start_pulse = start_pulse

    def send_time(
        self, context: FaultContext, successor: NodeId
    ) -> Optional[float]:
        if context.pulse >= self.start_pulse:
            return None
        return context.correct_time


class FixedOffsetFault(FaultBehavior):
    """Sends every pulse ``offset`` time away from the correct schedule.

    This is the "delay fault with a static timing profile" of Section 1:
    successors see a uniformly early (``offset < 0``) or late
    (``offset > 0``) pulse, with no change between pulses.
    """

    def __init__(self, offset: float) -> None:
        self.offset = offset

    def send_time(self, context: FaultContext, successor: NodeId) -> float:
        return context.correct_time + self.offset

    def is_static(self) -> bool:
        return True


class PerSuccessorOffsetFault(FaultBehavior):
    """Static but successor-dependent offsets (models faulty *edges*).

    The paper maps edge faults to node faults; a node whose outgoing edges
    have distinct static delay errors looks exactly like this behaviour.
    Successors not listed get the correct time (offset 0); ``None`` as an
    offset silences that edge.
    """

    def __init__(self, offsets: Dict[NodeId, Optional[float]]) -> None:
        self.offsets = dict(offsets)

    def send_time(
        self, context: FaultContext, successor: NodeId
    ) -> Optional[float]:
        offset = self.offsets.get(successor, 0.0)
        if offset is None:
            return None
        return context.correct_time + offset

    def is_static(self) -> bool:
        return True


class ByzantineRandomFault(FaultBehavior):
    """Fresh random offset per pulse and per successor.

    The strongest behaviour inside the model when used sparingly: timing
    changes every pulse, so only a constant number of such nodes may be
    active per pulse (Corollary 1.5(i)).
    """

    def __init__(self, span: float, seed: int = 0) -> None:
        if span < 0:
            raise ValueError(f"span must be >= 0, got {span}")
        self.span = span
        self.seed = seed

    def send_time(self, context: FaultContext, successor: NodeId) -> float:
        v, layer = context.node
        sv, sl = successor
        entropy = [self.seed & 0xFFFFFFFF, v, layer, sv, sl, context.pulse]
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        return context.correct_time + float(rng.uniform(-self.span, self.span))


class AdversarialEarlyFault(FaultBehavior):
    """Sends ``lead * kappa`` before the correct schedule, every pulse."""

    def __init__(self, lead_kappas: float) -> None:
        if lead_kappas < 0:
            raise ValueError(f"lead_kappas must be >= 0, got {lead_kappas}")
        self.lead_kappas = lead_kappas

    def send_time(self, context: FaultContext, successor: NodeId) -> float:
        return context.correct_time - self.lead_kappas * context.kappa

    def is_static(self) -> bool:
        return True


class AdversarialLateFault(FaultBehavior):
    """Sends ``lag * kappa`` after the correct schedule, every pulse."""

    def __init__(self, lag_kappas: float) -> None:
        if lag_kappas < 0:
            raise ValueError(f"lag_kappas must be >= 0, got {lag_kappas}")
        self.lag_kappas = lag_kappas

    def send_time(self, context: FaultContext, successor: NodeId) -> float:
        return context.correct_time + self.lag_kappas * context.kappa

    def is_static(self) -> bool:
        return True


class MutableFault(FaultBehavior):
    """Switches between behaviours on a pulse schedule.

    ``phases`` is a sequence of ``(start_pulse, behavior)`` with strictly
    increasing start pulses beginning at 0.  Used to exercise the
    "faulty nodes change their behaviour" budget of Corollary 1.5(i).
    """

    def __init__(self, phases: Sequence[Tuple[int, FaultBehavior]]) -> None:
        if not phases:
            raise ValueError("phases must be non-empty")
        starts = [start for start, _ in phases]
        if starts[0] != 0:
            raise ValueError("first phase must start at pulse 0")
        if any(s2 <= s1 for s1, s2 in zip(starts, starts[1:])):
            raise ValueError("phase start pulses must be strictly increasing")
        self.phases = list(phases)

    def _active(self, pulse: int) -> FaultBehavior:
        current = self.phases[0][1]
        for start, behavior in self.phases:
            if pulse >= start:
                current = behavior
            else:
                break
        return current

    def send_time(
        self, context: FaultContext, successor: NodeId
    ) -> Optional[float]:
        return self._active(context.pulse).send_time(context, successor)

    def changes_at(self, pulse: int) -> bool:
        """Whether this fault switches behaviour exactly at ``pulse``."""
        return any(start == pulse for start, _ in self.phases[1:])
