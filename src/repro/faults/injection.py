"""Fault plans: which nodes are faulty and how.

A :class:`FaultPlan` is an immutable map from nodes of the layered graph to
:class:`~repro.faults.model.FaultBehavior` instances, plus constructors for
the two fault distributions the paper analyzes:

* independent failures with probability ``p`` (Theorems 1.3/1.4), and
* adversarially stacked faults along a column (Theorem 1.2's worst case).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.faults.model import CrashFault, FaultBehavior
from repro.topology.layered import LayeredGraph, NodeId

__all__ = ["FaultPlan"]

BehaviorFactory = Callable[[NodeId, np.random.Generator], FaultBehavior]


def _default_behavior_factory(
    node: NodeId, rng: np.random.Generator
) -> FaultBehavior:
    return CrashFault()


class FaultPlan:
    """Immutable assignment of fault behaviours to grid nodes.

    The static fault model: the faulty set ``F`` and each member's
    :class:`~repro.faults.model.FaultBehavior` are fixed for the whole
    run (time-varying conditions are layered on top by
    :class:`~repro.faults.campaign.ChaosCampaign`, which merges plans
    per epoch).

    Example
    -------
    >>> from repro.faults.injection import FaultPlan
    >>> from repro.faults.model import CrashFault
    >>> plan = FaultPlan.from_nodes({(2, 1): CrashFault()})
    >>> plan.is_faulty((2, 1)), plan.is_faulty((2, 0)), len(plan)
    (True, False, 1)
    """

    def __init__(self, behaviors: Dict[NodeId, FaultBehavior] | None = None) -> None:
        self._behaviors: Dict[NodeId, FaultBehavior] = dict(behaviors or {})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_faulty(self, node: NodeId) -> bool:
        """Whether ``node`` is in the faulty set ``F``."""
        return node in self._behaviors

    def behavior(self, node: NodeId) -> Optional[FaultBehavior]:
        """Behaviour of ``node`` or None when it is correct."""
        return self._behaviors.get(node)

    def faulty_nodes(self) -> List[NodeId]:
        """Sorted list of faulty nodes."""
        return sorted(self._behaviors, key=lambda n: (n[1], n[0]))

    def __len__(self) -> int:
        return len(self._behaviors)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.faulty_nodes())

    def faults_in_layer(self, layer: int) -> List[NodeId]:
        """Faulty nodes on a given layer."""
        return [n for n in self.faulty_nodes() if n[1] == layer]

    def faulty_mask(self, graph: LayeredGraph) -> np.ndarray:
        """Boolean array ``(num_layers, width)``: True where faulty."""
        mask = np.zeros((graph.num_layers, graph.width), dtype=bool)
        for v, layer in self._behaviors:
            mask[layer, v] = True
        return mask

    def with_fault(self, node: NodeId, behavior: FaultBehavior) -> "FaultPlan":
        """Copy of this plan with one additional fault."""
        updated = dict(self._behaviors)
        updated[node] = behavior
        return FaultPlan(updated)

    # ------------------------------------------------------------------
    # Model-conformance audits
    # ------------------------------------------------------------------
    def is_one_local(self, graph: LayeredGraph) -> bool:
        """Check the paper's 1-locality constraint.

        For every layer ``l`` and base vertex ``v``, the closed neighborhood
        ``{(v, l)} u {(w, l) : {v, w} in E}`` contains at most one fault.
        This implies every node has at most one faulty predecessor.
        """
        return not self.one_locality_violations(graph)

    def one_locality_violations(
        self, graph: LayeredGraph
    ) -> List[Tuple[NodeId, List[NodeId]]]:
        """Closed neighborhoods containing two or more faults."""
        violations: List[Tuple[NodeId, List[NodeId]]] = []
        faulty_by_layer: Dict[int, set] = {}
        for v, layer in self._behaviors:
            faulty_by_layer.setdefault(layer, set()).add(v)
        for layer, faulty in faulty_by_layer.items():
            for v in graph.base.nodes():
                closed = [v, *graph.base.neighbors(v)]
                hits = [(w, layer) for w in closed if w in faulty]
                if len(hits) >= 2:
                    violations.append(((v, layer), hits))
        return violations

    def count_behavior_changes(self, pulse: int) -> int:
        """Faulty nodes that switch behaviour exactly at ``pulse``.

        Only :class:`~repro.faults.model.MutableFault` can switch; the
        paper's Corollary 1.5(i) allows a constant number per pulse.
        """
        total = 0
        for behavior in self._behaviors.values():
            changes_at = getattr(behavior, "changes_at", None)
            if changes_at is not None and changes_at(pulse):
                total += 1
        return total

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan."""
        return cls({})

    @classmethod
    def from_nodes(
        cls,
        nodes_and_behaviors: Dict[NodeId, FaultBehavior],
    ) -> "FaultPlan":
        """Explicit plan from a node -> behaviour mapping."""
        return cls(nodes_and_behaviors)

    @classmethod
    def random(
        cls,
        graph: LayeredGraph,
        probability: float,
        rng_or_seed=0,
        behavior_factory: BehaviorFactory = _default_behavior_factory,
        protect_layer0: bool = True,
        enforce_one_local: bool = False,
        max_resamples: int = 1000,
    ) -> "FaultPlan":
        """Independent faults with probability ``probability`` per node.

        ``protect_layer0`` skips layer 0 (the paper argues faults there occur
        with probability ``o(1)`` and handles them separately).  With
        ``enforce_one_local`` the sample is redrawn until the 1-locality
        constraint holds, conditioning on the high-probability event the
        analysis assumes throughout.
        """
        if not 0 <= probability <= 1:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        rng = (
            rng_or_seed
            if isinstance(rng_or_seed, np.random.Generator)
            else np.random.default_rng(rng_or_seed)
        )
        first_layer = 1 if protect_layer0 else 0
        candidates = [
            (v, layer)
            for layer in range(first_layer, graph.num_layers)
            for v in graph.base.nodes()
        ]
        for _ in range(max_resamples):
            draws = rng.random(len(candidates))
            behaviors = {
                node: behavior_factory(node, rng)
                for node, draw in zip(candidates, draws)
                if draw < probability
            }
            plan = cls(behaviors)
            if not enforce_one_local or plan.is_one_local(graph):
                return plan
        raise RuntimeError(
            "could not sample a 1-local fault plan in "
            f"{max_resamples} attempts (p={probability} too high?)"
        )

    @classmethod
    def column_stack(
        cls,
        graph: LayeredGraph,
        num_faults: int,
        base_vertex: int,
        first_layer: int,
        layer_spacing: int,
        behavior_factory: Callable[[NodeId], FaultBehavior],
    ) -> "FaultPlan":
        """Worst-case clustering for Theorem 1.2: faults stacked in a column.

        Places ``num_faults`` faults at ``(base_vertex, first_layer + i *
        layer_spacing)``.  With small spacing the skew contributions compound
        before the self-stabilization of the simulated GCS algorithm can
        absorb them -- the regime in which the ``O(5^f kappa log D)`` bound
        of Theorem 1.2 binds.
        """
        if num_faults < 0:
            raise ValueError(f"num_faults must be >= 0, got {num_faults}")
        if layer_spacing < 1:
            raise ValueError(f"layer_spacing must be >= 1, got {layer_spacing}")
        if first_layer < 1:
            raise ValueError("first_layer must be >= 1 (layer 0 is fault-free)")
        behaviors: Dict[NodeId, FaultBehavior] = {}
        for i in range(num_faults):
            layer = first_layer + i * layer_spacing
            if layer >= graph.num_layers:
                raise ValueError(
                    f"fault {i} lands on layer {layer} beyond the grid "
                    f"({graph.num_layers} layers)"
                )
            node = (base_vertex, layer)
            behaviors[node] = behavior_factory(node)
        return cls(behaviors)
