"""Declarative chaos campaigns: timed churn compiled to per-epoch state.

Every fault mechanism so far was *pre-committed*: a static
:class:`~repro.faults.injection.FaultPlan` fixed before the run, over a
static topology.  A :class:`ChaosCampaign` opens the dynamic regime of
the Skype-style membership-churn analyses: a schedule of timed events --
node crash/recover, node join/leave, edge flap, correlated regional
outage -- declared against a seed :class:`~repro.topology.base_graph.
BaseGraph` and *compiled* into a :class:`CampaignSchedule` of epochs,
each epoch a maximal run of pulses over which the instantaneous
adjacency and fault state are constant.  The simulators consume the
epochs (re-gathering their neighbor tensors only at epoch boundaries),
so a pulse-long edge flap and a hundred quiet pulses cost the same
per-pulse work as a static run.

Semantics (what each event means)
---------------------------------
Events are keyed by the **pulse index** at which they take effect; all
layers of pulse ``k`` run under epoch(``k``)'s state.  This is exact,
not an approximation: by Lemma B.1 the recurrence couples layers only
*within* a pulse, so a dynamic run equals, pulse for pulse, a static run
on that pulse's instantaneous graph.  Sub-pulse timing (an edge down
for half a pulse window) is compiled conservatively: an edge down for
any part of pulse ``k``'s window is down for pulse ``k``.

* **Crash / recover** (:class:`NodeCrash` / :class:`NodeRecover`): the
  grid node keeps its edges but stops sending -- neighbors still *wait*
  for it (and time out, or take the exact scalar fallback).  A fault in
  the paper's sense, realized by merging a
  :class:`~repro.faults.model.FaultBehavior` into the epoch's plan.
* **Leave / join** (:class:`NodeLeave` / :class:`NodeJoin`): membership.
  A vertex that leaves drops *all* of its base-graph edges -- former
  neighbors stop expecting its messages entirely (this is the
  time-varying-adjacency case, not a fault-masking case) -- and its own
  grid column is silenced on every layer.  The vertex keeps its array
  slot, so result shapes are constant across epochs.
* **Edge down / up / flap** (:class:`EdgeDown` / :class:`EdgeUp` /
  :class:`EdgeFlap`): a single seed edge disappears and reappears;
  both endpoints simply lose one predecessor while it is down.
* **Regional outage** (:class:`RegionalOutage`): every vertex within
  ``radius`` hops of ``center`` (in the *seed* graph) crashes or leaves
  at once and recovers ``duration`` pulses later -- the correlated
  failure mode independent per-node fault plans cannot express.

Example
-------
>>> from repro.faults.campaign import ChaosCampaign, EdgeFlap, NodeLeave, NodeJoin
>>> from repro.topology.base_graph import cycle_graph
>>> campaign = ChaosCampaign(
...     cycle_graph(6), num_layers=3,
...     events=[NodeLeave(pulse=1, vertex=2), NodeJoin(pulse=3, vertex=2),
...             EdgeFlap(pulse=2, edge=(4, 5))],
... )
>>> schedule = campaign.compile(num_pulses=5)
>>> [(e.start, e.end) for e in schedule.epochs]
[(0, 1), (1, 2), (2, 3), (3, 5)]
>>> schedule.epoch_at(4).graph.base.has_edge(4, 5)  # flap is over
True

The compiled epochs are consumed by
:class:`~repro.core.fast.FastSimulation` (``campaign=``),
:class:`~repro.core.fast_batch.TrialStack`, and
:class:`~repro.experiments.batch.BatchRunner` (``BatchTrial.campaign``);
see ``docs/chaos_campaigns.md`` for the guide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.faults.injection import FaultPlan
from repro.faults.model import CrashFault, FaultBehavior
from repro.topology.base_graph import BaseGraph
from repro.topology.layered import LayeredGraph, NodeId

__all__ = [
    "CampaignEvent",
    "NodeCrash",
    "NodeRecover",
    "NodeLeave",
    "NodeJoin",
    "EdgeDown",
    "EdgeUp",
    "EdgeFlap",
    "RegionalOutage",
    "CampaignEpoch",
    "CampaignSchedule",
    "ChaosCampaign",
]


def _edge_key(edge: Tuple[int, int]) -> Tuple[int, int]:
    v, w = edge
    return (v, w) if v <= w else (w, v)


@dataclass(frozen=True)
class CampaignEvent:
    """Base class for campaign events; ``pulse`` is when it takes effect."""

    pulse: int

    def __post_init__(self) -> None:
        if self.pulse < 0:
            raise ValueError(f"event pulse must be >= 0, got {self.pulse}")


@dataclass(frozen=True)
class NodeCrash(CampaignEvent):
    """Grid node ``node`` becomes faulty (default behaviour: crash).

    The node keeps its edges; successors still wait on it.  ``behavior``
    may be any :class:`~repro.faults.model.FaultBehavior` (a "crash" in
    the campaign sense is "starts misbehaving", not necessarily silence).
    """

    node: NodeId = (0, 1)
    behavior: FaultBehavior = field(default_factory=CrashFault)


@dataclass(frozen=True)
class NodeRecover(CampaignEvent):
    """Grid node ``node`` stops misbehaving (undoes a :class:`NodeCrash`)."""

    node: NodeId = (0, 1)


@dataclass(frozen=True)
class NodeLeave(CampaignEvent):
    """Base vertex ``vertex`` leaves: all its edges drop, its column silences."""

    vertex: int = 0


@dataclass(frozen=True)
class NodeJoin(CampaignEvent):
    """Base vertex ``vertex`` rejoins with its seed edges (undoes a leave).

    Edges to vertices that are themselves still absent (or held down by
    an :class:`EdgeDown`) stay down until their other cause clears.
    """

    vertex: int = 0


@dataclass(frozen=True)
class EdgeDown(CampaignEvent):
    """Seed edge ``edge`` goes down (both directions at once)."""

    edge: Tuple[int, int] = (0, 1)


@dataclass(frozen=True)
class EdgeUp(CampaignEvent):
    """Seed edge ``edge`` comes back (undoes an :class:`EdgeDown`)."""

    edge: Tuple[int, int] = (0, 1)


@dataclass(frozen=True)
class EdgeFlap(CampaignEvent):
    """Edge down at ``pulse``, back up ``down_pulses`` pulses later."""

    edge: Tuple[int, int] = (0, 1)
    down_pulses: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.down_pulses < 1:
            raise ValueError(
                f"down_pulses must be >= 1, got {self.down_pulses}"
            )


@dataclass(frozen=True)
class RegionalOutage(CampaignEvent):
    """Correlated outage: the whole ball around ``center`` fails at once.

    Every vertex within ``radius`` hops of ``center`` in the *seed*
    graph is hit at ``pulse`` and restored at ``pulse + duration``.
    ``kind="crash"`` crashes every grid node of the region on layers
    ``>= 1`` (layer 0 is the clock source; the paper treats its faults
    separately); ``kind="leave"`` removes the region's vertices from the
    topology entirely.
    """

    center: int = 0
    radius: int = 1
    duration: int = 1
    kind: str = "crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.radius < 0:
            raise ValueError(f"radius must be >= 0, got {self.radius}")
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1, got {self.duration}")
        if self.kind not in ("crash", "leave"):
            raise ValueError(f"kind must be 'crash' or 'leave', got {self.kind!r}")


# Primitive state-transition actions events expand into at compile time:
# ("crash", node, behavior) / ("recover", node) / ("leave", v) /
# ("join", v) / ("down", edge) / ("up", edge).
_Action = Tuple


@dataclass(frozen=True)
class CampaignEpoch:
    """A maximal pulse range with constant adjacency and fault state.

    Attributes
    ----------
    start, end:
        Pulse range ``[start, end)`` the epoch covers.
    graph:
        The epoch's :class:`~repro.topology.layered.LayeredGraph` -- same
        width and layer count as the seed, with down/absent edges removed.
    fault_plan:
        The epoch's merged plan: the trial's static plan, plus campaign
        crashes, plus all-layer crash masks for absent vertices.
    state_key:
        Hashable snapshot of the epoch's state, equal across epochs with
        identical state -- simulators key their rebuilt sweep structures
        on it, so a topology that *returns* to an earlier state (an edge
        flapping back up) reuses the earlier epoch's tensors.
    absent:
        The vertices that have left, for accounting and reporting.
    down_edges:
        Seed edges explicitly held down (not counting absent-vertex edges).
    """

    start: int
    end: int
    graph: LayeredGraph
    fault_plan: FaultPlan
    state_key: Tuple
    absent: frozenset
    down_edges: frozenset


class CampaignSchedule:
    """The compiled form of a campaign: consecutive :class:`CampaignEpoch`.

    Built by :meth:`ChaosCampaign.compile`; epochs tile ``[0,
    num_pulses)`` exactly, and consecutive pulses with identical state are
    merged into one epoch, so iterating boundaries visits each distinct
    state change once.
    """

    def __init__(
        self, epochs: Sequence[CampaignEpoch], num_actions: int,
        last_event_pulse: Optional[int],
    ) -> None:
        if not epochs:
            raise ValueError("a schedule needs at least one epoch")
        self.epochs: List[CampaignEpoch] = list(epochs)
        self.num_pulses = self.epochs[-1].end
        #: Number of primitive state transitions applied within the horizon.
        self.num_actions = num_actions
        #: The last pulse at which any state transition fired (None when
        #: the campaign was quiet within the horizon).
        self.last_event_pulse = last_event_pulse
        self._starts = [epoch.start for epoch in self.epochs]

    def __len__(self) -> int:
        return len(self.epochs)

    def epoch_index(self, pulse: int) -> int:
        """Index of the epoch covering ``pulse``."""
        if not 0 <= pulse < self.num_pulses:
            raise IndexError(
                f"pulse {pulse} outside the compiled horizon "
                f"[0, {self.num_pulses})"
            )
        # Epochs are few; linear bisect-from-the-right is plenty.
        lo = 0
        for i, start in enumerate(self._starts):
            if start <= pulse:
                lo = i
            else:
                break
        return lo

    def epoch_at(self, pulse: int) -> CampaignEpoch:
        """The epoch covering ``pulse``."""
        return self.epochs[self.epoch_index(pulse)]

    def summary(self) -> Dict[str, object]:
        """Accounting dict: epoch count, boundaries, actions, last event.

        This is what rides along as ``churn_stats`` on campaign results
        (and into :attr:`~repro.experiments.batch.BatchResult.
        campaign_stats`, parallel to ``fallback_reasons``).
        """
        return {
            "epochs": len(self.epochs),
            "boundaries": [e.start for e in self.epochs[1:]],
            "actions": self.num_actions,
            "last_event_pulse": self.last_event_pulse,
            "max_absent": max(len(e.absent) for e in self.epochs),
            "max_down_edges": max(len(e.down_edges) for e in self.epochs),
        }


class ChaosCampaign:
    """A declarative schedule of churn events over a seed topology.

    Parameters
    ----------
    base:
        The seed :class:`~repro.topology.base_graph.BaseGraph`.  Epoch
        graphs keep its vertex set (array shapes stay fixed); events may
        only remove/restore seed edges and vertices, never invent new
        ones.
    num_layers:
        Layer count of the grids the campaign will run on (epoch graphs
        are :class:`~repro.topology.layered.LayeredGraph` of this depth).
    events:
        The :class:`CampaignEvent` list, in any order.

    The campaign itself is immutable and picklable (events are frozen
    dataclasses), so it rides inside
    :class:`~repro.experiments.batch.BatchTrial` specs across process
    shards.

    Example
    -------
    >>> from repro.topology.base_graph import cycle_graph
    >>> campaign = ChaosCampaign.random(
    ...     cycle_graph(8), num_layers=4, churn_pulses=6, rng_or_seed=3,
    ... )
    >>> schedule = campaign.compile(num_pulses=10)
    >>> schedule.epochs[-1].state_key == campaign.seed_state_key
    True
    """

    def __init__(
        self,
        base: BaseGraph,
        num_layers: int,
        events: Iterable[CampaignEvent] = (),
    ) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.base = base
        self.num_layers = int(num_layers)
        self.events: Tuple[CampaignEvent, ...] = tuple(events)
        self._validate_events()

    # ------------------------------------------------------------------
    # Validation / expansion
    # ------------------------------------------------------------------
    def _validate_events(self) -> None:
        width = self.base.num_nodes
        for event in self.events:
            if isinstance(event, (NodeLeave, NodeJoin)):
                if not 0 <= event.vertex < width:
                    raise ValueError(
                        f"{type(event).__name__} vertex {event.vertex} out of "
                        f"range for width {width}"
                    )
            elif isinstance(event, (EdgeDown, EdgeUp, EdgeFlap)):
                v, w = _edge_key(event.edge)
                if not self.base.has_edge(v, w):
                    raise ValueError(
                        f"{type(event).__name__} edge {event.edge} is not a "
                        "seed edge"
                    )
            elif isinstance(event, (NodeCrash, NodeRecover)):
                v, layer = event.node
                if not (0 <= v < width and 0 <= layer < self.num_layers):
                    raise ValueError(
                        f"{type(event).__name__} node {event.node} outside "
                        f"the ({width} x {self.num_layers}) grid"
                    )
            elif isinstance(event, RegionalOutage):
                if not 0 <= event.center < width:
                    raise ValueError(
                        f"RegionalOutage center {event.center} out of range "
                        f"for width {width}"
                    )
            elif isinstance(event, CampaignEvent):  # pragma: no cover
                raise ValueError(f"unknown event type {type(event).__name__}")

    def _actions_by_pulse(self) -> Dict[int, List[_Action]]:
        """Expand compound events into primitive per-pulse transitions."""
        actions: Dict[int, List[_Action]] = {}

        def add(pulse: int, action: _Action) -> None:
            actions.setdefault(pulse, []).append(action)

        for event in self.events:
            if isinstance(event, NodeCrash):
                add(event.pulse, ("crash", event.node, event.behavior))
            elif isinstance(event, NodeRecover):
                add(event.pulse, ("recover", event.node))
            elif isinstance(event, NodeLeave):
                add(event.pulse, ("leave", event.vertex))
            elif isinstance(event, NodeJoin):
                add(event.pulse, ("join", event.vertex))
            elif isinstance(event, EdgeFlap):
                key = _edge_key(event.edge)
                add(event.pulse, ("down", key))
                add(event.pulse + event.down_pulses, ("up", key))
            elif isinstance(event, EdgeDown):
                add(event.pulse, ("down", _edge_key(event.edge)))
            elif isinstance(event, EdgeUp):
                add(event.pulse, ("up", _edge_key(event.edge)))
            elif isinstance(event, RegionalOutage):
                region = self.base.ball(event.center, event.radius)
                for v in region:
                    if event.kind == "leave":
                        add(event.pulse, ("leave", v))
                        add(event.pulse + event.duration, ("join", v))
                    else:
                        for layer in range(1, self.num_layers):
                            node = (v, layer)
                            add(event.pulse, ("crash", node, CrashFault()))
                            add(event.pulse + event.duration, ("recover", node))
        return actions

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @property
    def seed_state_key(self) -> Tuple:
        """The quiet state's key (no crashes, no absentees, no down edges)."""
        return ((), (), ())

    def compile(
        self,
        num_pulses: int,
        base_plan: Optional[FaultPlan] = None,
    ) -> CampaignSchedule:
        """Compile the event list into a :class:`CampaignSchedule`.

        ``base_plan`` is the trial's static fault plan; every epoch's
        plan merges it with the campaign's instantaneous crashes and the
        all-layer silencing of absent vertices (campaign entries shadow
        static ones for the same node).  Identical consecutive states
        merge into one epoch; distinct epochs with identical state share
        one graph object and one ``state_key``, so simulators revisiting
        a state reuse their cached gather tensors.
        """
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        base_plan = base_plan or FaultPlan.none()
        actions = self._actions_by_pulse()

        crashed: Dict[NodeId, FaultBehavior] = {}
        absent: Set[int] = set()
        down: Set[Tuple[int, int]] = set()
        graph_cache: Dict[Tuple, LayeredGraph] = {}
        plan_cache: Dict[Tuple, FaultPlan] = {}

        epochs: List[CampaignEpoch] = []
        num_actions = 0
        last_event_pulse: Optional[int] = None

        def state_key() -> Tuple:
            return (
                tuple(sorted(absent)),
                tuple(sorted(down)),
                tuple(
                    (node, id(behavior))
                    for node, behavior in sorted(
                        crashed.items(), key=lambda kv: (kv[0][1], kv[0][0])
                    )
                ),
            )

        def build_graph(key: Tuple) -> LayeredGraph:
            structural = key[:2]
            cached = graph_cache.get(structural)
            if cached is None:
                if not absent and not down:
                    cached = LayeredGraph(self.base, self.num_layers)
                else:
                    edges = [
                        e
                        for e in self.base.edges
                        if e not in down
                        and e[0] not in absent
                        and e[1] not in absent
                    ]
                    epoch_base = BaseGraph(
                        self.base.num_nodes,
                        edges,
                        require_min_degree_2=False,
                        require_connected=False,
                        name=f"{self.base.name}[churn]",
                    )
                    cached = LayeredGraph(epoch_base, self.num_layers)
                graph_cache[structural] = cached
            return cached

        def build_plan(key: Tuple) -> FaultPlan:
            cached = plan_cache.get(key)
            if cached is None:
                merged: Dict[NodeId, FaultBehavior] = {
                    node: base_plan.behavior(node) for node in base_plan
                }
                merged.update(crashed)
                for v in absent:
                    for layer in range(self.num_layers):
                        merged[(v, layer)] = CrashFault()
                cached = FaultPlan.from_nodes(merged)
                plan_cache[key] = cached
            return cached

        for pulse in range(num_pulses):
            for action in actions.get(pulse, ()):
                kind = action[0]
                if kind == "crash":
                    crashed[action[1]] = action[2]
                elif kind == "recover":
                    crashed.pop(action[1], None)
                elif kind == "leave":
                    absent.add(action[1])
                elif kind == "join":
                    absent.discard(action[1])
                elif kind == "down":
                    down.add(action[1])
                elif kind == "up":
                    down.discard(action[1])
                num_actions += 1
                last_event_pulse = pulse
            key = state_key()
            if epochs and epochs[-1].state_key == key:
                # Nothing fired, or the actions cancelled out: extend the
                # running epoch instead of opening a new one.
                last = epochs[-1]
                epochs[-1] = CampaignEpoch(
                    last.start, pulse + 1, last.graph, last.fault_plan,
                    last.state_key, last.absent, last.down_edges,
                )
                continue
            epochs.append(
                CampaignEpoch(
                    start=pulse,
                    end=pulse + 1,
                    graph=build_graph(key),
                    fault_plan=build_plan(key),
                    state_key=key,
                    absent=frozenset(absent),
                    down_edges=frozenset(down),
                )
            )
        return CampaignSchedule(epochs, num_actions, last_event_pulse)

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        base: BaseGraph,
        num_layers: int,
        churn_pulses: int,
        rng_or_seed=0,
        event_rate: float = 0.5,
        max_concurrent: int = 2,
        kinds: Sequence[str] = ("crash", "leave", "edge", "outage"),
        restore: bool = True,
    ) -> "ChaosCampaign":
        """Sample a sustained-churn campaign (the thm16 workload).

        Walks pulses ``1 .. churn_pulses - 1``; at each, with probability
        ``event_rate``, fires one event of a random kind from ``kinds``
        (``"crash"``: a random layer ``>= 1`` grid node crashes for 1-2
        pulses; ``"leave"``: a random vertex leaves for 1-2 pulses;
        ``"edge"``: a random seed edge flaps for one pulse; ``"outage"``:
        a radius-1 region crashes for one pulse).  At most
        ``max_concurrent`` disruptions are in flight at once, and a
        vertex never leaves if that would strand a remaining neighbor
        with no neighbors at all (the simulators handle degree-0
        vertices, but a campaign that isolates survivors measures
        nothing interesting).

        With ``restore`` (the default) every disruption is scheduled to
        revert by pulse ``churn_pulses``, so the final epoch of any
        ``compile(num_pulses > churn_pulses)`` is exactly the seed
        topology -- the shape the self-stabilization measurement of
        ``run_thm16`` needs (churn window, then a clean tail).
        """
        if churn_pulses < 1:
            raise ValueError(f"churn_pulses must be >= 1, got {churn_pulses}")
        rng = (
            rng_or_seed
            if isinstance(rng_or_seed, np.random.Generator)
            else np.random.default_rng(rng_or_seed)
        )
        events: List[CampaignEvent] = []
        # (end_pulse, kind, payload) for in-flight disruptions.
        in_flight: List[Tuple[int, str, object]] = []
        absent: Set[int] = set()
        down: Set[Tuple[int, int]] = set()

        def degree_ok_without(vertex: int) -> bool:
            """Leaving ``vertex`` must not isolate any remaining vertex."""
            for w in base.neighbors(vertex):
                if w in absent:
                    continue
                live = [
                    x
                    for x in base.neighbors(w)
                    if x != vertex
                    and x not in absent
                    and _edge_key((w, x)) not in down
                ]
                if not live:
                    return False
            return True

        for pulse in range(1, churn_pulses):
            in_flight = [f for f in in_flight if f[0] > pulse]
            if len(in_flight) >= max_concurrent or rng.random() >= event_rate:
                continue
            kind = str(rng.choice(list(kinds)))
            duration = int(rng.integers(1, 3))
            end = min(pulse + duration, churn_pulses) if restore else pulse + duration
            if end <= pulse:
                continue
            if kind == "crash":
                if num_layers < 2:
                    continue
                node = (
                    int(rng.integers(base.num_nodes)),
                    int(rng.integers(1, num_layers)),
                )
                events.append(NodeCrash(pulse=pulse, node=node))
                events.append(NodeRecover(pulse=end, node=node))
                in_flight.append((end, kind, node))
            elif kind == "leave":
                candidates = [
                    v
                    for v in base.nodes()
                    if v not in absent and degree_ok_without(v)
                ]
                if not candidates:
                    continue
                vertex = int(candidates[int(rng.integers(len(candidates)))])
                events.append(NodeLeave(pulse=pulse, vertex=vertex))
                events.append(NodeJoin(pulse=end, vertex=vertex))
                absent.add(vertex)
                in_flight.append((end, kind, vertex))
            elif kind == "edge":
                free = [e for e in base.edges if e not in down]
                if not free:
                    continue
                edge = free[int(rng.integers(len(free)))]
                events.append(EdgeFlap(pulse=pulse, edge=edge, down_pulses=end - pulse))
                down.add(edge)
                in_flight.append((end, kind, edge))
            else:  # outage
                if num_layers < 2:
                    continue
                center = int(rng.integers(base.num_nodes))
                events.append(
                    RegionalOutage(
                        pulse=pulse, center=center, radius=1,
                        duration=end - pulse, kind="crash",
                    )
                )
                in_flight.append((end, kind, center))
            # Absent/down bookkeeping must also *release* at end pulses;
            # conservative approximation: treat everything as released
            # when its window passes (handled by the in_flight filter) --
            # absent/down only grow within max_concurrent windows, so
            # clear them as windows expire.
            absent = {
                v for e, k, v in in_flight if k == "leave"  # type: ignore[misc]
            }
            down = {
                e_ for e, k, e_ in in_flight if k == "edge"  # type: ignore[misc]
            }
        return cls(base, num_layers, events)
