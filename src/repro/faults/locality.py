"""Distance-``delta`` ``k``-faulty classification (Definitions 4.32-4.33).

A node is distance-``delta`` ``k``-faulty for the minimal ``k`` such that at
most ``k`` faults lie among its distance-``(k+1)*delta`` ancestors.
Observation 4.34: with independent failure probability ``p in o(n^{-1/2})``
and ``delta <= n^{1/12}``, all nodes are ``k``-faulty for ``k <= 2`` with
probability ``1 - o(1)`` -- the hinge of Theorem 1.3's improved analysis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.topology.layered import LayeredGraph, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.faults.injection import FaultPlan

__all__ = ["distance_delta_k_faulty", "max_k_faulty_over_layer"]


def _count_faulty_ancestors(
    graph: LayeredGraph, plan: "FaultPlan", node: NodeId, distance: int
) -> int:
    """Number of faulty distance-``distance`` ancestors of ``node``.

    Uses the DAG structure (every hop advances one layer): ``(w, l-j)`` is an
    ancestor iff ``1 <= j <= distance`` and ``d_H(w, v) <= j``, so it
    suffices to scan the faulty set instead of enumerating all ancestors.
    """
    v, layer = node
    count = 0
    for (w, wl) in plan.faulty_nodes():
        j = layer - wl
        if 1 <= j <= distance and graph.base.distance(w, v) <= j:
            count += 1
    return count


def distance_delta_k_faulty(
    graph: LayeredGraph,
    plan: "FaultPlan",
    node: NodeId,
    delta: int,
    max_k: int = 16,
) -> int:
    """Return the minimal ``k`` with at most ``k`` faults among the
    distance-``(k+1)*delta`` ancestors of ``node`` (Definition 4.33).

    Raises :class:`RuntimeError` if no ``k <= max_k`` qualifies (cannot
    happen unless the plan is much denser than the model allows).
    """
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    for k in range(max_k + 1):
        if _count_faulty_ancestors(graph, plan, node, (k + 1) * delta) <= k:
            return k
    raise RuntimeError(
        f"node {node} is not distance-{delta} k-faulty for any k <= {max_k}"
    )


def max_k_faulty_over_layer(
    graph: LayeredGraph,
    plan: "FaultPlan",
    layer: int,
    delta: int,
    max_k: int = 16,
) -> int:
    """Maximum ``k`` over all nodes of ``layer`` (audit for Observation 4.34)."""
    return max(
        distance_delta_k_faulty(graph, plan, (v, layer), delta, max_k)
        for v in graph.base.nodes()
    )
