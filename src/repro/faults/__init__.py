"""Fault models and fault injection.

The paper's fault model (Section 2): an unknown set ``F`` of nodes is faulty
and behaves arbitrarily, subject to (a) 1-locality -- no node of a layer has
more than one fault in its closed ``H``-neighborhood on that layer, which
holds with probability ``1 - o(1)`` when nodes fail independently with
probability ``p in o(n^{-1/2})`` -- and (b) only a constant number of faulty
nodes change their timing behaviour between consecutive pulses.
"""

from repro.faults.model import (
    AdversarialEarlyFault,
    AdversarialLateFault,
    ByzantineRandomFault,
    CrashFault,
    FaultBehavior,
    FaultContext,
    FixedOffsetFault,
    MutableFault,
    PerSuccessorOffsetFault,
    SilentFromFault,
)
from repro.faults.injection import FaultPlan
from repro.faults.locality import distance_delta_k_faulty, max_k_faulty_over_layer
from repro.faults.campaign import (
    CampaignEpoch,
    CampaignEvent,
    CampaignSchedule,
    ChaosCampaign,
    EdgeDown,
    EdgeFlap,
    EdgeUp,
    NodeCrash,
    NodeJoin,
    NodeLeave,
    NodeRecover,
    RegionalOutage,
)

__all__ = [
    "AdversarialEarlyFault",
    "AdversarialLateFault",
    "ByzantineRandomFault",
    "CampaignEpoch",
    "CampaignEvent",
    "CampaignSchedule",
    "ChaosCampaign",
    "CrashFault",
    "EdgeDown",
    "EdgeFlap",
    "EdgeUp",
    "FaultBehavior",
    "FaultContext",
    "FaultPlan",
    "FixedOffsetFault",
    "MutableFault",
    "NodeCrash",
    "NodeJoin",
    "NodeLeave",
    "NodeRecover",
    "PerSuccessorOffsetFault",
    "RegionalOutage",
    "SilentFromFault",
    "distance_delta_k_faulty",
    "max_k_faulty_over_layer",
]
