"""Samplers for per-node hardware clock rates and offsets.

All samplers are deterministic given a :class:`numpy.random.Generator` (or a
seed), which keeps every experiment reproducible.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List

import numpy as np

from repro.clocks.hardware import AffineClock, PiecewiseRateClock

__all__ = ["constant_rates", "uniform_random_rates", "slowly_varying_clock"]


def _as_rng(rng_or_seed) -> np.random.Generator:
    if isinstance(rng_or_seed, np.random.Generator):
        return rng_or_seed
    return np.random.default_rng(rng_or_seed)


def constant_rates(
    nodes: Iterable[Hashable], rate: float = 1.0
) -> Dict[Hashable, AffineClock]:
    """Identical drift-free clocks (useful as an idealized control)."""
    return {node: AffineClock(rate=rate) for node in nodes}


def uniform_random_rates(
    nodes: Iterable[Hashable],
    vartheta: float,
    rng_or_seed=0,
    offset_span: float = 0.0,
) -> Dict[Hashable, AffineClock]:
    """Independent rates uniform in ``[1, vartheta]``; optional random offsets.

    The paper assumes no known phase relation between hardware clocks, so
    ``offset_span > 0`` draws offsets uniformly from ``[0, offset_span]``.
    """
    if vartheta < 1:
        raise ValueError(f"vartheta must be >= 1, got {vartheta}")
    rng = _as_rng(rng_or_seed)
    clocks: Dict[Hashable, AffineClock] = {}
    for node in nodes:
        rate = float(rng.uniform(1.0, vartheta))
        offset = float(rng.uniform(0.0, offset_span)) if offset_span > 0 else 0.0
        clocks[node] = AffineClock(rate=rate, offset=offset)
    return clocks


def slowly_varying_clock(
    vartheta: float,
    horizon: float,
    segment_duration: float,
    max_step_fraction: float,
    rng_or_seed=0,
) -> PiecewiseRateClock:
    """A clock whose rate performs a bounded random walk in ``[1, vartheta]``.

    Per segment of ``segment_duration`` real time, the rate moves by at most
    ``max_step_fraction * (vartheta - 1)``.  This models Corollary 1.5(iii):
    hardware clock speeds varying by ``n^{-1/2} (vartheta - 1) log D`` per
    pulse.
    """
    if vartheta < 1:
        raise ValueError(f"vartheta must be >= 1, got {vartheta}")
    if horizon <= 0 or segment_duration <= 0:
        raise ValueError("horizon and segment_duration must be positive")
    rng = _as_rng(rng_or_seed)
    spread = vartheta - 1.0
    num_segments = max(1, int(np.ceil(horizon / segment_duration)))
    breakpoints: List[float] = [i * segment_duration for i in range(num_segments)]
    rate = float(rng.uniform(1.0, vartheta))
    rates: List[float] = [rate]
    for _ in range(num_segments - 1):
        step = float(rng.uniform(-1.0, 1.0)) * max_step_fraction * spread
        rate = min(max(rate + step, 1.0), vartheta)
        rates.append(rate)
    return PiecewiseRateClock(breakpoints, rates)
