"""Hardware clock models.

Each node ``(v, l)`` owns a hardware clock ``H_{v,l} : R>=0 -> R>=0`` whose
rate lies in ``[1, vartheta]`` (Section 2, "Local Clocks and Computations").
The algorithm only measures elapsed local time, so clocks may have arbitrary
offsets.
"""

from repro.clocks.hardware import AffineClock, HardwareClock, PiecewiseRateClock
from repro.clocks.drift import (
    constant_rates,
    uniform_random_rates,
    slowly_varying_clock,
)

__all__ = [
    "AffineClock",
    "HardwareClock",
    "PiecewiseRateClock",
    "constant_rates",
    "uniform_random_rates",
    "slowly_varying_clock",
]
