"""Hardware clock implementations.

A hardware clock maps real time ``t`` to local time ``H(t)`` and must satisfy

    t' - t <= H(t') - H(t) <= vartheta * (t' - t)    for all t < t',

i.e. rates in ``[1, vartheta]`` (the paper normalizes the minimum rate to 1).
The algorithms need the inverse map as well, to schedule "wait until local
time X" as a real-time event.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

__all__ = ["HardwareClock", "AffineClock", "PiecewiseRateClock"]


class HardwareClock(ABC):
    """Abstract hardware clock with a strictly increasing local-time map."""

    @abstractmethod
    def local_time(self, t: float) -> float:
        """Local reading ``H(t)`` at real time ``t``."""

    @abstractmethod
    def real_time(self, h: float) -> float:
        """Inverse map: the real time at which the clock reads ``h``."""

    @abstractmethod
    def rate_bounds(self) -> Tuple[float, float]:
        """``(min_rate, max_rate)`` over the whole timeline."""

    def elapsed_local(self, t_from: float, t_to: float) -> float:
        """Local time elapsed between two real times."""
        return self.local_time(t_to) - self.local_time(t_from)


class AffineClock(HardwareClock):
    """Clock with constant rate: ``H(t) = offset + rate * t``.

    This is the paper's static-clock-speed model (rates change negligibly
    over a pulse; Section 2).
    """

    def __init__(self, rate: float = 1.0, offset: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.offset = offset

    def local_time(self, t: float) -> float:
        return self.offset + self.rate * t

    def real_time(self, h: float) -> float:
        return (h - self.offset) / self.rate

    def rate_bounds(self) -> Tuple[float, float]:
        return (self.rate, self.rate)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AffineClock(rate={self.rate}, offset={self.offset})"


class PiecewiseRateClock(HardwareClock):
    """Clock whose rate is piecewise constant in real time.

    Used for Corollary 1.5 experiments where hardware clock speeds vary
    slowly between pulses.  The rate on ``[t_i, t_{i+1})`` is ``rates[i]``;
    the final rate extends to infinity.  Breakpoints must be strictly
    increasing and start at 0.
    """

    def __init__(
        self,
        breakpoints: Sequence[float],
        rates: Sequence[float],
        offset: float = 0.0,
    ) -> None:
        if len(breakpoints) != len(rates):
            raise ValueError("breakpoints and rates must have equal length")
        if not breakpoints or breakpoints[0] != 0.0:
            raise ValueError("breakpoints must start at 0.0")
        if any(b2 <= b1 for b1, b2 in zip(breakpoints, breakpoints[1:])):
            raise ValueError("breakpoints must be strictly increasing")
        if any(r <= 0 for r in rates):
            raise ValueError("all rates must be positive")
        self._breaks: List[float] = list(breakpoints)
        self._rates: List[float] = list(rates)
        self.offset = offset
        # Cumulative local time at each breakpoint.
        self._local_at_break: List[float] = [offset]
        for i in range(1, len(self._breaks)):
            span = self._breaks[i] - self._breaks[i - 1]
            self._local_at_break.append(
                self._local_at_break[-1] + self._rates[i - 1] * span
            )

    def local_time(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"real time must be >= 0, got {t}")
        i = bisect.bisect_right(self._breaks, t) - 1
        return self._local_at_break[i] + self._rates[i] * (t - self._breaks[i])

    def real_time(self, h: float) -> float:
        if h < self.offset:
            raise ValueError(f"local time {h} precedes clock start {self.offset}")
        i = bisect.bisect_right(self._local_at_break, h) - 1
        return self._breaks[i] + (h - self._local_at_break[i]) / self._rates[i]

    def rate_bounds(self) -> Tuple[float, float]:
        return (min(self._rates), max(self._rates))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PiecewiseRateClock(segments={len(self._rates)}, "
            f"rates=[{min(self._rates)}, {max(self._rates)}])"
        )
