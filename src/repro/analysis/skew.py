"""Skew measures (Section 2, "Output and Skew").

Given pulse-time matrices ``times[k, l, v]`` (NaN where a node is faulty or
never pulsed), this module computes

* the intra-layer local skew
  ``L_l = sup_k max_{{v,w} in E, correct} |t^k_{v,l} - t^k_{w,l}|``,
* the inter-layer local skew
  ``L_{l,l+1} = sup_k max_{((v,l),(w,l+1)) in E_l, correct}
  |t^{k+1}_{v,l} - t^k_{w,l+1}|``
  (consecutive pulses are compared across layers because each layer adds
  one nominal period ``Lambda``),
* the overall local skew ``L = sup_l max(L_l, L_{l,l+1})``, and
* the global skew (largest same-pulse offset between *any* two correct
  nodes of a layer).

Two sets of entry points are provided:

* per-result functions (``local_skew_per_layer`` etc.) consuming a
  :class:`~repro.core.fast.FastResult`, and
* array-shaped functions (``local_skew_layers`` etc.) consuming raw time
  arrays of shape ``(..., K, L, W)`` with arbitrary leading batch axes --
  the backend used by :class:`~repro.experiments.batch.BatchRunner` to
  reduce a whole stack of trials in one sweep.

Layers with *no* correct pulse pair (all-NaN slices) have no measured
skew; every function takes an ``empty`` argument defining the value
reported for them (default ``0.0``, the historical behavior; pass
``float("nan")`` or ``-inf`` to make such layers explicit).  NaN handling
is done with explicit validity masks, so no NumPy ``RuntimeWarning`` is
ever raised -- and none is blanket-suppressed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fast import FastResult
from repro.engine.trace import Trace
from repro.topology.layered import LayeredGraph

__all__ = [
    "times_from_trace",
    "masked_times",
    "masked_max",
    "local_skew_layers",
    "inter_layer_skew_layers",
    "overall_skew_layers",
    "global_skew_layers",
    "local_skew_per_layer",
    "max_local_skew",
    "inter_layer_skew",
    "max_inter_layer_skew",
    "overall_skew",
    "global_skew",
    "global_skew_per_layer",
]

AxisSpec = Union[int, Tuple[int, ...], None]


def times_from_trace(
    trace: Trace, graph: LayeredGraph, num_pulses: int
) -> np.ndarray:
    """Convert an event-driven :class:`Trace` into a ``(K, L, W)`` array."""
    times = np.full((num_pulses, graph.num_layers, graph.width), np.nan)
    for record in trace.records:
        v, layer = record.node
        if 0 <= record.pulse < num_pulses:
            times[record.pulse, layer, v] = record.time
    return times


def masked_times(result: FastResult) -> np.ndarray:
    """Pulse times with faulty nodes masked out (already NaN in ``times``)."""
    return result.times


def masked_max(
    values: np.ndarray, axis: AxisSpec, empty: float = 0.0
) -> np.ndarray:
    """``max`` over ``axis`` ignoring NaNs; all-NaN/empty slices -> ``empty``.

    Warning-free by construction: NaNs are replaced with ``-inf`` under an
    explicit validity mask instead of suppressing ``nanmax`` warnings.
    Public because NaN-padded consumers outside this module (the batch
    runner's heterogeneous :class:`~repro.experiments.batch.BatchResult`
    statistics) reduce over padding with the same semantics.
    """
    values = np.asarray(values, dtype=float)
    valid = ~np.isnan(values)
    any_valid = valid.any(axis=axis)
    out = np.where(valid, values, -np.inf).max(axis=axis, initial=-np.inf)
    return np.where(any_valid, out, empty)


# ----------------------------------------------------------------------
# Array-shaped entry points: times of shape (..., K, L, W)
# ----------------------------------------------------------------------
def local_skew_layers(
    times: np.ndarray, graph: LayeredGraph, empty: float = 0.0
) -> np.ndarray:
    """Measured ``L_l`` from raw times ``(..., K, L, W)``; shape ``(..., L)``.

    Leading axes (e.g. a batch-of-trials axis) are preserved; the supremum
    runs over the pulse axis and every base-graph edge.
    """
    times = np.asarray(times, dtype=float)
    left, right = graph.base.edge_index_arrays()
    diffs = np.abs(times[..., left] - times[..., right])  # (..., K, L, E)
    return masked_max(diffs, axis=(-3, -1), empty=empty)


def inter_layer_skew_layers(
    times: np.ndarray, graph: LayeredGraph, empty: float = 0.0
) -> np.ndarray:
    """Measured ``L_{l,l+1}`` from raw times; shape ``(..., L - 1)``.

    Compares pulse ``k+1`` on layer ``l`` with pulse ``k`` on layer
    ``l + 1`` along every edge of ``E_l`` (own-copy and neighbor-copy).
    Fewer than two recorded pulses leave nothing to compare: every entry
    is ``empty``.
    """
    times = np.asarray(times, dtype=float)
    num_layers = times.shape[-2]
    out_shape = times.shape[:-3] + (max(num_layers - 1, 0),)
    if times.shape[-3] < 2 or num_layers < 2:
        return np.full(out_shape, empty)
    upper = times[..., 1:, :-1, :]  # pulse k+1, layer l
    lower = times[..., :-1, 1:, :]  # pulse k,   layer l+1
    left, right = graph.base.edge_index_arrays()
    diffs = np.concatenate(
        [
            np.abs(upper - lower),
            np.abs(upper[..., left] - lower[..., right]),
            np.abs(upper[..., right] - lower[..., left]),
        ],
        axis=-1,
    )  # (..., K-1, L-1, W + 2E)
    return masked_max(diffs, axis=(-3, -1), empty=empty)


def overall_skew_layers(
    times: np.ndarray, graph: LayeredGraph, empty: float = 0.0
) -> np.ndarray:
    """The paper's ``L = sup_l max(L_l, L_{l,l+1})`` per batch entry.

    Reduces raw times ``(..., K, L, W)`` to shape ``(...,)`` in one sweep
    -- the whole-sweep form of :func:`overall_skew`, used by
    :meth:`~repro.experiments.batch.BatchResult.overall_skews`.  Grids
    with a single layer boundary-free report the intra-layer part alone.
    """
    times = np.asarray(times, dtype=float)
    local = local_skew_layers(times, graph, empty=empty).max(axis=-1)
    inter = inter_layer_skew_layers(times, graph, empty=empty)
    if inter.shape[-1] == 0:
        return local
    return np.maximum(local, inter.max(axis=-1))


def global_skew_layers(times: np.ndarray, empty: float = 0.0) -> np.ndarray:
    """Largest same-pulse spread within each layer; shape ``(..., L)``."""
    times = np.asarray(times, dtype=float)
    valid = ~np.isnan(times)
    any_valid = valid.any(axis=-1)
    maxs = np.where(valid, times, -np.inf).max(axis=-1, initial=-np.inf)
    mins = np.where(valid, times, np.inf).min(axis=-1, initial=np.inf)
    spread = np.where(any_valid, maxs - mins, np.nan)  # (..., K, L)
    return masked_max(spread, axis=-2, empty=empty)


# ----------------------------------------------------------------------
# Per-result entry points
# ----------------------------------------------------------------------
def _selected_times(
    result: FastResult, pulses: Optional[Sequence[int]]
) -> np.ndarray:
    return result.times if pulses is None else result.times[list(pulses)]


def local_skew_per_layer(
    result: FastResult,
    pulses: Optional[Sequence[int]] = None,
    empty: float = 0.0,
) -> np.ndarray:
    """Measured ``L_l`` for every layer; shape ``(num_layers,)``.

    ``pulses`` restricts the supremum to the given pulse indices (e.g. to
    drop a warm-up prefix in self-stabilization runs).  Layers with no
    correct pulse pair report ``empty``.
    """
    return local_skew_layers(
        _selected_times(result, pulses), result.graph, empty=empty
    )


def max_local_skew(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> float:
    """``sup_l L_l`` over the measured execution."""
    return float(np.max(local_skew_per_layer(result, pulses)))


def inter_layer_skew(
    result: FastResult,
    pulses: Optional[Sequence[int]] = None,
    empty: float = 0.0,
) -> np.ndarray:
    """Measured ``L_{l,l+1}`` for ``l = 0 .. num_layers-2``."""
    return inter_layer_skew_layers(
        _selected_times(result, pulses), result.graph, empty=empty
    )


def max_inter_layer_skew(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> float:
    """``sup_l L_{l,l+1}``."""
    values = inter_layer_skew(result, pulses)
    if values.size == 0:
        return 0.0
    return float(np.max(values))


def overall_skew(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> float:
    """The paper's ``L = sup_l max(L_l, L_{l,l+1})``."""
    return max(
        max_local_skew(result, pulses), max_inter_layer_skew(result, pulses)
    )


def global_skew_per_layer(
    result: FastResult,
    pulses: Optional[Sequence[int]] = None,
    empty: float = 0.0,
) -> np.ndarray:
    """Largest same-pulse spread within each layer (any pair of nodes)."""
    return global_skew_layers(_selected_times(result, pulses), empty=empty)


def global_skew(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> float:
    """Maximum same-pulse spread over all layers (the "global skew")."""
    return float(np.max(global_skew_per_layer(result, pulses)))
