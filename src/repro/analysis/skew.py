"""Skew measures (Section 2, "Output and Skew").

Given pulse-time matrices ``times[k, l, v]`` (NaN where a node is faulty or
never pulsed), this module computes

* the intra-layer local skew
  ``L_l = sup_k max_{{v,w} in E, correct} |t^k_{v,l} - t^k_{w,l}|``,
* the inter-layer local skew
  ``L_{l,l+1} = sup_k max_{((v,l),(w,l+1)) in E_l, correct}
  |t^{k+1}_{v,l} - t^k_{w,l+1}|``
  (consecutive pulses are compared across layers because each layer adds
  one nominal period ``Lambda``),
* the overall local skew ``L = sup_l max(L_l, L_{l,l+1})``, and
* the global skew (largest same-pulse offset between *any* two correct
  nodes of a layer).

All functions accept either a :class:`~repro.core.fast.FastResult` or a raw
``(times, faulty_mask, graph)`` triple via the module-level helpers.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.fast import FastResult
from repro.engine.trace import Trace
from repro.topology.layered import LayeredGraph

__all__ = [
    "times_from_trace",
    "masked_times",
    "local_skew_per_layer",
    "max_local_skew",
    "inter_layer_skew",
    "max_inter_layer_skew",
    "overall_skew",
    "global_skew",
    "global_skew_per_layer",
]


def times_from_trace(
    trace: Trace, graph: LayeredGraph, num_pulses: int
) -> np.ndarray:
    """Convert an event-driven :class:`Trace` into a ``(K, L, W)`` array."""
    times = np.full((num_pulses, graph.num_layers, graph.width), np.nan)
    for record in trace.records:
        v, layer = record.node
        if 0 <= record.pulse < num_pulses:
            times[record.pulse, layer, v] = record.time
    return times


def masked_times(result: FastResult) -> np.ndarray:
    """Pulse times with faulty nodes masked out (already NaN in ``times``)."""
    return result.times


def _nanmax(values: np.ndarray) -> float:
    """``nanmax`` that returns 0.0 on empty/all-NaN input, warning-free."""
    if values.size == 0:
        return 0.0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        out = np.nanmax(values)
    if math.isnan(out):
        return 0.0
    return float(out)


def _edge_arrays(graph: LayeredGraph) -> Tuple[np.ndarray, np.ndarray]:
    edges = graph.base.edges
    left = np.array([e[0] for e in edges], dtype=np.int64)
    right = np.array([e[1] for e in edges], dtype=np.int64)
    return left, right


def local_skew_per_layer(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Measured ``L_l`` for every layer; shape ``(num_layers,)``.

    ``pulses`` restricts the supremum to the given pulse indices (e.g. to
    drop a warm-up prefix in self-stabilization runs).
    """
    times = result.times if pulses is None else result.times[list(pulses)]
    left, right = _edge_arrays(result.graph)
    skews = np.empty(result.graph.num_layers)
    for layer in range(result.graph.num_layers):
        diffs = np.abs(times[:, layer, left] - times[:, layer, right])
        skews[layer] = _nanmax(diffs)
    return skews


def max_local_skew(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> float:
    """``sup_l L_l`` over the measured execution."""
    return float(np.max(local_skew_per_layer(result, pulses)))


def inter_layer_skew(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Measured ``L_{l,l+1}`` for ``l = 0 .. num_layers-2``.

    Compares pulse ``k+1`` on layer ``l`` with pulse ``k`` on layer
    ``l + 1`` along every edge of ``E_l`` (both own-copy and neighbor-copy
    edges).
    """
    graph = result.graph
    if result.num_pulses < 2:
        return np.zeros(max(graph.num_layers - 1, 0))
    times = result.times if pulses is None else result.times[list(pulses)]
    if times.shape[0] < 2:
        return np.zeros(max(graph.num_layers - 1, 0))
    upper = times[1:]  # pulse k+1
    lower = times[:-1]  # pulse k
    # Own-copy edges: (v, l) -> (v, l+1).
    left, right = _edge_arrays(graph)
    skews = np.empty(graph.num_layers - 1)
    for layer in range(graph.num_layers - 1):
        own = np.abs(upper[:, layer, :] - lower[:, layer + 1, :])
        cross_a = np.abs(upper[:, layer, left] - lower[:, layer + 1, right])
        cross_b = np.abs(upper[:, layer, right] - lower[:, layer + 1, left])
        skews[layer] = max(_nanmax(own), _nanmax(cross_a), _nanmax(cross_b))
    return skews


def max_inter_layer_skew(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> float:
    """``sup_l L_{l,l+1}``."""
    values = inter_layer_skew(result, pulses)
    if values.size == 0:
        return 0.0
    return float(np.max(values))


def overall_skew(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> float:
    """The paper's ``L = sup_l max(L_l, L_{l,l+1})``."""
    return max(
        max_local_skew(result, pulses), max_inter_layer_skew(result, pulses)
    )


def global_skew_per_layer(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Largest same-pulse spread within each layer (any pair of nodes)."""
    times = result.times if pulses is None else result.times[list(pulses)]
    skews = np.empty(result.graph.num_layers)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for layer in range(result.graph.num_layers):
            layer_times = times[:, layer, :]
            spread = np.nanmax(layer_times, axis=1) - np.nanmin(
                layer_times, axis=1
            )
            skews[layer] = _nanmax(spread)
    return skews


def global_skew(
    result: FastResult, pulses: Optional[Sequence[int]] = None
) -> float:
    """Maximum same-pulse spread over all layers (the "global skew")."""
    return float(np.max(global_skew_per_layer(result, pulses)))
