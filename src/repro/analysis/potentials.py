"""Potential functions of Definition 4.1.

For base vertices ``v, w``, level ``s`` and layer ``l``::

    psi^s_{v,w}(l) = t_{v,l} - t_{w,l} - 4*s*kappa*d(v, w)
    Psi^s(l)       = max_{v,w} psi^s_{v,w}(l)
    xi^s_{v,w}(l)  = t_{v,l} - t_{w,l} - (4*s - 2)*kappa*d(v, w)
    Xi^s(l)        = max_{v,w} xi^s_{v,w}(l)

Observation 4.2 converts a bound on ``Psi^s`` into a local skew bound:
``Psi^s(l) <= B  ==>  L_l <= B + 4*s*kappa``.  The analysis bounds
``Psi^s`` level by level (Lemma 4.25: each level roughly halves it), and
the experiments verify the measured decay.
"""

from __future__ import annotations

import math
import numpy as np

from repro.core.fast import FastResult
from repro.topology.layered import LayeredGraph

__all__ = [
    "psi",
    "Psi",
    "xi",
    "Xi",
    "potential_layers",
    "local_skew_bound_from_potential",
]


def _pair_weights(result: FastResult, coefficient: float) -> np.ndarray:
    """Matrix ``coefficient * d(v, w)`` over all base-vertex pairs."""
    base = result.graph.base
    n = base.num_nodes
    dist = np.empty((n, n))
    for v in range(n):
        dist[v, :] = base.distances_from(v)
    return coefficient * dist


def psi(
    result: FastResult, s: int, v: int, w: int, layer: int, pulse: int
) -> float:
    """``psi^s_{v,w}(layer)`` at a given pulse (NaN if either node is silent)."""
    kappa = result.params.kappa
    t_v = result.times[pulse, layer, v]
    t_w = result.times[pulse, layer, w]
    return float(
        t_v - t_w - 4.0 * s * kappa * result.graph.base.distance(v, w)
    )


def xi(
    result: FastResult, s: int, v: int, w: int, layer: int, pulse: int
) -> float:
    """``xi^s_{v,w}(layer)`` at a given pulse."""
    kappa = result.params.kappa
    t_v = result.times[pulse, layer, v]
    t_w = result.times[pulse, layer, w]
    return float(
        t_v - t_w - (4.0 * s - 2.0) * kappa * result.graph.base.distance(v, w)
    )


def _potential(
    result: FastResult,
    layer: int,
    pulse: int,
    weights: np.ndarray,
) -> float:
    times = result.times[pulse, layer, :]
    diffs = times[:, None] - times[None, :] - weights
    finite = diffs[np.isfinite(diffs)]
    if finite.size == 0:
        return math.nan
    return float(np.max(finite))


def Psi(result: FastResult, s: int, layer: int, pulse: int) -> float:
    """``Psi^s(layer)`` at a given pulse (max over all correct pairs)."""
    weights = _pair_weights(result, 4.0 * s * result.params.kappa)
    return _potential(result, layer, pulse, weights)


def Xi(result: FastResult, s: int, layer: int, pulse: int) -> float:
    """``Xi^s(layer)`` at a given pulse."""
    weights = _pair_weights(result, (4.0 * s - 2.0) * result.params.kappa)
    return _potential(result, layer, pulse, weights)


def potential_layers(
    times: np.ndarray,
    graph: LayeredGraph,
    coefficient: float,
    empty: float = math.nan,
) -> np.ndarray:
    """Per-layer potential sup from raw times ``(..., K, L, W)``.

    The array-shaped sibling of :func:`Psi` / :func:`Xi`: the supremum of
    ``t_v - t_w - coefficient * d(v, w)`` over all pairs *and* pulses per
    layer (pass ``coefficient = 4 s kappa`` for ``Psi^s``,
    ``(4 s - 2) kappa`` for ``Xi^s``); shape ``(..., L)``.  Layers with
    no correct pair report ``empty`` (default NaN, matching the scalar
    entry points).  This is the materialized reference that
    :class:`repro.analysis.streaming.PotentialStream` folds incrementally
    -- a max-only reduction, so the two agree bitwise.
    """
    times = np.asarray(times, dtype=float)
    base = graph.base
    n = base.num_nodes
    dist = np.empty((n, n))
    for v in range(n):
        dist[v, :] = base.distances_from(v)
    weights = coefficient * dist
    diffs = (times[..., :, None] - times[..., None, :]) - weights
    valid = np.isfinite(diffs)
    any_valid = valid.any(axis=(-4, -2, -1))
    out = np.where(valid, diffs, -np.inf).max(
        axis=(-4, -2, -1), initial=-np.inf
    )
    return np.where(any_valid, out, empty)


def local_skew_bound_from_potential(
    result: FastResult, s: int, psi_bound: float
) -> float:
    """Observation 4.2: ``Psi^s <= B  ==>  L_l <= B + 4*s*kappa``."""
    return psi_bound + 4.0 * s * result.params.kappa
