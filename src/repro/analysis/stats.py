"""Tiny regression helpers for shape-checking measured scaling curves.

The reproduction asserts *shapes*, not absolute values: local skew that is
logarithmic in ``D`` for Gradient TRIX, linear in ``D`` for naive TRIX, and
so on.  These helpers fit the three model families used by the benches and
report goodness of fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Fit", "fit_linear", "fit_log2", "fit_power"]


@dataclass(frozen=True)
class Fit:
    """A least-squares fit ``y ~ intercept + slope * g(x)``.

    ``r_squared`` is the coefficient of determination in the transformed
    space; ``model`` names the family (``"linear"``, ``"log2"``,
    ``"power"``).
    """

    model: str
    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted model at ``x``."""
        if self.model == "linear":
            return self.intercept + self.slope * x
        if self.model == "log2":
            return self.intercept + self.slope * math.log2(x)
        if self.model == "power":
            return math.exp(self.intercept) * x**self.slope
        raise ValueError(f"unknown model {self.model!r}")


def _least_squares(gx: np.ndarray, y: np.ndarray) -> Tuple[float, float, float]:
    if gx.size != y.size:
        raise ValueError("x and y must have equal length")
    if gx.size < 2:
        raise ValueError("need at least two points to fit")
    design = np.stack([np.ones_like(gx), gx], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
    intercept, slope = float(coeffs[0]), float(coeffs[1])
    predicted = intercept + slope * gx
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r_squared


def fit_linear(x: Sequence[float], y: Sequence[float]) -> Fit:
    """Fit ``y ~ a + b * x``."""
    gx = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    slope, intercept, r2 = _least_squares(gx, ys)
    return Fit("linear", slope, intercept, r2)


def fit_log2(x: Sequence[float], y: Sequence[float]) -> Fit:
    """Fit ``y ~ a + b * log2(x)`` (the Theorem 1.1 shape)."""
    gx = np.asarray(x, dtype=float)
    if np.any(gx <= 0):
        raise ValueError("log2 fit requires positive x")
    ys = np.asarray(y, dtype=float)
    slope, intercept, r2 = _least_squares(np.log2(gx), ys)
    return Fit("log2", slope, intercept, r2)


def fit_power(x: Sequence[float], y: Sequence[float]) -> Fit:
    """Fit ``y ~ c * x**b`` via log-log least squares.

    The fitted exponent ``slope`` discriminates linear (``~1``) from
    logarithmic (``<< 1``) growth in the Table 1 comparison.
    """
    gx = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if np.any(gx <= 0) or np.any(ys <= 0):
        raise ValueError("power fit requires positive x and y")
    slope, intercept, r2 = _least_squares(np.log(gx), np.log(ys))
    return Fit("power", slope, intercept, r2)
